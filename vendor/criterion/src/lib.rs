//! Offline stand-in for the `criterion` API surface this workspace's
//! benches use. It runs each benchmark a handful of times and prints a
//! rough mean wall-clock figure — enough for `cargo bench` to build, run
//! and give a ballpark number without the real statistical harness.

use std::time::Instant;

/// Top-level harness handle, passed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { _criterion: self, iters: 10 }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, 10, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    iters: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).max(1);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, self.iters, f);
        self
    }

    /// Runs a parameterised benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&id.0, self.iters, |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifies one parameterised benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a parameter rendering.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }
}

/// Timing handle handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    total_ns: u128,
    timed_iters: u64,
}

impl Bencher {
    /// Times `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.total_ns += start.elapsed().as_nanos();
        self.timed_iters += self.iters;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, iters: u64, mut f: F) {
    let mut b = Bencher { iters, total_ns: 0, timed_iters: 0 };
    f(&mut b);
    if b.timed_iters > 0 {
        let mean_ns = b.total_ns / u128::from(b.timed_iters);
        println!("  {id}: mean {mean_ns} ns over {} iters", b.timed_iters);
    } else {
        println!("  {id}: no measurement taken");
    }
}

/// Opaque value barrier; forwards to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group runner: a function that invokes each listed
/// target with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point invoking each group runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3);
            group.bench_function("inc", |b| b.iter(|| runs += 1));
            group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &x| {
                b.iter(|| runs += x)
            });
            group.finish();
        }
        assert_eq!(runs, 3 + 3 * 7);
    }

    criterion_group!(sample_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn generated_group_runner_is_callable() {
        sample_group();
    }
}
