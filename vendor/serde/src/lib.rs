//! Offline stand-in for the subset of `serde` this workspace uses:
//! `#[derive(Serialize)]` on plain named-field structs, consumed by the
//! vendored `serde_json::to_string_pretty`.
//!
//! Instead of upstream's visitor architecture, [`Serialize`] here writes
//! pretty-printed JSON directly — that is the only output format any
//! caller in this workspace requests.

pub use serde_derive::Serialize;

/// A value that can render itself as pretty-printed JSON.
///
/// Implemented for the primitives, strings, tuples (arity 2–5), `Vec`,
/// slices and `Option` — plus anything with `#[derive(Serialize)]`.
pub trait Serialize {
    /// Appends the JSON rendering of `self` to `out`. `indent` is the
    /// current nesting depth (two spaces per level).
    fn serialize_json(&self, out: &mut String, indent: usize);
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String, indent: usize) {
        (**self).serialize_json(out, indent);
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String, _indent: usize) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String, _indent: usize) {
                if self.is_finite() {
                    out.push_str(&self.to_string());
                } else {
                    // JSON has no NaN/Inf; null keeps the document valid.
                    out.push_str("null");
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for str {
    fn serialize_json(&self, out: &mut String, _indent: usize) {
        ser::write_escaped(out, self);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String, indent: usize) {
        self.as_str().serialize_json(out, indent);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String, indent: usize) {
        match self {
            Some(v) => v.serialize_json(out, indent),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String, indent: usize) {
        if self.is_empty() {
            out.push_str("[]");
            return;
        }
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            ser::newline(out, indent + 1);
            v.serialize_json(out, indent + 1);
        }
        ser::newline(out, indent);
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String, indent: usize) {
        self.as_slice().serialize_json(out, indent);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String, indent: usize) {
        self.as_slice().serialize_json(out, indent);
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_json(&self, out: &mut String, indent: usize) {
                out.push('[');
                let mut first = true;
                $(
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    ser::newline(out, indent + 1);
                    self.$idx.serialize_json(out, indent + 1);
                )+
                let _ = first;
                ser::newline(out, indent);
                out.push(']');
            }
        }
    )*};
}
impl_tuple! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Helpers the derive macro's generated code calls into.
pub mod ser {
    use super::Serialize;

    pub(crate) fn newline(out: &mut String, indent: usize) {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    }

    /// Appends `text` as a JSON string literal.
    pub fn write_escaped(out: &mut String, text: &str) {
        out.push('"');
        for c in text.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Renders a struct as a JSON object from `(name, value)` pairs; the
    /// derive macro emits one call to this per struct.
    pub fn serialize_struct(out: &mut String, indent: usize, fields: &[(&str, &dyn Serialize)]) {
        if fields.is_empty() {
            out.push_str("{}");
            return;
        }
        out.push('{');
        for (i, (name, value)) in fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            newline(out, indent + 1);
            write_escaped(out, name);
            out.push_str(": ");
            value.serialize_json(out, indent + 1);
        }
        newline(out, indent);
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render<T: Serialize>(v: T) -> String {
        let mut out = String::new();
        v.serialize_json(&mut out, 0);
        out
    }

    #[test]
    fn primitives_render_as_json() {
        assert_eq!(render(3usize), "3");
        assert_eq!(render(-2i64), "-2");
        assert_eq!(render(1.5f64), "1.5");
        assert_eq!(render(f64::NAN), "null");
        assert_eq!(render(true), "true");
        assert_eq!(render("a\"b\n"), "\"a\\\"b\\n\"");
        assert_eq!(render(Option::<f64>::None), "null");
    }

    #[test]
    fn containers_nest_with_indentation() {
        assert_eq!(render(Vec::<f64>::new()), "[]");
        assert_eq!(render(vec![1.0, 2.0]), "[\n  1,\n  2\n]");
        assert_eq!(render((1usize, "x")), "[\n  1,\n  \"x\"\n]");
    }

    #[test]
    fn structs_render_via_helper() {
        let mut out = String::new();
        ser::serialize_struct(&mut out, 0, &[("a", &1.5f64), ("b", &"s")]);
        assert_eq!(out, "{\n  \"a\": 1.5,\n  \"b\": \"s\"\n}");
    }
}
