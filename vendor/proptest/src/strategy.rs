//! Value-generation strategies: ranges, tuples, collections, `Option`,
//! and the `prop_map`/`prop_flat_map` combinators.

use rand::rngs::SmallRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// Generator driving all strategies (the vendored rand's `SmallRng`).
pub type TestRng = SmallRng;

/// Builds the deterministic generator for one test case.
#[doc(hidden)]
pub fn new_test_rng(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

/// A recipe for producing random values of one type.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every produced value with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from every produced value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

impl<T: SampleUniform> Strategy for core::ops::Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: SampleUniform> Strategy for core::ops::RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Vector lengths accepted by [`vec`]: a fixed size or a range of sizes.
pub trait IntoSizeRange {
    /// Draws the length for one sample.
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl IntoSizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl IntoSizeRange for core::ops::Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.start..self.end)
    }
}

/// Strategy producing `Vec`s of values from `element`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.sample_len(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// `prop::collection::vec`: vectors of `element` values with length drawn
/// from `len`.
pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}

/// Strategy producing `Option`s of values from an inner strategy.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_bool(0.8) {
            Some(self.inner.sample(rng))
        } else {
            None
        }
    }
}

/// `prop::option::of`: `Some` most of the time, `None` occasionally.
pub fn option_of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
