//! Offline stand-in for the subset of `proptest` this workspace uses:
//! the `proptest!` macro, `prop_assert*`/`prop_assume!`, range/tuple/
//! collection/option strategies with `prop_map`/`prop_flat_map`, and
//! `ProptestConfig::with_cases`.
//!
//! Unlike upstream there is no shrinking: a failing case panics with its
//! case number, and the generator stream is deterministic per test name,
//! so failures reproduce exactly on re-run.

pub mod strategy;

/// Per-test configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// Outcome of one property case, produced by the `prop_*` macros.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// An assertion failed with this message.
    Fail(String),
}

/// Deterministic per-test seed: FNV-1a over the test name.
#[doc(hidden)]
pub fn seed_for(name: &str, case: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Groups property tests: each `#[test] fn name(args in strategies) {..}`
/// expands to a zero-argument test running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..u64::from(__config.cases) {
                let mut __rng =
                    $crate::strategy::new_test_rng($crate::seed_for(stringify!($name), __case));
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match __outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        ::core::panic!(
                            "property {} failed at case {}: {}",
                            stringify!($name),
                            __case,
                            __msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        // `if cond {} else` rather than `if !cond` so float comparisons do
        // not trip clippy's neg_cmp_op_on_partial_ord in expansions.
        if $cond {
        } else {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if $cond {
        } else {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err($crate::TestCaseError::Fail(
                        ::std::format!("{:?} != {:?}", __l, __r),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err($crate::TestCaseError::Fail(
                        ::std::format!($($fmt)+),
                    ));
                }
            }
        }
    };
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if $cond {
        } else {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Strategy combinator namespace (`prop::collection`, `prop::option`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
    /// Option strategies.
    pub mod option {
        pub use crate::strategy::option_of as of;
    }
}

/// The glob-imported surface: strategies, config and the macros.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop, ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (f64, usize)> {
        (0.0f64..1.0, 1usize..4)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -2.0f64..3.0, n in 0usize..5, s in 10u64..20) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!(n < 5, "n was {}", n);
            prop_assert!((10..20).contains(&s));
        }

        #[test]
        fn tuple_patterns_and_combinators((x, n) in pair(),
                                          v in prop::collection::vec(0.0f64..1.0, 2..6),
                                          o in prop::option::of(1usize..3)) {
            prop_assert!(x < 1.0 && n >= 1);
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|t| (0.0..1.0).contains(t)));
            if let Some(k) = o {
                prop_assert_eq!(k.min(2), k);
            }
        }

        #[test]
        fn flat_map_links_sizes(v in (1usize..5).prop_flat_map(|n| {
            prop::collection::vec(0.0f64..1.0, n).prop_map(move |xs| (n, xs))
        })) {
            prop_assert_eq!(v.0, v.1.len());
            prop_assume!(v.0 > 1);
            prop_assert!(!v.1.is_empty());
        }
    }

    #[test]
    fn same_name_same_stream() {
        assert_eq!(crate::seed_for("a", 3), crate::seed_for("a", 3));
        assert_ne!(crate::seed_for("a", 3), crate::seed_for("b", 3));
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0.0f64..1.0) {
                prop_assert!(x > 2.0);
            }
        }
        always_fails();
    }
}
