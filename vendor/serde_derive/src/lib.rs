//! Hand-rolled `#[derive(Serialize)]` for the vendored serde stand-in.
//!
//! The build environment has no crates.io access, so this parses the
//! derive input with `proc_macro` alone (no `syn`/`quote`). It supports
//! exactly what this workspace derives on: non-generic structs with named
//! fields. Anything else fails loudly at compile time.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the vendored trait) for a named-field
/// struct by emitting one `serde::ser::serialize_struct` call listing
/// every field in declaration order.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut name = None;
    let mut fields_group = None;
    let mut saw_struct = false;
    for tt in input {
        match tt {
            TokenTree::Ident(id) if !saw_struct && id.to_string() == "struct" => {
                saw_struct = true;
            }
            TokenTree::Ident(id) if saw_struct && name.is_none() => {
                name = Some(id.to_string());
            }
            TokenTree::Group(g)
                if name.is_some()
                    && g.delimiter() == Delimiter::Brace
                    && fields_group.is_none() =>
            {
                fields_group = Some(g);
            }
            _ => {}
        }
    }
    let (name, fields_group) = match (name, fields_group) {
        (Some(n), Some(g)) => (n, g),
        _ => {
            return "compile_error!(\"derive(Serialize) stand-in supports only named-field structs\");"
                .parse()
                .unwrap()
        }
    };

    let mut pairs = String::new();
    for field in field_names(&fields_group) {
        pairs.push_str(&format!("(\"{field}\", &self.{field} as &dyn serde::Serialize), "));
    }
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn serialize_json(&self, out: &mut ::std::string::String, indent: usize) {{\n\
         serde::ser::serialize_struct(out, indent, &[{pairs}]);\n\
         }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

/// Extracts field names from the struct body: the identifier directly
/// before each top-level `:`, skipping attributes and visibility.
fn field_names(body: &Group) -> Vec<String> {
    let mut names = Vec::new();
    let mut angle_depth = 0i32;
    let mut expecting = true; // at start of a field declaration
    let mut pending: Option<String> = None;
    let mut stream = body.stream().into_iter().peekable();
    while let Some(tt) = stream.next() {
        match tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    expecting = true;
                    pending = None;
                }
                ':' if angle_depth == 0 && expecting => {
                    if let Some(n) = pending.take() {
                        names.push(n);
                        expecting = false;
                    }
                }
                '#' => {
                    // Attribute: swallow the bracket group that follows.
                    if matches!(stream.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                    {
                        stream.next();
                    }
                }
                _ => {}
            },
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if expecting && s != "pub" {
                    pending = Some(s);
                }
            }
            _ => {}
        }
    }
    names
}
