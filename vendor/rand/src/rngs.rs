//! Concrete generators: [`SmallRng`] and [`StdRng`].
//!
//! Both are the same xoshiro256++ core; upstream rand distinguishes them
//! by security margin, which is irrelevant for this workspace's synthetic
//! data generation.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ state, seeded via SplitMix64 so any u64 (including 0)
/// yields a well-mixed stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

macro_rules! wrapper_rng {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct $name(Xoshiro256);

        impl RngCore for $name {
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }

        impl SeedableRng for $name {
            fn seed_from_u64(state: u64) -> Self {
                Self(Xoshiro256::from_u64(state))
            }
        }
    };
}

wrapper_rng! {
    /// Small, fast generator (upstream: also xoshiro256++).
    SmallRng
}

wrapper_rng! {
    /// "Standard" generator (upstream: ChaCha12; here the same xoshiro
    /// core — only determinism per seed matters in this workspace).
    StdRng
}
