//! Slice sampling helpers: the `SliceRandom` subset the workspace uses.

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Uniformly picks one element, or `None` if empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles in place (Fisher–Yates).
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}
