//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `Rng` (`gen`, `gen_range`, `gen_bool`), `SeedableRng`
//! (`seed_from_u64`), `rngs::{SmallRng, StdRng}` and
//! `seq::SliceRandom` (`shuffle`, `choose`).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal implementation instead. Both RNGs are
//! xoshiro256++ generators seeded through SplitMix64 — deterministic per
//! seed, which is all the reproduction requires (no code in this
//! workspace depends on upstream rand's exact streams).

pub mod rngs;
pub mod seq;

/// Core of every generator: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a primitive type uniformly over its standard
    /// distribution (`[0, 1)` for floats, the full domain for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a (half-open or inclusive) range.
    ///
    /// # Panics
    ///
    /// Panics on empty ranges, like upstream rand.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;

    /// Draws uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Element types uniform ranges know how to sample.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`hi` included when `inclusive`).
    fn sample_uniform<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128) - (lo as i128) + i128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                let offset = (rng.next_u64() as i128).rem_euclid(span);
                (lo as i128 + offset) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        // Clamp guards the open upper bound against rounding.
        (lo + u * (hi - lo)).clamp(lo, f64::max(lo, hi - hi.abs() * f64::EPSILON))
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        (lo + u * (hi - lo)).min(f32::max(lo, hi - hi.abs() * f32::EPSILON))
    }
}

impl<T: SampleUniform> SampleRange for core::ops::Range<T> {
    type Output = T;

    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange for core::ops::RangeInclusive<T> {
    type Output = T;

    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::{SmallRng, StdRng};
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn floats_land_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let i = rng.gen_range(3..9);
            assert!((3..9).contains(&i));
            let j = rng.gen_range(1..=3);
            assert!((1..=3).contains(&j));
            let x = rng.gen_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&x));
            let n = rng.gen_range(0usize..4);
            assert!(n < 4);
        }
    }

    #[test]
    fn int_ranges_hit_every_value() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..2000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((300..700).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = rng.gen_range(5..5);
    }
}
