//! Offline stand-in for the one `serde_json` entry point this workspace
//! uses: [`to_string_pretty`]. Rendering is delegated to the vendored
//! `serde::Serialize`, which writes pretty JSON directly.

use std::fmt;

/// JSON serialisation error.
///
/// The direct-to-string renderer cannot actually fail, but callers
/// propagate `Result<_, serde_json::Error>` into `Box<dyn Error>`, so the
/// type and its impls must exist.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON serialisation error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `value` as pretty-printed JSON (two-space indentation).
///
/// # Errors
///
/// Never fails in this stand-in; the `Result` mirrors upstream's
/// signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out, 0);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use serde::Serialize;

    #[derive(Serialize)]
    struct Row {
        name: String,
        score: f64,
        tags: Vec<String>,
        extra: Option<f64>,
    }

    #[test]
    fn derived_struct_pretty_prints() {
        let row = Row { name: "alpha".into(), score: 0.5, tags: vec!["x".into()], extra: None };
        let json = super::to_string_pretty(&row).unwrap();
        assert_eq!(
            json,
            "{\n  \"name\": \"alpha\",\n  \"score\": 0.5,\n  \"tags\": [\n    \"x\"\n  ],\n  \"extra\": null\n}"
        );
    }

    #[test]
    fn nested_derive_composes() {
        #[derive(Serialize)]
        struct Outer {
            inner: Vec<(String, f64)>,
        }
        let json = super::to_string_pretty(&Outer { inner: vec![("a".into(), 1.0)] }).unwrap();
        assert!(json.contains("\"inner\""), "{json}");
        assert!(json.contains("\"a\""), "{json}");
    }
}
