//! Calibration of the synthetic substrate against the paper's published
//! statistics: the Fig. 2 long tail (12.72 % of tasks carry 80 % of
//! importance mass — Observation 1) and day-to-day importance fluctuation
//! (Observation 3), measured through the real model-training and
//! leave-one-out importance pipeline.

use tatim::buildings::scenario::{Scenario, ScenarioConfig};
use tatim::core::importance::{CopModels, ImportanceEvaluator};
use tatim::learn::transfer::MtlConfig;

fn importance_matrix(scenario: &Scenario) -> Vec<Vec<f64>> {
    let models =
        CopModels::train(scenario, MtlConfig { transfer_strength: 2.0, ..MtlConfig::default() })
            .expect("train");
    ImportanceEvaluator::new(scenario, &models).importance_matrix().expect("importances")
}

#[test]
fn long_tail_share_matches_paper_band_and_varies_by_day() {
    // Same shape the reproduce binary's fig2 uses in quick mode.
    let scenario = Scenario::generate(ScenarioConfig {
        history_days: 90,
        eval_days: 10,
        ..ScenarioConfig::default()
    })
    .expect("scenario");
    let matrix = importance_matrix(&scenario);
    let n = scenario.num_tasks();

    // Aggregate per-task mass over the horizon, descending.
    let mut mass: Vec<f64> = (0..n).map(|t| matrix.iter().map(|row| row[t]).sum::<f64>()).collect();
    mass.sort_by(|a, b| b.partial_cmp(a).expect("finite importance"));
    let total: f64 = mass.iter().sum::<f64>().max(1e-12);

    let mut cum = 0.0;
    let mut k = n;
    for (i, m) in mass.iter().enumerate() {
        cum += m / total;
        if cum >= 0.8 {
            k = i + 1;
            break;
        }
    }
    let share = k as f64 / n as f64;
    assert!(
        (0.10..=0.16).contains(&share),
        "tasks covering 80% of importance mass: {:.1}% — outside the 10-16% \
         band around the paper's 12.72%",
        100.0 * share
    );

    // Observation 3: the important set is not static — consecutive days
    // must rank tasks differently somewhere in the horizon.
    let day_changes = matrix
        .windows(2)
        .filter(|w| {
            let (a, b) = (&w[0], &w[1]);
            (0..n).any(|t| (a[t] - b[t]).abs() > 1e-9)
        })
        .count();
    assert!(
        day_changes > 0,
        "importance vector identical across all {} evaluation days",
        matrix.len()
    );
}
