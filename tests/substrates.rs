//! Cross-substrate integration below the pipeline level: the RL stack
//! against the knapsack ground truth, MTL against the scenario generator,
//! and the simulator against hand-computable timelines.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tatim::buildings::scenario::{Scenario, ScenarioConfig};
use tatim::core::importance::{strip_power_feature, CopModels, ImportanceEvaluator};
use tatim::knapsack::exact::BranchAndBound;
use tatim::knapsack::problem::{Item, Problem, Sack};
use tatim::learn::transfer::{MtlConfig, MtlMode};
use tatim::rl::alloc_env::{AllocEnv, AllocSpec};
use tatim::rl::dqn::{DqnAgent, DqnConfig};
use tatim::rl::mdp::Environment;

#[test]
fn trained_dqn_approaches_knapsack_optimum_on_small_instance() {
    // 4 tasks, 2 processors, each fitting exactly one task: optimum picks
    // the two most important tasks.
    let importances = vec![0.9, 0.7, 0.2, 0.1];
    let spec = AllocSpec {
        importances: importances.clone(),
        times: vec![1.0; 4],
        resources: vec![1.0; 4],
        time_limit: 1.0,
        time_limits: None,
        capacities: vec![1.0, 1.0],
        route_factors: None,
    };
    // Ground truth from the exact solver via the same shape.
    let problem = Problem::new(
        importances.iter().map(|&p| Item::new(1.0, 1.0, p).expect("valid")).collect(),
        vec![Sack::new(1.0, 1.0).expect("valid"); 2],
    )
    .expect("problem");
    let optimum = BranchAndBound::new().solve(&problem).profit;
    assert!((optimum - 1.6).abs() < 1e-9);

    let mut rng = StdRng::seed_from_u64(5);
    let mut env = AllocEnv::new(spec).expect("env");
    let mut agent = DqnAgent::new(
        env.state_dim(),
        env.num_actions(),
        DqnConfig { hidden: vec![32], epsilon_decay: 0.98, ..DqnConfig::default() },
        &mut rng,
    )
    .expect("agent");
    for _ in 0..250 {
        agent.train_episode(&mut env, &mut rng).expect("train");
    }
    let (reward, _) = agent.evaluate_episode(&mut env).expect("evaluate");
    assert!(
        reward >= 0.9 * optimum,
        "DQN reward {reward} should approach knapsack optimum {optimum}"
    );
}

#[test]
fn mtl_transfer_beats_independent_on_scarce_scenario_tasks() {
    let scenario = Scenario::generate(ScenarioConfig {
        history_days: 60,
        eval_days: 3,
        num_tasks: 0,
        ..ScenarioConfig::default()
    })
    .expect("scenario");
    // Pick the scarcest tasks and compare model quality at band midpoints.
    let mut scarce: Vec<usize> = (0..scenario.num_tasks()).collect();
    scarce.sort_by_key(|&t| scenario.dataset(t).len());
    let scarce: Vec<usize> = scarce.into_iter().take(6).collect();

    let fit = |mode: MtlMode, strength: f64| {
        CopModels::train(
            &scenario,
            MtlConfig { mode, transfer_strength: strength, ..MtlConfig::default() },
        )
        .expect("train")
    };
    let indep = fit(MtlMode::Independent, 0.0);
    let shared = fit(MtlMode::SelfAdapted, 2.0);

    let day = scenario.day(0);
    let err = |models: &CopModels| -> f64 {
        scarce
            .iter()
            .map(|&t| {
                let spec = &scenario.tasks()[t];
                let plant = scenario.plant(spec.building);
                let ch = &plant.chillers()[spec.chiller];
                let mid = plant
                    .band_midpoint_kw(spec.chiller, spec.band, scenario.config().bands_per_chiller)
                    .expect("valid band");
                let f = tatim::core::importance::prediction_features(
                    spec.building,
                    ch.model(),
                    ch.capacity_kw(),
                    &day.weather,
                    mid,
                );
                let truth = ch.cop(mid, day.weather.outdoor_temp_c);
                (models.predict(t, &f) - truth).abs()
            })
            .sum::<f64>()
    };
    let e_indep = err(&indep);
    let e_shared = err(&shared);
    assert!(
        e_shared <= e_indep * 1.2,
        "transfer should not hurt scarce tasks: {e_shared} vs {e_indep}"
    );
}

#[test]
fn stripped_datasets_feed_models_with_consistent_arity() {
    let scenario = Scenario::generate(ScenarioConfig {
        history_days: 30,
        eval_days: 2,
        num_tasks: 10,
        ..ScenarioConfig::default()
    })
    .expect("scenario");
    for t in 0..scenario.num_tasks() {
        let stripped = strip_power_feature(scenario.dataset(t));
        assert_eq!(stripped.num_features(), tatim::core::importance::NUM_PREDICTION_FEATURES);
    }
}

#[test]
fn importance_evaluator_is_deterministic() {
    let scenario = Scenario::generate(ScenarioConfig {
        history_days: 40,
        eval_days: 4,
        num_tasks: 16,
        ..ScenarioConfig::default()
    })
    .expect("scenario");
    let models = CopModels::train(&scenario, MtlConfig::default()).expect("models");
    let ev = ImportanceEvaluator::new(&scenario, &models);
    let a = ev.importance_matrix().expect("matrix a");
    let b = ev.importance_matrix().expect("matrix b");
    assert_eq!(a, b);
}

#[test]
fn masked_env_never_offers_infeasible_assignments() {
    // Fuzz the allocation environment with random valid actions; every
    // reachable state must satisfy the TATIM budgets.
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(11);
    for round in 0..50 {
        let n = rng.gen_range(1..8);
        let m = rng.gen_range(1..4);
        let spec = AllocSpec {
            importances: (0..n).map(|_| rng.gen_range(0.0..1.0)).collect(),
            times: (0..n).map(|_| rng.gen_range(0.0..3.0)).collect(),
            resources: (0..n).map(|_| rng.gen_range(0.0..3.0)).collect(),
            time_limit: rng.gen_range(0.5..4.0),
            time_limits: None,
            capacities: (0..m).map(|_| rng.gen_range(0.5..4.0)).collect(),
            route_factors: None,
        };
        let mut env = AllocEnv::new(spec.clone()).expect("env");
        env.reset();
        while !env.is_terminal() {
            let valid = env.valid_actions();
            assert!(!valid.is_empty(), "non-terminal state with no actions");
            let action = valid[rng.gen_range(0..valid.len())];
            env.step(action).expect("valid action steps");
        }
        // Check budgets on the final assignment.
        let mut time = vec![0.0; m];
        let mut res = vec![0.0; m];
        for (j, p) in env.assignment().iter().enumerate() {
            if let Some(p) = *p {
                time[p] += spec.times[j];
                res[p] += spec.resources[j];
            }
        }
        for p in 0..m {
            assert!(time[p] <= spec.time_limit + 1e-9, "round {round}: time over budget");
            assert!(res[p] <= spec.capacities[p] + 1e-9, "round {round}: resource over budget");
        }
    }
}
