//! Serving-layer integration: a multi-tenant `AllocatorService` must be a
//! pure throughput layer. Whatever the request interleaving, worker count,
//! or batch-flush path (size vs deadline), every response is bit-identical
//! to the same query answered solo — and tenants are fully isolated: one
//! tenant's fault schedules never perturb another's reports.

use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::Duration;
use tatim::buildings::scenario::{Scenario, ScenarioConfig};
use tatim::core::pipeline::{Method, Pipeline, PipelineConfig, RunSpec};
use tatim::core::recovery::RecoveryMode;
use tatim::core::shared::PreparedCore;
use tatim::edgesim::faults::FaultSchedule;
use tatim::prelude::{AllocRequest, AllocResponse, AllocatorService, Query, ServicePool};
use tatim::rl::alloc_env::{AllocEnv, AllocSpec};
use tatim::rl::crl::CrlConfig;
use tatim::rl::dqn::DqnConfig;
use tatim::rl::mdp::Environment;

fn tenant_core(seed: u64, num_tasks: usize) -> PreparedCore {
    let scenario = Scenario::generate(ScenarioConfig {
        num_buildings: 2,
        chillers_per_building: 2,
        bands_per_chiller: 4,
        num_tasks,
        history_days: 40,
        eval_days: 7,
        mean_input_mbit: 40.0,
        seed,
    })
    .expect("scenario");
    Pipeline::new(PipelineConfig {
        workers: 3,
        env_history_days: 4,
        crl: CrlConfig {
            episodes: 8,
            dqn: DqnConfig { hidden: vec![16], ..DqnConfig::default() },
            ..CrlConfig::default()
        },
        seed,
        ..PipelineConfig::default()
    })
    .prepare(&scenario)
    .expect("prepare")
    .into_core()
    .expect("freeze")
}

/// The shared two-tenant service plus solo-computed reference answers: one
/// (request, expected response) pair per tenant × day × query kind.
struct Fixture {
    service: Arc<AllocatorService>,
    requests: Vec<AllocRequest>,
    expected: Vec<AllocResponse>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let service = Arc::new(AllocatorService::new());
        service.register("alpha", tenant_core(11, 10)).expect("register alpha");
        service.register("beta", tenant_core(23, 9)).expect("register beta");
        let mut requests = Vec::new();
        for tenant in ["alpha", "beta"] {
            let days = service.with_core(tenant, |c| c.test_days()).expect("tenant");
            for day in days.take(2) {
                requests.push(AllocRequest {
                    tenant: tenant.into(),
                    query: Query::Run(RunSpec::new(Method::Dcta, day)),
                });
                requests.push(AllocRequest {
                    tenant: tenant.into(),
                    query: Query::QValues { day, state: None },
                });
            }
        }
        // Solo references through the same service, one request at a time.
        // (`handle` is deterministic, so serial answers ARE the spec.)
        let expected: Vec<AllocResponse> =
            requests.iter().map(|r| service.handle(r).expect("solo answer")).collect();
        Fixture { service, requests, expected }
    })
}

/// Bit-strict comparison: `PartialEq` would accept `-0.0 == 0.0`; the
/// serving contract promises the exact same bits as a solo answer.
fn assert_bit_identical(got: &AllocResponse, want: &AllocResponse, context: &str) {
    match (got, want) {
        (AllocResponse::Run(g), AllocResponse::Run(w)) => {
            assert_eq!(g, w, "{context}: run reports differ");
            assert_eq!(
                g.processing_time_s().to_bits(),
                w.processing_time_s().to_bits(),
                "{context}: PT bits"
            );
            assert_eq!(
                g.decision_performance().to_bits(),
                w.decision_performance().to_bits(),
                "{context}: H bits"
            );
        }
        (AllocResponse::QValues { key: gk, q: gq }, AllocResponse::QValues { key: wk, q: wq }) => {
            assert_eq!(gk, wk, "{context}: context key");
            let g_bits: Vec<u64> = gq.iter().map(|v| v.to_bits()).collect();
            let w_bits: Vec<u64> = wq.iter().map(|v| v.to_bits()).collect();
            assert_eq!(g_bits, w_bits, "{context}: q-value bits");
        }
        _ => panic!("{context}: response kinds diverged"),
    }
}

/// Seeded Fisher-Yates over `0..n` (tiny LCG; no external RNG surface).
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    for i in (1..n).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any request interleaving through a pool of 1, 2 or 8 workers answers
    /// every query with exactly the bits a solo call produces.
    #[test]
    fn pooled_responses_are_bit_identical_to_solo(seed in 0u64..1000, wsel in 0usize..3) {
        let workers = [1usize, 2, 8][wsel];
        let fx = fixture();
        let order = permutation(fx.requests.len(), seed);
        let pool = ServicePool::new(Arc::clone(&fx.service), workers);
        let tickets: Vec<(usize, tatim::prelude::Ticket)> = order
            .iter()
            .map(|&i| (i, pool.submit(fx.requests[i].clone())))
            .collect();
        for (i, ticket) in tickets {
            let got = ticket.wait().expect("pooled answer");
            assert_bit_identical(
                &got,
                &fx.expected[i],
                &format!("seed {seed}, {workers} workers, request {i}"),
            );
        }
    }
}

/// The same Q-value query answers with the same bits whether its batch
/// flushed on size or on deadline.
#[test]
fn size_and_deadline_flushes_answer_identically() {
    // Deadline path: generous size trigger, tight deadline, one request.
    let by_deadline = AllocatorService::with_batch_policy(64, Duration::from_micros(100));
    // Size path: trigger 2, deadline far beyond the test budget, exactly two
    // concurrent requests — the second submission always flushes both.
    let by_size = AllocatorService::with_batch_policy(2, Duration::from_secs(30));
    by_deadline.register("t", tenant_core(31, 8)).expect("register");
    by_size.register("t", tenant_core(31, 8)).expect("register");
    let day = by_deadline.with_core("t", |c| c.test_days().start).expect("tenant");
    let request = AllocRequest { tenant: "t".into(), query: Query::QValues { day, state: None } };

    let deadline_answer = by_deadline.handle(&request).expect("deadline answer");
    let stats = by_deadline.stats("t").expect("stats");
    assert_eq!(stats.batcher.deadline_flushes, 1);
    assert_eq!(stats.batcher.size_flushes, 0);

    let by_size = Arc::new(by_size);
    let pool = ServicePool::new(Arc::clone(&by_size), 2);
    let t1 = pool.submit(request.clone());
    let t2 = pool.submit(request.clone());
    let a1 = t1.wait().expect("size answer 1");
    let a2 = t2.wait().expect("size answer 2");
    drop(pool);
    let stats = by_size.stats("t").expect("stats");
    assert_eq!(stats.batcher.size_flushes, 1, "expected one size-triggered flush");
    assert_eq!(stats.batcher.deadline_flushes, 0);
    assert_eq!(stats.batcher.batched_states, 2);

    assert_bit_identical(&a1, &deadline_answer, "size flush 1 vs deadline flush");
    assert_bit_identical(&a2, &deadline_answer, "size flush 2 vs deadline flush");
}

/// A custom state rides the batch exactly like the default state, and both
/// match the agent's scalar answer computed off the core directly.
#[test]
fn batched_answers_match_scalar_agent_queries() {
    let fx = fixture();
    let day = fx.service.with_core("alpha", |c| c.test_days().start).expect("tenant");
    let (state, scalar) = fx
        .service
        .with_core("alpha", |c| {
            let shared = c.crl().shared();
            let (key, blend) =
                shared.define_environment(c.signature_of_day(day).expect("day")).expect("define");
            let spec = AllocSpec { importances: blend, ..c.blind_instance().to_alloc_spec() };
            let state = AllocEnv::new(spec).expect("env").reset();
            let scalar = shared.agent(key).expect("agent").q_values(&state).expect("scalar");
            (state, scalar)
        })
        .expect("tenant");
    let batched = fx
        .service
        .handle(&AllocRequest {
            tenant: "alpha".into(),
            query: Query::QValues { day, state: Some(state) },
        })
        .expect("batched")
        .into_q_values()
        .expect("q kind");
    let got: Vec<u64> = batched.iter().map(|v| v.to_bits()).collect();
    let want: Vec<u64> = scalar.iter().map(|v| v.to_bits()).collect();
    assert_eq!(got, want, "explicit-state batched query diverged from the scalar agent");
}

/// Tenant isolation: alpha absorbing fault-injected runs concurrently must
/// not change a single bit of beta's healthy reports.
#[test]
fn fault_schedules_never_leak_across_tenants() {
    let service = Arc::new(AllocatorService::new());
    service.register("alpha", tenant_core(41, 10)).expect("register alpha");
    service.register("beta", tenant_core(53, 9)).expect("register beta");

    let beta_days: Vec<usize> =
        service.with_core("beta", |c| c.test_days().collect()).expect("beta");
    let beta_requests: Vec<AllocRequest> = beta_days
        .iter()
        .map(|&day| AllocRequest {
            tenant: "beta".into(),
            query: Query::Run(RunSpec::new(Method::Dcta, day)),
        })
        .collect();
    let beta_solo: Vec<AllocResponse> =
        beta_requests.iter().map(|r| service.handle(r).expect("beta solo")).collect();

    // Alpha's side: crash its busiest node early, demand recovery.
    let victim = service.with_core("alpha", |c| c.fleet().node_of(0)).expect("alpha");
    let schedule = FaultSchedule::new().with_crash(victim, 0.2).expect("schedule");
    let alpha_day = service.with_core("alpha", |c| c.test_days().start).expect("alpha");
    let alpha_request = AllocRequest {
        tenant: "alpha".into(),
        query: Query::Run(
            RunSpec::new(Method::Dml, alpha_day).with_faults(schedule, RecoveryMode::Resolve),
        ),
    };

    let pool = ServicePool::new(Arc::clone(&service), 4);
    let mut alpha_tickets = Vec::new();
    let mut beta_tickets = Vec::new();
    for round in 0..3 {
        alpha_tickets.push(pool.submit(alpha_request.clone()));
        for (i, request) in beta_requests.iter().enumerate() {
            beta_tickets.push((round, i, pool.submit(request.clone())));
        }
    }
    for ticket in alpha_tickets {
        let report = ticket.wait().expect("alpha fault run").into_run().expect("run kind");
        assert!(report.as_faulted().is_some(), "alpha spec carried a schedule");
    }
    for (round, i, ticket) in beta_tickets {
        let got = ticket.wait().expect("beta answer");
        assert_bit_identical(
            &got,
            &beta_solo[i],
            &format!("round {round}, beta day {}", beta_days[i]),
        );
    }
}
