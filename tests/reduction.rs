//! Theorem-1 integration: the TATIM ↔ MCMK reduction round-trips across
//! crates, with property tests on randomly generated instances.

use proptest::prelude::*;
use tatim::core::processor::{Processor, ProcessorFleet};
use tatim::core::task::{EdgeTask, TaskId};
use tatim::core::tatim::{SolverKind, TatimInstance};
use tatim::edgesim::node::NodeId;
use tatim::knapsack::exact::BranchAndBound;

fn instance_strategy() -> impl Strategy<Value = TatimInstance> {
    let task = (0.0f64..5e6, 0.0f64..4.0, 0.0f64..1.0);
    let proc = 1.0f64..10.0;
    (prop::collection::vec(task, 1..10), prop::collection::vec(proc, 1..4), 0.1f64..2.0).prop_map(
        |(tasks, capacities, limit_scale)| {
            let tasks: Vec<EdgeTask> = tasks
                .into_iter()
                .enumerate()
                .map(|(i, (bits, res, imp))| {
                    EdgeTask::new(TaskId(i), format!("t{i}"), bits, res, imp).expect("valid ranges")
                })
                .collect();
            let total: f64 = tasks.iter().map(EdgeTask::reference_time_s).sum();
            let m = capacities.len();
            let fleet = ProcessorFleet::new(
                capacities
                    .into_iter()
                    .enumerate()
                    .map(|(p, c)| Processor {
                        node: NodeId(p + 1),
                        capacity: c,
                        seconds_per_bit: 4.75e-7,
                    })
                    .collect(),
                (limit_scale * total / m as f64).max(1e-3),
            )
            .expect("non-empty fleet");
            TatimInstance::new(tasks, fleet)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reduction_preserves_objective(inst in instance_strategy()) {
        // Solving the reduced knapsack and interpreting the packing back
        // must give an allocation whose importance equals the solver's
        // reported profit.
        let problem = inst.to_knapsack().expect("reduction");
        let sol = BranchAndBound::new().solve(&problem);
        let alloc = inst.allocation_from_packing(&sol.packing);
        prop_assert!((alloc.total_importance(inst.tasks()) - sol.profit).abs() < 1e-9);
    }

    #[test]
    fn exact_solutions_are_feasible_in_tatim_terms(inst in instance_strategy()) {
        let (alloc, _) = inst.solve_exact().expect("solve");
        prop_assert!(
            alloc.is_feasible(inst.tasks(), inst.fleet()),
            "violations: {:?}",
            alloc.check(inst.tasks(), inst.fleet())
        );
    }

    #[test]
    fn greedy_bounded_by_exact(inst in instance_strategy()) {
        let greedy = inst.solve(&SolverKind::Greedy).expect("greedy").objective;
        let (_, exact) = inst.solve_exact().expect("exact");
        prop_assert!(greedy <= exact + 1e-9, "greedy {greedy} > exact {exact}");
    }

    #[test]
    fn repricing_importances_respects_bounds(inst in instance_strategy(),
                                             seed in 0u64..1000) {
        // New random importances in [0,1] keep the instance solvable and
        // the objective within [0, sum of importances].
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let imp: Vec<f64> = (0..inst.num_tasks()).map(|_| rng.gen_range(0.0..1.0)).collect();
        let repriced = inst.with_importances(&imp);
        let (_, profit) = repriced.solve_exact().expect("solve");
        let total: f64 = imp.iter().sum();
        prop_assert!((0.0..=total + 1e-9).contains(&profit));
    }

    #[test]
    fn alloc_spec_round_trip_is_consistent(inst in instance_strategy()) {
        let spec = inst.to_alloc_spec();
        prop_assert!(spec.validate().is_ok());
        prop_assert_eq!(spec.num_tasks(), inst.num_tasks());
        prop_assert_eq!(spec.num_processors(), inst.fleet().len());
        // The environment matrix has N*M entries (Definition of e).
        prop_assert_eq!(
            spec.environment_matrix().len(),
            inst.num_tasks() * inst.fleet().len()
        );
    }
}
