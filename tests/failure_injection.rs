//! Failure-injection integration: degraded nodes and broken links must
//! surface in processing time exactly where the allocation touches them,
//! and nowhere else. Mid-run faults go further: crashes orphan exactly the
//! victim's tasks, retries win once the node recovers, and the recovery
//! re-solve sheds ascending importance — all bit-identical at any thread
//! count.

use proptest::prelude::*;
use tatim::core::processor::{Processor, ProcessorFleet};
use tatim::core::recovery::replan;
use tatim::core::task::{EdgeTask, TaskId};
use tatim::core::tatim::TatimInstance;
use tatim::edgesim::cluster::Cluster;
use tatim::edgesim::faults::FaultSchedule;
use tatim::edgesim::network::Link;
use tatim::edgesim::node::NodeId;
use tatim::edgesim::run::{
    simulate, simulate_with_faults, NodeAssignment, RetryPolicy, SimConfig, SimTask,
};

fn tasks(n: usize) -> Vec<SimTask> {
    (0..n).map(|_| SimTask::new(5e7, 1e4, 1.0).expect("valid")).collect()
}

fn round_robin(n: usize, workers: &[usize]) -> NodeAssignment {
    let mut a = NodeAssignment::empty(n);
    for i in 0..n {
        a.assign(i, Some(NodeId(workers[i % workers.len()])));
    }
    a
}

#[test]
fn slow_node_inflates_pt_only_when_used() {
    let healthy = Cluster::paper_testbed().expect("testbed");
    let mut degraded = Cluster::paper_testbed().expect("testbed");
    let node = degraded.node_mut(NodeId(1)).expect("node 1").clone().with_slowdown(10.0);
    *degraded.node_mut(NodeId(1)).expect("node 1") = node;

    let ts = tasks(8);
    // Assignment that uses node 1.
    let uses = round_robin(8, &[1, 2, 3, 4]);
    let pt_healthy =
        simulate(&healthy, &ts, &uses, SimConfig::default()).expect("healthy run").processing_time;
    let pt_degraded = simulate(&degraded, &ts, &uses, SimConfig::default())
        .expect("degraded run")
        .processing_time;
    assert!(pt_degraded > pt_healthy * 1.5, "slowdown invisible: {pt_degraded} vs {pt_healthy}");

    // Assignment that avoids node 1: the degradation must be invisible.
    let avoids = round_robin(8, &[2, 3, 4, 5]);
    let pt_avoid_h =
        simulate(&healthy, &ts, &avoids, SimConfig::default()).expect("run").processing_time;
    let pt_avoid_d =
        simulate(&degraded, &ts, &avoids, SimConfig::default()).expect("run").processing_time;
    assert!((pt_avoid_h - pt_avoid_d).abs() < 1e-9, "degradation leaked to other nodes");
}

#[test]
fn congested_link_inflates_transfer_bound_workloads() {
    let mut congested = Cluster::paper_testbed().expect("testbed");
    congested
        .network_mut()
        .expect("star testbed")
        .set_link(NodeId(2), Link::new(1e5, 0.5).expect("valid link"));

    let ts = tasks(4);
    let on_congested = round_robin(4, &[2]);
    let on_clean = round_robin(4, &[3]);
    let pt_congested = simulate(&congested, &ts, &on_congested, SimConfig::default())
        .expect("run")
        .processing_time;
    let pt_clean =
        simulate(&congested, &ts, &on_clean, SimConfig::default()).expect("run").processing_time;
    assert!(pt_congested > pt_clean * 3.0, "congestion invisible: {pt_congested} vs {pt_clean}");
}

#[test]
fn timelines_remain_causally_ordered_under_failures() {
    let mut cluster = Cluster::paper_testbed().expect("testbed");
    let node = cluster.node_mut(NodeId(4)).expect("node 4").clone().with_slowdown(5.0);
    *cluster.node_mut(NodeId(4)).expect("node 4") = node;
    cluster
        .network_mut()
        .expect("star testbed")
        .set_link(NodeId(5), Link::new(2e5, 0.2).expect("valid"));

    let ts = tasks(12);
    let a = round_robin(12, &[4, 5, 6]);
    let report = simulate(&cluster, &ts, &a, SimConfig::default()).expect("run");
    for tl in report.timelines.iter().flatten() {
        assert!(tl.transfer_start <= tl.compute_start);
        assert!(tl.compute_start <= tl.compute_end);
        assert!(tl.compute_end <= tl.result_at);
    }
    assert!(report.processing_time >= report.makespan());
}

#[test]
fn mid_run_crash_orphans_only_the_victims_tasks() {
    let cluster = Cluster::paper_testbed().expect("testbed");
    let ts = tasks(8);
    let a = round_robin(8, &[1, 2, 3, 4]);
    let schedule = FaultSchedule::new().with_crash(NodeId(1), 1e-3).expect("schedule");
    let cfg = SimConfig { retry: RetryPolicy::no_retry(), ..SimConfig::default() };
    let report = simulate_with_faults(&cluster, &ts, &a, cfg, &schedule).expect("fault run");

    assert_eq!(report.down_at_end, vec![NodeId(1)], "the victim never recovers");
    assert!(!report.failures.is_empty(), "the crash must be logged");
    let failed = report.failed_tasks();
    assert!(!failed.is_empty(), "the victim held tasks, some must orphan");
    for &j in &failed {
        assert_eq!(a.node_of(j), Some(NodeId(1)), "task {j} failed off the victim");
    }
    for j in 0..8 {
        if a.node_of(j) != Some(NodeId(1)) {
            assert!(report.completed[j], "bystander task {j} lost to a remote crash");
        }
    }
}

#[test]
fn retry_wins_after_the_node_recovers() {
    let cluster = Cluster::paper_testbed().expect("testbed");
    let ts = tasks(8);
    let a = round_robin(8, &[1, 2, 3, 4]);
    let healthy = simulate(&cluster, &ts, &a, SimConfig::default()).expect("healthy run");

    let schedule = FaultSchedule::new()
        .with_crash(NodeId(1), 0.01)
        .expect("crash")
        .with_recovery(NodeId(1), 0.2)
        .expect("recovery");
    // Default policy: bounded retries with backoff.
    let report = simulate_with_faults(&cluster, &ts, &a, SimConfig::default(), &schedule)
        .expect("fault run");

    assert!(report.failed_tasks().is_empty(), "every orphan must be re-dispatched");
    assert_eq!(report.completed_count(), 8);
    assert!(report.attempts.iter().any(|&n| n > 1), "the crash must cost somebody a retry");
    assert!(!report.failures.is_empty(), "aborted legs must be logged");
    assert!(report.down_at_end.is_empty(), "the node recovered");
    assert!(
        report.processing_time > healthy.processing_time,
        "timeout + retry cannot be free: {} vs {}",
        report.processing_time,
        healthy.processing_time
    );
}

#[test]
fn recovery_sheds_ascending_importance_when_capacity_shrinks() {
    // Six equal-size tasks, importances 0.2..0.7, three processors with
    // room for two tasks each. Losing two of the three processors leaves
    // room for two tasks: the re-solve must keep the top of the
    // importance tail and shed from the bottom.
    let tasks: Vec<EdgeTask> = (0..6)
        .map(|i| {
            EdgeTask::new(TaskId(i), format!("t{i}"), 1e6, 1.0, 0.2 + 0.1 * i as f64)
                .expect("valid task")
        })
        .collect();
    let fleet = ProcessorFleet::new(
        (0..3)
            .map(|i| Processor { node: NodeId(i + 1), capacity: 4.0, seconds_per_bit: 4.75e-7 })
            .collect(),
        1.0,
    )
    .expect("fleet");
    let inst = TatimInstance::new(tasks, fleet);

    let plan = replan(&inst, &[false; 6], &[NodeId(3)], 1.0).expect("replan");
    assert_eq!(plan.shed, vec![0, 1, 2, 3], "shed must be ascending importance");
    for j in 4..6 {
        let col = plan.allocation.processor_of(j).expect("kept the important tail");
        assert_eq!(inst.fleet().node_of(col), NodeId(3));
    }
    assert!((plan.recovered_importance - (0.6 + 0.7)).abs() < 1e-9);
    let total = 0.2 + 0.3 + 0.4 + 0.5 + 0.6 + 0.7;
    assert!((plan.recovered_fraction() - (0.6 + 0.7) / total).abs() < 1e-9);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// DESIGN §8.1 extended to faults: a non-empty seeded schedule must
    /// produce bit-identical reports at 1, 2 and 8 threads.
    #[test]
    fn fault_runs_are_thread_count_invariant(seed in 0u64..500, crash_rate in 0.2f64..0.9) {
        let cluster = Cluster::paper_testbed().expect("testbed");
        let ts = tasks(10);
        let a = round_robin(10, &[1, 2, 3, 4, 5]);
        let workers: Vec<NodeId> = (1..=5).map(NodeId).collect();
        let schedule = FaultSchedule::seeded(seed, &workers, crash_rate, 0.3, 2.0)
            .expect("schedule");
        prop_assume!(!schedule.is_empty());

        let mut runs = Vec::new();
        for threads in [1usize, 2, 8] {
            tatim::parallel::set_max_threads(threads);
            let r = simulate_with_faults(&cluster, &ts, &a, SimConfig::default(), &schedule)
                .expect("fault run");
            tatim::parallel::set_max_threads(0);
            runs.push(r);
        }
        prop_assert_eq!(runs[0].processing_time.to_bits(), runs[1].processing_time.to_bits());
        prop_assert_eq!(runs[0].processing_time.to_bits(), runs[2].processing_time.to_bits());
        prop_assert_eq!(&runs[0], &runs[1], "threads 1 vs 2 diverged");
        prop_assert_eq!(&runs[0], &runs[2], "threads 1 vs 8 diverged");
    }
}
