//! Failure-injection integration: degraded nodes and broken links must
//! surface in processing time exactly where the allocation touches them,
//! and nowhere else.

use tatim::edgesim::cluster::Cluster;
use tatim::edgesim::network::Link;
use tatim::edgesim::node::NodeId;
use tatim::edgesim::run::{simulate, NodeAssignment, SimConfig, SimTask};

fn tasks(n: usize) -> Vec<SimTask> {
    (0..n).map(|_| SimTask::new(5e7, 1e4, 1.0).expect("valid")).collect()
}

fn round_robin(n: usize, workers: &[usize]) -> NodeAssignment {
    let mut a = NodeAssignment::empty(n);
    for i in 0..n {
        a.assign(i, Some(NodeId(workers[i % workers.len()])));
    }
    a
}

#[test]
fn slow_node_inflates_pt_only_when_used() {
    let healthy = Cluster::paper_testbed().expect("testbed");
    let mut degraded = Cluster::paper_testbed().expect("testbed");
    let node = degraded.node_mut(NodeId(1)).expect("node 1").clone().with_slowdown(10.0);
    *degraded.node_mut(NodeId(1)).expect("node 1") = node;

    let ts = tasks(8);
    // Assignment that uses node 1.
    let uses = round_robin(8, &[1, 2, 3, 4]);
    let pt_healthy =
        simulate(&healthy, &ts, &uses, SimConfig::default()).expect("healthy run").processing_time;
    let pt_degraded = simulate(&degraded, &ts, &uses, SimConfig::default())
        .expect("degraded run")
        .processing_time;
    assert!(pt_degraded > pt_healthy * 1.5, "slowdown invisible: {pt_degraded} vs {pt_healthy}");

    // Assignment that avoids node 1: the degradation must be invisible.
    let avoids = round_robin(8, &[2, 3, 4, 5]);
    let pt_avoid_h =
        simulate(&healthy, &ts, &avoids, SimConfig::default()).expect("run").processing_time;
    let pt_avoid_d =
        simulate(&degraded, &ts, &avoids, SimConfig::default()).expect("run").processing_time;
    assert!((pt_avoid_h - pt_avoid_d).abs() < 1e-9, "degradation leaked to other nodes");
}

#[test]
fn congested_link_inflates_transfer_bound_workloads() {
    let mut congested = Cluster::paper_testbed().expect("testbed");
    congested.network_mut().set_link(NodeId(2), Link::new(1e5, 0.5).expect("valid link"));

    let ts = tasks(4);
    let on_congested = round_robin(4, &[2]);
    let on_clean = round_robin(4, &[3]);
    let pt_congested = simulate(&congested, &ts, &on_congested, SimConfig::default())
        .expect("run")
        .processing_time;
    let pt_clean =
        simulate(&congested, &ts, &on_clean, SimConfig::default()).expect("run").processing_time;
    assert!(pt_congested > pt_clean * 3.0, "congestion invisible: {pt_congested} vs {pt_clean}");
}

#[test]
fn timelines_remain_causally_ordered_under_failures() {
    let mut cluster = Cluster::paper_testbed().expect("testbed");
    let node = cluster.node_mut(NodeId(4)).expect("node 4").clone().with_slowdown(5.0);
    *cluster.node_mut(NodeId(4)).expect("node 4") = node;
    cluster.network_mut().set_link(NodeId(5), Link::new(2e5, 0.2).expect("valid"));

    let ts = tasks(12);
    let a = round_robin(12, &[4, 5, 6]);
    let report = simulate(&cluster, &ts, &a, SimConfig::default()).expect("run");
    for tl in report.timelines.iter().flatten() {
        assert!(tl.transfer_start <= tl.compute_start);
        assert!(tl.compute_start <= tl.compute_end);
        assert!(tl.compute_end <= tl.result_at);
    }
    assert!(report.processing_time >= report.makespan());
}
