//! End-to-end integration: scenario generation → MTL → importance → every
//! allocator → simulated execution, asserting the paper's qualitative
//! claims hold across the whole stack.

use tatim::buildings::scenario::{Scenario, ScenarioConfig};
use tatim::core::objective::AllocQuery;
use tatim::core::pipeline::{Method, Pipeline, PipelineConfig, RunSpec};
use tatim::rl::crl::CrlConfig;
use tatim::rl::dqn::DqnConfig;

fn scenario() -> Scenario {
    Scenario::generate(ScenarioConfig {
        num_buildings: 2,
        chillers_per_building: 2,
        bands_per_chiller: 4,
        num_tasks: 12,
        history_days: 60,
        eval_days: 9,
        mean_input_mbit: 60.0,
        ..ScenarioConfig::default()
    })
    .expect("scenario generates")
}

fn config() -> PipelineConfig {
    PipelineConfig {
        workers: 4,
        env_history_days: 5,
        crl: CrlConfig {
            episodes: 25,
            dqn: DqnConfig { hidden: vec![24], ..DqnConfig::default() },
            ..CrlConfig::default()
        },
        ..PipelineConfig::default()
    }
}

#[test]
fn full_stack_produces_consistent_reports() {
    let s = scenario();
    let mut prepared = Pipeline::builder(config()).prepare(&s).expect("prepare");
    let days: Vec<usize> = prepared.test_days().collect();
    assert_eq!(days.len(), 4);
    for &day in &days {
        for method in [Method::RandomMapping, Method::Dml, Method::Crl, Method::Dcta] {
            let r = prepared
                .run(&RunSpec::new(method, day))
                .expect("run day")
                .into_healthy()
                .expect("healthy run");
            assert_eq!(r.day, day);
            assert!(r.processing_time_s.is_finite() && r.processing_time_s > 0.0);
            assert!((0.0..=1.0).contains(&r.decision_performance));
            assert!(r.scheduled <= s.num_tasks());
            assert!(r.allocation.len() == s.num_tasks());
        }
    }
}

#[test]
fn importance_aware_methods_save_processing_time() {
    let s = scenario();
    let mut prepared = Pipeline::builder(config()).prepare(&s).expect("prepare");
    let mut rm = 0.0;
    let mut dml = 0.0;
    let mut dcta = 0.0;
    let days: Vec<usize> = prepared.test_days().collect();
    for &day in &days {
        rm += prepared
            .run(&RunSpec::new(Method::RandomMapping, day))
            .expect("rm")
            .processing_time_s();
        dml += prepared.run(&RunSpec::new(Method::Dml, day)).expect("dml").processing_time_s();
        dcta += prepared.run(&RunSpec::new(Method::Dcta, day)).expect("dcta").processing_time_s();
    }
    // The paper's headline: importance-aware allocation cuts PT vs both
    // non-selective baselines, and RM is the worst.
    assert!(dcta < dml, "DCTA {dcta} !< DML {dml}");
    assert!(dml < rm, "DML {dml} !< RM {rm}");
}

#[test]
fn decision_performance_survives_task_selection() {
    let s = scenario();
    let mut prepared = Pipeline::builder(config()).prepare(&s).expect("prepare");
    let days: Vec<usize> = prepared.test_days().collect();
    let mut full = 0.0;
    let mut selected = 0.0;
    for &day in &days {
        full += prepared.run(&RunSpec::new(Method::Dml, day)).expect("dml").decision_performance();
        selected += prepared
            .run(&RunSpec::new(Method::GreedyOracle, day))
            .expect("oracle")
            .decision_performance();
    }
    // Dropping the unimportant tasks must cost almost nothing: the
    // "without performance degradation" claim.
    assert!(selected >= full - 0.1 * days.len() as f64, "selected {selected} vs full {full}");
}

#[test]
fn determinism_per_seed() {
    let s = scenario();
    let mut a = Pipeline::builder(config()).prepare(&s).expect("prepare a");
    let mut b = Pipeline::builder(config()).prepare(&s).expect("prepare b");
    let day = a.test_days().start;
    // Deterministic methods must agree across identically-seeded pipelines.
    for method in [Method::Dml, Method::GreedyOracle, Method::Dcta] {
        let ra = a.run(&RunSpec::new(method, day)).expect("a");
        let rb = b.run(&RunSpec::new(method, day)).expect("b");
        assert_eq!(ra.allocation(), rb.allocation(), "{method} not deterministic");
    }
}

#[test]
fn sweeping_workers_reduces_processing_time() {
    let s = scenario();
    let mut pts = Vec::new();
    for workers in [2usize, 6] {
        let p = Pipeline::builder(PipelineConfig {
            workers,
            env_history_days: 5,
            crl: CrlConfig {
                episodes: 10,
                dqn: DqnConfig { hidden: vec![16], ..DqnConfig::default() },
                ..CrlConfig::default()
            },
            ..PipelineConfig::default()
        });
        let mut prepared = p.prepare(&s).expect("prepare");
        let day = prepared.test_days().start;
        pts.push(prepared.run(&RunSpec::new(Method::Dml, day)).expect("dml").processing_time_s());
    }
    assert!(pts[1] < pts[0], "more workers should cut PT: {pts:?}");
}

#[test]
fn bandwidth_scaling_cuts_processing_time_end_to_end() {
    let s = scenario();
    let mut prepared = Pipeline::builder(config()).prepare(&s).expect("prepare");
    let day = prepared.test_days().start;
    let out = prepared.allocate(&AllocQuery::new(Method::Dml, day)).expect("allocate");
    let slow = prepared
        .execute(Method::Dml, day, out.allocation.clone(), out.overhead_s)
        .expect("slow run")
        .processing_time_s;
    prepared.cluster_mut().network_mut().expect("star testbed").scale_bandwidth(4.0);
    let fast = prepared
        .execute(Method::Dml, day, out.allocation, out.overhead_s)
        .expect("fast run")
        .processing_time_s;
    assert!(fast < slow, "bandwidth x4 should cut PT: {fast} !< {slow}");
}
