//! # dcta-parallel — deterministic scoped parallel maps
//!
//! A minimal, std-only execution layer for the workspace's hot loops
//! (leave-one-out importance, Shapley permutation sampling, per-cluster DQN
//! training, benchmark sweeps). The whole workspace promises bit-for-bit
//! reproducibility (see `learn::linalg`), so the layer's contract is strict:
//!
//! **Determinism contract.** For a *pure* closure `f` (no interior
//! mutability, output depends only on the input item/index),
//! [`par_map`]/[`par_map_indexed`] return exactly the `Vec` the serial loop
//! `(0..n).map(f).collect()` would return — same order, same `f64` bits —
//! for every thread count. This holds by construction: items are never
//! re-associated or reduced across threads; each output slot is computed by
//! exactly one closure call and written to its final position, and any
//! cross-item combining is left to the (serial) caller.
//!
//! Work is chunked: contiguous index ranges are claimed from an atomic
//! counter by a scoped crew of worker threads (std threads, no external
//! runtime), so uneven per-item cost load-balances without changing output
//! order. With an effective thread count of 1 the implementation *is* the
//! serial loop — no threads are spawned at all. The crew is additionally
//! capped by a serial-below-threshold guard
//! ([`DEFAULT_MIN_ITEMS_PER_THREAD`], tunable per call via the `*_grained`
//! variants), so tiny workloads never pay thread spawn/join overhead.
//!
//! ## Thread-count configuration
//!
//! The effective thread count is resolved, in order, from:
//! 1. a process-wide override set with [`set_max_threads`] (used by
//!    benchmarks to sweep 1 vs N within one process),
//! 2. the `DCTA_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! ## Errors
//!
//! [`try_par_map`]/[`try_par_map_indexed`] mirror `Iterator::collect::<
//! Result<_, _>>` determinism: when several items fail, the error of the
//! *lowest index* is returned — exactly the error a serial left-to-right
//! loop would surface first. (Unlike the serial loop, later items may still
//! have been evaluated; with pure closures this is unobservable.)
//!
//! ## Examples
//!
//! ```
//! let squares = parallel::par_map_indexed(5, |i| (i * i) as f64);
//! assert_eq!(squares, vec![0.0, 1.0, 4.0, 9.0, 16.0]);
//!
//! let doubled = parallel::par_map(&[1, 2, 3], |&x| x * 2);
//! assert_eq!(doubled, vec![2, 4, 6]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::convert::Infallible;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide thread-count override; 0 means "no override".
static MAX_THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Environment variable consulted when no override is set.
pub const THREADS_ENV: &str = "DCTA_THREADS";

/// Chunks handed out per worker thread: >1 so uneven per-item cost
/// load-balances, small enough that chunk bookkeeping stays negligible.
const CHUNKS_PER_THREAD: usize = 4;

/// Minimum items each worker thread must have before the standard entry
/// points ([`par_map`], [`par_map_indexed`], `try_*`) will spawn it.
///
/// Tiny workloads lose more to thread spawn/join than they gain from
/// parallelism (the perf log showed a 0.90× *slowdown* on a ~10-item map at
/// 2 threads), so the default entry points cap the crew at
/// `n / DEFAULT_MIN_ITEMS_PER_THREAD` workers and fall back to the exact
/// serial loop below that. Callers that know their per-item cost can pick a
/// different grain via the `*_grained` variants: `1` restores the old
/// always-parallel behaviour for few-but-expensive items (e.g. per-cluster
/// DQN pretraining), larger grains serialise cheap fine-grained maps.
/// The guard only changes *how* the work runs, never the result — every
/// thread count returns identical bits.
pub const DEFAULT_MIN_ITEMS_PER_THREAD: usize = 2;

/// The worker-crew size for `n` items at `min_items_per_thread` grain: the
/// configured [`max_threads`], capped so each worker has at least the grain's
/// worth of items (always at least 1).
fn effective_threads(n: usize, min_items_per_thread: usize) -> usize {
    max_threads().min(n / min_items_per_thread.max(1)).max(1)
}

/// One chunk's outcome: its ordered outputs, or the first failing index.
type ChunkSlot<U, E> = Mutex<Option<Result<Vec<U>, (usize, E)>>>;

/// Sets a process-wide thread-count override (`0` clears it, falling back
/// to `DCTA_THREADS` / detected parallelism). Benchmarks use this to time
/// identical work at 1 vs N threads inside one process.
pub fn set_max_threads(threads: usize) {
    MAX_THREADS_OVERRIDE.store(threads, Ordering::SeqCst);
}

/// The raw process-wide override as last set by [`set_max_threads`] (or an
/// active [`ScopedThreads`] guard); `0` means "no override". Unlike
/// [`max_threads`] this does not consult `DCTA_THREADS` or detected
/// parallelism — it exists so callers can save and restore the override
/// around a temporary change.
pub fn max_threads_override() -> usize {
    MAX_THREADS_OVERRIDE.load(Ordering::SeqCst)
}

/// RAII guard that overrides the process-wide thread count for a scope.
///
/// On construction the guard swaps in `threads` (as [`set_max_threads`]
/// would); on drop it restores the override that was active before, so
/// guards nest LIFO. The override is *process-wide*, not thread-local:
/// concurrent scopes with different guards race on the same slot, so the
/// guard is intended for the single-threaded orchestration layers
/// (pipeline construction, benchmark drivers), not for worker closures.
/// Per the crate determinism contract the override only changes how work
/// is scheduled, never the bits of any result.
///
/// ```
/// parallel::set_max_threads(0);
/// {
///     let _guard = parallel::ScopedThreads::new(2);
///     assert_eq!(parallel::max_threads(), 2);
/// }
/// assert_eq!(parallel::max_threads_override(), 0);
/// ```
#[derive(Debug)]
#[must_use = "the override is restored when the guard drops"]
pub struct ScopedThreads {
    prior: usize,
}

impl ScopedThreads {
    /// Overrides the thread count until the guard drops (`0` = clear the
    /// override for the scope).
    pub fn new(threads: usize) -> Self {
        Self { prior: MAX_THREADS_OVERRIDE.swap(threads, Ordering::SeqCst) }
    }
}

impl Drop for ScopedThreads {
    fn drop(&mut self) {
        MAX_THREADS_OVERRIDE.store(self.prior, Ordering::SeqCst);
    }
}

/// The effective maximum thread count: the [`set_max_threads`] override if
/// set, else `DCTA_THREADS` if parseable and non-zero, else
/// [`std::thread::available_parallelism`] (1 when undetectable).
pub fn max_threads() -> usize {
    let over = MAX_THREADS_OVERRIDE.load(Ordering::SeqCst);
    if over > 0 {
        return over;
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(usize::from).unwrap_or(1)
}

/// Maps `f` over `items`, in parallel, returning outputs in input order.
///
/// See the crate docs for the determinism contract: with a pure `f` the
/// result is bit-identical to `items.iter().map(f).collect()` at every
/// thread count.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_grained(items, DEFAULT_MIN_ITEMS_PER_THREAD, f)
}

/// [`par_map`] with an explicit serial-below-threshold grain: at most
/// `n / min_items_per_thread` worker threads are used (serial below that).
/// The grain never changes the result, only the crew size.
pub fn par_map_grained<T, U, F>(items: &[T], min_items_per_thread: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed_grained(items.len(), min_items_per_thread, |i| f(&items[i]))
}

/// Maps `f` over `0..n`, in parallel, returning outputs in index order.
///
/// See the crate docs for the determinism contract.
pub fn par_map_indexed<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_map_indexed_grained(n, DEFAULT_MIN_ITEMS_PER_THREAD, f)
}

/// [`par_map_indexed`] with an explicit serial-below-threshold grain; see
/// [`par_map_grained`].
pub fn par_map_indexed_grained<U, F>(n: usize, min_items_per_thread: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    match try_par_map_indexed_grained(n, min_items_per_thread, |i| Ok::<U, Infallible>(f(i))) {
        Ok(v) => v,
        Err(e) => match e {},
    }
}

/// Fallible [`par_map`]: returns the lowest-index error, like a serial
/// left-to-right `collect::<Result<_, _>>`.
///
/// # Errors
///
/// The first (lowest-index) `Err` produced by `f`, if any.
pub fn try_par_map<T, U, E, F>(items: &[T], f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(&T) -> Result<U, E> + Sync,
{
    try_par_map_grained(items, DEFAULT_MIN_ITEMS_PER_THREAD, f)
}

/// [`try_par_map`] with an explicit serial-below-threshold grain; see
/// [`par_map_grained`].
///
/// # Errors
///
/// The first (lowest-index) `Err` produced by `f`, if any.
pub fn try_par_map_grained<T, U, E, F>(
    items: &[T],
    min_items_per_thread: usize,
    f: F,
) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(&T) -> Result<U, E> + Sync,
{
    try_par_map_indexed_grained(items.len(), min_items_per_thread, |i| f(&items[i]))
}

/// Fallible [`par_map_indexed`]: returns the lowest-index error, like a
/// serial left-to-right `collect::<Result<_, _>>`.
///
/// # Errors
///
/// The first (lowest-index) `Err` produced by `f`, if any.
pub fn try_par_map_indexed<U, E, F>(n: usize, f: F) -> Result<Vec<U>, E>
where
    U: Send,
    E: Send,
    F: Fn(usize) -> Result<U, E> + Sync,
{
    try_par_map_indexed_grained(n, DEFAULT_MIN_ITEMS_PER_THREAD, f)
}

/// [`try_par_map_indexed`] with an explicit serial-below-threshold grain;
/// see [`par_map_grained`]. This is the implementation all other entry
/// points funnel into.
///
/// # Errors
///
/// The first (lowest-index) `Err` produced by `f`, if any.
pub fn try_par_map_indexed_grained<U, E, F>(
    n: usize,
    min_items_per_thread: usize,
    f: F,
) -> Result<Vec<U>, E>
where
    U: Send,
    E: Send,
    F: Fn(usize) -> Result<U, E> + Sync,
{
    let threads = effective_threads(n, min_items_per_thread);
    if threads <= 1 {
        // Exact serial path: no threads, natural short-circuit on error.
        return (0..n).map(f).collect();
    }

    // Static chunk boundaries (deterministic), dynamic chunk *claiming*
    // (load-balancing). Each chunk's outputs land in a dedicated slot, so
    // claiming order cannot perturb output order.
    let num_chunks = (threads * CHUNKS_PER_THREAD).min(n);
    let chunk_len = n.div_ceil(num_chunks);
    let next_chunk = AtomicUsize::new(0);
    let slots: Vec<ChunkSlot<U, E>> = (0..num_chunks).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let c = next_chunk.fetch_add(1, Ordering::Relaxed);
                if c >= num_chunks {
                    return;
                }
                let start = (c * chunk_len).min(n);
                let end = ((c + 1) * chunk_len).min(n);
                let mut out = Vec::with_capacity(end - start);
                let mut failure = None;
                for i in start..end {
                    match f(i) {
                        Ok(v) => out.push(v),
                        Err(e) => {
                            failure = Some((i, e));
                            break;
                        }
                    }
                }
                *slots[c].lock().expect("chunk slot poisoned") = Some(match failure {
                    None => Ok(out),
                    Some(ie) => Err(ie),
                });
            });
        }
    });

    // Serial, in-order assembly; the lowest-index error wins, matching what
    // a serial loop would have returned first.
    let mut results = Vec::with_capacity(n);
    let mut first_err: Option<(usize, E)> = None;
    for slot in slots {
        let outcome = slot.into_inner().expect("chunk slot poisoned").expect("chunk completed");
        match outcome {
            Ok(mut v) => results.append(&mut v),
            Err((i, e)) => {
                if first_err.as_ref().is_none_or(|(fi, _)| i < *fi) {
                    first_err = Some((i, e));
                }
            }
        }
    }
    match first_err {
        Some((_, e)) => Err(e),
        None => Ok(results),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Tests mutate the process-wide override; serialise them.
    static LOCK: Mutex<()> = Mutex::new(());

    fn guard(threads: usize) -> MutexGuard<'static, ()> {
        let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_max_threads(threads);
        g
    }

    #[test]
    fn ordered_output_at_many_threads() {
        let _g = guard(8);
        let out = par_map_indexed(1000, |i| i * 3);
        assert_eq!(out, (0..1000).map(|i| i * 3).collect::<Vec<_>>());
        set_max_threads(0);
    }

    #[test]
    fn serial_path_taken_at_one_thread() {
        let _g = guard(1);
        let out = par_map_indexed(10, |i| i as f64 / 3.0);
        assert_eq!(out, (0..10).map(|i| i as f64 / 3.0).collect::<Vec<_>>());
        set_max_threads(0);
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let _g = guard(0);
        // A float-heavy closure: any re-association would change bits.
        let f = |i: usize| {
            let mut acc = 0.0f64;
            for k in 1..=64 {
                acc += ((i * k) as f64).sqrt() / (k as f64 + 0.1);
            }
            acc
        };
        set_max_threads(1);
        let serial: Vec<u64> = par_map_indexed(257, f).into_iter().map(f64::to_bits).collect();
        for threads in [2, 3, 8] {
            set_max_threads(threads);
            let par: Vec<u64> = par_map_indexed(257, f).into_iter().map(f64::to_bits).collect();
            assert_eq!(par, serial, "thread count {threads} changed bits");
        }
        set_max_threads(0);
    }

    #[test]
    fn par_map_over_slice() {
        let _g = guard(4);
        let items: Vec<i64> = (0..100).collect();
        assert_eq!(par_map(&items, |&x| x - 7), (0..100).map(|x| x - 7).collect::<Vec<i64>>());
        set_max_threads(0);
    }

    #[test]
    fn empty_and_single_inputs() {
        let _g = guard(8);
        assert_eq!(par_map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, |i| i + 1), vec![1]);
        assert_eq!(par_map::<i32, i32, _>(&[], |&x| x), Vec::<i32>::new());
        set_max_threads(0);
    }

    #[test]
    fn lowest_index_error_wins() {
        let _g = guard(0);
        let f = |i: usize| if i % 10 == 3 { Err(i) } else { Ok(i) };
        for threads in [1, 2, 8] {
            set_max_threads(threads);
            assert_eq!(try_par_map_indexed(100, f), Err(3), "threads {threads}");
        }
        set_max_threads(0);
    }

    #[test]
    fn try_success_matches_serial() {
        let _g = guard(8);
        let ok = try_par_map_indexed(50, |i| Ok::<usize, ()>(i * i)).unwrap();
        assert_eq!(ok, (0..50).map(|i| i * i).collect::<Vec<_>>());
        let items = [1.0, 2.0, 3.0];
        let mapped = try_par_map(&items, |&x| Ok::<f64, ()>(x / 7.0)).unwrap();
        assert_eq!(mapped, items.iter().map(|&x| x / 7.0).collect::<Vec<_>>());
        set_max_threads(0);
    }

    #[test]
    fn override_beats_env_and_detection() {
        let _g = guard(3);
        assert_eq!(max_threads(), 3);
        set_max_threads(0);
        assert!(max_threads() >= 1);
    }

    #[test]
    fn scoped_threads_restores_prior_override() {
        let _g = guard(5);
        assert_eq!(max_threads_override(), 5);
        {
            let _s = ScopedThreads::new(2);
            assert_eq!(max_threads(), 2);
            {
                let _inner = ScopedThreads::new(7);
                assert_eq!(max_threads(), 7);
            }
            assert_eq!(max_threads(), 2, "inner guard restores outer override");
        }
        assert_eq!(max_threads_override(), 5, "outer guard restores set_max_threads value");
        set_max_threads(0);
        assert_eq!(max_threads_override(), 0);
    }

    #[test]
    fn serial_guard_caps_crew_size() {
        let _g = guard(8);
        // Default grain: a tiny map gets at most n/2 workers.
        assert_eq!(effective_threads(3, DEFAULT_MIN_ITEMS_PER_THREAD), 1);
        assert_eq!(effective_threads(10, DEFAULT_MIN_ITEMS_PER_THREAD), 5);
        assert_eq!(effective_threads(100, DEFAULT_MIN_ITEMS_PER_THREAD), 8);
        // Explicit grains: 1 restores full parallelism for few expensive
        // items; large grains serialise cheap maps entirely.
        assert_eq!(effective_threads(3, 1), 3);
        assert_eq!(effective_threads(500, 32), 8);
        assert_eq!(effective_threads(40, 32), 1);
        assert_eq!(effective_threads(40, 0), 8, "grain 0 behaves as 1");
        assert_eq!(effective_threads(0, 4), 1, "empty input still yields 1");
        set_max_threads(0);
    }

    #[test]
    fn grained_outputs_bit_identical_to_standard() {
        let _g = guard(0);
        let f = |i: usize| {
            let mut acc = 0.0f64;
            for k in 1..=32 {
                acc += ((i * k) as f64).sqrt() / (k as f64 + 0.3);
            }
            acc
        };
        set_max_threads(1);
        let serial: Vec<u64> = par_map_indexed(100, f).into_iter().map(f64::to_bits).collect();
        for threads in [2, 8] {
            for grain in [1, 2, 16, 64, 1000] {
                set_max_threads(threads);
                let got: Vec<u64> =
                    par_map_indexed_grained(100, grain, f).into_iter().map(f64::to_bits).collect();
                assert_eq!(got, serial, "threads {threads} grain {grain} changed bits");
            }
        }
        set_max_threads(0);
    }

    #[test]
    fn grained_error_reporting_matches_standard() {
        let _g = guard(4);
        let f = |i: usize| if i % 7 == 5 { Err(i) } else { Ok(i) };
        for grain in [1, 4, 100] {
            assert_eq!(try_par_map_indexed_grained(50, grain, f), Err(5), "grain {grain}");
        }
        let items: Vec<usize> = (0..20).collect();
        assert_eq!(try_par_map_grained(&items, 1, |&i| f(i)), Err(5));
        assert_eq!(
            par_map_grained(&items, 3, |&i| i * 2),
            (0..20).map(|i| i * 2).collect::<Vec<_>>()
        );
        set_max_threads(0);
    }
}
