//! Property tests of the crate's determinism contract: for any input and
//! any closure, the parallel maps return bit-identical results at every
//! thread count — including the `1`-thread exact-serial path.

use proptest::prelude::*;

/// A numerically "interesting" pure function: non-linear, sign-sensitive,
/// and built from operations whose results depend on evaluation order if
/// anything were re-associated.
fn knead(x: f64) -> f64 {
    let a = x.mul_add(1.618, -0.577);
    let b = (a * a + 1.0).sqrt() - a.abs();
    (b / 3.0 + x * 0.25).tan().atan()
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn par_map_bit_identical_across_thread_counts(
        items in prop::collection::vec(-1e6f64..1e6, 0..300),
    ) {
        let serial: Vec<f64> = items.iter().map(|&x| knead(x)).collect();
        for threads in [1usize, 2, 8] {
            parallel::set_max_threads(threads);
            let par = parallel::par_map(&items, |&x| knead(x));
            parallel::set_max_threads(0);
            prop_assert_eq!(bits(&par), bits(&serial));
        }
    }

    #[test]
    fn par_map_indexed_bit_identical_across_thread_counts(
        n in 0usize..300,
        scale in -100.0f64..100.0,
    ) {
        let serial: Vec<f64> = (0..n).map(|i| knead(i as f64 * scale)).collect();
        for threads in [1usize, 2, 8] {
            parallel::set_max_threads(threads);
            let par = parallel::par_map_indexed(n, |i| knead(i as f64 * scale));
            parallel::set_max_threads(0);
            prop_assert_eq!(bits(&par), bits(&serial));
        }
    }

    #[test]
    fn try_par_map_error_selection_matches_serial(
        items in prop::collection::vec(0u8..4, 1..200),
    ) {
        // The serial loop fails at the first odd element; the parallel map
        // must surface the same (lowest-index) error at every thread count.
        let f = |&v: &u8| -> Result<u8, usize> { if v % 2 == 1 { Err(v as usize) } else { Ok(v * 2) } };
        let serial: Result<Vec<u8>, usize> = items.iter().map(f).collect();
        for threads in [1usize, 2, 8] {
            parallel::set_max_threads(threads);
            let par = parallel::try_par_map(&items, f);
            parallel::set_max_threads(0);
            prop_assert_eq!(&par, &serial);
        }
    }
}
