//! Property-based tests of simulator invariants: causality, monotonicity,
//! conservation, and fault-injection determinism.

use edgesim::cluster::Cluster;
use edgesim::faults::FaultSchedule;
use edgesim::node::NodeId;
use edgesim::run::{simulate, simulate_with_faults, NodeAssignment, SimConfig, SimTask};
use proptest::prelude::*;

fn workload() -> impl Strategy<Value = (Vec<SimTask>, NodeAssignment)> {
    prop::collection::vec((1e4f64..1e8, 0.0f64..1e5, prop::option::of(1usize..10)), 1..20).prop_map(
        |specs| {
            let tasks: Vec<SimTask> = specs
                .iter()
                .map(|&(bits, result, _)| SimTask::new(bits, result, 0.0).expect("valid ranges"))
                .collect();
            let mut assignment = NodeAssignment::empty(tasks.len());
            for (i, &(_, _, node)) in specs.iter().enumerate() {
                assignment.assign(i, node.map(NodeId));
            }
            (tasks, assignment)
        },
    )
}

fn config() -> SimConfig {
    SimConfig {
        partition_overhead_s: 0.01,
        decision_overhead_s: 0.01,
        enforce_capacity: false,
        ..SimConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn timelines_are_causal((tasks, assignment) in workload()) {
        let cluster = Cluster::paper_testbed().expect("testbed");
        let report = simulate(&cluster, &tasks, &assignment, config()).expect("simulate");
        for tl in report.timelines.iter().flatten() {
            prop_assert!(tl.transfer_start >= 0.01 - 1e-12, "starts before partition");
            prop_assert!(tl.transfer_start <= tl.compute_start);
            prop_assert!(tl.compute_start <= tl.compute_end);
            prop_assert!(tl.compute_end <= tl.result_at);
        }
        prop_assert!(report.processing_time >= report.makespan() - 1e-12);
    }

    #[test]
    fn scheduled_tasks_get_timelines((tasks, assignment) in workload()) {
        let cluster = Cluster::paper_testbed().expect("testbed");
        let report = simulate(&cluster, &tasks, &assignment, config()).expect("simulate");
        for (i, tl) in report.timelines.iter().enumerate() {
            prop_assert_eq!(tl.is_some(), assignment.node_of(i).is_some(), "task {}", i);
        }
    }

    #[test]
    fn more_bandwidth_never_hurts((tasks, assignment) in workload(), factor in 1.1f64..8.0) {
        let slow = Cluster::paper_testbed().expect("testbed");
        let mut fast = Cluster::paper_testbed().expect("testbed");
        fast.network_mut().expect("star testbed").scale_bandwidth(factor);
        let pt_slow =
            simulate(&slow, &tasks, &assignment, config()).expect("run").processing_time;
        let pt_fast =
            simulate(&fast, &tasks, &assignment, config()).expect("run").processing_time;
        prop_assert!(pt_fast <= pt_slow + 1e-9, "{pt_fast} > {pt_slow}");
    }

    #[test]
    fn removing_a_task_never_slows_the_round((tasks, assignment) in workload(),
                                             drop_idx in 0usize..20) {
        let cluster = Cluster::paper_testbed().expect("testbed");
        let full =
            simulate(&cluster, &tasks, &assignment, config()).expect("run").processing_time;
        let mut reduced = assignment.clone();
        let idx = drop_idx % tasks.len();
        reduced.assign(idx, None);
        let less =
            simulate(&cluster, &tasks, &reduced, config()).expect("run").processing_time;
        prop_assert!(less <= full + 1e-9, "dropping task {idx} raised PT: {less} > {full}");
    }

    #[test]
    fn empty_fault_schedule_matches_plain_simulate((tasks, assignment) in workload()) {
        let cluster = Cluster::paper_testbed().expect("testbed");
        let plain = simulate(&cluster, &tasks, &assignment, config()).expect("simulate");
        let faulty =
            simulate_with_faults(&cluster, &tasks, &assignment, config(), &FaultSchedule::new())
                .expect("fault run");
        prop_assert_eq!(
            plain.processing_time.to_bits(),
            faulty.processing_time.to_bits(),
            "PT diverged: {} vs {}", plain.processing_time, faulty.processing_time
        );
        prop_assert_eq!(&plain.timelines, &faulty.timelines);
        prop_assert_eq!(&plain.node_busy, &faulty.node_busy);
        prop_assert_eq!(&plain.link_busy, &faulty.link_busy);
        prop_assert!(faulty.failures.is_empty());
        prop_assert!(faulty.down_at_end.is_empty());
    }

    #[test]
    fn seeded_fault_runs_are_deterministic((tasks, assignment) in workload(),
                                           seed in 0u64..1000,
                                           crash_rate in 0.1f64..0.9,
                                           mttr in 0.0f64..2.0) {
        let cluster = Cluster::paper_testbed().expect("testbed");
        let workers: Vec<NodeId> = (1..=9).map(NodeId).collect();
        let schedule = FaultSchedule::seeded(seed, &workers, crash_rate, mttr, 5.0)
            .expect("valid schedule");
        prop_assume!(!schedule.is_empty());
        let a = simulate_with_faults(&cluster, &tasks, &assignment, config(), &schedule)
            .expect("fault run");
        let b = simulate_with_faults(&cluster, &tasks, &assignment, config(), &schedule)
            .expect("fault run");
        prop_assert_eq!(&a, &b, "same schedule produced different reports");
        // Every scheduled task is accounted for: delivered or failed.
        let scheduled = assignment.scheduled_count();
        prop_assert_eq!(a.completed_count() + a.failed_tasks().len(), scheduled);
        // Causality holds for delivered tasks.
        for tl in a.timelines.iter().flatten() {
            prop_assert!(tl.transfer_start <= tl.compute_start);
            prop_assert!(tl.compute_start <= tl.compute_end);
            prop_assert!(tl.compute_end <= tl.result_at);
        }
        prop_assert!(a.processing_time >= a.makespan() - 1e-12);
    }

    #[test]
    fn busy_time_conserved((tasks, assignment) in workload()) {
        let cluster = Cluster::paper_testbed().expect("testbed");
        let report = simulate(&cluster, &tasks, &assignment, config()).expect("simulate");
        // Total compute busy time equals the sum of scheduled tasks'
        // compute demands on their nodes.
        let expected: f64 = (0..tasks.len())
            .filter_map(|i| {
                assignment.node_of(i).map(|n| {
                    cluster.node(n).expect("node exists").compute_time(tasks[i].input_bits)
                })
            })
            .sum();
        let actual: f64 = report.node_busy.values().sum();
        prop_assert!((expected - actual).abs() < 1e-6, "{expected} vs {actual}");
    }
}

/// A round large enough to engage the per-node parallel fan-out inside
/// [`simulate`] (its serial-below-threshold guard sits at 256 scheduled
/// tasks), with varied sizes and every node in play.
fn big_workload(n: usize) -> (Vec<SimTask>, NodeAssignment) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0xFA57);
    let tasks: Vec<SimTask> = (0..n)
        .map(|_| SimTask::new(rng.gen_range(1e3..5e6), rng.gen_range(1e2..1e5), 0.0).unwrap())
        .collect();
    let mut assignment = NodeAssignment::empty(n);
    for i in 0..n {
        assignment.assign(i, Some(NodeId(i % 10)));
    }
    (tasks, assignment)
}

/// The parallel edgesim step and the fault engine must produce
/// byte-identical reports at threads 1, 2 and 8 — including under an
/// active fault schedule (crashes, link dropouts, stragglers).
#[test]
fn edgesim_step_bit_identical_across_thread_counts_under_faults() {
    let cluster = Cluster::paper_testbed().expect("testbed");
    let (tasks, assignment) = big_workload(512);
    let workers: Vec<NodeId> = (1..=9).map(NodeId).collect();
    let schedule = FaultSchedule::seeded(41, &workers, 0.6, 0.5, 5.0).expect("valid schedule");
    assert!(!schedule.is_empty(), "schedule must actually inject faults");

    let (healthy_ref, faulty_ref) = {
        let _t = parallel::ScopedThreads::new(1);
        (
            simulate(&cluster, &tasks, &assignment, config()).expect("simulate"),
            simulate_with_faults(&cluster, &tasks, &assignment, config(), &schedule)
                .expect("fault run"),
        )
    };
    assert!(
        !faulty_ref.failures.is_empty() || !faulty_ref.down_at_end.is_empty(),
        "faults should perturb a 512-task round"
    );
    for threads in [2usize, 8] {
        let _t = parallel::ScopedThreads::new(threads);
        let healthy = simulate(&cluster, &tasks, &assignment, config()).expect("simulate");
        assert_eq!(healthy, healthy_ref, "healthy step diverged at {threads} threads");
        assert_eq!(
            healthy.processing_time.to_bits(),
            healthy_ref.processing_time.to_bits(),
            "healthy PT bits diverged at {threads} threads"
        );
        let faulty = simulate_with_faults(&cluster, &tasks, &assignment, config(), &schedule)
            .expect("fault run");
        assert_eq!(faulty, faulty_ref, "fault run diverged at {threads} threads");
        assert_eq!(
            faulty.processing_time.to_bits(),
            faulty_ref.processing_time.to_bits(),
            "faulted PT bits diverged at {threads} threads"
        );
    }
}

/// The calendar queue must replay the `BinaryHeap` reference exactly —
/// same pop times (bitwise) and same payloads, including FIFO order among
/// same-timestamp ties — across random schedule/pop interleavings that
/// drive it through grow/shrink resizes and bucket-rotation fallbacks.
mod calendar_queue_equivalence {
    use edgesim::event::{CalendarQueue, EventQueue};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn calendar_matches_heap_on_random_interleavings(
            ops in prop::collection::vec((0u8..2, 0.0f64..50.0, 0usize..4), 1..300),
        ) {
            let mut cal: CalendarQueue<u32> = CalendarQueue::new();
            let mut heap: EventQueue<u32> = EventQueue::new();
            let mut next = 0u32;
            for (pop, dt, dup) in ops {
                if pop == 1 {
                    match (cal.pop_next(), heap.pop_next()) {
                        (Some((tc, vc)), Some((th, vh))) => {
                            prop_assert_eq!(tc.to_bits(), th.to_bits());
                            prop_assert_eq!(vc, vh);
                        }
                        (None, None) => {}
                        (c, h) => prop_assert!(false, "divergence: {:?} vs {:?}", c, h),
                    }
                } else {
                    // dup+1 events at one timestamp exercise the FIFO
                    // tie-break; the time base is whichever clock both
                    // queues share (they pop in lockstep).
                    let t = cal.now() + dt;
                    for _ in 0..=dup {
                        cal.schedule(t, next);
                        heap.schedule(t, next);
                        next += 1;
                    }
                }
            }
            loop {
                match (cal.pop_next(), heap.pop_next()) {
                    (Some((tc, vc)), Some((th, vh))) => {
                        prop_assert_eq!(tc.to_bits(), th.to_bits());
                        prop_assert_eq!(vc, vh);
                    }
                    (None, None) => break,
                    (c, h) => prop_assert!(false, "drain divergence: {:?} vs {:?}", c, h),
                }
            }
        }
    }
}

/// The mesh engine is single-threaded by construction, but the bit-identity
/// gate must hold through the public API at every thread count — healthy
/// and under an active fault schedule with crashes, dropouts (which force
/// re-routing) and stragglers.
#[test]
fn mesh_sim_bit_identical_across_thread_counts_under_faults() {
    use edgesim::cluster::MeshSpec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let cluster = Cluster::mesh_testbed(MeshSpec::new(100, 11)).expect("mesh testbed");
    let mut rng = StdRng::seed_from_u64(0x7E57);
    let tasks: Vec<SimTask> = (0..300)
        .map(|_| SimTask::new(rng.gen_range(1e3..5e6), rng.gen_range(1e2..1e5), 0.0).unwrap())
        .collect();
    let mut assignment = NodeAssignment::empty(300);
    for i in 0..300 {
        assignment.assign(i, Some(NodeId(1 + i % 99)));
    }
    let workers: Vec<NodeId> = (1..100).map(NodeId).collect();
    let schedule = FaultSchedule::seeded(41, &workers, 0.6, 0.5, 5.0).expect("valid schedule");
    assert!(!schedule.is_empty(), "schedule must actually inject faults");

    let (healthy_ref, faulty_ref) = {
        let _t = parallel::ScopedThreads::new(1);
        (
            simulate(&cluster, &tasks, &assignment, config()).expect("simulate"),
            simulate_with_faults(&cluster, &tasks, &assignment, config(), &schedule)
                .expect("fault run"),
        )
    };
    assert!(!faulty_ref.failures.is_empty(), "faults should perturb a 300-task mesh round");
    for threads in [2usize, 8] {
        let _t = parallel::ScopedThreads::new(threads);
        let healthy = simulate(&cluster, &tasks, &assignment, config()).expect("simulate");
        assert_eq!(healthy, healthy_ref, "healthy mesh run diverged at {threads} threads");
        let faulty = simulate_with_faults(&cluster, &tasks, &assignment, config(), &schedule)
            .expect("fault run");
        assert_eq!(faulty, faulty_ref, "faulted mesh run diverged at {threads} threads");
        assert_eq!(
            faulty.processing_time.to_bits(),
            faulty_ref.processing_time.to_bits(),
            "faulted mesh PT bits diverged at {threads} threads"
        );
    }
}
