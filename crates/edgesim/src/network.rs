//! Star-topology WiFi network model.
//!
//! All nodes hang off one access point next to the controller (Fig. 8).
//! Each node has its own link to the hub; a link carries one transfer at a
//! time (transfers to the same node serialise), which is how task input
//! shipping behaves in the paper's evaluation where transmission time is
//! "the main component of processing time" (§V-D).

use crate::node::NodeId;
use std::collections::HashMap;
use std::fmt;

/// How transfers contend for the wireless medium.
///
/// The default models one half-duplex link per node (transfers to
/// *different* nodes proceed in parallel). Real WiFi is a single shared
/// radio channel; [`MediumMode::SharedMedium`] serialises *all* transfers
/// through one medium, the pessimistic contention model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MediumMode {
    /// One independent half-duplex link per node.
    #[default]
    PerNodeLink,
    /// Every transfer in the star contends for one shared channel.
    SharedMedium,
}

/// Error returned by network configuration or queries.
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// Bandwidth must be positive and finite.
    BadBandwidth {
        /// Offending value (bits/second).
        bandwidth_bps: f64,
    },
    /// Latency must be non-negative and finite.
    BadLatency {
        /// Offending value (seconds).
        latency_s: f64,
    },
    /// The queried node has no link.
    UnknownNode {
        /// The missing node.
        node: NodeId,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::BadBandwidth { bandwidth_bps } => {
                write!(f, "bandwidth must be positive and finite, got {bandwidth_bps} bps")
            }
            NetworkError::BadLatency { latency_s } => {
                write!(f, "latency must be non-negative and finite, got {latency_s} s")
            }
            NetworkError::UnknownNode { node } => write!(f, "no link configured for {node}"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// One point-to-point link of the star.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    bandwidth_bps: f64,
    latency_s: f64,
}

impl Link {
    /// Creates a link.
    ///
    /// # Errors
    ///
    /// [`NetworkError::BadBandwidth`] / [`NetworkError::BadLatency`] on
    /// invalid parameters.
    pub fn new(bandwidth_bps: f64, latency_s: f64) -> Result<Self, NetworkError> {
        if !(bandwidth_bps.is_finite() && bandwidth_bps > 0.0) {
            return Err(NetworkError::BadBandwidth { bandwidth_bps });
        }
        if !(latency_s.is_finite() && latency_s >= 0.0) {
            return Err(NetworkError::BadLatency { latency_s });
        }
        Ok(Self { bandwidth_bps, latency_s })
    }

    /// Link bandwidth in bits per second.
    pub fn bandwidth_bps(&self) -> f64 {
        self.bandwidth_bps
    }

    /// One-way propagation latency in seconds.
    pub fn latency_s(&self) -> f64 {
        self.latency_s
    }

    /// Time to push `bits` across this link: latency + serialisation.
    pub fn transfer_time(&self, bits: f64) -> f64 {
        self.latency_s + bits.max(0.0) / self.bandwidth_bps
    }
}

/// The star network: hub (controller side) plus per-node links.
#[derive(Debug, Clone, PartialEq)]
pub struct StarNetwork {
    links: HashMap<NodeId, Link>,
    default_link: Link,
    medium: MediumMode,
}

impl StarNetwork {
    /// Creates a star where every node gets `default_link` unless
    /// overridden.
    pub fn new(default_link: Link) -> Self {
        Self { links: HashMap::new(), default_link, medium: MediumMode::default() }
    }

    /// Switches the contention model (see [`MediumMode`]).
    pub fn with_medium(mut self, medium: MediumMode) -> Self {
        self.medium = medium;
        self
    }

    /// The active contention model.
    pub fn medium(&self) -> MediumMode {
        self.medium
    }

    /// Switches the contention model in place.
    pub fn set_medium(&mut self, medium: MediumMode) {
        self.medium = medium;
    }

    /// Convenience: uniform WiFi star at `bandwidth_bps` with `latency_s`.
    ///
    /// # Errors
    ///
    /// Propagates [`Link::new`] validation.
    pub fn uniform(bandwidth_bps: f64, latency_s: f64) -> Result<Self, NetworkError> {
        Ok(Self::new(Link::new(bandwidth_bps, latency_s)?))
    }

    /// Overrides the link of one node.
    pub fn set_link(&mut self, node: NodeId, link: Link) {
        self.links.insert(node, link);
    }

    /// The link serving `node`.
    pub fn link(&self, node: NodeId) -> Link {
        self.links.get(&node).copied().unwrap_or(self.default_link)
    }

    /// Time to ship `bits` from the hub to `node` (or back — links are
    /// symmetric).
    pub fn transfer_time(&self, node: NodeId, bits: f64) -> f64 {
        self.link(node).transfer_time(bits)
    }

    /// Scales every link's bandwidth by `factor` (used by the Fig. 11
    /// bandwidth sweep).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn scale_bandwidth(&mut self, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0, "factor must be positive");
        self.default_link.bandwidth_bps *= factor;
        for link in self.links.values_mut() {
            link.bandwidth_bps *= factor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_validation() {
        assert!(matches!(Link::new(0.0, 0.0), Err(NetworkError::BadBandwidth { .. })));
        assert!(matches!(Link::new(-5.0, 0.0), Err(NetworkError::BadBandwidth { .. })));
        assert!(matches!(Link::new(1.0, -1.0), Err(NetworkError::BadLatency { .. })));
        assert!(matches!(Link::new(1.0, f64::INFINITY), Err(NetworkError::BadLatency { .. })));
        assert!(Link::new(1e6, 0.001).is_ok());
    }

    #[test]
    fn transfer_time_formula() {
        let link = Link::new(1e6, 0.01).unwrap();
        assert!((link.transfer_time(1e6) - 1.01).abs() < 1e-12);
        assert_eq!(link.transfer_time(0.0), 0.01);
        assert_eq!(link.transfer_time(-10.0), 0.01);
    }

    #[test]
    fn default_and_override_links() {
        let mut net = StarNetwork::uniform(1e6, 0.0).unwrap();
        let fast = Link::new(1e9, 0.0).unwrap();
        net.set_link(NodeId(3), fast);
        assert_eq!(net.link(NodeId(0)).bandwidth_bps(), 1e6);
        assert_eq!(net.link(NodeId(3)).bandwidth_bps(), 1e9);
        assert!(net.transfer_time(NodeId(3), 1e6) < net.transfer_time(NodeId(0), 1e6));
    }

    #[test]
    fn bandwidth_scaling_halves_time() {
        let mut net = StarNetwork::uniform(1e6, 0.0).unwrap();
        net.set_link(NodeId(1), Link::new(2e6, 0.0).unwrap());
        let before_default = net.transfer_time(NodeId(0), 1e6);
        let before_custom = net.transfer_time(NodeId(1), 1e6);
        net.scale_bandwidth(2.0);
        assert!((net.transfer_time(NodeId(0), 1e6) - before_default / 2.0).abs() < 1e-12);
        assert!((net.transfer_time(NodeId(1), 1e6) - before_custom / 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_scale_panics() {
        StarNetwork::uniform(1e6, 0.0).unwrap().scale_bandwidth(0.0);
    }
}
