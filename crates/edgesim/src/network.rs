//! Network topologies: the paper's WiFi star and general sparse meshes.
//!
//! [`StarNetwork`] is the paper's testbed (Fig. 8): all nodes hang off one
//! access point next to the controller, each with its own link to the hub;
//! a link carries one transfer at a time (transfers to the same node
//! serialise), which is how task input shipping behaves in the paper's
//! evaluation where transmission time is "the main component of processing
//! time" (§V-D).
//!
//! [`MeshNetwork`] generalises this to arbitrary sparse topologies: a
//! CSR-style adjacency over undirected edges with per-hop bandwidth and
//! latency tiers, plus deterministic shortest-path routing
//! ([`MeshNetwork::routes_from`]) computed once per link-state change. The
//! star is the degenerate mesh where every worker has exactly one edge to
//! the hub; [`crate::run`] keeps the star on its exclusive-FIFO link
//! semantics (byte-identical artefacts) and gives meshes a
//! proportional-share fluid-flow contention model.
//!
//! Both topologies keep `Vec`-indexed link storage — no `HashMap` on the
//! per-transfer hot path.

use crate::node::NodeId;
use std::fmt;

/// How transfers contend for the wireless medium.
///
/// The default models one half-duplex link per node (transfers to
/// *different* nodes proceed in parallel). Real WiFi is a single shared
/// radio channel; [`MediumMode::SharedMedium`] serialises *all* transfers
/// through one medium, the pessimistic contention model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MediumMode {
    /// One independent half-duplex link per node.
    #[default]
    PerNodeLink,
    /// Every transfer in the star contends for one shared channel.
    SharedMedium,
}

/// Error returned by network configuration or queries.
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// Bandwidth must be positive and finite.
    BadBandwidth {
        /// Offending value (bits/second).
        bandwidth_bps: f64,
    },
    /// Latency must be non-negative and finite.
    BadLatency {
        /// Offending value (seconds).
        latency_s: f64,
    },
    /// The queried node has no link.
    UnknownNode {
        /// The missing node.
        node: NodeId,
    },
    /// A mesh edge references a node outside `0..nodes` or is a self-loop.
    BadEdge {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
    /// The same undirected edge was added twice.
    DuplicateEdge {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::BadBandwidth { bandwidth_bps } => {
                write!(f, "bandwidth must be positive and finite, got {bandwidth_bps} bps")
            }
            NetworkError::BadLatency { latency_s } => {
                write!(f, "latency must be non-negative and finite, got {latency_s} s")
            }
            NetworkError::UnknownNode { node } => write!(f, "no link configured for {node}"),
            NetworkError::BadEdge { a, b } => {
                write!(f, "edge ({a}, {b}) is a self-loop or out of range")
            }
            NetworkError::DuplicateEdge { a, b } => {
                write!(f, "edge ({a}, {b}) was added twice")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// One point-to-point link of the star.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    bandwidth_bps: f64,
    latency_s: f64,
}

impl Link {
    /// Creates a link.
    ///
    /// # Errors
    ///
    /// [`NetworkError::BadBandwidth`] / [`NetworkError::BadLatency`] on
    /// invalid parameters.
    pub fn new(bandwidth_bps: f64, latency_s: f64) -> Result<Self, NetworkError> {
        if !(bandwidth_bps.is_finite() && bandwidth_bps > 0.0) {
            return Err(NetworkError::BadBandwidth { bandwidth_bps });
        }
        if !(latency_s.is_finite() && latency_s >= 0.0) {
            return Err(NetworkError::BadLatency { latency_s });
        }
        Ok(Self { bandwidth_bps, latency_s })
    }

    /// Link bandwidth in bits per second.
    pub fn bandwidth_bps(&self) -> f64 {
        self.bandwidth_bps
    }

    /// One-way propagation latency in seconds.
    pub fn latency_s(&self) -> f64 {
        self.latency_s
    }

    /// Time to push `bits` across this link: latency + serialisation.
    pub fn transfer_time(&self, bits: f64) -> f64 {
        self.latency_s + bits.max(0.0) / self.bandwidth_bps
    }
}

/// The star network: hub (controller side) plus per-node links.
///
/// Link overrides live in a dense `Vec` indexed by `NodeId.0` (the same
/// storage discipline the mesh uses), so the per-transfer lookup is an
/// array read instead of a hash — node ids are expected to be small and
/// dense, as every [`crate::cluster::Cluster`] constructor guarantees.
#[derive(Debug, Clone, PartialEq)]
pub struct StarNetwork {
    links: Vec<Option<Link>>,
    default_link: Link,
    medium: MediumMode,
}

impl StarNetwork {
    /// Creates a star where every node gets `default_link` unless
    /// overridden.
    pub fn new(default_link: Link) -> Self {
        Self { links: Vec::new(), default_link, medium: MediumMode::default() }
    }

    /// Switches the contention model (see [`MediumMode`]).
    pub fn with_medium(mut self, medium: MediumMode) -> Self {
        self.medium = medium;
        self
    }

    /// The active contention model.
    pub fn medium(&self) -> MediumMode {
        self.medium
    }

    /// Switches the contention model in place.
    pub fn set_medium(&mut self, medium: MediumMode) {
        self.medium = medium;
    }

    /// Convenience: uniform WiFi star at `bandwidth_bps` with `latency_s`.
    ///
    /// # Errors
    ///
    /// Propagates [`Link::new`] validation.
    pub fn uniform(bandwidth_bps: f64, latency_s: f64) -> Result<Self, NetworkError> {
        Ok(Self::new(Link::new(bandwidth_bps, latency_s)?))
    }

    /// Overrides the link of one node.
    pub fn set_link(&mut self, node: NodeId, link: Link) {
        if node.0 >= self.links.len() {
            self.links.resize(node.0 + 1, None);
        }
        self.links[node.0] = Some(link);
    }

    /// The link serving `node`.
    pub fn link(&self, node: NodeId) -> Link {
        self.links.get(node.0).copied().flatten().unwrap_or(self.default_link)
    }

    /// Time to ship `bits` from the hub to `node` (or back — links are
    /// symmetric).
    pub fn transfer_time(&self, node: NodeId, bits: f64) -> f64 {
        self.link(node).transfer_time(bits)
    }

    /// Scales every link's bandwidth by `factor` (used by the Fig. 11
    /// bandwidth sweep).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn scale_bandwidth(&mut self, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0, "factor must be positive");
        self.default_link.bandwidth_bps *= factor;
        for link in self.links.iter_mut().flatten() {
            link.bandwidth_bps *= factor;
        }
    }
}

/// Reference transfer size (bits) folded into the routing metric so that a
/// hop's weight reflects both its latency and its serialisation speed:
/// `weight = latency_s + ROUTE_REF_BITS / bandwidth_bps`. One megabit is
/// the order of the paper's task inputs.
pub const ROUTE_REF_BITS: f64 = 1e6;

/// Sentinel for "no predecessor" in [`Routes`].
const NO_PREV: usize = usize::MAX;

/// Builder for a [`MeshNetwork`]; collects undirected edges, validates,
/// then freezes into CSR form.
#[derive(Debug, Clone)]
pub struct MeshBuilder {
    nodes: usize,
    edges: Vec<(usize, usize, Link)>,
}

impl MeshBuilder {
    /// Adds an undirected edge between nodes `a` and `b`.
    ///
    /// # Errors
    ///
    /// [`NetworkError::BadEdge`] on a self-loop or out-of-range endpoint,
    /// [`NetworkError::DuplicateEdge`] when `{a, b}` was already added.
    pub fn add_edge(&mut self, a: usize, b: usize, link: Link) -> Result<&mut Self, NetworkError> {
        if a == b || a >= self.nodes || b >= self.nodes {
            return Err(NetworkError::BadEdge { a, b });
        }
        if self.edges.iter().any(|&(x, y, _)| (x, y) == (a.min(b), a.max(b))) {
            return Err(NetworkError::DuplicateEdge { a, b });
        }
        self.edges.push((a.min(b), a.max(b), link));
        Ok(self)
    }

    /// Freezes the builder into a [`MeshNetwork`]. Edge ids are assigned
    /// in insertion order, so identical build sequences produce identical
    /// meshes.
    pub fn build(self) -> MeshNetwork {
        let nodes = self.nodes;
        let mut row_ptr = vec![0usize; nodes + 1];
        for &(a, b, _) in &self.edges {
            row_ptr[a + 1] += 1;
            row_ptr[b + 1] += 1;
        }
        for i in 0..nodes {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut cursor = row_ptr.clone();
        let mut adj_node = vec![0usize; self.edges.len() * 2];
        let mut adj_edge = vec![0usize; self.edges.len() * 2];
        let mut endpoints = Vec::with_capacity(self.edges.len());
        let mut links = Vec::with_capacity(self.edges.len());
        for (id, &(a, b, link)) in self.edges.iter().enumerate() {
            adj_node[cursor[a]] = b;
            adj_edge[cursor[a]] = id;
            cursor[a] += 1;
            adj_node[cursor[b]] = a;
            adj_edge[cursor[b]] = id;
            cursor[b] += 1;
            endpoints.push((a, b));
            links.push(link);
        }
        MeshNetwork { nodes, row_ptr, adj_node, adj_edge, endpoints, links }
    }
}

/// A sparse undirected mesh in CSR form: per-edge bandwidth/latency tiers,
/// dense `Vec` storage throughout (edge and node ids index arrays — no
/// hashing on the hot path).
///
/// Node ids are the dense range `0..nodes`; an edge's capacity is shared
/// by transfers in both directions. Routing is static per link state:
/// [`Self::routes_from`] runs a deterministic Dijkstra (weight
/// `latency + ROUTE_REF_BITS / bandwidth`, ties broken toward the
/// lower-numbered node) and is recomputed only when an edge goes down or
/// comes back.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshNetwork {
    nodes: usize,
    row_ptr: Vec<usize>,
    adj_node: Vec<usize>,
    adj_edge: Vec<usize>,
    endpoints: Vec<(usize, usize)>,
    links: Vec<Link>,
}

impl MeshNetwork {
    /// Starts building a mesh over nodes `0..nodes`.
    pub fn builder(nodes: usize) -> MeshBuilder {
        MeshBuilder { nodes, edges: Vec::new() }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.links.len()
    }

    /// The link parameters of edge `e`.
    pub fn link(&self, e: usize) -> Link {
        self.links[e]
    }

    /// The `(lower, higher)` endpoints of edge `e`.
    pub fn endpoints(&self, e: usize) -> (usize, usize) {
        self.endpoints[e]
    }

    /// Neighbours of `v` as `(neighbour, edge id)`, in CSR order.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        (self.row_ptr[v]..self.row_ptr[v + 1]).map(|s| (self.adj_node[s], self.adj_edge[s]))
    }

    /// Scales every edge's bandwidth by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn scale_bandwidth(&mut self, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0, "factor must be positive");
        for link in &mut self.links {
            link.bandwidth_bps *= factor;
        }
    }

    /// Shortest-path routes from `src` to every node, skipping edges
    /// flagged in `down` (indexed by edge id; an empty slice means all
    /// edges are up).
    ///
    /// Deterministic: the frontier orders by `(distance, node id)` and
    /// relaxation takes strict improvements only, so equal-cost paths
    /// resolve identically on every run.
    pub fn routes_from(&self, src: usize, down: &[bool]) -> Routes {
        assert!(src < self.nodes, "route source {src} out of range");
        let mut dist = vec![f64::INFINITY; self.nodes];
        let mut prev = vec![NO_PREV; self.nodes];
        let mut prev_edge = vec![NO_PREV; self.nodes];
        let mut done = vec![false; self.nodes];
        // Non-negative finite f64s order the same as their bit patterns,
        // so (dist.to_bits(), node) in a min-heap is a deterministic
        // frontier without any float-ordering wrapper.
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>> =
            std::collections::BinaryHeap::new();
        dist[src] = 0.0;
        heap.push(std::cmp::Reverse((0u64, src)));
        while let Some(std::cmp::Reverse((_, v))) = heap.pop() {
            if done[v] {
                continue;
            }
            done[v] = true;
            for (u, e) in self.neighbors(v) {
                if done[u] || down.get(e).copied().unwrap_or(false) {
                    continue;
                }
                let link = self.links[e];
                let nd = dist[v] + link.latency_s + ROUTE_REF_BITS / link.bandwidth_bps;
                if nd < dist[u] {
                    dist[u] = nd;
                    prev[u] = v;
                    prev_edge[u] = e;
                    heap.push(std::cmp::Reverse((nd.to_bits(), u)));
                }
            }
        }
        Routes { src, dist, prev, prev_edge }
    }

    /// Sum of one-way latencies along the route to `v` (0 for `src`).
    pub fn path_latency(&self, routes: &Routes, v: usize) -> f64 {
        let mut total = 0.0;
        let mut at = v;
        while at != routes.src {
            let e = routes.prev_edge[at];
            assert_ne!(e, NO_PREV, "node {at} is unreachable");
            total += self.links[e].latency_s;
            at = routes.prev[at];
        }
        total
    }

    /// Uncontended end-to-end time to ship `bits` to `v`: path latency
    /// plus serialisation at the route's bottleneck bandwidth. This is the
    /// mesh analogue of [`StarNetwork::transfer_time`], used for nominal
    /// processing-time estimates (retry timeouts).
    pub fn nominal_transfer_time(&self, routes: &Routes, v: usize, bits: f64) -> f64 {
        if v == routes.src {
            return 0.0;
        }
        let mut latency = 0.0;
        let mut bottleneck = f64::INFINITY;
        let mut at = v;
        while at != routes.src {
            let e = routes.prev_edge[at];
            assert_ne!(e, NO_PREV, "node {at} is unreachable");
            latency += self.links[e].latency_s;
            bottleneck = bottleneck.min(self.links[e].bandwidth_bps);
            at = routes.prev[at];
        }
        latency + bits.max(0.0) / bottleneck
    }
}

/// Shortest-path tree from one source over a [`MeshNetwork`], produced by
/// [`MeshNetwork::routes_from`].
#[derive(Debug, Clone, PartialEq)]
pub struct Routes {
    src: usize,
    dist: Vec<f64>,
    prev: Vec<usize>,
    prev_edge: Vec<usize>,
}

impl Routes {
    /// The route source.
    pub fn src(&self) -> usize {
        self.src
    }

    /// `true` when `v` has a live route from the source.
    pub fn reachable(&self, v: usize) -> bool {
        self.dist[v].is_finite()
    }

    /// Routing metric distance to `v` (infinite when unreachable).
    pub fn dist(&self, v: usize) -> f64 {
        self.dist[v]
    }

    /// Edge ids along the route source → `v`, in traversal order.
    /// Empty for the source itself.
    ///
    /// # Panics
    ///
    /// Panics when `v` is unreachable.
    pub fn path_edges(&self, v: usize) -> Vec<usize> {
        let mut edges = Vec::new();
        let mut at = v;
        while at != self.src {
            let e = self.prev_edge[at];
            assert_ne!(e, NO_PREV, "node {at} is unreachable");
            edges.push(e);
            at = self.prev[at];
        }
        edges.reverse();
        edges
    }

    /// The last edge on the route to `v` — the hop adjacent to `v`, i.e.
    /// its uplink. `None` when `v` is the source or unreachable.
    pub fn uplink_edge(&self, v: usize) -> Option<usize> {
        (self.prev_edge[v] != NO_PREV).then_some(self.prev_edge[v])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_validation() {
        assert!(matches!(Link::new(0.0, 0.0), Err(NetworkError::BadBandwidth { .. })));
        assert!(matches!(Link::new(-5.0, 0.0), Err(NetworkError::BadBandwidth { .. })));
        assert!(matches!(Link::new(1.0, -1.0), Err(NetworkError::BadLatency { .. })));
        assert!(matches!(Link::new(1.0, f64::INFINITY), Err(NetworkError::BadLatency { .. })));
        assert!(Link::new(1e6, 0.001).is_ok());
    }

    #[test]
    fn transfer_time_formula() {
        let link = Link::new(1e6, 0.01).unwrap();
        assert!((link.transfer_time(1e6) - 1.01).abs() < 1e-12);
        assert_eq!(link.transfer_time(0.0), 0.01);
        assert_eq!(link.transfer_time(-10.0), 0.01);
    }

    #[test]
    fn default_and_override_links() {
        let mut net = StarNetwork::uniform(1e6, 0.0).unwrap();
        let fast = Link::new(1e9, 0.0).unwrap();
        net.set_link(NodeId(3), fast);
        assert_eq!(net.link(NodeId(0)).bandwidth_bps(), 1e6);
        assert_eq!(net.link(NodeId(3)).bandwidth_bps(), 1e9);
        assert!(net.transfer_time(NodeId(3), 1e6) < net.transfer_time(NodeId(0), 1e6));
    }

    #[test]
    fn bandwidth_scaling_halves_time() {
        let mut net = StarNetwork::uniform(1e6, 0.0).unwrap();
        net.set_link(NodeId(1), Link::new(2e6, 0.0).unwrap());
        let before_default = net.transfer_time(NodeId(0), 1e6);
        let before_custom = net.transfer_time(NodeId(1), 1e6);
        net.scale_bandwidth(2.0);
        assert!((net.transfer_time(NodeId(0), 1e6) - before_default / 2.0).abs() < 1e-12);
        assert!((net.transfer_time(NodeId(1), 1e6) - before_custom / 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_scale_panics() {
        StarNetwork::uniform(1e6, 0.0).unwrap().scale_bandwidth(0.0);
    }

    /// 0 —fast— 1 —fast— 2, plus a slow direct 0–2 edge: routing must take
    /// the two-hop fast path.
    fn diamond() -> MeshNetwork {
        let fast = Link::new(1e8, 1e-4).unwrap();
        let slow = Link::new(1e5, 1e-4).unwrap();
        let mut b = MeshNetwork::builder(3);
        b.add_edge(0, 1, fast).unwrap();
        b.add_edge(1, 2, fast).unwrap();
        b.add_edge(0, 2, slow).unwrap();
        b.build()
    }

    #[test]
    fn mesh_builder_validation() {
        let link = Link::new(1e6, 0.0).unwrap();
        let mut b = MeshNetwork::builder(2);
        assert!(matches!(b.add_edge(0, 0, link), Err(NetworkError::BadEdge { .. })));
        assert!(matches!(b.add_edge(0, 5, link), Err(NetworkError::BadEdge { .. })));
        b.add_edge(0, 1, link).unwrap();
        assert!(matches!(b.add_edge(1, 0, link), Err(NetworkError::DuplicateEdge { .. })));
    }

    #[test]
    fn mesh_routes_prefer_fast_multihop() {
        let mesh = diamond();
        let routes = mesh.routes_from(0, &[]);
        assert_eq!(routes.path_edges(2), vec![0, 1]);
        assert_eq!(routes.uplink_edge(2), Some(1));
        assert_eq!(routes.path_edges(0), Vec::<usize>::new());
        // Two fast hops: 2 × (1e-4 + 1e6/1e8) < one slow hop's 1e6/1e5.
        assert!((routes.dist(2) - 2.0 * (1e-4 + 1e6 / 1e8)).abs() < 1e-12);
    }

    #[test]
    fn mesh_reroutes_around_down_edge() {
        let mesh = diamond();
        let mut down = vec![false; mesh.num_edges()];
        down[1] = true; // kill fast hop 1–2
        let routes = mesh.routes_from(0, &down);
        assert_eq!(routes.path_edges(2), vec![2]); // falls back to slow direct
        down[2] = true; // kill the fallback too
        let routes = mesh.routes_from(0, &down);
        assert!(!routes.reachable(2));
        assert!(routes.reachable(1));
    }

    #[test]
    fn mesh_nominal_transfer_uses_bottleneck() {
        let mesh = diamond();
        let routes = mesh.routes_from(0, &[]);
        // Route 0→2 is two fast hops: latency 2e-4, bottleneck 1e8.
        let t = mesh.nominal_transfer_time(&routes, 2, 1e8);
        assert!((t - (2e-4 + 1.0)).abs() < 1e-12);
        assert_eq!(mesh.nominal_transfer_time(&routes, 0, 1e8), 0.0);
        assert!((mesh.path_latency(&routes, 2) - 2e-4).abs() < 1e-15);
    }

    #[test]
    fn mesh_routing_ties_are_deterministic() {
        // Square 0-1-3 / 0-2-3 with identical links: both routes to 3 cost
        // the same; the tie must resolve the same way every time.
        let link = Link::new(1e6, 1e-3).unwrap();
        let build = || {
            let mut b = MeshNetwork::builder(4);
            b.add_edge(0, 1, link).unwrap();
            b.add_edge(0, 2, link).unwrap();
            b.add_edge(1, 3, link).unwrap();
            b.add_edge(2, 3, link).unwrap();
            b.build()
        };
        let p1 = build().routes_from(0, &[]).path_edges(3);
        let p2 = build().routes_from(0, &[]).path_edges(3);
        assert_eq!(p1, p2);
    }

    #[test]
    fn star_as_degenerate_mesh_matches_star_times() {
        // A hub-and-spoke mesh reproduces StarNetwork's uncontended
        // transfer times exactly.
        let star = StarNetwork::uniform(6e6, 1e-3).unwrap();
        let spoke = Link::new(6e6, 1e-3).unwrap();
        let mut b = MeshNetwork::builder(5);
        for w in 1..5 {
            b.add_edge(0, w, spoke).unwrap();
        }
        let mesh = b.build();
        let routes = mesh.routes_from(0, &[]);
        for w in 1..5 {
            let bits = 1.5e6;
            assert_eq!(
                mesh.nominal_transfer_time(&routes, w, bits),
                star.transfer_time(NodeId(w), bits),
            );
        }
    }
}
