//! Executing an allocation on the simulated cluster.
//!
//! The evaluation metric is the paper's **processing time** `PT = t_s − t_c`
//! (§V-C): from experiment start (`t_c`) to the instant the industry
//! decision is made (`t_s`). The simulated timeline of one round is:
//!
//! 1. the controller partitions the application (`partition_overhead_s`);
//! 2. each allocated task's input ships over the worker's star link
//!    (links are half-duplex FIFO: inputs and results serialise);
//! 3. the worker computes (non-preemptive FIFO per node);
//! 4. the (small) result ships back;
//! 5. once every allocated task's result has arrived, the controller
//!    aggregates the decision (`decision_overhead_s`).
//!
//! Tasks allocated to the controller itself skip the network.

use crate::cluster::{Cluster, NetTopology};
use crate::event::CalendarQueue;
use crate::faults::{FaultKind, FaultSchedule};
use crate::network::{MediumMode, MeshNetwork, Routes};
use crate::node::NodeId;
use crate::trace::{FailureKind, FailureRecord};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// A task as the simulator sees it: pure demands, no learning semantics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTask {
    /// Input payload shipped to the worker, in bits.
    pub input_bits: f64,
    /// Result payload shipped back, in bits.
    pub result_bits: f64,
    /// Abstract resource demand (`v_j` of Eq. 4) — checked, not timed.
    pub resource_demand: f64,
}

impl SimTask {
    /// Creates a task, validating non-negative finite demands.
    ///
    /// # Errors
    ///
    /// [`SimError::BadTask`] on invalid values.
    pub fn new(input_bits: f64, result_bits: f64, resource_demand: f64) -> Result<Self, SimError> {
        let ok = |v: f64| v.is_finite() && v >= 0.0;
        if !(ok(input_bits) && ok(result_bits) && ok(resource_demand)) {
            return Err(SimError::BadTask { input_bits, result_bits, resource_demand });
        }
        Ok(Self { input_bits, result_bits, resource_demand })
    }
}

/// Maps each task to a worker (or leaves it unscheduled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeAssignment {
    assignment: Vec<Option<NodeId>>,
}

impl NodeAssignment {
    /// All tasks unscheduled.
    pub fn empty(num_tasks: usize) -> Self {
        Self { assignment: vec![None; num_tasks] }
    }

    /// Builds from an explicit vector.
    pub fn from_vec(assignment: Vec<Option<NodeId>>) -> Self {
        Self { assignment }
    }

    /// Number of tasks covered.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// `true` when covering zero tasks.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Node of task `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn node_of(&self, i: usize) -> Option<NodeId> {
        self.assignment[i]
    }

    /// Assigns task `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn assign(&mut self, i: usize, node: Option<NodeId>) {
        self.assignment[i] = node;
    }

    /// Number of scheduled tasks.
    pub fn scheduled_count(&self) -> usize {
        self.assignment.iter().filter(|a| a.is_some()).count()
    }
}

/// Controller-side retry policy for fault-aware runs
/// ([`simulate_with_faults`]); plain [`simulate`] ignores it.
///
/// The controller cannot observe a crash directly — it learns of lost work
/// when a per-attempt heartbeat timeout fires. Each dispatched attempt arms
/// a timer of `timeout_factor ×` the attempt's nominal processing time
/// (input transfer + compute + result return at advertised rates, floored
/// by `min_timeout_s`); a timer firing on a healthy in-flight attempt
/// simply re-arms, so fault-free runs are untouched. A timer firing on a
/// dead attempt triggers re-dispatch after an exponential backoff
/// (`backoff_base_s × 2^(attempt−1)`), up to `max_retries` retries.
///
/// Re-dispatch target selection is fully deterministic: candidates are
/// ranked by availability preference score when one is supplied
/// ([`simulate_with_faults_biased`]), then by least cumulative dispatched
/// nominal compute-seconds, and remaining ties break by **ascending node
/// id** — so recovery-policy comparisons are never confounded by tie
/// order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Heartbeat timeout as a multiple of the attempt's nominal PT.
    pub timeout_factor: f64,
    /// Re-dispatches allowed after the first attempt (0 = fail on first
    /// loss).
    pub max_retries: usize,
    /// Backoff before the first re-dispatch; doubles on each further retry.
    pub backoff_base_s: f64,
    /// Floor on the heartbeat timeout (guards zero-cost tasks; must be
    /// positive).
    pub min_timeout_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { timeout_factor: 3.0, max_retries: 2, backoff_base_s: 0.05, min_timeout_s: 0.05 }
    }
}

impl RetryPolicy {
    /// A policy that never re-dispatches: first loss fails the task. Used
    /// as the no-recovery baseline in the fault sweep.
    pub fn no_retry() -> Self {
        Self { max_retries: 0, ..Self::default() }
    }

    fn validate(&self) -> Result<(), SimError> {
        let ok = self.timeout_factor.is_finite()
            && self.timeout_factor >= 0.0
            && self.backoff_base_s.is_finite()
            && self.backoff_base_s >= 0.0
            && self.min_timeout_s.is_finite()
            && self.min_timeout_s > 0.0;
        if ok {
            Ok(())
        } else {
            Err(SimError::BadRetryPolicy {
                timeout_factor: self.timeout_factor,
                backoff_base_s: self.backoff_base_s,
                min_timeout_s: self.min_timeout_s,
            })
        }
    }
}

/// Controller-side preference scores for re-dispatch target selection:
/// when an orphaned attempt must be re-placed, candidates with a strictly
/// higher score win before the least-loaded rule applies (score ties fall
/// back to load, then ascending node id). The proactive controller feeds
/// learned per-node survival probabilities here so orphans land on the
/// most-available node rather than merely the least-loaded one. An empty
/// preference set reproduces [`simulate_with_faults`] exactly.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RedispatchPrefs {
    /// Score per node id (`scores[id]`); nodes beyond the vector score 0.
    scores: Vec<f64>,
}

impl RedispatchPrefs {
    /// No preferences: selection is purely least-loaded (lowest id ties).
    pub fn none() -> Self {
        Self::default()
    }

    /// Preference scores indexed by node id. Non-finite scores are
    /// rejected at [`simulate_with_faults_biased`] validation.
    pub fn from_scores(scores: Vec<f64>) -> Self {
        Self { scores }
    }

    /// The score of `node` (0 when unknown).
    pub fn score_of(&self, node: NodeId) -> f64 {
        self.scores.get(node.0).copied().unwrap_or(0.0)
    }

    /// Whether any score is set.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    fn validate(&self) -> Result<(), SimError> {
        if self.scores.iter().all(|s| s.is_finite()) {
            Ok(())
        } else {
            Err(SimError::BadRedispatchPrefs)
        }
    }
}

/// Fixed overheads of one allocation round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Time the controller spends partitioning the application.
    pub partition_overhead_s: f64,
    /// Time the controller spends aggregating the final decision.
    pub decision_overhead_s: f64,
    /// When `true`, a task whose resource demand exceeds its node's
    /// remaining capacity is an error; when `false` it is silently allowed
    /// (useful for what-if sweeps).
    pub enforce_capacity: bool,
    /// Timeout/retry policy for fault-aware runs; ignored by [`simulate`].
    pub retry: RetryPolicy,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            partition_overhead_s: 0.05,
            decision_overhead_s: 0.02,
            enforce_capacity: true,
            retry: RetryPolicy::default(),
        }
    }
}

/// Error raised by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Invalid task parameters.
    BadTask {
        /// Offending input size.
        input_bits: f64,
        /// Offending result size.
        result_bits: f64,
        /// Offending resource demand.
        resource_demand: f64,
    },
    /// Assignment length differs from the task list.
    LengthMismatch {
        /// Tasks supplied.
        tasks: usize,
        /// Assignment entries supplied.
        assignments: usize,
    },
    /// A task was assigned to a node that is not in the cluster.
    UnknownNode {
        /// Task index.
        task: usize,
        /// The missing node.
        node: NodeId,
    },
    /// Aggregate resource demand on a node exceeded its capacity.
    OverCapacity {
        /// The overloaded node.
        node: NodeId,
        /// Aggregate demand placed on it.
        demand: f64,
        /// Its capacity.
        capacity: f64,
    },
    /// A fault schedule targets a node that is not in the cluster.
    UnknownFaultNode {
        /// The missing node.
        node: NodeId,
    },
    /// A fault schedule targets the controller, which cannot fail (it hosts
    /// the retry/recovery logic itself).
    ControllerFault {
        /// The controller node.
        node: NodeId,
    },
    /// A task was assigned to a mesh node with no route from the
    /// controller (the mesh is disconnected there).
    UnreachableNode {
        /// Task index.
        task: usize,
        /// The unreachable node.
        node: NodeId,
    },
    /// A [`RedispatchPrefs`] score is non-finite.
    BadRedispatchPrefs,
    /// Invalid [`RetryPolicy`] parameters.
    BadRetryPolicy {
        /// Offending timeout factor.
        timeout_factor: f64,
        /// Offending backoff base.
        backoff_base_s: f64,
        /// Offending timeout floor.
        min_timeout_s: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadTask { input_bits, result_bits, resource_demand } => write!(
                f,
                "invalid task (input {input_bits} bits, result {result_bits} bits, resource {resource_demand})"
            ),
            SimError::LengthMismatch { tasks, assignments } => {
                write!(f, "{tasks} tasks but {assignments} assignment entries")
            }
            SimError::UnknownNode { task, node } => {
                write!(f, "task {task} assigned to unknown {node}")
            }
            SimError::OverCapacity { node, demand, capacity } => {
                write!(f, "{node} overloaded: demand {demand} > capacity {capacity}")
            }
            SimError::UnknownFaultNode { node } => {
                write!(f, "fault schedule targets unknown {node}")
            }
            SimError::ControllerFault { node } => {
                write!(f, "fault schedule targets the controller {node}")
            }
            SimError::UnreachableNode { task, node } => {
                write!(f, "task {task} assigned to {node}, which has no route from the controller")
            }
            SimError::BadRedispatchPrefs => {
                write!(f, "redispatch preference scores must be finite")
            }
            SimError::BadRetryPolicy { timeout_factor, backoff_base_s, min_timeout_s } => write!(
                f,
                "invalid retry policy (timeout_factor {timeout_factor}, backoff {backoff_base_s}, min timeout {min_timeout_s})"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Timeline of one task's journey through the pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskTimeline {
    /// Node that executed the task.
    pub node: NodeId,
    /// When the input transfer began.
    pub transfer_start: f64,
    /// When the input landed on the worker.
    pub compute_start: f64,
    /// When computation finished.
    pub compute_end: f64,
    /// When the result arrived back at the controller.
    pub result_at: f64,
}

/// Result of simulating one allocation round.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// The paper's PT metric: time from round start to decision.
    pub processing_time: f64,
    /// Per-task timelines, `None` for unscheduled tasks.
    pub timelines: Vec<Option<TaskTimeline>>,
    /// Total busy compute seconds per node.
    pub node_busy: HashMap<NodeId, f64>,
    /// Total busy link seconds per node.
    pub link_busy: HashMap<NodeId, f64>,
}

impl SimReport {
    /// Completion time of the latest task, before decision overhead; equals
    /// partition overhead when nothing was scheduled.
    pub fn makespan(&self) -> f64 {
        self.timelines.iter().flatten().map(|t| t.result_at).fold(0.0, f64::max)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Input transfer finished for task.
    InputArrived(usize),
    /// Compute finished for task.
    ComputeDone(usize),
    /// Result transfer finished for task.
    ResultArrived(usize),
}

/// Validates an assignment against the cluster: matching length, every
/// target node present, and (when `config.enforce_capacity`) aggregate
/// resource demand within each node's capacity. Shared by [`simulate`] and
/// [`simulate_with_faults`] so both reject bad input with the same typed
/// errors instead of trusting the caller.
///
/// # Errors
///
/// [`SimError::LengthMismatch`], [`SimError::UnknownNode`] or
/// [`SimError::OverCapacity`].
pub fn validate_assignment(
    cluster: &Cluster,
    tasks: &[SimTask],
    assignment: &NodeAssignment,
    config: SimConfig,
) -> Result<(), SimError> {
    if tasks.len() != assignment.len() {
        return Err(SimError::LengthMismatch { tasks: tasks.len(), assignments: assignment.len() });
    }
    let mut demand: HashMap<NodeId, f64> = HashMap::new();
    for i in 0..tasks.len() {
        if let Some(node) = assignment.node_of(i) {
            if cluster.node(node).is_none() {
                return Err(SimError::UnknownNode { task: i, node });
            }
            *demand.entry(node).or_insert(0.0) += tasks[i].resource_demand;
        }
    }
    if config.enforce_capacity {
        for (&node, &d) in &demand {
            let capacity = cluster.node(node).expect("validated above").capacity();
            if d > capacity + 1e-9 {
                return Err(SimError::OverCapacity { node, demand: d, capacity });
            }
        }
    }
    Ok(())
}

/// Scheduled-task threshold below which [`simulate`] keeps the global
/// event loop even in per-node-link mode: the paper-scale rounds (tens of
/// tasks) finish in microseconds, where thread spawn/join would dominate.
/// At or above it, the independent per-node transmission/compute legs fan
/// out across `dcta-parallel` workers. Both paths produce bit-identical
/// reports (gated by the parity tests below), so the threshold only
/// changes how the work runs, never the result.
const PAR_MIN_SCHEDULED: usize = 256;

/// Simulates one allocation round.
///
/// On a star cluster in [`MediumMode::PerNodeLink`] mode the nodes'
/// timelines are mutually independent — each star link and CPU is touched
/// only by its own node's tasks — so large rounds are computed per node in
/// parallel (ordered assembly, bit-identical at every thread count); small
/// rounds and [`MediumMode::SharedMedium`] (where every transfer
/// serialises through one channel) run the global discrete-event loop.
///
/// On a mesh cluster the round runs the proportional-share fluid-flow
/// engine (see [`simulate_with_faults`]) with an empty fault schedule; the
/// engine is single-threaded, so thread-count invariance is structural.
///
/// # Errors
///
/// See [`SimError`] variants.
pub fn simulate(
    cluster: &Cluster,
    tasks: &[SimTask],
    assignment: &NodeAssignment,
    config: SimConfig,
) -> Result<SimReport, SimError> {
    validate_assignment(cluster, tasks, assignment, config)?;
    match cluster.topology() {
        NetTopology::Mesh(mesh) => {
            config.retry.validate()?;
            validate_reachable(mesh, cluster, tasks, assignment)?;
            let report = MeshSim::new(cluster, mesh, tasks, config, RedispatchPrefs::none())
                .run(assignment, &FaultSchedule::new());
            Ok(report.to_sim_report())
        }
        NetTopology::Star(net) => {
            if matches!(net.medium(), MediumMode::PerNodeLink)
                && assignment.scheduled_count() >= PAR_MIN_SCHEDULED
            {
                return Ok(simulate_per_node(cluster, tasks, assignment, config));
            }
            Ok(simulate_event_loop(cluster, tasks, assignment, config))
        }
    }
}

/// Rejects assignments that target mesh nodes with no route from the
/// controller on the healthy (all edges up) topology.
fn validate_reachable(
    mesh: &MeshNetwork,
    cluster: &Cluster,
    tasks: &[SimTask],
    assignment: &NodeAssignment,
) -> Result<(), SimError> {
    let routes = mesh.routes_from(cluster.controller().0, &[]);
    for i in 0..tasks.len() {
        if let Some(node) = assignment.node_of(i) {
            if node != cluster.controller() && !routes.reachable(node.0) {
                return Err(SimError::UnreachableNode { task: i, node });
            }
        }
    }
    Ok(())
}

/// The reference discrete-event engine for star clusters: one global
/// queue, causal order, FIFO tie-breaks. Handles both medium modes;
/// [`simulate`] routes here for shared-medium and small rounds, and the
/// per-node fan-out is pinned bit-identical to this loop by the parity
/// tests.
///
/// All engine state is dense `Vec` storage indexed by node id (ids are
/// dense in every cluster constructor), so an event costs a few array
/// reads — no hashing, no scans. The arithmetic is operation-for-operation
/// the one the original `HashMap`-based loop performed: lazily-initialised
/// entries started at exactly the values the vectors are pre-filled with,
/// so every `max`/`+` sees the same operands and the reports stay
/// byte-identical.
fn simulate_event_loop(
    cluster: &Cluster,
    tasks: &[SimTask],
    assignment: &NodeAssignment,
    config: SimConfig,
) -> SimReport {
    let controller = cluster.controller();
    let net = cluster.network().expect("star simulation path");
    let shared = matches!(net.medium(), MediumMode::SharedMedium);
    let slots = cluster.nodes().iter().map(|n| n.id().0).max().unwrap_or(0) + 1;
    let t0 = config.partition_overhead_s;

    // Per-slot precomputation: link parameters and compute-rate
    // coefficient (seconds_per_bit × slowdown — `compute_time` multiplies
    // left-to-right, so folding the first product keeps the bits).
    let mut links = vec![net.link(NodeId(0)); slots];
    let mut compute_coef = vec![0.0f64; slots];
    for n in cluster.nodes() {
        links[n.id().0] = net.link(n.id());
        compute_coef[n.id().0] = n.model().seconds_per_bit() * n.slowdown();
    }

    let mut queue: CalendarQueue<Ev> = CalendarQueue::new();
    // In shared-medium mode every transfer serialises through one channel,
    // modelled as a single virtual link slot.
    let mut shared_free = t0;
    let mut link_free = vec![t0; slots];
    let mut cpu_free = vec![0.0f64; slots];
    let mut link_busy = vec![0.0f64; slots];
    let mut node_busy = vec![0.0f64; slots];
    let mut link_touched = vec![false; slots];
    let mut node_touched = vec![false; slots];
    let mut timelines: Vec<Option<TaskTimeline>> = vec![None; tasks.len()];

    // Dispatch all inputs at t0, FIFO per link in task order.
    for i in 0..tasks.len() {
        let Some(node) = assignment.node_of(i) else { continue };
        let (transfer_start, arrive) = if node == controller {
            (t0, t0) // local task: no network hop
        } else {
            let free = if shared { &mut shared_free } else { &mut link_free[node.0] };
            let start = free.max(t0);
            let dur = links[node.0].transfer_time(tasks[i].input_bits);
            *free = start + dur;
            link_busy[node.0] += dur;
            link_touched[node.0] = true;
            (start, start + dur)
        };
        timelines[i] = Some(TaskTimeline {
            node,
            transfer_start,
            compute_start: 0.0,
            compute_end: 0.0,
            result_at: 0.0,
        });
        queue.schedule(arrive, Ev::InputArrived(i));
    }

    let mut pending = assignment.scheduled_count();
    let mut last_result = t0;
    while let Some((now, ev)) = queue.pop_next() {
        match ev {
            Ev::InputArrived(i) => {
                let node = timelines[i].expect("scheduled task").node;
                let free = &mut cpu_free[node.0];
                let start = free.max(now);
                let dur = compute_coef[node.0] * tasks[i].input_bits.max(0.0);
                *free = start + dur;
                node_busy[node.0] += dur;
                node_touched[node.0] = true;
                let tl = timelines[i].as_mut().expect("scheduled task");
                tl.compute_start = start;
                tl.compute_end = start + dur;
                queue.schedule(start + dur, Ev::ComputeDone(i));
            }
            Ev::ComputeDone(i) => {
                let node = timelines[i].expect("scheduled task").node;
                if node == controller {
                    queue.schedule(now, Ev::ResultArrived(i));
                } else {
                    let free = if shared { &mut shared_free } else { &mut link_free[node.0] };
                    let start = free.max(now);
                    let dur = links[node.0].transfer_time(tasks[i].result_bits);
                    *free = start + dur;
                    link_busy[node.0] += dur;
                    queue.schedule(start + dur, Ev::ResultArrived(i));
                }
            }
            Ev::ResultArrived(i) => {
                timelines[i].as_mut().expect("scheduled task").result_at = now;
                last_result = last_result.max(now);
                pending -= 1;
                if pending == 0 {
                    break;
                }
            }
        }
    }

    SimReport {
        processing_time: last_result + config.decision_overhead_s,
        timelines,
        node_busy: gather_busy(&node_busy, &node_touched),
        link_busy: gather_busy(&link_busy, &link_touched),
    }
}

/// Converts dense busy accumulators back to the report's sparse map,
/// keeping the `HashMap` era's entry-existence semantics: a node appears
/// iff it touched that resource.
fn gather_busy(busy: &[f64], touched: &[bool]) -> HashMap<NodeId, f64> {
    busy.iter()
        .zip(touched)
        .enumerate()
        .filter(|&(_, (_, &t))| t)
        .map(|(i, (&b, _))| (NodeId(i), b))
        .collect()
}

/// One node's completed leg of a per-node-link round: its tasks' timelines
/// plus the node-local accumulators, ready for ordered assembly.
struct NodeLeg {
    node: NodeId,
    /// `(task index, timeline)` in task order.
    timelines: Vec<(usize, TaskTimeline)>,
    node_busy: f64,
    link_busy: f64,
    /// Whether the leg reserved its star link at all (controller-local
    /// tasks never do); mirrors which `link_busy` entries the event loop
    /// creates.
    uses_link: bool,
    last_result: f64,
}

/// Per-node decomposition of [`simulate_event_loop`] for
/// [`MediumMode::PerNodeLink`]: each node's tasks replay, in task order,
/// exactly the event sequence the global loop would process for that node.
///
/// Why this is bit-identical to the event loop: inputs are dispatched at
/// `t0` in task order, reserving each link's FIFO chain up front, so a
/// node's `InputArrived` events carry non-decreasing times and pop in task
/// order (the queue breaks time ties by insertion sequence). The FIFO CPU
/// then finishes computations in that same order, so `ComputeDone` — and
/// with it the result-leg link reservations — also replays in task order.
/// No state is shared across nodes except `last_result`, a max over
/// non-negative values, which is order-invariant. Every floating-point
/// operation below is the same operation, on the same operands, in the
/// same per-node order as in the event loop.
fn simulate_per_node(
    cluster: &Cluster,
    tasks: &[SimTask],
    assignment: &NodeAssignment,
    config: SimConfig,
) -> SimReport {
    let controller = cluster.controller();
    let t0 = config.partition_overhead_s;

    // Group task indices by node, groups ordered by first appearance so
    // the fan-out and assembly order is a pure function of the assignment.
    let mut group_of: HashMap<NodeId, usize> = HashMap::new();
    let mut groups: Vec<(NodeId, Vec<usize>)> = Vec::new();
    for i in 0..tasks.len() {
        let Some(node) = assignment.node_of(i) else { continue };
        let g = *group_of.entry(node).or_insert_with(|| {
            groups.push((node, Vec::new()));
            groups.len() - 1
        });
        groups[g].1.push(i);
    }

    // Grain 1: groups are few (one per busy node) but each carries many
    // tasks, so every group is worth a worker.
    let legs: Vec<NodeLeg> = parallel::par_map_indexed_grained(groups.len(), 1, |g| {
        let (node, idxs) = &groups[g];
        node_leg(cluster, tasks, config, *node, controller, idxs)
    });

    // Serial ordered assembly.
    let mut timelines: Vec<Option<TaskTimeline>> = vec![None; tasks.len()];
    let mut node_busy: HashMap<NodeId, f64> = HashMap::new();
    let mut link_busy: HashMap<NodeId, f64> = HashMap::new();
    let mut last_result = t0;
    for leg in legs {
        node_busy.insert(leg.node, leg.node_busy);
        if leg.uses_link {
            link_busy.insert(leg.node, leg.link_busy);
        }
        last_result = last_result.max(leg.last_result);
        for (i, tl) in leg.timelines {
            timelines[i] = Some(tl);
        }
    }

    SimReport {
        processing_time: last_result + config.decision_overhead_s,
        timelines,
        node_busy,
        link_busy,
    }
}

/// Replays one node's input legs, FIFO compute, and result legs in task
/// order, mirroring the event loop's arithmetic operation for operation.
fn node_leg(
    cluster: &Cluster,
    tasks: &[SimTask],
    config: SimConfig,
    node: NodeId,
    controller: NodeId,
    idxs: &[usize],
) -> NodeLeg {
    let t0 = config.partition_overhead_s;
    let is_controller = node == controller;
    let mut link_free = t0;
    let mut cpu_free: Option<f64> = None;
    let mut node_busy = 0.0;
    let mut link_busy = 0.0;
    let mut timelines: Vec<(usize, TaskTimeline)> = Vec::with_capacity(idxs.len());
    let mut arrivals: Vec<f64> = Vec::with_capacity(idxs.len());

    // Input legs: the event loop reserves the link chain up front at t0,
    // in task order.
    for &i in idxs {
        let (transfer_start, arrive) = if is_controller {
            (t0, t0) // local task: no network hop
        } else {
            let start = link_free.max(t0);
            let dur = cluster
                .network()
                .expect("star simulation path")
                .transfer_time(node, tasks[i].input_bits);
            link_free = start + dur;
            link_busy += dur;
            (start, start + dur)
        };
        timelines.push((
            i,
            TaskTimeline {
                node,
                transfer_start,
                compute_start: 0.0,
                compute_end: 0.0,
                result_at: 0.0,
            },
        ));
        arrivals.push(arrive);
    }

    // FIFO compute: arrivals are non-decreasing in task order, so the CPU
    // serves tasks in task order exactly as the event loop does.
    let compute_node = cluster.node(node).expect("validated");
    for (k, (_, tl)) in timelines.iter_mut().enumerate() {
        let arrive = arrivals[k];
        let free = cpu_free.unwrap_or(arrive);
        let start = free.max(arrive);
        let dur = compute_node.compute_time(tasks[idxs[k]].input_bits);
        cpu_free = Some(start + dur);
        node_busy += dur;
        tl.compute_start = start;
        tl.compute_end = start + dur;
    }

    // Result legs: compute ends are non-decreasing in task order, so the
    // link's return chain is reserved in task order too.
    let mut last_result = t0;
    for (k, (_, tl)) in timelines.iter_mut().enumerate() {
        let result_at = if is_controller {
            tl.compute_end
        } else {
            let start = link_free.max(tl.compute_end);
            let dur = cluster
                .network()
                .expect("star simulation path")
                .transfer_time(node, tasks[idxs[k]].result_bits);
            link_free = start + dur;
            link_busy += dur;
            start + dur
        };
        tl.result_at = result_at;
        last_result = last_result.max(result_at);
    }

    NodeLeg { node, timelines, node_busy, link_busy, uses_link: !is_controller, last_result }
}

/// Result of a fault-injected allocation round ([`simulate_with_faults`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReport {
    /// PT to the controller's decision: the instant every scheduled task
    /// was either delivered or declared failed, plus decision overhead.
    pub processing_time: f64,
    /// Timeline of each task's *successful* attempt; `None` for
    /// unscheduled or failed tasks.
    pub timelines: Vec<Option<TaskTimeline>>,
    /// Whether each task's result reached the controller.
    pub completed: Vec<bool>,
    /// Attempts consumed per task (0 = never scheduled).
    pub attempts: Vec<usize>,
    /// Typed failure log, in event order.
    pub failures: Vec<FailureRecord>,
    /// Committed busy compute seconds per node. Compute reservations lost
    /// to a crash are refunded (the node reboots with an empty queue).
    pub node_busy: HashMap<NodeId, f64>,
    /// Committed busy link seconds per node. Per-node link reservations
    /// lost to a crash or link dropout are refunded; on a shared medium the
    /// channel time stays burned (the radio was transmitting).
    pub link_busy: HashMap<NodeId, f64>,
    /// Nodes still down when the round ended, ascending id.
    pub down_at_end: Vec<NodeId>,
}

impl FaultReport {
    /// Number of tasks whose result reached the controller.
    pub fn completed_count(&self) -> usize {
        self.completed.iter().filter(|c| **c).count()
    }

    /// Scheduled tasks that exhausted their retries (or had no surviving
    /// host), ascending index.
    pub fn failed_tasks(&self) -> Vec<usize> {
        (0..self.completed.len()).filter(|&i| self.attempts[i] > 0 && !self.completed[i]).collect()
    }

    /// Completion time of the latest delivered task, before decision
    /// overhead.
    pub fn makespan(&self) -> f64 {
        self.timelines.iter().flatten().map(|t| t.result_at).fold(0.0, f64::max)
    }

    /// Projects onto a [`SimReport`] (successful timelines only) so the
    /// [`crate::trace`] exporters apply unchanged.
    pub fn to_sim_report(&self) -> SimReport {
        SimReport {
            processing_time: self.processing_time,
            timelines: self.timelines.clone(),
            node_busy: self.node_busy.clone(),
            link_busy: self.link_busy.clone(),
        }
    }
}

/// Events of the fault-aware engine. Each task-scoped event carries its
/// attempt number so events of an aborted attempt become inert the moment
/// the controller re-dispatches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FEv {
    /// Index into the fault schedule fires.
    Fault(usize),
    /// Input transfer finished for (task, attempt).
    InputArrived {
        task: usize,
        attempt: usize,
    },
    ComputeDone {
        task: usize,
        attempt: usize,
    },
    ResultArrived {
        task: usize,
        attempt: usize,
    },
    /// Controller-side heartbeat timer for (task, attempt).
    Heartbeat {
        task: usize,
        attempt: usize,
    },
    /// Backoff elapsed; pick a surviving node and re-dispatch.
    Redispatch {
        task: usize,
    },
}

/// Pipeline stage of a live attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Leg {
    InputTransfer,
    Computing,
    /// Result computed but the node's link is down; parked until LinkUp.
    AwaitingLink,
    ResultTransfer,
}

#[derive(Debug, Clone, Copy)]
enum AbortCause {
    Crash,
    LinkLoss,
    /// Heartbeat gave up on a result stranded behind a dead link.
    Strand,
}

#[derive(Debug, Clone, Copy)]
struct TaskState {
    /// 1-based attempt number currently in flight (or last attempted).
    attempt: usize,
    node: NodeId,
    leg: Leg,
    /// Reserved interval of the current leg (start, end).
    interval: (f64, f64),
    aborted: bool,
    resolved: bool,
    completed: bool,
    timeline: TaskTimeline,
}

struct FaultSim<'a> {
    cluster: &'a Cluster,
    tasks: &'a [SimTask],
    config: SimConfig,
    controller: NodeId,
    queue: CalendarQueue<FEv>,
    link_free: HashMap<NodeId, f64>,
    cpu_free: HashMap<NodeId, f64>,
    link_busy: HashMap<NodeId, f64>,
    node_busy: HashMap<NodeId, f64>,
    state: Vec<Option<TaskState>>,
    final_timelines: Vec<Option<TaskTimeline>>,
    attempts_used: Vec<usize>,
    failures: Vec<FailureRecord>,
    down: BTreeSet<NodeId>,
    link_down: HashSet<NodeId>,
    straggle: HashMap<NodeId, f64>,
    /// Per-node FIFO of (task, attempt) results parked behind a dead link.
    waiting: HashMap<NodeId, Vec<(usize, usize)>>,
    /// Cumulative nominal compute seconds dispatched per node — the
    /// controller's load ledger for re-dispatch target selection.
    dispatched_load: HashMap<NodeId, f64>,
    /// Resource demand currently resident per node (capacity bookkeeping
    /// for retries; aborts release it, completions keep it for the round).
    resident: HashMap<NodeId, f64>,
    /// Availability preference scores for re-dispatch target selection.
    prefs: RedispatchPrefs,
    pending: usize,
    last_resolution: f64,
}

impl FaultSim<'_> {
    fn per_node_links(&self) -> bool {
        matches!(
            self.cluster.network().expect("star simulation path").medium(),
            MediumMode::PerNodeLink
        )
    }

    fn link_key(&self, node: NodeId) -> NodeId {
        match self.cluster.network().expect("star simulation path").medium() {
            MediumMode::PerNodeLink => node,
            MediumMode::SharedMedium => NodeId(usize::MAX),
        }
    }

    /// Heartbeat duration for `task` on `node`: retry-factor × the
    /// attempt's nominal PT at advertised rates (no queueing, no
    /// stragglers), floored by the policy minimum.
    fn timeout_of(&self, task: usize, node: NodeId) -> f64 {
        let spec = self.tasks[task];
        let compute =
            self.cluster.node(node).expect("validated node").compute_time(spec.input_bits);
        let nominal = if node == self.controller {
            compute
        } else {
            self.cluster
                .network()
                .expect("star simulation path")
                .transfer_time(node, spec.input_bits)
                + compute
                + self
                    .cluster
                    .network()
                    .expect("star simulation path")
                    .transfer_time(node, spec.result_bits)
        };
        (self.config.retry.timeout_factor * nominal).max(self.config.retry.min_timeout_s)
    }

    fn dispatch(&mut self, task: usize, node: NodeId, t: f64, attempt: usize) {
        let spec = self.tasks[task];
        let nominal =
            self.cluster.node(node).expect("validated node").compute_time(spec.input_bits);
        *self.dispatched_load.entry(node).or_insert(0.0) += nominal;
        *self.resident.entry(node).or_insert(0.0) += spec.resource_demand;
        let (transfer_start, arrive) = if node == self.controller {
            (t, t)
        } else {
            let free = self.link_free.entry(self.link_key(node)).or_insert(t);
            let start = free.max(t);
            let dur = self
                .cluster
                .network()
                .expect("star simulation path")
                .transfer_time(node, spec.input_bits);
            *free = start + dur;
            *self.link_busy.entry(node).or_insert(0.0) += dur;
            (start, start + dur)
        };
        self.state[task] = Some(TaskState {
            attempt,
            node,
            leg: Leg::InputTransfer,
            interval: (transfer_start, arrive),
            aborted: false,
            resolved: false,
            completed: false,
            timeline: TaskTimeline {
                node,
                transfer_start,
                compute_start: 0.0,
                compute_end: 0.0,
                result_at: 0.0,
            },
        });
        self.attempts_used[task] = attempt;
        self.queue.schedule(arrive, FEv::InputArrived { task, attempt });
        self.queue.schedule(t + self.timeout_of(task, node), FEv::Heartbeat { task, attempt });
    }

    /// Kills the current attempt: refunds un-elapsed reservations where the
    /// resource collapses with the fault (crashed CPU, dead per-node link),
    /// releases residency, and leaves the attempt for the heartbeat to
    /// detect.
    fn abort_attempt(&mut self, task: usize, now: f64, cause: AbortCause) {
        let st = self.state[task].expect("abort of unscheduled task");
        match st.leg {
            Leg::InputTransfer | Leg::ResultTransfer => {
                if st.node != self.controller && self.per_node_links() {
                    let lost = st.interval.1 - st.interval.0.max(now);
                    if lost > 0.0 {
                        *self.link_busy.entry(st.node).or_insert(0.0) -= lost;
                    }
                }
            }
            Leg::Computing => {
                if matches!(cause, AbortCause::Crash) {
                    let lost = st.interval.1 - st.interval.0.max(now);
                    if lost > 0.0 {
                        *self.node_busy.entry(st.node).or_insert(0.0) -= lost;
                    }
                }
            }
            Leg::AwaitingLink => {
                if let Some(w) = self.waiting.get_mut(&st.node) {
                    w.retain(|&(t, _)| t != task);
                }
            }
        }
        *self.resident.entry(st.node).or_insert(0.0) -= self.tasks[task].resource_demand;
        let s = self.state[task].as_mut().expect("present");
        s.aborted = true;
        self.failures.push(FailureRecord {
            time: now,
            kind: FailureKind::AttemptAborted { task, node: st.node, attempt: st.attempt },
        });
    }

    fn on_fault(&mut self, now: f64, kind: FaultKind) {
        match kind {
            FaultKind::Crash(n) => {
                self.failures.push(FailureRecord { time: now, kind: FailureKind::NodeCrashed(n) });
                if self.down.insert(n) {
                    for task in 0..self.tasks.len() {
                        let Some(st) = self.state[task] else { continue };
                        if st.node == n && !st.resolved && !st.aborted {
                            self.abort_attempt(task, now, AbortCause::Crash);
                        }
                    }
                    self.cpu_free.insert(n, now);
                    if self.per_node_links() {
                        self.link_free.insert(n, now);
                    }
                    self.straggle.remove(&n);
                    self.waiting.remove(&n);
                }
            }
            FaultKind::Recover(n) => {
                self.failures
                    .push(FailureRecord { time: now, kind: FailureKind::NodeRecovered(n) });
                if self.down.remove(&n) {
                    self.cpu_free.insert(n, now);
                    if self.per_node_links() {
                        self.link_free.insert(n, now);
                    }
                }
            }
            FaultKind::LinkDown(n) => {
                self.failures.push(FailureRecord { time: now, kind: FailureKind::LinkWentDown(n) });
                if self.link_down.insert(n) {
                    for task in 0..self.tasks.len() {
                        let Some(st) = self.state[task] else { continue };
                        if st.node == n
                            && !st.resolved
                            && !st.aborted
                            && matches!(st.leg, Leg::InputTransfer | Leg::ResultTransfer)
                        {
                            self.abort_attempt(task, now, AbortCause::LinkLoss);
                        }
                    }
                    if self.per_node_links() {
                        self.link_free.insert(n, now);
                    }
                }
            }
            FaultKind::LinkUp(n) => {
                self.failures.push(FailureRecord { time: now, kind: FailureKind::LinkRestored(n) });
                if self.link_down.remove(&n) {
                    // Drain results parked behind the dead link, FIFO.
                    for (task, attempt) in self.waiting.remove(&n).unwrap_or_default() {
                        let Some(st) = self.state[task] else { continue };
                        if st.resolved || st.aborted || st.attempt != attempt {
                            continue;
                        }
                        let free = self.link_free.entry(self.link_key(n)).or_insert(now);
                        let start = free.max(now);
                        let dur = self
                            .cluster
                            .network()
                            .expect("star simulation path")
                            .transfer_time(n, self.tasks[task].result_bits);
                        *free = start + dur;
                        *self.link_busy.entry(n).or_insert(0.0) += dur;
                        let s = self.state[task].as_mut().expect("present");
                        s.leg = Leg::ResultTransfer;
                        s.interval = (start, start + dur);
                        self.queue.schedule(start + dur, FEv::ResultArrived { task, attempt });
                    }
                }
            }
            FaultKind::StragglerStart(n, factor) => {
                self.straggle.insert(n, factor);
            }
            FaultKind::StragglerEnd(n) => {
                self.straggle.remove(&n);
            }
        }
    }

    fn live(&self, task: usize, attempt: usize) -> bool {
        match self.state[task] {
            Some(st) => !st.resolved && !st.aborted && st.attempt == attempt,
            None => false,
        }
    }

    fn on_input_arrived(&mut self, now: f64, task: usize, attempt: usize) {
        if !self.live(task, attempt) {
            return;
        }
        let node = self.state[task].expect("live").node;
        let free = self.cpu_free.entry(node).or_insert(now);
        let start = free.max(now);
        let base =
            self.cluster.node(node).expect("validated").compute_time(self.tasks[task].input_bits);
        // Straggler factor of the window the compute leg *starts* in; 1.0×
        // multiplies bit-exactly, preserving fault-free parity.
        let dur = base * self.straggle.get(&node).copied().unwrap_or(1.0);
        *free = start + dur;
        *self.node_busy.entry(node).or_insert(0.0) += dur;
        let s = self.state[task].as_mut().expect("live");
        s.leg = Leg::Computing;
        s.interval = (start, start + dur);
        s.timeline.compute_start = start;
        s.timeline.compute_end = start + dur;
        self.queue.schedule(start + dur, FEv::ComputeDone { task, attempt });
    }

    fn on_compute_done(&mut self, now: f64, task: usize, attempt: usize) {
        if !self.live(task, attempt) {
            return;
        }
        let node = self.state[task].expect("live").node;
        if node == self.controller {
            let s = self.state[task].as_mut().expect("live");
            s.leg = Leg::ResultTransfer;
            s.interval = (now, now);
            self.queue.schedule(now, FEv::ResultArrived { task, attempt });
        } else if self.link_down.contains(&node) {
            let s = self.state[task].as_mut().expect("live");
            s.leg = Leg::AwaitingLink;
            s.interval = (now, now);
            self.waiting.entry(node).or_default().push((task, attempt));
        } else {
            let free = self.link_free.entry(self.link_key(node)).or_insert(now);
            let start = free.max(now);
            let dur = self
                .cluster
                .network()
                .expect("star simulation path")
                .transfer_time(node, self.tasks[task].result_bits);
            *free = start + dur;
            *self.link_busy.entry(node).or_insert(0.0) += dur;
            let s = self.state[task].as_mut().expect("live");
            s.leg = Leg::ResultTransfer;
            s.interval = (start, start + dur);
            self.queue.schedule(start + dur, FEv::ResultArrived { task, attempt });
        }
    }

    fn on_result_arrived(&mut self, now: f64, task: usize, attempt: usize) {
        if !self.live(task, attempt) {
            return;
        }
        let s = self.state[task].as_mut().expect("live");
        s.timeline.result_at = now;
        s.resolved = true;
        s.completed = true;
        self.final_timelines[task] = Some(s.timeline);
        self.last_resolution = self.last_resolution.max(now);
        self.pending -= 1;
    }

    fn on_heartbeat(&mut self, now: f64, task: usize, attempt: usize) {
        let Some(st) = self.state[task] else { return };
        if st.resolved || st.attempt != attempt {
            return;
        }
        if st.aborted {
            self.failures.push(FailureRecord {
                time: now,
                kind: FailureKind::TimeoutDetected { task, node: st.node, attempt },
            });
            self.retry_or_fail(task, now);
        } else if matches!(st.leg, Leg::AwaitingLink) && self.link_down.contains(&st.node) {
            // Result stranded behind a link that is still down at timeout:
            // give up on this attempt and recompute elsewhere.
            self.abort_attempt(task, now, AbortCause::Strand);
            self.failures.push(FailureRecord {
                time: now,
                kind: FailureKind::TimeoutDetected { task, node: st.node, attempt },
            });
            self.retry_or_fail(task, now);
        } else {
            // Healthy in-flight work is never preempted: re-arm. Every leg
            // completes in finite time, so re-arming terminates.
            self.queue
                .schedule(now + self.timeout_of(task, st.node), FEv::Heartbeat { task, attempt });
        }
    }

    fn retry_or_fail(&mut self, task: usize, now: f64) {
        let used = self.state[task].expect("scheduled").attempt;
        if used > self.config.retry.max_retries {
            self.fail_task(task, now);
        } else {
            let delay = self.config.retry.backoff_base_s * 2f64.powi(used as i32 - 1);
            self.queue.schedule(now + delay, FEv::Redispatch { task });
        }
    }

    fn fail_task(&mut self, task: usize, now: f64) {
        let used = self.state[task].expect("scheduled").attempt;
        let s = self.state[task].as_mut().expect("scheduled");
        s.resolved = true;
        self.failures.push(FailureRecord {
            time: now,
            kind: FailureKind::TaskFailed { task, attempts: used },
        });
        self.last_resolution = self.last_resolution.max(now);
        self.pending -= 1;
    }

    fn on_redispatch(&mut self, now: f64, task: usize) {
        let st = self.state[task].expect("scheduled");
        if st.resolved || !st.aborted {
            return;
        }
        let next = st.attempt + 1;
        let demand = self.tasks[task].resource_demand;
        // Deterministic target selection: highest availability preference
        // score first (when prefs are set), then least cumulative
        // dispatched nominal compute seconds among up nodes with a live
        // link, ties broken by ascending node id. The controller is always
        // a candidate (it cannot fault), so selection only fails on
        // capacity.
        let mut best: Option<(f64, f64, NodeId)> = None;
        for n in self.cluster.nodes() {
            let id = n.id();
            if self.down.contains(&id) || self.link_down.contains(&id) {
                continue;
            }
            if self.config.enforce_capacity {
                let used = self.resident.get(&id).copied().unwrap_or(0.0);
                if used + demand > n.capacity() + 1e-9 {
                    continue;
                }
            }
            let score = self.prefs.score_of(id);
            let load = self.dispatched_load.get(&id).copied().unwrap_or(0.0);
            let better = match best {
                None => true,
                Some((bs, bl, bid)) => {
                    score > bs || (score == bs && (load < bl || (load == bl && id < bid)))
                }
            };
            if better {
                best = Some((score, load, id));
            }
        }
        match best {
            Some((_, _, node)) => {
                self.failures.push(FailureRecord {
                    time: now,
                    kind: FailureKind::Redispatched { task, node, attempt: next },
                });
                self.dispatch(task, node, now, next);
            }
            None => self.fail_task(task, now),
        }
    }
}

/// Events of the mesh engine. Flow-scoped events carry the flow id (and,
/// for [`MEv::FlowDone`], the rate version that scheduled them — a rate
/// change bumps the version, turning the superseded completion inert).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MEv {
    /// Index into the fault schedule fires.
    Fault(usize),
    /// A flow's serialisation finished under the rate of `version`.
    FlowDone {
        flow: usize,
        version: u64,
    },
    /// A finished flow's payload, delayed by path propagation, lands.
    Delivered {
        flow: usize,
    },
    /// Controller-local input leg finished for (task, attempt).
    InputArrived {
        task: usize,
        attempt: usize,
    },
    ComputeDone {
        task: usize,
        attempt: usize,
    },
    /// Controller-local result leg finished for (task, attempt).
    ResultArrived {
        task: usize,
        attempt: usize,
    },
    /// Controller-side heartbeat timer for (task, attempt).
    Heartbeat {
        task: usize,
        attempt: usize,
    },
    /// Backoff elapsed; pick a surviving node and re-dispatch.
    Redispatch {
        task: usize,
    },
}

/// One transfer in flight across the mesh under proportional-share
/// contention. The flow's share weight is its total requested size
/// (`bits`), constant for its lifetime; the granted rate is the minimum
/// over its path edges of `capacity × (bits / load)` where `load` sums the
/// weights of the flows crossing that edge. A lone flow's share is
/// `bits / bits == 1.0` exactly, so it gets the full edge capacity.
#[derive(Debug, Clone)]
struct Flow {
    task: usize,
    attempt: usize,
    /// `false` = input leg (controller → worker), `true` = result leg.
    result: bool,
    /// Worker-side endpoint (dense mesh node index).
    node: usize,
    /// Edge ids along the route, fixed at flow start (re-routing only
    /// affects flows started after the topology change).
    path: Vec<usize>,
    /// Requested size — the constant share weight.
    bits: f64,
    /// Bits still to serialise.
    remaining: f64,
    /// Currently granted rate in bits/sec.
    rate: f64,
    /// Instant `remaining` was last advanced to.
    last_update: f64,
    /// Creation instant (for elapsed link-busy accounting).
    started: f64,
    /// Sum of one-way propagation latencies along `path`, applied once
    /// after serialisation completes.
    latency: f64,
    /// Bumped on every rate change; stale [`MEv::FlowDone`] events no-op.
    version: u64,
    active: bool,
}

/// Per-task state of the mesh engine: [`TaskState`] plus the id of the
/// attempt's in-flight flow (if the current leg is a network transfer).
#[derive(Debug, Clone, Copy)]
struct MTaskState {
    attempt: usize,
    node: NodeId,
    leg: Leg,
    flow: Option<usize>,
    /// Reserved compute interval (start, end); transfers track their flow
    /// instead.
    interval: (f64, f64),
    aborted: bool,
    resolved: bool,
    completed: bool,
    timeline: TaskTimeline,
}

/// The mesh discrete-event engine: fluid-flow transfers with
/// proportional-share contention and incremental rate settlement.
///
/// All state is dense `Vec` storage indexed by mesh node or edge id.
/// After every handled event, [`MeshSim::settle`] revisits only the flows
/// crossing edges whose flow set changed ("dirty" edges): each is advanced
/// under its previously granted rate, then re-granted from the new loads;
/// a flow whose rate is bitwise unchanged keeps its scheduled completion,
/// so a settlement touches O(affected flows), not all active flows.
///
/// The engine is single-threaded, so thread-count invariance is
/// structural; determinism follows from the queue's (time, seq) FIFO
/// contract and the dense, id-ordered iteration everywhere.
struct MeshSim<'a> {
    cluster: &'a Cluster,
    mesh: &'a MeshNetwork,
    tasks: &'a [SimTask],
    config: SimConfig,
    controller: NodeId,
    queue: CalendarQueue<MEv>,
    /// Shortest-path tree from the controller over the live edges;
    /// recomputed on every topology change.
    routes: Routes,
    edge_down: Vec<bool>,
    /// The uplink edge a `LinkDown(n)` fault took out, so `LinkUp(n)`
    /// restores exactly that edge.
    downed_uplink: Vec<Option<usize>>,
    /// Flow slab; ids are never reused within a run.
    flows: Vec<Flow>,
    /// Active flow ids crossing each edge, in arrival order.
    edge_flows: Vec<Vec<usize>>,
    /// Sum of active flows' share weights per edge; reset to exactly 0.0
    /// when an edge empties so no float residue leaks across rounds of
    /// contention.
    edge_load: Vec<f64>,
    /// Edges whose flow set changed since the last settlement.
    dirty: Vec<usize>,
    /// Settlement stamp per flow (dedupes flows crossing several dirty
    /// edges).
    touch_stamp: Vec<u64>,
    stamp: u64,
    cpu_free: Vec<f64>,
    node_busy: Vec<f64>,
    link_busy: Vec<f64>,
    node_touched: Vec<bool>,
    link_touched: Vec<bool>,
    dispatched_load: Vec<f64>,
    resident: Vec<f64>,
    state: Vec<Option<MTaskState>>,
    final_timelines: Vec<Option<TaskTimeline>>,
    attempts_used: Vec<usize>,
    failures: Vec<FailureRecord>,
    down: Vec<bool>,
    /// Compute-time multiplier per node; exactly 1.0 outside straggler
    /// windows (bit-exact identity multiply).
    straggle: Vec<f64>,
    /// Per-node FIFO of (task, attempt) results parked while the node was
    /// unreachable.
    waiting: Vec<Vec<(usize, usize)>>,
    /// Availability preference scores for re-dispatch target selection.
    prefs: RedispatchPrefs,
    pending: usize,
    last_resolution: f64,
}

impl<'a> MeshSim<'a> {
    fn new(
        cluster: &'a Cluster,
        mesh: &'a MeshNetwork,
        tasks: &'a [SimTask],
        config: SimConfig,
        prefs: RedispatchPrefs,
    ) -> Self {
        let n = mesh.nodes();
        let m = mesh.num_edges();
        let controller = cluster.controller();
        Self {
            cluster,
            mesh,
            tasks,
            config,
            controller,
            queue: CalendarQueue::new(),
            routes: mesh.routes_from(controller.0, &[]),
            edge_down: vec![false; m],
            downed_uplink: vec![None; n],
            flows: Vec::new(),
            edge_flows: std::iter::repeat_with(Vec::new).take(m).collect(),
            edge_load: vec![0.0; m],
            dirty: Vec::new(),
            touch_stamp: Vec::new(),
            stamp: 0,
            cpu_free: vec![0.0; n],
            node_busy: vec![0.0; n],
            link_busy: vec![0.0; n],
            node_touched: vec![false; n],
            link_touched: vec![false; n],
            dispatched_load: vec![0.0; n],
            resident: vec![0.0; n],
            state: vec![None; tasks.len()],
            final_timelines: vec![None; tasks.len()],
            attempts_used: vec![0; tasks.len()],
            failures: Vec::new(),
            down: vec![false; n],
            straggle: vec![1.0; n],
            waiting: vec![Vec::new(); n],
            prefs,
            pending: 0,
            last_resolution: config.partition_overhead_s,
        }
    }

    fn live(&self, task: usize, attempt: usize) -> bool {
        match self.state[task] {
            Some(st) => !st.resolved && !st.aborted && st.attempt == attempt,
            None => false,
        }
    }

    /// Starts a transfer toward (or from) `node` along the current route.
    /// Zero-size payloads skip the fluid phase entirely: they hold no
    /// share of any edge and deliver after pure path latency.
    ///
    /// The caller guarantees `node` is currently reachable.
    fn start_flow(
        &mut self,
        task: usize,
        attempt: usize,
        result: bool,
        node: NodeId,
        t: f64,
        bits: f64,
    ) -> usize {
        let path = self.routes.path_edges(node.0);
        let latency: f64 = path.iter().map(|&e| self.mesh.link(e).latency_s()).sum();
        let bits = bits.max(0.0);
        let fid = self.flows.len();
        self.link_touched[node.0] = true;
        if bits > 0.0 {
            for &e in &path {
                self.edge_flows[e].push(fid);
                self.edge_load[e] += bits;
                self.dirty.push(e);
            }
            self.flows.push(Flow {
                task,
                attempt,
                result,
                node: node.0,
                path,
                bits,
                remaining: bits,
                rate: 0.0,
                last_update: t,
                started: t,
                latency,
                version: 0,
                active: true,
            });
        } else {
            // Nothing to serialise: deliver after propagation alone.
            self.flows.push(Flow {
                task,
                attempt,
                result,
                node: node.0,
                path,
                bits,
                remaining: 0.0,
                rate: 0.0,
                last_update: t,
                started: t,
                latency,
                version: 0,
                active: false,
            });
            self.queue.schedule(t + latency, MEv::Delivered { flow: fid });
        }
        self.touch_stamp.push(0);
        fid
    }

    /// Takes `fid` off the network: accrues its elapsed serialisation time
    /// to the worker's link-busy ledger, releases its share on every path
    /// edge, and marks those edges dirty. Idempotent.
    fn end_flow(&mut self, fid: usize, now: f64) {
        let f = &mut self.flows[fid];
        if !f.active {
            return;
        }
        f.active = false;
        let elapsed = (now - f.started).max(0.0);
        let node = f.node;
        let bits = f.bits;
        let path = std::mem::take(&mut f.path);
        self.link_busy[node] += elapsed;
        for &e in &path {
            self.edge_flows[e].retain(|&g| g != fid);
            self.edge_load[e] -= bits;
            if self.edge_flows[e].is_empty() {
                self.edge_load[e] = 0.0;
            }
            self.dirty.push(e);
        }
    }

    /// Settles the network after a flow-set change: every flow crossing a
    /// dirty edge is advanced under its old rate, then re-granted
    /// `min over path of capacity × (bits / load)`. Only a bitwise rate
    /// change bumps the flow's version and reschedules its completion —
    /// unaffected flows keep their pending [`MEv::FlowDone`] untouched.
    ///
    /// Settling once per handled event is equivalent to settling after
    /// each individual flow change at that instant: intermediate
    /// settlements at the same timestamp advance flows by `dt = 0`, which
    /// is a no-op, so only the final rate grant matters.
    fn settle(&mut self, now: f64) {
        if self.dirty.is_empty() {
            return;
        }
        self.stamp += 1;
        let mut dirty = std::mem::take(&mut self.dirty);
        for &e in &dirty {
            for fi in 0..self.edge_flows[e].len() {
                let fid = self.edge_flows[e][fi];
                if self.touch_stamp[fid] == self.stamp {
                    continue;
                }
                self.touch_stamp[fid] = self.stamp;
                {
                    // Advance under the old rate. A flow created at t0 can
                    // see a settlement at an earlier fault instant; it has
                    // not started transferring yet, so its clock stays put.
                    let f = &mut self.flows[fid];
                    if now > f.last_update {
                        f.remaining = (f.remaining - f.rate * (now - f.last_update)).max(0.0);
                        f.last_update = now;
                    }
                }
                let mut rate = f64::INFINITY;
                {
                    let f = &self.flows[fid];
                    for &pe in &f.path {
                        let r = self.mesh.link(pe).bandwidth_bps() * (f.bits / self.edge_load[pe]);
                        if r < rate {
                            rate = r;
                        }
                    }
                }
                let f = &mut self.flows[fid];
                if rate.to_bits() == f.rate.to_bits() {
                    continue;
                }
                f.rate = rate;
                f.version += 1;
                let fire = f.last_update + f.remaining / rate;
                let version = f.version;
                self.queue.schedule(fire, MEv::FlowDone { flow: fid, version });
            }
        }
        dirty.clear();
        self.dirty = dirty;
    }

    /// Heartbeat duration for `task` on `node`: retry-factor × the
    /// attempt's nominal PT — uncontended transfers at the current route's
    /// bottleneck bandwidth plus compute at advertised rates. Falls back
    /// to compute alone while the node is unreachable (the transfer cost
    /// is unknowable; the floor and factor keep the timer sane).
    fn timeout_of(&self, task: usize, node: NodeId) -> f64 {
        let spec = self.tasks[task];
        let compute =
            self.cluster.node(node).expect("validated node").compute_time(spec.input_bits);
        let nominal = if node == self.controller || !self.routes.reachable(node.0) {
            compute
        } else {
            self.mesh.nominal_transfer_time(&self.routes, node.0, spec.input_bits)
                + compute
                + self.mesh.nominal_transfer_time(&self.routes, node.0, spec.result_bits)
        };
        (self.config.retry.timeout_factor * nominal).max(self.config.retry.min_timeout_s)
    }

    fn dispatch(&mut self, task: usize, node: NodeId, t: f64, attempt: usize) {
        let spec = self.tasks[task];
        let nominal =
            self.cluster.node(node).expect("validated node").compute_time(spec.input_bits);
        self.dispatched_load[node.0] += nominal;
        self.resident[node.0] += spec.resource_demand;
        let flow = if node == self.controller {
            self.queue.schedule(t, MEv::InputArrived { task, attempt });
            None
        } else {
            Some(self.start_flow(task, attempt, false, node, t, spec.input_bits))
        };
        self.state[task] = Some(MTaskState {
            attempt,
            node,
            leg: Leg::InputTransfer,
            flow,
            interval: (t, t),
            aborted: false,
            resolved: false,
            completed: false,
            timeline: TaskTimeline {
                node,
                transfer_start: t,
                compute_start: 0.0,
                compute_end: 0.0,
                result_at: 0.0,
            },
        });
        self.attempts_used[task] = attempt;
        self.queue.schedule(t + self.timeout_of(task, node), MEv::Heartbeat { task, attempt });
    }

    /// Kills the current attempt: ends its in-flight flow (elapsed
    /// serialisation time stays accrued; the un-transferred remainder is
    /// never charged), refunds un-elapsed compute on a crash, releases
    /// residency, and leaves the attempt for the heartbeat to detect.
    fn abort_attempt(&mut self, task: usize, now: f64, cause: AbortCause) {
        let st = self.state[task].expect("abort of unscheduled task");
        match st.leg {
            Leg::InputTransfer | Leg::ResultTransfer => {
                if let Some(fid) = st.flow {
                    self.end_flow(fid, now);
                }
            }
            Leg::Computing => {
                if matches!(cause, AbortCause::Crash) {
                    let lost = st.interval.1 - st.interval.0.max(now);
                    if lost > 0.0 {
                        self.node_busy[st.node.0] -= lost;
                    }
                }
            }
            Leg::AwaitingLink => {
                self.waiting[st.node.0].retain(|&(t, _)| t != task);
            }
        }
        self.resident[st.node.0] -= self.tasks[task].resource_demand;
        self.state[task].as_mut().expect("present").aborted = true;
        self.failures.push(FailureRecord {
            time: now,
            kind: FailureKind::AttemptAborted { task, node: st.node, attempt: st.attempt },
        });
    }

    /// Mesh fault semantics. A crash takes out the node's *compute* — its
    /// resident attempts abort — but the node keeps forwarding transit
    /// flows (the radio survives the process). Topology damage is
    /// `LinkDown(n)`, which drops `n`'s current uplink edge: every flow
    /// crossing that edge aborts (whichever task it served) and routes are
    /// recomputed, possibly re-routing *around* the dead edge for flows
    /// started later.
    fn on_fault(&mut self, now: f64, kind: FaultKind) {
        match kind {
            FaultKind::Crash(n) => {
                self.failures.push(FailureRecord { time: now, kind: FailureKind::NodeCrashed(n) });
                if !self.down[n.0] {
                    self.down[n.0] = true;
                    for task in 0..self.tasks.len() {
                        let Some(st) = self.state[task] else { continue };
                        if st.node == n && !st.resolved && !st.aborted {
                            self.abort_attempt(task, now, AbortCause::Crash);
                        }
                    }
                    self.cpu_free[n.0] = now;
                    self.straggle[n.0] = 1.0;
                    self.waiting[n.0].clear();
                }
            }
            FaultKind::Recover(n) => {
                self.failures
                    .push(FailureRecord { time: now, kind: FailureKind::NodeRecovered(n) });
                if self.down[n.0] {
                    self.down[n.0] = false;
                    self.cpu_free[n.0] = now;
                }
            }
            FaultKind::LinkDown(n) => {
                self.failures.push(FailureRecord { time: now, kind: FailureKind::LinkWentDown(n) });
                if self.downed_uplink[n.0].is_none() {
                    if let Some(e) = self.routes.uplink_edge(n.0) {
                        self.downed_uplink[n.0] = Some(e);
                        self.edge_down[e] = true;
                        // Every flow crossing the dead edge dies with it.
                        let crossing = self.edge_flows[e].clone();
                        for fid in crossing {
                            let (task, attempt) = (self.flows[fid].task, self.flows[fid].attempt);
                            if self.live(task, attempt) {
                                self.abort_attempt(task, now, AbortCause::LinkLoss);
                            }
                        }
                        self.routes = self.mesh.routes_from(self.controller.0, &self.edge_down);
                    }
                }
            }
            FaultKind::LinkUp(n) => {
                self.failures.push(FailureRecord { time: now, kind: FailureKind::LinkRestored(n) });
                if let Some(e) = self.downed_uplink[n.0].take() {
                    self.edge_down[e] = false;
                    self.routes = self.mesh.routes_from(self.controller.0, &self.edge_down);
                    // Drain results parked behind the partition for every
                    // node the restore reconnected: ascending node id,
                    // FIFO within each node.
                    for v in 0..self.mesh.nodes() {
                        if self.waiting[v].is_empty() || !self.routes.reachable(v) {
                            continue;
                        }
                        let parked = std::mem::take(&mut self.waiting[v]);
                        for (task, attempt) in parked {
                            if !self.live(task, attempt) {
                                continue;
                            }
                            let fid = self.start_flow(
                                task,
                                attempt,
                                true,
                                NodeId(v),
                                now,
                                self.tasks[task].result_bits,
                            );
                            let s = self.state[task].as_mut().expect("live");
                            s.leg = Leg::ResultTransfer;
                            s.flow = Some(fid);
                            s.interval = (now, now);
                        }
                    }
                }
            }
            FaultKind::StragglerStart(n, factor) => {
                self.straggle[n.0] = factor;
            }
            FaultKind::StragglerEnd(n) => {
                self.straggle[n.0] = 1.0;
            }
        }
    }

    /// Input payload landed on the worker (or the controller-local leg
    /// fired): queue the compute, FIFO per node.
    fn begin_compute(&mut self, now: f64, task: usize, attempt: usize) {
        let node = self.state[task].expect("live").node;
        let free = &mut self.cpu_free[node.0];
        let start = free.max(now);
        let base =
            self.cluster.node(node).expect("validated").compute_time(self.tasks[task].input_bits);
        let dur = base * self.straggle[node.0];
        *free = start + dur;
        self.node_busy[node.0] += dur;
        self.node_touched[node.0] = true;
        let s = self.state[task].as_mut().expect("live");
        s.leg = Leg::Computing;
        s.flow = None;
        s.interval = (start, start + dur);
        s.timeline.compute_start = start;
        s.timeline.compute_end = start + dur;
        self.queue.schedule(start + dur, MEv::ComputeDone { task, attempt });
    }

    fn on_compute_done(&mut self, now: f64, task: usize, attempt: usize) {
        if !self.live(task, attempt) {
            return;
        }
        let node = self.state[task].expect("live").node;
        if node == self.controller {
            let s = self.state[task].as_mut().expect("live");
            s.leg = Leg::ResultTransfer;
            s.interval = (now, now);
            self.queue.schedule(now, MEv::ResultArrived { task, attempt });
        } else if !self.routes.reachable(node.0) {
            // Result computed but the node is partitioned off: park until
            // a LinkUp reconnects it.
            let s = self.state[task].as_mut().expect("live");
            s.leg = Leg::AwaitingLink;
            s.interval = (now, now);
            self.waiting[node.0].push((task, attempt));
        } else {
            let fid = self.start_flow(task, attempt, true, node, now, self.tasks[task].result_bits);
            let s = self.state[task].as_mut().expect("live");
            s.leg = Leg::ResultTransfer;
            s.flow = Some(fid);
            s.interval = (now, now);
        }
    }

    fn on_flow_done(&mut self, now: f64, fid: usize, version: u64) {
        let f = &self.flows[fid];
        if !f.active || f.version != version {
            return;
        }
        let latency = f.latency;
        self.end_flow(fid, now);
        self.queue.schedule(now + latency, MEv::Delivered { flow: fid });
    }

    fn on_delivered(&mut self, now: f64, fid: usize) {
        let f = &self.flows[fid];
        let (task, attempt, result) = (f.task, f.attempt, f.result);
        if !self.live(task, attempt) {
            return;
        }
        if result {
            self.resolve_completed(now, task);
        } else {
            self.begin_compute(now, task, attempt);
        }
    }

    fn resolve_completed(&mut self, now: f64, task: usize) {
        let s = self.state[task].as_mut().expect("live");
        s.timeline.result_at = now;
        s.resolved = true;
        s.completed = true;
        self.final_timelines[task] = Some(s.timeline);
        self.last_resolution = self.last_resolution.max(now);
        self.pending -= 1;
    }

    fn on_heartbeat(&mut self, now: f64, task: usize, attempt: usize) {
        let Some(st) = self.state[task] else { return };
        if st.resolved || st.attempt != attempt {
            return;
        }
        if st.aborted {
            self.failures.push(FailureRecord {
                time: now,
                kind: FailureKind::TimeoutDetected { task, node: st.node, attempt },
            });
            self.retry_or_fail(task, now);
        } else if matches!(st.leg, Leg::AwaitingLink) && !self.routes.reachable(st.node.0) {
            // Result stranded behind a partition that outlived the
            // timeout: give up on this attempt and recompute elsewhere.
            self.abort_attempt(task, now, AbortCause::Strand);
            self.failures.push(FailureRecord {
                time: now,
                kind: FailureKind::TimeoutDetected { task, node: st.node, attempt },
            });
            self.retry_or_fail(task, now);
        } else {
            // Healthy in-flight work is never preempted: re-arm.
            self.queue
                .schedule(now + self.timeout_of(task, st.node), MEv::Heartbeat { task, attempt });
        }
    }

    fn retry_or_fail(&mut self, task: usize, now: f64) {
        let used = self.state[task].expect("scheduled").attempt;
        if used > self.config.retry.max_retries {
            self.fail_task(task, now);
        } else {
            let delay = self.config.retry.backoff_base_s * 2f64.powi(used as i32 - 1);
            self.queue.schedule(now + delay, MEv::Redispatch { task });
        }
    }

    fn fail_task(&mut self, task: usize, now: f64) {
        let used = self.state[task].expect("scheduled").attempt;
        let s = self.state[task].as_mut().expect("scheduled");
        s.resolved = true;
        self.failures.push(FailureRecord {
            time: now,
            kind: FailureKind::TaskFailed { task, attempts: used },
        });
        self.last_resolution = self.last_resolution.max(now);
        self.pending -= 1;
    }

    fn on_redispatch(&mut self, now: f64, task: usize) {
        let st = self.state[task].expect("scheduled");
        if st.resolved || !st.aborted {
            return;
        }
        let next = st.attempt + 1;
        let demand = self.tasks[task].resource_demand;
        // Deterministic target selection, as on the star: preference score
        // first, then least cumulative dispatched nominal compute seconds
        // among up nodes the controller can currently reach, ties broken
        // by ascending node id.
        let mut best: Option<(f64, f64, NodeId)> = None;
        for n in self.cluster.nodes() {
            let id = n.id();
            if self.down[id.0] || (id != self.controller && !self.routes.reachable(id.0)) {
                continue;
            }
            if self.config.enforce_capacity && self.resident[id.0] + demand > n.capacity() + 1e-9 {
                continue;
            }
            let score = self.prefs.score_of(id);
            let load = self.dispatched_load[id.0];
            let better = match best {
                None => true,
                Some((bs, bl, bid)) => {
                    score > bs || (score == bs && (load < bl || (load == bl && id < bid)))
                }
            };
            if better {
                best = Some((score, load, id));
            }
        }
        match best {
            Some((_, _, node)) => {
                self.failures.push(FailureRecord {
                    time: now,
                    kind: FailureKind::Redispatched { task, node, attempt: next },
                });
                self.dispatch(task, node, now, next);
            }
            None => self.fail_task(task, now),
        }
    }

    fn run(mut self, assignment: &NodeAssignment, schedule: &FaultSchedule) -> FaultReport {
        // Faults enter the queue first so that, at equal timestamps, a
        // fault takes effect before task events of the same instant.
        for (idx, ev) in schedule.events().iter().enumerate() {
            self.queue.schedule(ev.time, MEv::Fault(idx));
        }
        let t0 = self.config.partition_overhead_s;
        for i in 0..self.tasks.len() {
            if let Some(node) = assignment.node_of(i) {
                self.dispatch(i, node, t0, 1);
                self.pending += 1;
            }
        }
        // One settlement grants every t0 flow its initial rate.
        self.settle(t0);
        while self.pending > 0 {
            let Some((now, ev)) = self.queue.pop_next() else { break };
            match ev {
                MEv::Fault(idx) => self.on_fault(now, schedule.events()[idx].kind),
                MEv::FlowDone { flow, version } => self.on_flow_done(now, flow, version),
                MEv::Delivered { flow } => self.on_delivered(now, flow),
                MEv::InputArrived { task, attempt } => {
                    if self.live(task, attempt) {
                        self.begin_compute(now, task, attempt);
                    }
                }
                MEv::ComputeDone { task, attempt } => self.on_compute_done(now, task, attempt),
                MEv::ResultArrived { task, attempt } => {
                    if self.live(task, attempt) {
                        self.resolve_completed(now, task);
                    }
                }
                MEv::Heartbeat { task, attempt } => self.on_heartbeat(now, task, attempt),
                MEv::Redispatch { task } => self.on_redispatch(now, task),
            }
            self.settle(now);
        }
        let n = self.mesh.nodes();
        FaultReport {
            processing_time: self.last_resolution + self.config.decision_overhead_s,
            timelines: self.final_timelines,
            completed: self
                .state
                .iter()
                .map(|s| s.map(|st| st.completed).unwrap_or(false))
                .collect(),
            attempts: self.attempts_used,
            failures: self.failures,
            node_busy: gather_busy(&self.node_busy, &self.node_touched),
            link_busy: gather_busy(&self.link_busy, &self.link_touched),
            down_at_end: (0..n).filter(|&v| self.down[v]).map(NodeId).collect(),
        }
    }
}

/// Simulates one allocation round under an injected [`FaultSchedule`], with
/// controller-side timeout detection, bounded retries and re-dispatch to
/// surviving nodes ([`RetryPolicy`]).
///
/// Fault semantics (DESIGN.md §9): a crash aborts every unfinished attempt
/// resident on the node (in-flight transfers, queued and executing
/// compute, parked results) and the node rejoins empty on recovery; a link
/// dropout aborts in-flight transfer legs and parks finished results until
/// restore; a straggler window multiplies compute legs starting inside it.
/// The controller detects lost attempts via per-attempt heartbeat timeouts
/// and re-dispatches after exponential backoff to the surviving node with
/// the least dispatched load (ties to the lowest id); exhausted retries
/// fail the task, which the round's decision then proceeds without.
///
/// The engine is single-threaded discrete-event simulation: results are
/// bit-identical at any `dcta-parallel` thread count, and with an empty
/// schedule the report matches [`simulate`] bitwise (heartbeat timers fire
/// only on lost attempts or after completion).
///
/// # Errors
///
/// See [`SimError`] variants: assignment validation as [`simulate`], plus
/// [`SimError::UnknownFaultNode`] / [`SimError::ControllerFault`] for bad
/// schedules and [`SimError::BadRetryPolicy`] for invalid policies.
pub fn simulate_with_faults(
    cluster: &Cluster,
    tasks: &[SimTask],
    assignment: &NodeAssignment,
    config: SimConfig,
    schedule: &FaultSchedule,
) -> Result<FaultReport, SimError> {
    simulate_with_faults_biased(
        cluster,
        tasks,
        assignment,
        config,
        schedule,
        &RedispatchPrefs::none(),
    )
}

/// [`simulate_with_faults`] with availability-biased re-dispatch targeting:
/// when the controller re-places an orphaned attempt, candidates with a
/// strictly higher [`RedispatchPrefs`] score win before the least-loaded
/// rule applies (score ties fall back to load, then ascending node id).
/// With empty prefs this is bit-identical to [`simulate_with_faults`].
///
/// # Errors
///
/// As [`simulate_with_faults`], plus [`SimError::BadRedispatchPrefs`] for
/// non-finite scores.
pub fn simulate_with_faults_biased(
    cluster: &Cluster,
    tasks: &[SimTask],
    assignment: &NodeAssignment,
    config: SimConfig,
    schedule: &FaultSchedule,
    prefs: &RedispatchPrefs,
) -> Result<FaultReport, SimError> {
    validate_assignment(cluster, tasks, assignment, config)?;
    config.retry.validate()?;
    prefs.validate()?;
    for ev in schedule.events() {
        let node = ev.kind.node();
        if cluster.node(node).is_none() {
            return Err(SimError::UnknownFaultNode { node });
        }
        if node == cluster.controller() {
            return Err(SimError::ControllerFault { node });
        }
    }
    if let NetTopology::Mesh(mesh) = cluster.topology() {
        validate_reachable(mesh, cluster, tasks, assignment)?;
        return Ok(
            MeshSim::new(cluster, mesh, tasks, config, prefs.clone()).run(assignment, schedule)
        );
    }

    let mut sim = FaultSim {
        cluster,
        tasks,
        config,
        controller: cluster.controller(),
        queue: CalendarQueue::new(),
        link_free: HashMap::new(),
        cpu_free: HashMap::new(),
        link_busy: HashMap::new(),
        node_busy: HashMap::new(),
        state: vec![None; tasks.len()],
        final_timelines: vec![None; tasks.len()],
        attempts_used: vec![0; tasks.len()],
        failures: Vec::new(),
        down: BTreeSet::new(),
        link_down: HashSet::new(),
        straggle: HashMap::new(),
        waiting: HashMap::new(),
        dispatched_load: HashMap::new(),
        resident: HashMap::new(),
        prefs: prefs.clone(),
        pending: 0,
        last_resolution: config.partition_overhead_s,
    };
    // Faults enter the queue first so that, at equal timestamps, a fault
    // takes effect before task events of the same instant (FIFO tie-break).
    for (idx, ev) in schedule.events().iter().enumerate() {
        sim.queue.schedule(ev.time, FEv::Fault(idx));
    }
    let t0 = config.partition_overhead_s;
    for i in 0..tasks.len() {
        if let Some(node) = assignment.node_of(i) {
            sim.dispatch(i, node, t0, 1);
            sim.pending += 1;
        }
    }
    while sim.pending > 0 {
        let Some((now, ev)) = sim.queue.pop_next() else { break };
        match ev {
            FEv::Fault(idx) => sim.on_fault(now, schedule.events()[idx].kind),
            FEv::InputArrived { task, attempt } => sim.on_input_arrived(now, task, attempt),
            FEv::ComputeDone { task, attempt } => sim.on_compute_done(now, task, attempt),
            FEv::ResultArrived { task, attempt } => sim.on_result_arrived(now, task, attempt),
            FEv::Heartbeat { task, attempt } => sim.on_heartbeat(now, task, attempt),
            FEv::Redispatch { task } => sim.on_redispatch(now, task),
        }
    }
    Ok(FaultReport {
        processing_time: sim.last_resolution + config.decision_overhead_s,
        timelines: sim.final_timelines,
        completed: sim.state.iter().map(|s| s.map(|st| st.completed).unwrap_or(false)).collect(),
        attempts: sim.attempts_used,
        failures: sim.failures,
        node_busy: sim.node_busy,
        link_busy: sim.link_busy,
        down_at_end: sim.down.into_iter().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::node::DeviceModel;

    fn cfg() -> SimConfig {
        SimConfig { partition_overhead_s: 0.0, decision_overhead_s: 0.0, ..SimConfig::default() }
    }

    fn one_task(bits: f64) -> Vec<SimTask> {
        vec![SimTask::new(bits, bits / 100.0, 1.0).unwrap()]
    }

    #[test]
    fn task_validation() {
        assert!(SimTask::new(-1.0, 0.0, 0.0).is_err());
        assert!(SimTask::new(0.0, f64::NAN, 0.0).is_err());
        assert!(SimTask::new(1.0, 1.0, 1.0).is_ok());
    }

    #[test]
    fn single_task_timeline_is_additive() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks = one_task(1e6);
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(1)));
        let r = simulate(&c, &tasks, &a, cfg()).unwrap();
        let tl = r.timelines[0].unwrap();
        let link = c.network().expect("star simulation path").transfer_time(NodeId(1), 1e6);
        let compute = c.node(NodeId(1)).unwrap().compute_time(1e6);
        let back = c.network().expect("star simulation path").transfer_time(NodeId(1), 1e4);
        assert!((tl.compute_start - link).abs() < 1e-9);
        assert!((tl.compute_end - (link + compute)).abs() < 1e-9);
        assert!((r.processing_time - (link + compute + back)).abs() < 1e-9);
    }

    #[test]
    fn controller_local_task_skips_network() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks = one_task(1e6);
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(0)));
        let r = simulate(&c, &tasks, &a, cfg()).unwrap();
        let compute = c.node(NodeId(0)).unwrap().compute_time(1e6);
        assert!((r.processing_time - compute).abs() < 1e-9);
        assert!(r.link_busy.is_empty());
    }

    #[test]
    fn same_node_tasks_serialize_different_nodes_parallelize() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks =
            vec![SimTask::new(1e6, 0.0, 1.0).unwrap(), SimTask::new(1e6, 0.0, 1.0).unwrap()];
        // Both on node 1.
        let mut serial = NodeAssignment::empty(2);
        serial.assign(0, Some(NodeId(1)));
        serial.assign(1, Some(NodeId(1)));
        let rs = simulate(&c, &tasks, &serial, cfg()).unwrap();
        // Split over nodes 1 and 4 (both A+ class? node 4 is A+ too: 1,4,7).
        let mut parallel = NodeAssignment::empty(2);
        parallel.assign(0, Some(NodeId(1)));
        parallel.assign(1, Some(NodeId(4)));
        let rp = simulate(&c, &tasks, &parallel, cfg()).unwrap();
        assert!(rp.processing_time < rs.processing_time);
    }

    #[test]
    fn empty_assignment_costs_only_overheads() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks = one_task(1e6);
        let a = NodeAssignment::empty(1);
        let r = simulate(
            &c,
            &tasks,
            &a,
            SimConfig {
                partition_overhead_s: 0.5,
                decision_overhead_s: 0.25,
                ..SimConfig::default()
            },
        )
        .unwrap();
        assert!((r.processing_time - 0.75).abs() < 1e-12);
        assert_eq!(r.makespan(), 0.0);
    }

    #[test]
    fn capacity_enforcement() {
        let c = Cluster::paper_testbed().unwrap();
        let cap = c.node(NodeId(1)).unwrap().capacity();
        let tasks = vec![SimTask::new(1.0, 0.0, cap + 1.0).unwrap()];
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(1)));
        assert!(matches!(simulate(&c, &tasks, &a, cfg()), Err(SimError::OverCapacity { .. })));
        // Disabled enforcement lets it through.
        let relaxed = SimConfig { enforce_capacity: false, ..cfg() };
        assert!(simulate(&c, &tasks, &a, relaxed).is_ok());
    }

    #[test]
    fn unknown_node_and_length_mismatch() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks = one_task(1.0);
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(77)));
        assert!(matches!(
            simulate(&c, &tasks, &a, cfg()),
            Err(SimError::UnknownNode { task: 0, .. })
        ));
        let a2 = NodeAssignment::empty(2);
        assert!(matches!(
            simulate(&c, &tasks, &a2, cfg()),
            Err(SimError::LengthMismatch { tasks: 1, assignments: 2 })
        ));
    }

    #[test]
    fn faster_node_finishes_sooner() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks = one_task(1e8);
        // Node 1 = A+ (slowest Pi), node 3 = B+ (fastest Pi).
        assert_eq!(c.node(NodeId(1)).unwrap().model(), DeviceModel::RaspberryPiAPlus);
        assert_eq!(c.node(NodeId(3)).unwrap().model(), DeviceModel::RaspberryPiBPlus);
        let mut slow = NodeAssignment::empty(1);
        slow.assign(0, Some(NodeId(1)));
        let mut fast = NodeAssignment::empty(1);
        fast.assign(0, Some(NodeId(3)));
        let rs = simulate(&c, &tasks, &slow, cfg()).unwrap();
        let rf = simulate(&c, &tasks, &fast, cfg()).unwrap();
        assert!(rf.processing_time < rs.processing_time);
    }

    #[test]
    fn bandwidth_scaling_reduces_processing_time() {
        let mut c = Cluster::paper_testbed().unwrap();
        let tasks = one_task(5e8);
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(1)));
        let before = simulate(&c, &tasks, &a, cfg()).unwrap().processing_time;
        c.network_mut().expect("star simulation path").scale_bandwidth(4.0);
        let after = simulate(&c, &tasks, &a, cfg()).unwrap().processing_time;
        assert!(after < before);
    }

    #[test]
    fn busy_accounting_sums_durations() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks =
            vec![SimTask::new(1e6, 1e4, 1.0).unwrap(), SimTask::new(2e6, 1e4, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(2);
        a.assign(0, Some(NodeId(2)));
        a.assign(1, Some(NodeId(2)));
        let r = simulate(&c, &tasks, &a, cfg()).unwrap();
        let expected_compute = c.node(NodeId(2)).unwrap().compute_time(1e6)
            + c.node(NodeId(2)).unwrap().compute_time(2e6);
        assert!((r.node_busy[&NodeId(2)] - expected_compute).abs() < 1e-9);
        let expected_link =
            c.network().expect("star simulation path").transfer_time(NodeId(2), 1e6)
                + c.network().expect("star simulation path").transfer_time(NodeId(2), 2e6)
                + 2.0 * c.network().expect("star simulation path").transfer_time(NodeId(2), 1e4);
        assert!((r.link_busy[&NodeId(2)] - expected_link).abs() < 1e-9);
    }

    #[test]
    fn results_share_the_link_with_inputs() {
        // Large result of task 0 must delay the input of task 1 when both
        // use the same link... actually inputs are all enqueued first (FIFO
        // at t0), so the *result* waits for the second input. Verify that
        // ordering.
        let c = Cluster::paper_testbed().unwrap();
        let tasks = vec![
            SimTask::new(1e4, 5e7, 1.0).unwrap(), // tiny input, huge result
            SimTask::new(5e7, 1e3, 1.0).unwrap(), // huge input
        ];
        let mut a = NodeAssignment::empty(2);
        a.assign(0, Some(NodeId(1)));
        a.assign(1, Some(NodeId(1)));
        let r = simulate(&c, &tasks, &a, cfg()).unwrap();
        let tl0 = r.timelines[0].unwrap();
        let tl1 = r.timelines[1].unwrap();
        // Task 0 computes quickly, but its result transfer cannot start
        // before task 1's input finished occupying the link.
        let input1_done = tl1.compute_start;
        assert!(tl0.result_at >= input1_done);
    }

    /// Thread-invariance tests flip the process-wide override; serialise.
    static THREADS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// A round big enough to cross [`PAR_MIN_SCHEDULED`]: varied task
    /// sizes, round-robin over every node including the controller, plus a
    /// sprinkling of unscheduled tasks.
    fn big_round(n: usize) -> (Cluster, Vec<SimTask>, NodeAssignment) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let c = Cluster::paper_testbed().unwrap();
        let ids: Vec<NodeId> = c.nodes().iter().map(|node| node.id()).collect();
        let mut rng = StdRng::seed_from_u64(0xE5D1);
        let tasks: Vec<SimTask> = (0..n)
            .map(|_| SimTask::new(rng.gen_range(1e3..5e6), rng.gen_range(1e2..1e5), 0.0).unwrap())
            .collect();
        let mut a = NodeAssignment::empty(n);
        for i in 0..n {
            if i % 17 == 11 {
                continue; // leave some tasks unscheduled
            }
            a.assign(i, Some(ids[i % ids.len()]));
        }
        (c, tasks, a)
    }

    fn report_bits(r: &SimReport) -> Vec<u64> {
        let mut bits = vec![r.processing_time.to_bits()];
        for tl in r.timelines.iter().flatten() {
            bits.extend([
                tl.transfer_start.to_bits(),
                tl.compute_start.to_bits(),
                tl.compute_end.to_bits(),
                tl.result_at.to_bits(),
            ]);
        }
        let mut busy: Vec<(NodeId, u64, Option<u64>)> = r
            .node_busy
            .iter()
            .map(|(&id, b)| (id, b.to_bits(), r.link_busy.get(&id).map(|l| l.to_bits())))
            .collect();
        busy.sort_by_key(|e| e.0 .0);
        for (id, nb, lb) in busy {
            bits.push(id.0 as u64);
            bits.push(nb);
            bits.push(lb.unwrap_or(u64::MAX));
        }
        bits
    }

    #[test]
    fn per_node_fan_out_matches_event_loop_bitwise() {
        let (c, tasks, a) = big_round(400);
        let config = SimConfig::default(); // non-zero overheads
        let reference = simulate_event_loop(&c, &tasks, &a, config);
        let fanned = simulate_per_node(&c, &tasks, &a, config);
        assert_eq!(report_bits(&fanned), report_bits(&reference));
        assert_eq!(fanned, reference);
        // And via the public entry point, which routes to the fan-out at
        // this size.
        assert!(a.scheduled_count() >= PAR_MIN_SCHEDULED);
        let public = simulate(&c, &tasks, &a, config).unwrap();
        assert_eq!(report_bits(&public), report_bits(&reference));
    }

    #[test]
    fn per_node_fan_out_parity_on_small_and_skewed_rounds() {
        let c = Cluster::paper_testbed().unwrap();
        // Everything on one worker (single group), plus a controller task.
        let tasks = vec![
            SimTask::new(1e6, 1e4, 0.0).unwrap(),
            SimTask::new(2e6, 1e3, 0.0).unwrap(),
            SimTask::new(5e5, 5e4, 0.0).unwrap(),
        ];
        let mut a = NodeAssignment::empty(3);
        a.assign(0, Some(NodeId(2)));
        a.assign(1, Some(NodeId(0)));
        a.assign(2, Some(NodeId(2)));
        let config = SimConfig::default();
        let reference = simulate_event_loop(&c, &tasks, &a, config);
        let fanned = simulate_per_node(&c, &tasks, &a, config);
        assert_eq!(report_bits(&fanned), report_bits(&reference));
        // Empty assignment.
        let empty = NodeAssignment::empty(3);
        assert_eq!(
            simulate_per_node(&c, &tasks, &empty, config),
            simulate_event_loop(&c, &tasks, &empty, config)
        );
    }

    #[test]
    fn parallel_simulate_is_thread_count_invariant() {
        let _g = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let (c, tasks, a) = big_round(600);
        let config = SimConfig::default();
        let reference = {
            let _t = parallel::ScopedThreads::new(1);
            simulate(&c, &tasks, &a, config).unwrap()
        };
        for threads in [2usize, 8] {
            let _t = parallel::ScopedThreads::new(threads);
            let got = simulate(&c, &tasks, &a, config).unwrap();
            assert_eq!(report_bits(&got), report_bits(&reference), "threads {threads}");
        }
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::faults::FaultSchedule;

    fn cfg() -> SimConfig {
        SimConfig { partition_overhead_s: 0.0, decision_overhead_s: 0.0, ..SimConfig::default() }
    }

    fn has_kind(report: &FaultReport, pred: impl Fn(&FailureKind) -> bool) -> bool {
        report.failures.iter().any(|r| pred(&r.kind))
    }

    #[test]
    fn empty_schedule_is_bitwise_identical_to_simulate() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks: Vec<SimTask> =
            (1..=6).map(|i| SimTask::new(i as f64 * 5e5, 1e4, 1.0).unwrap()).collect();
        let mut a = NodeAssignment::empty(6);
        for i in 0..6 {
            a.assign(i, Some(NodeId(1 + i % 3)));
        }
        let plain = simulate(&c, &tasks, &a, SimConfig::default()).unwrap();
        let faulty =
            simulate_with_faults(&c, &tasks, &a, SimConfig::default(), &FaultSchedule::new())
                .unwrap();
        assert_eq!(plain.processing_time.to_bits(), faulty.processing_time.to_bits());
        assert_eq!(plain.timelines, faulty.timelines);
        assert_eq!(plain.node_busy, faulty.node_busy);
        assert_eq!(plain.link_busy, faulty.link_busy);
        assert!(faulty.failures.is_empty());
        assert_eq!(faulty.attempts, vec![1; 6]);
    }

    #[test]
    fn mid_compute_crash_is_detected_and_redispatched() {
        let c = Cluster::paper_testbed().unwrap();
        // Input transfer lands ≈0.168s, compute on the A+ spans ≈[0.168, 0.643].
        let tasks = vec![SimTask::new(1e6, 1e4, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(1)));
        let schedule = FaultSchedule::new().with_crash(NodeId(1), 0.3).unwrap();
        let r = simulate_with_faults(&c, &tasks, &a, cfg(), &schedule).unwrap();
        assert_eq!(r.completed_count(), 1);
        assert_eq!(r.attempts, vec![2], "one retry after the crash");
        assert!(has_kind(&r, |k| matches!(k, FailureKind::NodeCrashed(n) if *n == NodeId(1))));
        assert!(has_kind(&r, |k| matches!(k, FailureKind::AttemptAborted { task: 0, .. })));
        assert!(has_kind(&r, |k| matches!(k, FailureKind::TimeoutDetected { task: 0, .. })));
        assert!(has_kind(&r, |k| matches!(k, FailureKind::Redispatched { task: 0, .. })));
        assert_eq!(r.down_at_end, vec![NodeId(1)]);
        // The survivor attempt ran on a different node.
        assert_ne!(r.timelines[0].unwrap().node, NodeId(1));
        let healthy = simulate(&c, &tasks, &a, cfg()).unwrap();
        assert!(r.processing_time > healthy.processing_time, "recovery is not free");
    }

    #[test]
    fn no_retry_policy_fails_the_task_on_first_loss() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks = vec![SimTask::new(1e6, 1e4, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(1)));
        let schedule = FaultSchedule::new().with_crash(NodeId(1), 0.3).unwrap();
        let mut config = cfg();
        config.retry = RetryPolicy::no_retry();
        let r = simulate_with_faults(&c, &tasks, &a, config, &schedule).unwrap();
        assert_eq!(r.completed_count(), 0);
        assert_eq!(r.failed_tasks(), vec![0]);
        assert!(r.timelines[0].is_none());
        assert!(has_kind(&r, |k| matches!(k, FailureKind::TaskFailed { task: 0, attempts: 1 })));
    }

    #[test]
    fn recovered_node_accepts_redispatch() {
        let c = Cluster::testbed_with_workers(1).unwrap();
        // Decoy keeps the controller's load ledger high so the retry
        // prefers the recovered worker.
        let tasks =
            vec![SimTask::new(1e6, 1e4, 1.0).unwrap(), SimTask::new(1e8, 0.0, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(2);
        a.assign(0, Some(NodeId(1)));
        a.assign(1, Some(NodeId(0)));
        let schedule = FaultSchedule::new()
            .with_crash(NodeId(1), 0.3)
            .unwrap()
            .with_recovery(NodeId(1), 0.4)
            .unwrap();
        let r = simulate_with_faults(&c, &tasks, &a, cfg(), &schedule).unwrap();
        assert_eq!(r.completed_count(), 2);
        assert!(has_kind(
            &r,
            |k| matches!(k, FailureKind::Redispatched { task: 0, node, .. } if *node == NodeId(1))
        ));
        assert!(has_kind(&r, |k| matches!(k, FailureKind::NodeRecovered(n) if *n == NodeId(1))));
        assert!(r.down_at_end.is_empty());
        assert_eq!(r.timelines[0].unwrap().node, NodeId(1));
    }

    #[test]
    fn redispatch_prefers_lowest_node_id_on_load_ties() {
        let c = Cluster::testbed_with_workers(3).unwrap();
        let tasks = vec![SimTask::new(1e6, 1e4, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(1)));
        let schedule = FaultSchedule::new().with_crash(NodeId(1), 0.3).unwrap();
        let r = simulate_with_faults(&c, &tasks, &a, cfg(), &schedule).unwrap();
        assert_eq!(r.completed_count(), 1);
        // Nodes 0, 2 and 3 all carry zero dispatched load when the retry
        // fires; the tie breaks by ascending node id.
        assert!(has_kind(
            &r,
            |k| matches!(k, FailureKind::Redispatched { task: 0, node, .. } if *node == NodeId(0))
        ));
        assert_eq!(r.timelines[0].unwrap().node, NodeId(0));
    }

    #[test]
    fn availability_bias_overrides_the_least_loaded_rule() {
        let c = Cluster::testbed_with_workers(3).unwrap();
        // The decoy keeps node 3 the *most* loaded candidate, so only the
        // preference score can send the retry there.
        let tasks =
            vec![SimTask::new(1e6, 1e4, 1.0).unwrap(), SimTask::new(1e8, 0.0, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(2);
        a.assign(0, Some(NodeId(1)));
        a.assign(1, Some(NodeId(3)));
        let schedule = FaultSchedule::new().with_crash(NodeId(1), 0.3).unwrap();
        let prefs = RedispatchPrefs::from_scores(vec![0.1, 0.1, 0.1, 0.9]);
        let r = simulate_with_faults_biased(&c, &tasks, &a, cfg(), &schedule, &prefs).unwrap();
        assert!(has_kind(
            &r,
            |k| matches!(k, FailureKind::Redispatched { task: 0, node, .. } if *node == NodeId(3))
        ));
        assert_eq!(r.timelines[0].unwrap().node, NodeId(3));
    }

    #[test]
    fn uniform_bias_scores_degenerate_to_the_plain_rule() {
        let c = Cluster::testbed_with_workers(3).unwrap();
        let tasks = vec![SimTask::new(1e6, 1e4, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(1)));
        let schedule = FaultSchedule::new().with_crash(NodeId(1), 0.3).unwrap();
        let plain = simulate_with_faults(&c, &tasks, &a, cfg(), &schedule).unwrap();
        let prefs = RedispatchPrefs::from_scores(vec![0.5; 4]);
        let biased = simulate_with_faults_biased(&c, &tasks, &a, cfg(), &schedule, &prefs).unwrap();
        assert_eq!(plain.processing_time.to_bits(), biased.processing_time.to_bits());
        assert_eq!(plain.timelines, biased.timelines);
        assert_eq!(plain.failures, biased.failures);
    }

    #[test]
    fn non_finite_bias_scores_are_rejected() {
        let c = Cluster::testbed_with_workers(1).unwrap();
        let tasks = vec![SimTask::new(1e6, 1e4, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(1)));
        let prefs = RedispatchPrefs::from_scores(vec![0.5, f64::NAN]);
        let err = simulate_with_faults_biased(&c, &tasks, &a, cfg(), &FaultSchedule::new(), &prefs)
            .unwrap_err();
        assert!(matches!(err, SimError::BadRedispatchPrefs));
    }

    #[test]
    fn short_link_outage_parks_the_result_until_restore() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks = vec![SimTask::new(1e6, 1e4, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(1)));
        // Down across the compute-done instant (≈0.643); restored well
        // before the heartbeat (≈1.94).
        let schedule = FaultSchedule::new().with_link_outage(NodeId(1), 0.5, 1.0).unwrap();
        let r = simulate_with_faults(&c, &tasks, &a, cfg(), &schedule).unwrap();
        assert_eq!(r.completed_count(), 1);
        assert_eq!(r.attempts, vec![1], "no retry needed: the result waited out the outage");
        assert!(r.timelines[0].unwrap().result_at >= 1.0);
        assert!(has_kind(&r, |k| matches!(k, FailureKind::LinkWentDown(_))));
        assert!(has_kind(&r, |k| matches!(k, FailureKind::LinkRestored(_))));
        assert!(!has_kind(&r, |k| matches!(k, FailureKind::AttemptAborted { .. })));
    }

    #[test]
    fn long_link_outage_strands_the_result_and_triggers_retry() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks = vec![SimTask::new(1e6, 1e4, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(1)));
        let schedule = FaultSchedule::new().with_link_outage(NodeId(1), 0.5, 100.0).unwrap();
        let r = simulate_with_faults(&c, &tasks, &a, cfg(), &schedule).unwrap();
        assert_eq!(r.completed_count(), 1);
        assert_eq!(r.attempts, vec![2]);
        assert_ne!(r.timelines[0].unwrap().node, NodeId(1));
        assert!(has_kind(&r, |k| matches!(k, FailureKind::AttemptAborted { task: 0, .. })));
        assert!(r.processing_time < 100.0, "retry beat waiting for the link");
    }

    #[test]
    fn straggler_window_multiplies_compute() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks = vec![SimTask::new(1e6, 1e4, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(1)));
        let schedule = FaultSchedule::new().with_straggler(NodeId(1), 0.0, 10.0, 3.0).unwrap();
        let r = simulate_with_faults(&c, &tasks, &a, cfg(), &schedule).unwrap();
        let tl = r.timelines[0].unwrap();
        let nominal = c.node(NodeId(1)).unwrap().compute_time(1e6);
        assert!((tl.compute_end - tl.compute_start - 3.0 * nominal).abs() < 1e-9);
        assert_eq!(r.attempts, vec![1], "a straggler is slow, not lost");
    }

    #[test]
    fn retries_exhaust_when_every_host_keeps_crashing() {
        let c = Cluster::testbed_with_workers(2).unwrap();
        let tasks =
            vec![SimTask::new(1e6, 1e4, 1.0).unwrap(), SimTask::new(1e8, 0.0, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(2);
        a.assign(0, Some(NodeId(1)));
        a.assign(1, Some(NodeId(0))); // decoy load keeps the controller unattractive
        let mut config = cfg();
        config.retry.max_retries = 1;
        // First host dies mid-compute; the retry lands on node 2 (least
        // load), which dies mid-compute too.
        let schedule = FaultSchedule::new()
            .with_crash(NodeId(1), 0.3)
            .unwrap()
            .with_crash(NodeId(2), 2.2)
            .unwrap();
        let r = simulate_with_faults(&c, &tasks, &a, config, &schedule).unwrap();
        assert_eq!(r.failed_tasks(), vec![0]);
        assert_eq!(r.attempts[0], 2);
        assert!(r.completed[1], "the decoy task is unaffected");
        assert!(has_kind(&r, |k| matches!(k, FailureKind::TaskFailed { task: 0, attempts: 2 })));
        assert_eq!(r.down_at_end, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn fault_schedule_validation() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks = vec![SimTask::new(1e6, 1e4, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(1)));
        let ghost = FaultSchedule::new().with_crash(NodeId(77), 1.0).unwrap();
        assert!(matches!(
            simulate_with_faults(&c, &tasks, &a, cfg(), &ghost),
            Err(SimError::UnknownFaultNode { node: NodeId(77) })
        ));
        let coup = FaultSchedule::new().with_crash(NodeId(0), 1.0).unwrap();
        assert!(matches!(
            simulate_with_faults(&c, &tasks, &a, cfg(), &coup),
            Err(SimError::ControllerFault { node: NodeId(0) })
        ));
        let mut config = cfg();
        config.retry.min_timeout_s = 0.0;
        assert!(matches!(
            simulate_with_faults(&c, &tasks, &a, config, &FaultSchedule::new()),
            Err(SimError::BadRetryPolicy { .. })
        ));
        // Bad assignments fail through the shared validator.
        let mut ghost_assignment = NodeAssignment::empty(1);
        ghost_assignment.assign(0, Some(NodeId(42)));
        assert!(matches!(
            simulate_with_faults(&c, &tasks, &ghost_assignment, cfg(), &FaultSchedule::new()),
            Err(SimError::UnknownNode { task: 0, node: NodeId(42) })
        ));
    }

    #[test]
    fn crash_refunds_lost_compute_reservations() {
        let c = Cluster::paper_testbed().unwrap();
        // Two tasks queued on node 1; crash kills both (one executing, one
        // queued) and both re-run elsewhere.
        let tasks =
            vec![SimTask::new(1e6, 1e4, 1.0).unwrap(), SimTask::new(1e6, 1e4, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(2);
        a.assign(0, Some(NodeId(1)));
        a.assign(1, Some(NodeId(1)));
        let schedule = FaultSchedule::new().with_crash(NodeId(1), 0.3).unwrap();
        let r = simulate_with_faults(&c, &tasks, &a, cfg(), &schedule).unwrap();
        assert_eq!(r.completed_count(), 2);
        // Node 1's committed compute is only what elapsed before the crash:
        // compute started ≈0.168 and died at 0.3.
        let burned = r.node_busy.get(&NodeId(1)).copied().unwrap_or(0.0);
        assert!((0.0..0.2).contains(&burned), "refund missing: {burned}");
    }
}

#[cfg(test)]
mod medium_tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::network::{MediumMode, StarNetwork};
    use crate::node::{DeviceModel, Node};

    fn shared_cluster() -> Cluster {
        let nodes: Vec<Node> = (0..4)
            .map(|i| {
                Node::new(
                    NodeId(i),
                    if i == 0 { DeviceModel::Laptop } else { DeviceModel::RaspberryPiB },
                )
            })
            .collect();
        let net = StarNetwork::uniform(1e6, 0.0).unwrap().with_medium(MediumMode::SharedMedium);
        Cluster::new(nodes, net, NodeId(0)).unwrap()
    }

    #[test]
    fn shared_medium_serialises_cross_node_transfers() {
        let per_link = Cluster::paper_testbed().unwrap();
        let shared = shared_cluster();
        // Three transfer-heavy tasks on three different nodes.
        let tasks: Vec<SimTask> = (0..3).map(|_| SimTask::new(1e6, 0.0, 1.0).unwrap()).collect();
        let mut a = NodeAssignment::empty(3);
        for i in 0..3 {
            a.assign(i, Some(NodeId(i + 1)));
        }
        let cfg = SimConfig {
            partition_overhead_s: 0.0,
            decision_overhead_s: 0.0,
            enforce_capacity: false,
            ..SimConfig::default()
        };
        let r_shared = simulate(&shared, &tasks, &a, cfg).unwrap();
        // Under the shared medium, input transfers cannot overlap: the last
        // task's compute cannot start before 3 transfer times have elapsed.
        let third_start =
            r_shared.timelines.iter().flatten().map(|t| t.compute_start).fold(0.0f64, f64::max);
        let one_transfer =
            shared.network().expect("star simulation path").transfer_time(NodeId(1), 1e6);
        assert!(
            third_start >= 3.0 * one_transfer - 1e-9,
            "transfers overlapped: {third_start} < {}",
            3.0 * one_transfer
        );
        // Per-node links let them overlap.
        let r_par = simulate(&per_link, &tasks, &a, cfg).unwrap();
        let par_third =
            r_par.timelines.iter().flatten().map(|t| t.compute_start).fold(0.0f64, f64::max);
        let par_one =
            per_link.network().expect("star simulation path").transfer_time(NodeId(1), 1e6);
        assert!(par_third < 2.0 * par_one, "per-link transfers did not overlap");
    }

    #[test]
    fn single_node_workload_is_mode_invariant() {
        // All tasks on one node: both media serialise identically.
        let shared = shared_cluster();
        let mut per_link_cluster = shared_cluster();
        *per_link_cluster.network_mut().expect("star simulation path") =
            StarNetwork::uniform(1e6, 0.0).unwrap().with_medium(MediumMode::PerNodeLink);
        let tasks: Vec<SimTask> = (0..3).map(|_| SimTask::new(1e6, 1e4, 1.0).unwrap()).collect();
        let mut a = NodeAssignment::empty(3);
        for i in 0..3 {
            a.assign(i, Some(NodeId(1)));
        }
        let cfg = SimConfig::default();
        let r1 = simulate(&shared, &tasks, &a, cfg).unwrap();
        let r2 = simulate(&per_link_cluster, &tasks, &a, cfg).unwrap();
        assert!((r1.processing_time - r2.processing_time).abs() < 1e-9);
    }
}

#[cfg(test)]
mod mesh_tests {
    use super::*;
    use crate::cluster::{Cluster, MeshSpec};
    use crate::faults::FaultSchedule;
    use crate::network::{Link, MeshNetwork};
    use crate::node::{DeviceModel, Node};

    fn cfg() -> SimConfig {
        SimConfig { partition_overhead_s: 0.0, decision_overhead_s: 0.0, ..SimConfig::default() }
    }

    /// Controller(0) — 1 — 2 line: the first hop is shared by every
    /// transfer, the second only by node 2's.
    fn line3(cap01: f64, cap12: f64, lat: f64) -> Cluster {
        let mut b = MeshNetwork::builder(3);
        b.add_edge(0, 1, Link::new(cap01, lat).unwrap()).unwrap();
        b.add_edge(1, 2, Link::new(cap12, lat).unwrap()).unwrap();
        let nodes = vec![
            Node::new(NodeId(0), DeviceModel::Laptop),
            Node::new(NodeId(1), DeviceModel::RaspberryPiB),
            Node::new(NodeId(2), DeviceModel::RaspberryPiB),
        ];
        Cluster::new_mesh(nodes, b.build(), NodeId(0)).unwrap()
    }

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn lone_flow_gets_full_bottleneck_capacity() {
        let c = line3(1e6, 2e6, 0.01);
        let tasks = vec![SimTask::new(1e6, 0.0, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(2)));
        let r = simulate(&c, &tasks, &a, cfg()).unwrap();
        let tl = r.timelines[0].unwrap();
        // A lone flow's share is exactly 1.0 on both hops, so it
        // serialises at the bottleneck (1e6 bps) and lands after the two
        // hops' propagation latency.
        assert_eq!(tl.transfer_start, 0.0);
        approx(tl.compute_start, 1.0 + 0.02);
        // The zero-bit result skips the fluid phase: pure path latency.
        approx(tl.result_at, tl.compute_end + 0.02);
    }

    #[test]
    fn two_flow_split_matches_closed_form() {
        let c = line3(1e6, 1e6, 0.0);
        let tasks =
            vec![SimTask::new(1e6, 0.0, 1.0).unwrap(), SimTask::new(1e6, 0.0, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(2);
        a.assign(0, Some(NodeId(1)));
        a.assign(1, Some(NodeId(2)));
        let r = simulate(&c, &tasks, &a, cfg()).unwrap();
        // Both flows cross the first hop with equal weights: each is
        // granted cap/2 = 0.5e6 bps, so both 1e6-bit payloads land at 2.0.
        approx(r.timelines[0].unwrap().compute_start, 2.0);
        approx(r.timelines[1].unwrap().compute_start, 2.0);
        // Alone, the same payload lands in half the time.
        let mut solo = NodeAssignment::empty(2);
        solo.assign(0, Some(NodeId(1)));
        let rs = simulate(&c, &tasks, &solo, cfg()).unwrap();
        approx(rs.timelines[0].unwrap().compute_start, 1.0);
    }

    #[test]
    fn three_flow_split_takes_min_over_path() {
        let c = line3(6e6, 0.5e6, 0.0);
        let tasks = vec![
            SimTask::new(3e6, 0.0, 1.0).unwrap(),
            SimTask::new(2e6, 0.0, 1.0).unwrap(),
            SimTask::new(1e6, 0.0, 1.0).unwrap(),
        ];
        let mut a = NodeAssignment::empty(3);
        a.assign(0, Some(NodeId(1)));
        a.assign(1, Some(NodeId(1)));
        a.assign(2, Some(NodeId(2)));
        let r = simulate(&c, &tasks, &a, cfg()).unwrap();
        // First hop load = 6e6: shares are 3e6/2e6/1e6 bps — the two
        // node-1 payloads land together at 1.0. Node 2's flow is capped by
        // its second hop (0.5e6 < its 1e6 first-hop share) and lands at 2.0.
        let tl0 = r.timelines[0].unwrap();
        let tl1 = r.timelines[1].unwrap();
        approx(tl0.compute_start, 1.0);
        approx(r.timelines[2].unwrap().compute_start, 2.0);
        // Simultaneous landings compute FIFO in task order.
        assert_eq!(tl1.compute_start.to_bits(), tl0.compute_end.to_bits());
    }

    #[test]
    fn flow_release_raises_rates_incrementally() {
        // A's result (2e6 bits) joins the first hop while B's input
        // (1e6 bits, capped at 0.5e6 by its second hop) still crosses it;
        // when B's input ends, A's result is re-granted the full 2e6 bps
        // mid-flight, superseding its previously scheduled completion.
        let c = line3(2e6, 0.5e6, 0.0);
        let tasks =
            vec![SimTask::new(1e6, 2e6, 1.0).unwrap(), SimTask::new(1e6, 0.0, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(2);
        a.assign(0, Some(NodeId(1)));
        a.assign(1, Some(NodeId(2)));
        let r = simulate(&c, &tasks, &a, cfg()).unwrap();
        let cb = c.node(NodeId(1)).unwrap().compute_time(1e6);
        // A's input: share 1e6/2e6 of a 2e6 edge → 1e6 bps → lands at 1.0.
        let t_res = 1.0 + cb;
        assert!(t_res < 2.0, "compute must finish while B is still transferring");
        // B's input rides its 0.5e6 bottleneck throughout → ends at 2.0.
        approx(r.timelines[1].unwrap().compute_start, 2.0);
        // A's result: 2/3 share of 2e6 until 2.0, full 2e6 after.
        let transferred = (2.0 - t_res) * (2e6 * (2.0 / 3.0));
        let expect = 2.0 + (2e6 - transferred) / 2e6;
        approx(r.timelines[0].unwrap().result_at, expect);
    }

    #[test]
    fn mesh_empty_fault_schedule_matches_simulate_bitwise() {
        let c = Cluster::mesh_testbed(MeshSpec::new(20, 7)).unwrap();
        let tasks: Vec<SimTask> =
            (1..=8).map(|i| SimTask::new(i as f64 * 4e5, 1e4, 0.0).unwrap()).collect();
        let mut a = NodeAssignment::empty(8);
        for i in 0..8 {
            a.assign(i, Some(NodeId(1 + (i * 2) % 19)));
        }
        let cfg = SimConfig { enforce_capacity: false, ..SimConfig::default() };
        let plain = simulate(&c, &tasks, &a, cfg).unwrap();
        let faulty = simulate_with_faults(&c, &tasks, &a, cfg, &FaultSchedule::new()).unwrap();
        assert_eq!(plain.processing_time.to_bits(), faulty.processing_time.to_bits());
        assert_eq!(plain.timelines, faulty.timelines);
        assert_eq!(plain.node_busy, faulty.node_busy);
        assert_eq!(plain.link_busy, faulty.link_busy);
        assert!(faulty.failures.is_empty());
    }

    #[test]
    fn unreachable_mesh_node_is_rejected() {
        let mut b = MeshNetwork::builder(3);
        b.add_edge(0, 1, Link::new(1e6, 0.0).unwrap()).unwrap();
        let nodes = vec![
            Node::new(NodeId(0), DeviceModel::Laptop),
            Node::new(NodeId(1), DeviceModel::RaspberryPiB),
            Node::new(NodeId(2), DeviceModel::RaspberryPiB),
        ];
        let c = Cluster::new_mesh(nodes, b.build(), NodeId(0)).unwrap();
        let tasks = vec![SimTask::new(1e6, 0.0, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(2)));
        assert!(matches!(
            simulate(&c, &tasks, &a, cfg()),
            Err(SimError::UnreachableNode { task: 0, node: NodeId(2) })
        ));
        assert!(matches!(
            simulate_with_faults(&c, &tasks, &a, cfg(), &FaultSchedule::new()),
            Err(SimError::UnreachableNode { task: 0, node: NodeId(2) })
        ));
    }

    #[test]
    fn mesh_crash_is_detected_and_redispatched() {
        let c = line3(1e6, 1e6, 0.0);
        let tasks = vec![SimTask::new(1e6, 1e4, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(2)));
        // Input lands at 1.0; compute spans ≈[1.0, 1.0 + cb]. Crash inside.
        let cb = c.node(NodeId(2)).unwrap().compute_time(1e6);
        let schedule = FaultSchedule::new().with_crash(NodeId(2), 1.0 + cb / 2.0).unwrap();
        let r = simulate_with_faults(&c, &tasks, &a, cfg(), &schedule).unwrap();
        assert_eq!(r.completed_count(), 1);
        assert_eq!(r.attempts, vec![2], "one retry after the crash");
        assert_ne!(r.timelines[0].unwrap().node, NodeId(2));
        assert_eq!(r.down_at_end, vec![NodeId(2)]);
        let kinds = |p: fn(&FailureKind) -> bool| r.failures.iter().any(|f| p(&f.kind));
        assert!(kinds(|k| matches!(k, FailureKind::NodeCrashed(n) if *n == NodeId(2))));
        assert!(kinds(|k| matches!(k, FailureKind::AttemptAborted { task: 0, .. })));
        assert!(kinds(|k| matches!(k, FailureKind::Redispatched { task: 0, .. })));
    }

    #[test]
    fn link_dropout_forces_reroute_around_dead_edge() {
        // Triangle: fast two-hop route to node 2 plus a slow direct edge.
        let mut b = MeshNetwork::builder(3);
        b.add_edge(0, 1, Link::new(2e6, 0.0).unwrap()).unwrap();
        b.add_edge(1, 2, Link::new(2e6, 0.0).unwrap()).unwrap();
        b.add_edge(0, 2, Link::new(0.1e6, 0.0).unwrap()).unwrap();
        let nodes = vec![
            Node::new(NodeId(0), DeviceModel::Laptop),
            Node::new(NodeId(1), DeviceModel::RaspberryPiB),
            Node::new(NodeId(2), DeviceModel::RaspberryPiB),
        ];
        let c = Cluster::new_mesh(nodes, b.build(), NodeId(0)).unwrap();
        let tasks = vec![SimTask::new(1e6, 1e6, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(2)));
        // Input takes the fast route and lands at 0.5; the dropout fires
        // mid-compute (no flow in flight), killing node 2's uplink edge
        // 1—2. The result leg must re-route over the slow direct edge.
        let cb = c.node(NodeId(2)).unwrap().compute_time(1e6);
        assert!(cb > 0.1, "compute window must contain the dropout");
        let schedule =
            FaultSchedule::new().with_link_outage(NodeId(2), 0.5 + cb / 2.0, 1e6).unwrap();
        let r = simulate_with_faults(&c, &tasks, &a, cfg(), &schedule).unwrap();
        assert_eq!(r.completed_count(), 1);
        assert_eq!(r.attempts, vec![1], "the attempt itself survives the dropout");
        let tl = r.timelines[0].unwrap();
        assert!((tl.compute_start - 0.5).abs() < 1e-9);
        // Result serialises at the direct edge's 0.1e6 bps: 10 seconds.
        assert!((tl.result_at - (tl.compute_end + 10.0)).abs() < 1e-9);
    }

    #[test]
    fn link_dropout_aborts_crossing_flows() {
        let c = line3(1e6, 1e6, 0.0);
        let tasks = vec![SimTask::new(2e6, 0.0, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(2)));
        // The input flow crosses edge 1—2 until 2.0; the dropout at 0.5
        // kills it and partitions node 2, so the retry lands elsewhere.
        let schedule = FaultSchedule::new().with_link_outage(NodeId(2), 0.5, 1e6).unwrap();
        let r = simulate_with_faults(&c, &tasks, &a, cfg(), &schedule).unwrap();
        assert_eq!(r.completed_count(), 1);
        assert_eq!(r.attempts, vec![2]);
        assert_ne!(r.timelines[0].unwrap().node, NodeId(2));
        let kinds = |p: fn(&FailureKind) -> bool| r.failures.iter().any(|f| p(&f.kind));
        assert!(kinds(|k| matches!(k, FailureKind::LinkWentDown(n) if *n == NodeId(2))));
        assert!(kinds(|k| matches!(k, FailureKind::AttemptAborted { task: 0, .. })));
        assert!(kinds(|k| matches!(k, FailureKind::Redispatched { task: 0, .. })));
    }

    #[test]
    fn link_restore_drains_parked_results() {
        let c = line3(1e6, 1e6, 0.0);
        let tasks = vec![SimTask::new(1e6, 1e6, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(2)));
        let cb = c.node(NodeId(2)).unwrap().compute_time(1e6);
        // Dropout during compute, restore shortly after the result is
        // ready: the parked result ships at restore time over both hops.
        let up = 1.0 + cb + 0.2;
        let schedule =
            FaultSchedule::new().with_link_outage(NodeId(2), 1.0 + cb / 2.0, up).unwrap();
        let r = simulate_with_faults(&c, &tasks, &a, cfg(), &schedule).unwrap();
        assert_eq!(r.completed_count(), 1);
        assert_eq!(r.attempts, vec![1], "parked result needs no retry");
        let tl = r.timelines[0].unwrap();
        // Result flow starts at the restore and gets the full 1e6 bps.
        assert!((tl.result_at - (up + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn mesh_runs_are_deterministic() {
        let c = Cluster::mesh_testbed(MeshSpec::new(100, 3)).unwrap();
        let tasks: Vec<SimTask> =
            (0..40).map(|i| SimTask::new((i as f64 + 1.0) * 1e5, 2e4, 0.0).unwrap()).collect();
        let mut a = NodeAssignment::empty(40);
        for i in 0..40 {
            a.assign(i, Some(NodeId(1 + (i * 7) % 99)));
        }
        let cfg = SimConfig { enforce_capacity: false, ..SimConfig::default() };
        let workers: Vec<NodeId> = (1..100).map(NodeId).collect();
        let schedule = FaultSchedule::seeded(17, &workers, 0.5, 0.5, 5.0).unwrap();
        let r1 = simulate_with_faults(&c, &tasks, &a, cfg, &schedule).unwrap();
        let r2 = simulate_with_faults(&c, &tasks, &a, cfg, &schedule).unwrap();
        assert_eq!(r1, r2);
    }
}
