//! Executing an allocation on the simulated cluster.
//!
//! The evaluation metric is the paper's **processing time** `PT = t_s − t_c`
//! (§V-C): from experiment start (`t_c`) to the instant the industry
//! decision is made (`t_s`). The simulated timeline of one round is:
//!
//! 1. the controller partitions the application (`partition_overhead_s`);
//! 2. each allocated task's input ships over the worker's star link
//!    (links are half-duplex FIFO: inputs and results serialise);
//! 3. the worker computes (non-preemptive FIFO per node);
//! 4. the (small) result ships back;
//! 5. once every allocated task's result has arrived, the controller
//!    aggregates the decision (`decision_overhead_s`).
//!
//! Tasks allocated to the controller itself skip the network.

use crate::cluster::Cluster;
use crate::event::EventQueue;
use crate::network::MediumMode;
use crate::node::NodeId;
use std::collections::HashMap;
use std::fmt;

/// A task as the simulator sees it: pure demands, no learning semantics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTask {
    /// Input payload shipped to the worker, in bits.
    pub input_bits: f64,
    /// Result payload shipped back, in bits.
    pub result_bits: f64,
    /// Abstract resource demand (`v_j` of Eq. 4) — checked, not timed.
    pub resource_demand: f64,
}

impl SimTask {
    /// Creates a task, validating non-negative finite demands.
    ///
    /// # Errors
    ///
    /// [`SimError::BadTask`] on invalid values.
    pub fn new(input_bits: f64, result_bits: f64, resource_demand: f64) -> Result<Self, SimError> {
        let ok = |v: f64| v.is_finite() && v >= 0.0;
        if !(ok(input_bits) && ok(result_bits) && ok(resource_demand)) {
            return Err(SimError::BadTask { input_bits, result_bits, resource_demand });
        }
        Ok(Self { input_bits, result_bits, resource_demand })
    }
}

/// Maps each task to a worker (or leaves it unscheduled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeAssignment {
    assignment: Vec<Option<NodeId>>,
}

impl NodeAssignment {
    /// All tasks unscheduled.
    pub fn empty(num_tasks: usize) -> Self {
        Self { assignment: vec![None; num_tasks] }
    }

    /// Builds from an explicit vector.
    pub fn from_vec(assignment: Vec<Option<NodeId>>) -> Self {
        Self { assignment }
    }

    /// Number of tasks covered.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// `true` when covering zero tasks.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Node of task `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn node_of(&self, i: usize) -> Option<NodeId> {
        self.assignment[i]
    }

    /// Assigns task `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn assign(&mut self, i: usize, node: Option<NodeId>) {
        self.assignment[i] = node;
    }

    /// Number of scheduled tasks.
    pub fn scheduled_count(&self) -> usize {
        self.assignment.iter().filter(|a| a.is_some()).count()
    }
}

/// Fixed overheads of one allocation round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Time the controller spends partitioning the application.
    pub partition_overhead_s: f64,
    /// Time the controller spends aggregating the final decision.
    pub decision_overhead_s: f64,
    /// When `true`, a task whose resource demand exceeds its node's
    /// remaining capacity is an error; when `false` it is silently allowed
    /// (useful for what-if sweeps).
    pub enforce_capacity: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self { partition_overhead_s: 0.05, decision_overhead_s: 0.02, enforce_capacity: true }
    }
}

/// Error raised by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Invalid task parameters.
    BadTask {
        /// Offending input size.
        input_bits: f64,
        /// Offending result size.
        result_bits: f64,
        /// Offending resource demand.
        resource_demand: f64,
    },
    /// Assignment length differs from the task list.
    LengthMismatch {
        /// Tasks supplied.
        tasks: usize,
        /// Assignment entries supplied.
        assignments: usize,
    },
    /// A task was assigned to a node that is not in the cluster.
    UnknownNode {
        /// Task index.
        task: usize,
        /// The missing node.
        node: NodeId,
    },
    /// Aggregate resource demand on a node exceeded its capacity.
    OverCapacity {
        /// The overloaded node.
        node: NodeId,
        /// Aggregate demand placed on it.
        demand: f64,
        /// Its capacity.
        capacity: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadTask { input_bits, result_bits, resource_demand } => write!(
                f,
                "invalid task (input {input_bits} bits, result {result_bits} bits, resource {resource_demand})"
            ),
            SimError::LengthMismatch { tasks, assignments } => {
                write!(f, "{tasks} tasks but {assignments} assignment entries")
            }
            SimError::UnknownNode { task, node } => {
                write!(f, "task {task} assigned to unknown {node}")
            }
            SimError::OverCapacity { node, demand, capacity } => {
                write!(f, "{node} overloaded: demand {demand} > capacity {capacity}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Timeline of one task's journey through the pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskTimeline {
    /// Node that executed the task.
    pub node: NodeId,
    /// When the input transfer began.
    pub transfer_start: f64,
    /// When the input landed on the worker.
    pub compute_start: f64,
    /// When computation finished.
    pub compute_end: f64,
    /// When the result arrived back at the controller.
    pub result_at: f64,
}

/// Result of simulating one allocation round.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// The paper's PT metric: time from round start to decision.
    pub processing_time: f64,
    /// Per-task timelines, `None` for unscheduled tasks.
    pub timelines: Vec<Option<TaskTimeline>>,
    /// Total busy compute seconds per node.
    pub node_busy: HashMap<NodeId, f64>,
    /// Total busy link seconds per node.
    pub link_busy: HashMap<NodeId, f64>,
}

impl SimReport {
    /// Completion time of the latest task, before decision overhead; equals
    /// partition overhead when nothing was scheduled.
    pub fn makespan(&self) -> f64 {
        self.timelines.iter().flatten().map(|t| t.result_at).fold(0.0, f64::max)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Input transfer finished for task.
    InputArrived(usize),
    /// Compute finished for task.
    ComputeDone(usize),
    /// Result transfer finished for task.
    ResultArrived(usize),
}

/// Simulates one allocation round.
///
/// # Errors
///
/// See [`SimError`] variants.
pub fn simulate(
    cluster: &Cluster,
    tasks: &[SimTask],
    assignment: &NodeAssignment,
    config: SimConfig,
) -> Result<SimReport, SimError> {
    if tasks.len() != assignment.len() {
        return Err(SimError::LengthMismatch { tasks: tasks.len(), assignments: assignment.len() });
    }
    // Validate node references and capacities.
    let mut demand: HashMap<NodeId, f64> = HashMap::new();
    for i in 0..tasks.len() {
        if let Some(node) = assignment.node_of(i) {
            if cluster.node(node).is_none() {
                return Err(SimError::UnknownNode { task: i, node });
            }
            *demand.entry(node).or_insert(0.0) += tasks[i].resource_demand;
        }
    }
    if config.enforce_capacity {
        for (&node, &d) in &demand {
            let capacity = cluster.node(node).expect("validated above").capacity();
            if d > capacity + 1e-9 {
                return Err(SimError::OverCapacity { node, demand: d, capacity });
            }
        }
    }

    let controller = cluster.controller();
    // In shared-medium mode every transfer serialises through one channel,
    // modelled as a single virtual link key.
    let shared_key = NodeId(usize::MAX);
    let link_key = |node: NodeId| match cluster.network().medium() {
        MediumMode::PerNodeLink => node,
        MediumMode::SharedMedium => shared_key,
    };
    let mut queue: EventQueue<Ev> = EventQueue::new();
    let mut link_free: HashMap<NodeId, f64> = HashMap::new();
    let mut cpu_free: HashMap<NodeId, f64> = HashMap::new();
    let mut link_busy: HashMap<NodeId, f64> = HashMap::new();
    let mut node_busy: HashMap<NodeId, f64> = HashMap::new();
    let mut timelines: Vec<Option<TaskTimeline>> = vec![None; tasks.len()];

    let t0 = config.partition_overhead_s;
    // Dispatch all inputs at t0, FIFO per link in task order.
    for i in 0..tasks.len() {
        let Some(node) = assignment.node_of(i) else { continue };
        let (transfer_start, arrive) = if node == controller {
            (t0, t0) // local task: no network hop
        } else {
            let free = link_free.entry(link_key(node)).or_insert(t0);
            let start = free.max(t0);
            let dur = cluster.network().transfer_time(node, tasks[i].input_bits);
            *free = start + dur;
            *link_busy.entry(node).or_insert(0.0) += dur;
            (start, start + dur)
        };
        timelines[i] = Some(TaskTimeline {
            node,
            transfer_start,
            compute_start: 0.0,
            compute_end: 0.0,
            result_at: 0.0,
        });
        queue.schedule(arrive, Ev::InputArrived(i));
    }

    let mut pending = assignment.scheduled_count();
    let mut last_result = t0;
    while let Some((now, ev)) = queue.pop_next() {
        match ev {
            Ev::InputArrived(i) => {
                let node = timelines[i].expect("scheduled task").node;
                let free = cpu_free.entry(node).or_insert(now);
                let start = free.max(now);
                let dur = cluster.node(node).expect("validated").compute_time(tasks[i].input_bits);
                *free = start + dur;
                *node_busy.entry(node).or_insert(0.0) += dur;
                let tl = timelines[i].as_mut().expect("scheduled task");
                tl.compute_start = start;
                tl.compute_end = start + dur;
                queue.schedule(start + dur, Ev::ComputeDone(i));
            }
            Ev::ComputeDone(i) => {
                let node = timelines[i].expect("scheduled task").node;
                if node == controller {
                    queue.schedule(now, Ev::ResultArrived(i));
                } else {
                    let free = link_free.entry(link_key(node)).or_insert(now);
                    let start = free.max(now);
                    let dur = cluster.network().transfer_time(node, tasks[i].result_bits);
                    *free = start + dur;
                    *link_busy.entry(node).or_insert(0.0) += dur;
                    queue.schedule(start + dur, Ev::ResultArrived(i));
                }
            }
            Ev::ResultArrived(i) => {
                timelines[i].as_mut().expect("scheduled task").result_at = now;
                last_result = last_result.max(now);
                pending -= 1;
                if pending == 0 {
                    break;
                }
            }
        }
    }

    Ok(SimReport {
        processing_time: last_result + config.decision_overhead_s,
        timelines,
        node_busy,
        link_busy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::node::DeviceModel;

    fn cfg() -> SimConfig {
        SimConfig { partition_overhead_s: 0.0, decision_overhead_s: 0.0, enforce_capacity: true }
    }

    fn one_task(bits: f64) -> Vec<SimTask> {
        vec![SimTask::new(bits, bits / 100.0, 1.0).unwrap()]
    }

    #[test]
    fn task_validation() {
        assert!(SimTask::new(-1.0, 0.0, 0.0).is_err());
        assert!(SimTask::new(0.0, f64::NAN, 0.0).is_err());
        assert!(SimTask::new(1.0, 1.0, 1.0).is_ok());
    }

    #[test]
    fn single_task_timeline_is_additive() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks = one_task(1e6);
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(1)));
        let r = simulate(&c, &tasks, &a, cfg()).unwrap();
        let tl = r.timelines[0].unwrap();
        let link = c.network().transfer_time(NodeId(1), 1e6);
        let compute = c.node(NodeId(1)).unwrap().compute_time(1e6);
        let back = c.network().transfer_time(NodeId(1), 1e4);
        assert!((tl.compute_start - link).abs() < 1e-9);
        assert!((tl.compute_end - (link + compute)).abs() < 1e-9);
        assert!((r.processing_time - (link + compute + back)).abs() < 1e-9);
    }

    #[test]
    fn controller_local_task_skips_network() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks = one_task(1e6);
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(0)));
        let r = simulate(&c, &tasks, &a, cfg()).unwrap();
        let compute = c.node(NodeId(0)).unwrap().compute_time(1e6);
        assert!((r.processing_time - compute).abs() < 1e-9);
        assert!(r.link_busy.is_empty());
    }

    #[test]
    fn same_node_tasks_serialize_different_nodes_parallelize() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks =
            vec![SimTask::new(1e6, 0.0, 1.0).unwrap(), SimTask::new(1e6, 0.0, 1.0).unwrap()];
        // Both on node 1.
        let mut serial = NodeAssignment::empty(2);
        serial.assign(0, Some(NodeId(1)));
        serial.assign(1, Some(NodeId(1)));
        let rs = simulate(&c, &tasks, &serial, cfg()).unwrap();
        // Split over nodes 1 and 4 (both A+ class? node 4 is A+ too: 1,4,7).
        let mut parallel = NodeAssignment::empty(2);
        parallel.assign(0, Some(NodeId(1)));
        parallel.assign(1, Some(NodeId(4)));
        let rp = simulate(&c, &tasks, &parallel, cfg()).unwrap();
        assert!(rp.processing_time < rs.processing_time);
    }

    #[test]
    fn empty_assignment_costs_only_overheads() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks = one_task(1e6);
        let a = NodeAssignment::empty(1);
        let r = simulate(
            &c,
            &tasks,
            &a,
            SimConfig {
                partition_overhead_s: 0.5,
                decision_overhead_s: 0.25,
                enforce_capacity: true,
            },
        )
        .unwrap();
        assert!((r.processing_time - 0.75).abs() < 1e-12);
        assert_eq!(r.makespan(), 0.0);
    }

    #[test]
    fn capacity_enforcement() {
        let c = Cluster::paper_testbed().unwrap();
        let cap = c.node(NodeId(1)).unwrap().capacity();
        let tasks = vec![SimTask::new(1.0, 0.0, cap + 1.0).unwrap()];
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(1)));
        assert!(matches!(simulate(&c, &tasks, &a, cfg()), Err(SimError::OverCapacity { .. })));
        // Disabled enforcement lets it through.
        let relaxed = SimConfig { enforce_capacity: false, ..cfg() };
        assert!(simulate(&c, &tasks, &a, relaxed).is_ok());
    }

    #[test]
    fn unknown_node_and_length_mismatch() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks = one_task(1.0);
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(77)));
        assert!(matches!(
            simulate(&c, &tasks, &a, cfg()),
            Err(SimError::UnknownNode { task: 0, .. })
        ));
        let a2 = NodeAssignment::empty(2);
        assert!(matches!(
            simulate(&c, &tasks, &a2, cfg()),
            Err(SimError::LengthMismatch { tasks: 1, assignments: 2 })
        ));
    }

    #[test]
    fn faster_node_finishes_sooner() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks = one_task(1e8);
        // Node 1 = A+ (slowest Pi), node 3 = B+ (fastest Pi).
        assert_eq!(c.node(NodeId(1)).unwrap().model(), DeviceModel::RaspberryPiAPlus);
        assert_eq!(c.node(NodeId(3)).unwrap().model(), DeviceModel::RaspberryPiBPlus);
        let mut slow = NodeAssignment::empty(1);
        slow.assign(0, Some(NodeId(1)));
        let mut fast = NodeAssignment::empty(1);
        fast.assign(0, Some(NodeId(3)));
        let rs = simulate(&c, &tasks, &slow, cfg()).unwrap();
        let rf = simulate(&c, &tasks, &fast, cfg()).unwrap();
        assert!(rf.processing_time < rs.processing_time);
    }

    #[test]
    fn bandwidth_scaling_reduces_processing_time() {
        let mut c = Cluster::paper_testbed().unwrap();
        let tasks = one_task(5e8);
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(1)));
        let before = simulate(&c, &tasks, &a, cfg()).unwrap().processing_time;
        c.network_mut().scale_bandwidth(4.0);
        let after = simulate(&c, &tasks, &a, cfg()).unwrap().processing_time;
        assert!(after < before);
    }

    #[test]
    fn busy_accounting_sums_durations() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks =
            vec![SimTask::new(1e6, 1e4, 1.0).unwrap(), SimTask::new(2e6, 1e4, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(2);
        a.assign(0, Some(NodeId(2)));
        a.assign(1, Some(NodeId(2)));
        let r = simulate(&c, &tasks, &a, cfg()).unwrap();
        let expected_compute = c.node(NodeId(2)).unwrap().compute_time(1e6)
            + c.node(NodeId(2)).unwrap().compute_time(2e6);
        assert!((r.node_busy[&NodeId(2)] - expected_compute).abs() < 1e-9);
        let expected_link = c.network().transfer_time(NodeId(2), 1e6)
            + c.network().transfer_time(NodeId(2), 2e6)
            + 2.0 * c.network().transfer_time(NodeId(2), 1e4);
        assert!((r.link_busy[&NodeId(2)] - expected_link).abs() < 1e-9);
    }

    #[test]
    fn results_share_the_link_with_inputs() {
        // Large result of task 0 must delay the input of task 1 when both
        // use the same link... actually inputs are all enqueued first (FIFO
        // at t0), so the *result* waits for the second input. Verify that
        // ordering.
        let c = Cluster::paper_testbed().unwrap();
        let tasks = vec![
            SimTask::new(1e4, 5e7, 1.0).unwrap(), // tiny input, huge result
            SimTask::new(5e7, 1e3, 1.0).unwrap(), // huge input
        ];
        let mut a = NodeAssignment::empty(2);
        a.assign(0, Some(NodeId(1)));
        a.assign(1, Some(NodeId(1)));
        let r = simulate(&c, &tasks, &a, cfg()).unwrap();
        let tl0 = r.timelines[0].unwrap();
        let tl1 = r.timelines[1].unwrap();
        // Task 0 computes quickly, but its result transfer cannot start
        // before task 1's input finished occupying the link.
        let input1_done = tl1.compute_start;
        assert!(tl0.result_at >= input1_done);
    }
}

#[cfg(test)]
mod medium_tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::network::{MediumMode, StarNetwork};
    use crate::node::{DeviceModel, Node};

    fn shared_cluster() -> Cluster {
        let nodes: Vec<Node> = (0..4)
            .map(|i| {
                Node::new(
                    NodeId(i),
                    if i == 0 { DeviceModel::Laptop } else { DeviceModel::RaspberryPiB },
                )
            })
            .collect();
        let net = StarNetwork::uniform(1e6, 0.0).unwrap().with_medium(MediumMode::SharedMedium);
        Cluster::new(nodes, net, NodeId(0)).unwrap()
    }

    #[test]
    fn shared_medium_serialises_cross_node_transfers() {
        let per_link = Cluster::paper_testbed().unwrap();
        let shared = shared_cluster();
        // Three transfer-heavy tasks on three different nodes.
        let tasks: Vec<SimTask> = (0..3).map(|_| SimTask::new(1e6, 0.0, 1.0).unwrap()).collect();
        let mut a = NodeAssignment::empty(3);
        for i in 0..3 {
            a.assign(i, Some(NodeId(i + 1)));
        }
        let cfg = SimConfig {
            partition_overhead_s: 0.0,
            decision_overhead_s: 0.0,
            enforce_capacity: false,
        };
        let r_shared = simulate(&shared, &tasks, &a, cfg).unwrap();
        // Under the shared medium, input transfers cannot overlap: the last
        // task's compute cannot start before 3 transfer times have elapsed.
        let third_start =
            r_shared.timelines.iter().flatten().map(|t| t.compute_start).fold(0.0f64, f64::max);
        let one_transfer = shared.network().transfer_time(NodeId(1), 1e6);
        assert!(
            third_start >= 3.0 * one_transfer - 1e-9,
            "transfers overlapped: {third_start} < {}",
            3.0 * one_transfer
        );
        // Per-node links let them overlap.
        let r_par = simulate(&per_link, &tasks, &a, cfg).unwrap();
        let par_third =
            r_par.timelines.iter().flatten().map(|t| t.compute_start).fold(0.0f64, f64::max);
        let par_one = per_link.network().transfer_time(NodeId(1), 1e6);
        assert!(par_third < 2.0 * par_one, "per-link transfers did not overlap");
    }

    #[test]
    fn single_node_workload_is_mode_invariant() {
        // All tasks on one node: both media serialise identically.
        let shared = shared_cluster();
        let mut per_link_cluster = shared_cluster();
        *per_link_cluster.network_mut() =
            StarNetwork::uniform(1e6, 0.0).unwrap().with_medium(MediumMode::PerNodeLink);
        let tasks: Vec<SimTask> = (0..3).map(|_| SimTask::new(1e6, 1e4, 1.0).unwrap()).collect();
        let mut a = NodeAssignment::empty(3);
        for i in 0..3 {
            a.assign(i, Some(NodeId(1)));
        }
        let cfg = SimConfig::default();
        let r1 = simulate(&shared, &tasks, &a, cfg).unwrap();
        let r2 = simulate(&per_link_cluster, &tasks, &a, cfg).unwrap();
        assert!((r1.processing_time - r2.processing_time).abs() < 1e-9);
    }
}
