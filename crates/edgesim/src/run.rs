//! Executing an allocation on the simulated cluster.
//!
//! The evaluation metric is the paper's **processing time** `PT = t_s − t_c`
//! (§V-C): from experiment start (`t_c`) to the instant the industry
//! decision is made (`t_s`). The simulated timeline of one round is:
//!
//! 1. the controller partitions the application (`partition_overhead_s`);
//! 2. each allocated task's input ships over the worker's star link
//!    (links are half-duplex FIFO: inputs and results serialise);
//! 3. the worker computes (non-preemptive FIFO per node);
//! 4. the (small) result ships back;
//! 5. once every allocated task's result has arrived, the controller
//!    aggregates the decision (`decision_overhead_s`).
//!
//! Tasks allocated to the controller itself skip the network.

use crate::cluster::Cluster;
use crate::event::EventQueue;
use crate::faults::{FaultKind, FaultSchedule};
use crate::network::MediumMode;
use crate::node::NodeId;
use crate::trace::{FailureKind, FailureRecord};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// A task as the simulator sees it: pure demands, no learning semantics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTask {
    /// Input payload shipped to the worker, in bits.
    pub input_bits: f64,
    /// Result payload shipped back, in bits.
    pub result_bits: f64,
    /// Abstract resource demand (`v_j` of Eq. 4) — checked, not timed.
    pub resource_demand: f64,
}

impl SimTask {
    /// Creates a task, validating non-negative finite demands.
    ///
    /// # Errors
    ///
    /// [`SimError::BadTask`] on invalid values.
    pub fn new(input_bits: f64, result_bits: f64, resource_demand: f64) -> Result<Self, SimError> {
        let ok = |v: f64| v.is_finite() && v >= 0.0;
        if !(ok(input_bits) && ok(result_bits) && ok(resource_demand)) {
            return Err(SimError::BadTask { input_bits, result_bits, resource_demand });
        }
        Ok(Self { input_bits, result_bits, resource_demand })
    }
}

/// Maps each task to a worker (or leaves it unscheduled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeAssignment {
    assignment: Vec<Option<NodeId>>,
}

impl NodeAssignment {
    /// All tasks unscheduled.
    pub fn empty(num_tasks: usize) -> Self {
        Self { assignment: vec![None; num_tasks] }
    }

    /// Builds from an explicit vector.
    pub fn from_vec(assignment: Vec<Option<NodeId>>) -> Self {
        Self { assignment }
    }

    /// Number of tasks covered.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// `true` when covering zero tasks.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Node of task `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn node_of(&self, i: usize) -> Option<NodeId> {
        self.assignment[i]
    }

    /// Assigns task `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn assign(&mut self, i: usize, node: Option<NodeId>) {
        self.assignment[i] = node;
    }

    /// Number of scheduled tasks.
    pub fn scheduled_count(&self) -> usize {
        self.assignment.iter().filter(|a| a.is_some()).count()
    }
}

/// Controller-side retry policy for fault-aware runs
/// ([`simulate_with_faults`]); plain [`simulate`] ignores it.
///
/// The controller cannot observe a crash directly — it learns of lost work
/// when a per-attempt heartbeat timeout fires. Each dispatched attempt arms
/// a timer of `timeout_factor ×` the attempt's nominal processing time
/// (input transfer + compute + result return at advertised rates, floored
/// by `min_timeout_s`); a timer firing on a healthy in-flight attempt
/// simply re-arms, so fault-free runs are untouched. A timer firing on a
/// dead attempt triggers re-dispatch after an exponential backoff
/// (`backoff_base_s × 2^(attempt−1)`), up to `max_retries` retries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Heartbeat timeout as a multiple of the attempt's nominal PT.
    pub timeout_factor: f64,
    /// Re-dispatches allowed after the first attempt (0 = fail on first
    /// loss).
    pub max_retries: usize,
    /// Backoff before the first re-dispatch; doubles on each further retry.
    pub backoff_base_s: f64,
    /// Floor on the heartbeat timeout (guards zero-cost tasks; must be
    /// positive).
    pub min_timeout_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { timeout_factor: 3.0, max_retries: 2, backoff_base_s: 0.05, min_timeout_s: 0.05 }
    }
}

impl RetryPolicy {
    /// A policy that never re-dispatches: first loss fails the task. Used
    /// as the no-recovery baseline in the fault sweep.
    pub fn no_retry() -> Self {
        Self { max_retries: 0, ..Self::default() }
    }

    fn validate(&self) -> Result<(), SimError> {
        let ok = self.timeout_factor.is_finite()
            && self.timeout_factor >= 0.0
            && self.backoff_base_s.is_finite()
            && self.backoff_base_s >= 0.0
            && self.min_timeout_s.is_finite()
            && self.min_timeout_s > 0.0;
        if ok {
            Ok(())
        } else {
            Err(SimError::BadRetryPolicy {
                timeout_factor: self.timeout_factor,
                backoff_base_s: self.backoff_base_s,
                min_timeout_s: self.min_timeout_s,
            })
        }
    }
}

/// Fixed overheads of one allocation round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Time the controller spends partitioning the application.
    pub partition_overhead_s: f64,
    /// Time the controller spends aggregating the final decision.
    pub decision_overhead_s: f64,
    /// When `true`, a task whose resource demand exceeds its node's
    /// remaining capacity is an error; when `false` it is silently allowed
    /// (useful for what-if sweeps).
    pub enforce_capacity: bool,
    /// Timeout/retry policy for fault-aware runs; ignored by [`simulate`].
    pub retry: RetryPolicy,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            partition_overhead_s: 0.05,
            decision_overhead_s: 0.02,
            enforce_capacity: true,
            retry: RetryPolicy::default(),
        }
    }
}

/// Error raised by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Invalid task parameters.
    BadTask {
        /// Offending input size.
        input_bits: f64,
        /// Offending result size.
        result_bits: f64,
        /// Offending resource demand.
        resource_demand: f64,
    },
    /// Assignment length differs from the task list.
    LengthMismatch {
        /// Tasks supplied.
        tasks: usize,
        /// Assignment entries supplied.
        assignments: usize,
    },
    /// A task was assigned to a node that is not in the cluster.
    UnknownNode {
        /// Task index.
        task: usize,
        /// The missing node.
        node: NodeId,
    },
    /// Aggregate resource demand on a node exceeded its capacity.
    OverCapacity {
        /// The overloaded node.
        node: NodeId,
        /// Aggregate demand placed on it.
        demand: f64,
        /// Its capacity.
        capacity: f64,
    },
    /// A fault schedule targets a node that is not in the cluster.
    UnknownFaultNode {
        /// The missing node.
        node: NodeId,
    },
    /// A fault schedule targets the controller, which cannot fail (it hosts
    /// the retry/recovery logic itself).
    ControllerFault {
        /// The controller node.
        node: NodeId,
    },
    /// Invalid [`RetryPolicy`] parameters.
    BadRetryPolicy {
        /// Offending timeout factor.
        timeout_factor: f64,
        /// Offending backoff base.
        backoff_base_s: f64,
        /// Offending timeout floor.
        min_timeout_s: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadTask { input_bits, result_bits, resource_demand } => write!(
                f,
                "invalid task (input {input_bits} bits, result {result_bits} bits, resource {resource_demand})"
            ),
            SimError::LengthMismatch { tasks, assignments } => {
                write!(f, "{tasks} tasks but {assignments} assignment entries")
            }
            SimError::UnknownNode { task, node } => {
                write!(f, "task {task} assigned to unknown {node}")
            }
            SimError::OverCapacity { node, demand, capacity } => {
                write!(f, "{node} overloaded: demand {demand} > capacity {capacity}")
            }
            SimError::UnknownFaultNode { node } => {
                write!(f, "fault schedule targets unknown {node}")
            }
            SimError::ControllerFault { node } => {
                write!(f, "fault schedule targets the controller {node}")
            }
            SimError::BadRetryPolicy { timeout_factor, backoff_base_s, min_timeout_s } => write!(
                f,
                "invalid retry policy (timeout_factor {timeout_factor}, backoff {backoff_base_s}, min timeout {min_timeout_s})"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Timeline of one task's journey through the pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskTimeline {
    /// Node that executed the task.
    pub node: NodeId,
    /// When the input transfer began.
    pub transfer_start: f64,
    /// When the input landed on the worker.
    pub compute_start: f64,
    /// When computation finished.
    pub compute_end: f64,
    /// When the result arrived back at the controller.
    pub result_at: f64,
}

/// Result of simulating one allocation round.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// The paper's PT metric: time from round start to decision.
    pub processing_time: f64,
    /// Per-task timelines, `None` for unscheduled tasks.
    pub timelines: Vec<Option<TaskTimeline>>,
    /// Total busy compute seconds per node.
    pub node_busy: HashMap<NodeId, f64>,
    /// Total busy link seconds per node.
    pub link_busy: HashMap<NodeId, f64>,
}

impl SimReport {
    /// Completion time of the latest task, before decision overhead; equals
    /// partition overhead when nothing was scheduled.
    pub fn makespan(&self) -> f64 {
        self.timelines.iter().flatten().map(|t| t.result_at).fold(0.0, f64::max)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Input transfer finished for task.
    InputArrived(usize),
    /// Compute finished for task.
    ComputeDone(usize),
    /// Result transfer finished for task.
    ResultArrived(usize),
}

/// Validates an assignment against the cluster: matching length, every
/// target node present, and (when `config.enforce_capacity`) aggregate
/// resource demand within each node's capacity. Shared by [`simulate`] and
/// [`simulate_with_faults`] so both reject bad input with the same typed
/// errors instead of trusting the caller.
///
/// # Errors
///
/// [`SimError::LengthMismatch`], [`SimError::UnknownNode`] or
/// [`SimError::OverCapacity`].
pub fn validate_assignment(
    cluster: &Cluster,
    tasks: &[SimTask],
    assignment: &NodeAssignment,
    config: SimConfig,
) -> Result<(), SimError> {
    if tasks.len() != assignment.len() {
        return Err(SimError::LengthMismatch { tasks: tasks.len(), assignments: assignment.len() });
    }
    let mut demand: HashMap<NodeId, f64> = HashMap::new();
    for i in 0..tasks.len() {
        if let Some(node) = assignment.node_of(i) {
            if cluster.node(node).is_none() {
                return Err(SimError::UnknownNode { task: i, node });
            }
            *demand.entry(node).or_insert(0.0) += tasks[i].resource_demand;
        }
    }
    if config.enforce_capacity {
        for (&node, &d) in &demand {
            let capacity = cluster.node(node).expect("validated above").capacity();
            if d > capacity + 1e-9 {
                return Err(SimError::OverCapacity { node, demand: d, capacity });
            }
        }
    }
    Ok(())
}

/// Scheduled-task threshold below which [`simulate`] keeps the global
/// event loop even in per-node-link mode: the paper-scale rounds (tens of
/// tasks) finish in microseconds, where thread spawn/join would dominate.
/// At or above it, the independent per-node transmission/compute legs fan
/// out across `dcta-parallel` workers. Both paths produce bit-identical
/// reports (gated by the parity tests below), so the threshold only
/// changes how the work runs, never the result.
const PAR_MIN_SCHEDULED: usize = 256;

/// Simulates one allocation round.
///
/// In [`MediumMode::PerNodeLink`] mode the nodes' timelines are mutually
/// independent — each star link and CPU is touched only by its own node's
/// tasks — so large rounds are computed per node in parallel (ordered
/// assembly, bit-identical at every thread count); small rounds and
/// [`MediumMode::SharedMedium`] (where every transfer serialises through
/// one channel) run the global discrete-event loop.
///
/// # Errors
///
/// See [`SimError`] variants.
pub fn simulate(
    cluster: &Cluster,
    tasks: &[SimTask],
    assignment: &NodeAssignment,
    config: SimConfig,
) -> Result<SimReport, SimError> {
    validate_assignment(cluster, tasks, assignment, config)?;
    if matches!(cluster.network().medium(), MediumMode::PerNodeLink)
        && assignment.scheduled_count() >= PAR_MIN_SCHEDULED
    {
        return Ok(simulate_per_node(cluster, tasks, assignment, config));
    }
    Ok(simulate_event_loop(cluster, tasks, assignment, config))
}

/// The reference discrete-event engine: one global queue, causal order,
/// FIFO tie-breaks. Handles both medium modes; [`simulate`] routes here
/// for shared-medium and small rounds, and the per-node fan-out is pinned
/// bit-identical to this loop by the parity tests.
fn simulate_event_loop(
    cluster: &Cluster,
    tasks: &[SimTask],
    assignment: &NodeAssignment,
    config: SimConfig,
) -> SimReport {
    let controller = cluster.controller();
    // In shared-medium mode every transfer serialises through one channel,
    // modelled as a single virtual link key.
    let shared_key = NodeId(usize::MAX);
    let link_key = |node: NodeId| match cluster.network().medium() {
        MediumMode::PerNodeLink => node,
        MediumMode::SharedMedium => shared_key,
    };
    let mut queue: EventQueue<Ev> = EventQueue::new();
    let mut link_free: HashMap<NodeId, f64> = HashMap::new();
    let mut cpu_free: HashMap<NodeId, f64> = HashMap::new();
    let mut link_busy: HashMap<NodeId, f64> = HashMap::new();
    let mut node_busy: HashMap<NodeId, f64> = HashMap::new();
    let mut timelines: Vec<Option<TaskTimeline>> = vec![None; tasks.len()];

    let t0 = config.partition_overhead_s;
    // Dispatch all inputs at t0, FIFO per link in task order.
    for i in 0..tasks.len() {
        let Some(node) = assignment.node_of(i) else { continue };
        let (transfer_start, arrive) = if node == controller {
            (t0, t0) // local task: no network hop
        } else {
            let free = link_free.entry(link_key(node)).or_insert(t0);
            let start = free.max(t0);
            let dur = cluster.network().transfer_time(node, tasks[i].input_bits);
            *free = start + dur;
            *link_busy.entry(node).or_insert(0.0) += dur;
            (start, start + dur)
        };
        timelines[i] = Some(TaskTimeline {
            node,
            transfer_start,
            compute_start: 0.0,
            compute_end: 0.0,
            result_at: 0.0,
        });
        queue.schedule(arrive, Ev::InputArrived(i));
    }

    let mut pending = assignment.scheduled_count();
    let mut last_result = t0;
    while let Some((now, ev)) = queue.pop_next() {
        match ev {
            Ev::InputArrived(i) => {
                let node = timelines[i].expect("scheduled task").node;
                let free = cpu_free.entry(node).or_insert(now);
                let start = free.max(now);
                let dur = cluster.node(node).expect("validated").compute_time(tasks[i].input_bits);
                *free = start + dur;
                *node_busy.entry(node).or_insert(0.0) += dur;
                let tl = timelines[i].as_mut().expect("scheduled task");
                tl.compute_start = start;
                tl.compute_end = start + dur;
                queue.schedule(start + dur, Ev::ComputeDone(i));
            }
            Ev::ComputeDone(i) => {
                let node = timelines[i].expect("scheduled task").node;
                if node == controller {
                    queue.schedule(now, Ev::ResultArrived(i));
                } else {
                    let free = link_free.entry(link_key(node)).or_insert(now);
                    let start = free.max(now);
                    let dur = cluster.network().transfer_time(node, tasks[i].result_bits);
                    *free = start + dur;
                    *link_busy.entry(node).or_insert(0.0) += dur;
                    queue.schedule(start + dur, Ev::ResultArrived(i));
                }
            }
            Ev::ResultArrived(i) => {
                timelines[i].as_mut().expect("scheduled task").result_at = now;
                last_result = last_result.max(now);
                pending -= 1;
                if pending == 0 {
                    break;
                }
            }
        }
    }

    SimReport {
        processing_time: last_result + config.decision_overhead_s,
        timelines,
        node_busy,
        link_busy,
    }
}

/// One node's completed leg of a per-node-link round: its tasks' timelines
/// plus the node-local accumulators, ready for ordered assembly.
struct NodeLeg {
    node: NodeId,
    /// `(task index, timeline)` in task order.
    timelines: Vec<(usize, TaskTimeline)>,
    node_busy: f64,
    link_busy: f64,
    /// Whether the leg reserved its star link at all (controller-local
    /// tasks never do); mirrors which `link_busy` entries the event loop
    /// creates.
    uses_link: bool,
    last_result: f64,
}

/// Per-node decomposition of [`simulate_event_loop`] for
/// [`MediumMode::PerNodeLink`]: each node's tasks replay, in task order,
/// exactly the event sequence the global loop would process for that node.
///
/// Why this is bit-identical to the event loop: inputs are dispatched at
/// `t0` in task order, reserving each link's FIFO chain up front, so a
/// node's `InputArrived` events carry non-decreasing times and pop in task
/// order (the queue breaks time ties by insertion sequence). The FIFO CPU
/// then finishes computations in that same order, so `ComputeDone` — and
/// with it the result-leg link reservations — also replays in task order.
/// No state is shared across nodes except `last_result`, a max over
/// non-negative values, which is order-invariant. Every floating-point
/// operation below is the same operation, on the same operands, in the
/// same per-node order as in the event loop.
fn simulate_per_node(
    cluster: &Cluster,
    tasks: &[SimTask],
    assignment: &NodeAssignment,
    config: SimConfig,
) -> SimReport {
    let controller = cluster.controller();
    let t0 = config.partition_overhead_s;

    // Group task indices by node, groups ordered by first appearance so
    // the fan-out and assembly order is a pure function of the assignment.
    let mut group_of: HashMap<NodeId, usize> = HashMap::new();
    let mut groups: Vec<(NodeId, Vec<usize>)> = Vec::new();
    for i in 0..tasks.len() {
        let Some(node) = assignment.node_of(i) else { continue };
        let g = *group_of.entry(node).or_insert_with(|| {
            groups.push((node, Vec::new()));
            groups.len() - 1
        });
        groups[g].1.push(i);
    }

    // Grain 1: groups are few (one per busy node) but each carries many
    // tasks, so every group is worth a worker.
    let legs: Vec<NodeLeg> = parallel::par_map_indexed_grained(groups.len(), 1, |g| {
        let (node, idxs) = &groups[g];
        node_leg(cluster, tasks, config, *node, controller, idxs)
    });

    // Serial ordered assembly.
    let mut timelines: Vec<Option<TaskTimeline>> = vec![None; tasks.len()];
    let mut node_busy: HashMap<NodeId, f64> = HashMap::new();
    let mut link_busy: HashMap<NodeId, f64> = HashMap::new();
    let mut last_result = t0;
    for leg in legs {
        node_busy.insert(leg.node, leg.node_busy);
        if leg.uses_link {
            link_busy.insert(leg.node, leg.link_busy);
        }
        last_result = last_result.max(leg.last_result);
        for (i, tl) in leg.timelines {
            timelines[i] = Some(tl);
        }
    }

    SimReport {
        processing_time: last_result + config.decision_overhead_s,
        timelines,
        node_busy,
        link_busy,
    }
}

/// Replays one node's input legs, FIFO compute, and result legs in task
/// order, mirroring the event loop's arithmetic operation for operation.
fn node_leg(
    cluster: &Cluster,
    tasks: &[SimTask],
    config: SimConfig,
    node: NodeId,
    controller: NodeId,
    idxs: &[usize],
) -> NodeLeg {
    let t0 = config.partition_overhead_s;
    let is_controller = node == controller;
    let mut link_free = t0;
    let mut cpu_free: Option<f64> = None;
    let mut node_busy = 0.0;
    let mut link_busy = 0.0;
    let mut timelines: Vec<(usize, TaskTimeline)> = Vec::with_capacity(idxs.len());
    let mut arrivals: Vec<f64> = Vec::with_capacity(idxs.len());

    // Input legs: the event loop reserves the link chain up front at t0,
    // in task order.
    for &i in idxs {
        let (transfer_start, arrive) = if is_controller {
            (t0, t0) // local task: no network hop
        } else {
            let start = link_free.max(t0);
            let dur = cluster.network().transfer_time(node, tasks[i].input_bits);
            link_free = start + dur;
            link_busy += dur;
            (start, start + dur)
        };
        timelines.push((
            i,
            TaskTimeline {
                node,
                transfer_start,
                compute_start: 0.0,
                compute_end: 0.0,
                result_at: 0.0,
            },
        ));
        arrivals.push(arrive);
    }

    // FIFO compute: arrivals are non-decreasing in task order, so the CPU
    // serves tasks in task order exactly as the event loop does.
    let compute_node = cluster.node(node).expect("validated");
    for (k, (_, tl)) in timelines.iter_mut().enumerate() {
        let arrive = arrivals[k];
        let free = cpu_free.unwrap_or(arrive);
        let start = free.max(arrive);
        let dur = compute_node.compute_time(tasks[idxs[k]].input_bits);
        cpu_free = Some(start + dur);
        node_busy += dur;
        tl.compute_start = start;
        tl.compute_end = start + dur;
    }

    // Result legs: compute ends are non-decreasing in task order, so the
    // link's return chain is reserved in task order too.
    let mut last_result = t0;
    for (k, (_, tl)) in timelines.iter_mut().enumerate() {
        let result_at = if is_controller {
            tl.compute_end
        } else {
            let start = link_free.max(tl.compute_end);
            let dur = cluster.network().transfer_time(node, tasks[idxs[k]].result_bits);
            link_free = start + dur;
            link_busy += dur;
            start + dur
        };
        tl.result_at = result_at;
        last_result = last_result.max(result_at);
    }

    NodeLeg { node, timelines, node_busy, link_busy, uses_link: !is_controller, last_result }
}

/// Result of a fault-injected allocation round ([`simulate_with_faults`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReport {
    /// PT to the controller's decision: the instant every scheduled task
    /// was either delivered or declared failed, plus decision overhead.
    pub processing_time: f64,
    /// Timeline of each task's *successful* attempt; `None` for
    /// unscheduled or failed tasks.
    pub timelines: Vec<Option<TaskTimeline>>,
    /// Whether each task's result reached the controller.
    pub completed: Vec<bool>,
    /// Attempts consumed per task (0 = never scheduled).
    pub attempts: Vec<usize>,
    /// Typed failure log, in event order.
    pub failures: Vec<FailureRecord>,
    /// Committed busy compute seconds per node. Compute reservations lost
    /// to a crash are refunded (the node reboots with an empty queue).
    pub node_busy: HashMap<NodeId, f64>,
    /// Committed busy link seconds per node. Per-node link reservations
    /// lost to a crash or link dropout are refunded; on a shared medium the
    /// channel time stays burned (the radio was transmitting).
    pub link_busy: HashMap<NodeId, f64>,
    /// Nodes still down when the round ended, ascending id.
    pub down_at_end: Vec<NodeId>,
}

impl FaultReport {
    /// Number of tasks whose result reached the controller.
    pub fn completed_count(&self) -> usize {
        self.completed.iter().filter(|c| **c).count()
    }

    /// Scheduled tasks that exhausted their retries (or had no surviving
    /// host), ascending index.
    pub fn failed_tasks(&self) -> Vec<usize> {
        (0..self.completed.len()).filter(|&i| self.attempts[i] > 0 && !self.completed[i]).collect()
    }

    /// Completion time of the latest delivered task, before decision
    /// overhead.
    pub fn makespan(&self) -> f64 {
        self.timelines.iter().flatten().map(|t| t.result_at).fold(0.0, f64::max)
    }

    /// Projects onto a [`SimReport`] (successful timelines only) so the
    /// [`crate::trace`] exporters apply unchanged.
    pub fn to_sim_report(&self) -> SimReport {
        SimReport {
            processing_time: self.processing_time,
            timelines: self.timelines.clone(),
            node_busy: self.node_busy.clone(),
            link_busy: self.link_busy.clone(),
        }
    }
}

/// Events of the fault-aware engine. Each task-scoped event carries its
/// attempt number so events of an aborted attempt become inert the moment
/// the controller re-dispatches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FEv {
    /// Index into the fault schedule fires.
    Fault(usize),
    /// Input transfer finished for (task, attempt).
    InputArrived {
        task: usize,
        attempt: usize,
    },
    ComputeDone {
        task: usize,
        attempt: usize,
    },
    ResultArrived {
        task: usize,
        attempt: usize,
    },
    /// Controller-side heartbeat timer for (task, attempt).
    Heartbeat {
        task: usize,
        attempt: usize,
    },
    /// Backoff elapsed; pick a surviving node and re-dispatch.
    Redispatch {
        task: usize,
    },
}

/// Pipeline stage of a live attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Leg {
    InputTransfer,
    Computing,
    /// Result computed but the node's link is down; parked until LinkUp.
    AwaitingLink,
    ResultTransfer,
}

#[derive(Debug, Clone, Copy)]
enum AbortCause {
    Crash,
    LinkLoss,
    /// Heartbeat gave up on a result stranded behind a dead link.
    Strand,
}

#[derive(Debug, Clone, Copy)]
struct TaskState {
    /// 1-based attempt number currently in flight (or last attempted).
    attempt: usize,
    node: NodeId,
    leg: Leg,
    /// Reserved interval of the current leg (start, end).
    interval: (f64, f64),
    aborted: bool,
    resolved: bool,
    completed: bool,
    timeline: TaskTimeline,
}

struct FaultSim<'a> {
    cluster: &'a Cluster,
    tasks: &'a [SimTask],
    config: SimConfig,
    controller: NodeId,
    queue: EventQueue<FEv>,
    link_free: HashMap<NodeId, f64>,
    cpu_free: HashMap<NodeId, f64>,
    link_busy: HashMap<NodeId, f64>,
    node_busy: HashMap<NodeId, f64>,
    state: Vec<Option<TaskState>>,
    final_timelines: Vec<Option<TaskTimeline>>,
    attempts_used: Vec<usize>,
    failures: Vec<FailureRecord>,
    down: BTreeSet<NodeId>,
    link_down: HashSet<NodeId>,
    straggle: HashMap<NodeId, f64>,
    /// Per-node FIFO of (task, attempt) results parked behind a dead link.
    waiting: HashMap<NodeId, Vec<(usize, usize)>>,
    /// Cumulative nominal compute seconds dispatched per node — the
    /// controller's load ledger for re-dispatch target selection.
    dispatched_load: HashMap<NodeId, f64>,
    /// Resource demand currently resident per node (capacity bookkeeping
    /// for retries; aborts release it, completions keep it for the round).
    resident: HashMap<NodeId, f64>,
    pending: usize,
    last_resolution: f64,
}

impl FaultSim<'_> {
    fn per_node_links(&self) -> bool {
        matches!(self.cluster.network().medium(), MediumMode::PerNodeLink)
    }

    fn link_key(&self, node: NodeId) -> NodeId {
        match self.cluster.network().medium() {
            MediumMode::PerNodeLink => node,
            MediumMode::SharedMedium => NodeId(usize::MAX),
        }
    }

    /// Heartbeat duration for `task` on `node`: retry-factor × the
    /// attempt's nominal PT at advertised rates (no queueing, no
    /// stragglers), floored by the policy minimum.
    fn timeout_of(&self, task: usize, node: NodeId) -> f64 {
        let spec = self.tasks[task];
        let compute =
            self.cluster.node(node).expect("validated node").compute_time(spec.input_bits);
        let nominal = if node == self.controller {
            compute
        } else {
            self.cluster.network().transfer_time(node, spec.input_bits)
                + compute
                + self.cluster.network().transfer_time(node, spec.result_bits)
        };
        (self.config.retry.timeout_factor * nominal).max(self.config.retry.min_timeout_s)
    }

    fn dispatch(&mut self, task: usize, node: NodeId, t: f64, attempt: usize) {
        let spec = self.tasks[task];
        let nominal =
            self.cluster.node(node).expect("validated node").compute_time(spec.input_bits);
        *self.dispatched_load.entry(node).or_insert(0.0) += nominal;
        *self.resident.entry(node).or_insert(0.0) += spec.resource_demand;
        let (transfer_start, arrive) = if node == self.controller {
            (t, t)
        } else {
            let free = self.link_free.entry(self.link_key(node)).or_insert(t);
            let start = free.max(t);
            let dur = self.cluster.network().transfer_time(node, spec.input_bits);
            *free = start + dur;
            *self.link_busy.entry(node).or_insert(0.0) += dur;
            (start, start + dur)
        };
        self.state[task] = Some(TaskState {
            attempt,
            node,
            leg: Leg::InputTransfer,
            interval: (transfer_start, arrive),
            aborted: false,
            resolved: false,
            completed: false,
            timeline: TaskTimeline {
                node,
                transfer_start,
                compute_start: 0.0,
                compute_end: 0.0,
                result_at: 0.0,
            },
        });
        self.attempts_used[task] = attempt;
        self.queue.schedule(arrive, FEv::InputArrived { task, attempt });
        self.queue.schedule(t + self.timeout_of(task, node), FEv::Heartbeat { task, attempt });
    }

    /// Kills the current attempt: refunds un-elapsed reservations where the
    /// resource collapses with the fault (crashed CPU, dead per-node link),
    /// releases residency, and leaves the attempt for the heartbeat to
    /// detect.
    fn abort_attempt(&mut self, task: usize, now: f64, cause: AbortCause) {
        let st = self.state[task].expect("abort of unscheduled task");
        match st.leg {
            Leg::InputTransfer | Leg::ResultTransfer => {
                if st.node != self.controller && self.per_node_links() {
                    let lost = st.interval.1 - st.interval.0.max(now);
                    if lost > 0.0 {
                        *self.link_busy.entry(st.node).or_insert(0.0) -= lost;
                    }
                }
            }
            Leg::Computing => {
                if matches!(cause, AbortCause::Crash) {
                    let lost = st.interval.1 - st.interval.0.max(now);
                    if lost > 0.0 {
                        *self.node_busy.entry(st.node).or_insert(0.0) -= lost;
                    }
                }
            }
            Leg::AwaitingLink => {
                if let Some(w) = self.waiting.get_mut(&st.node) {
                    w.retain(|&(t, _)| t != task);
                }
            }
        }
        *self.resident.entry(st.node).or_insert(0.0) -= self.tasks[task].resource_demand;
        let s = self.state[task].as_mut().expect("present");
        s.aborted = true;
        self.failures.push(FailureRecord {
            time: now,
            kind: FailureKind::AttemptAborted { task, node: st.node, attempt: st.attempt },
        });
    }

    fn on_fault(&mut self, now: f64, kind: FaultKind) {
        match kind {
            FaultKind::Crash(n) => {
                self.failures.push(FailureRecord { time: now, kind: FailureKind::NodeCrashed(n) });
                if self.down.insert(n) {
                    for task in 0..self.tasks.len() {
                        let Some(st) = self.state[task] else { continue };
                        if st.node == n && !st.resolved && !st.aborted {
                            self.abort_attempt(task, now, AbortCause::Crash);
                        }
                    }
                    self.cpu_free.insert(n, now);
                    if self.per_node_links() {
                        self.link_free.insert(n, now);
                    }
                    self.straggle.remove(&n);
                    self.waiting.remove(&n);
                }
            }
            FaultKind::Recover(n) => {
                self.failures
                    .push(FailureRecord { time: now, kind: FailureKind::NodeRecovered(n) });
                if self.down.remove(&n) {
                    self.cpu_free.insert(n, now);
                    if self.per_node_links() {
                        self.link_free.insert(n, now);
                    }
                }
            }
            FaultKind::LinkDown(n) => {
                self.failures.push(FailureRecord { time: now, kind: FailureKind::LinkWentDown(n) });
                if self.link_down.insert(n) {
                    for task in 0..self.tasks.len() {
                        let Some(st) = self.state[task] else { continue };
                        if st.node == n
                            && !st.resolved
                            && !st.aborted
                            && matches!(st.leg, Leg::InputTransfer | Leg::ResultTransfer)
                        {
                            self.abort_attempt(task, now, AbortCause::LinkLoss);
                        }
                    }
                    if self.per_node_links() {
                        self.link_free.insert(n, now);
                    }
                }
            }
            FaultKind::LinkUp(n) => {
                self.failures.push(FailureRecord { time: now, kind: FailureKind::LinkRestored(n) });
                if self.link_down.remove(&n) {
                    // Drain results parked behind the dead link, FIFO.
                    for (task, attempt) in self.waiting.remove(&n).unwrap_or_default() {
                        let Some(st) = self.state[task] else { continue };
                        if st.resolved || st.aborted || st.attempt != attempt {
                            continue;
                        }
                        let free = self.link_free.entry(self.link_key(n)).or_insert(now);
                        let start = free.max(now);
                        let dur =
                            self.cluster.network().transfer_time(n, self.tasks[task].result_bits);
                        *free = start + dur;
                        *self.link_busy.entry(n).or_insert(0.0) += dur;
                        let s = self.state[task].as_mut().expect("present");
                        s.leg = Leg::ResultTransfer;
                        s.interval = (start, start + dur);
                        self.queue.schedule(start + dur, FEv::ResultArrived { task, attempt });
                    }
                }
            }
            FaultKind::StragglerStart(n, factor) => {
                self.straggle.insert(n, factor);
            }
            FaultKind::StragglerEnd(n) => {
                self.straggle.remove(&n);
            }
        }
    }

    fn live(&self, task: usize, attempt: usize) -> bool {
        match self.state[task] {
            Some(st) => !st.resolved && !st.aborted && st.attempt == attempt,
            None => false,
        }
    }

    fn on_input_arrived(&mut self, now: f64, task: usize, attempt: usize) {
        if !self.live(task, attempt) {
            return;
        }
        let node = self.state[task].expect("live").node;
        let free = self.cpu_free.entry(node).or_insert(now);
        let start = free.max(now);
        let base =
            self.cluster.node(node).expect("validated").compute_time(self.tasks[task].input_bits);
        // Straggler factor of the window the compute leg *starts* in; 1.0×
        // multiplies bit-exactly, preserving fault-free parity.
        let dur = base * self.straggle.get(&node).copied().unwrap_or(1.0);
        *free = start + dur;
        *self.node_busy.entry(node).or_insert(0.0) += dur;
        let s = self.state[task].as_mut().expect("live");
        s.leg = Leg::Computing;
        s.interval = (start, start + dur);
        s.timeline.compute_start = start;
        s.timeline.compute_end = start + dur;
        self.queue.schedule(start + dur, FEv::ComputeDone { task, attempt });
    }

    fn on_compute_done(&mut self, now: f64, task: usize, attempt: usize) {
        if !self.live(task, attempt) {
            return;
        }
        let node = self.state[task].expect("live").node;
        if node == self.controller {
            let s = self.state[task].as_mut().expect("live");
            s.leg = Leg::ResultTransfer;
            s.interval = (now, now);
            self.queue.schedule(now, FEv::ResultArrived { task, attempt });
        } else if self.link_down.contains(&node) {
            let s = self.state[task].as_mut().expect("live");
            s.leg = Leg::AwaitingLink;
            s.interval = (now, now);
            self.waiting.entry(node).or_default().push((task, attempt));
        } else {
            let free = self.link_free.entry(self.link_key(node)).or_insert(now);
            let start = free.max(now);
            let dur = self.cluster.network().transfer_time(node, self.tasks[task].result_bits);
            *free = start + dur;
            *self.link_busy.entry(node).or_insert(0.0) += dur;
            let s = self.state[task].as_mut().expect("live");
            s.leg = Leg::ResultTransfer;
            s.interval = (start, start + dur);
            self.queue.schedule(start + dur, FEv::ResultArrived { task, attempt });
        }
    }

    fn on_result_arrived(&mut self, now: f64, task: usize, attempt: usize) {
        if !self.live(task, attempt) {
            return;
        }
        let s = self.state[task].as_mut().expect("live");
        s.timeline.result_at = now;
        s.resolved = true;
        s.completed = true;
        self.final_timelines[task] = Some(s.timeline);
        self.last_resolution = self.last_resolution.max(now);
        self.pending -= 1;
    }

    fn on_heartbeat(&mut self, now: f64, task: usize, attempt: usize) {
        let Some(st) = self.state[task] else { return };
        if st.resolved || st.attempt != attempt {
            return;
        }
        if st.aborted {
            self.failures.push(FailureRecord {
                time: now,
                kind: FailureKind::TimeoutDetected { task, node: st.node, attempt },
            });
            self.retry_or_fail(task, now);
        } else if matches!(st.leg, Leg::AwaitingLink) && self.link_down.contains(&st.node) {
            // Result stranded behind a link that is still down at timeout:
            // give up on this attempt and recompute elsewhere.
            self.abort_attempt(task, now, AbortCause::Strand);
            self.failures.push(FailureRecord {
                time: now,
                kind: FailureKind::TimeoutDetected { task, node: st.node, attempt },
            });
            self.retry_or_fail(task, now);
        } else {
            // Healthy in-flight work is never preempted: re-arm. Every leg
            // completes in finite time, so re-arming terminates.
            self.queue
                .schedule(now + self.timeout_of(task, st.node), FEv::Heartbeat { task, attempt });
        }
    }

    fn retry_or_fail(&mut self, task: usize, now: f64) {
        let used = self.state[task].expect("scheduled").attempt;
        if used > self.config.retry.max_retries {
            self.fail_task(task, now);
        } else {
            let delay = self.config.retry.backoff_base_s * 2f64.powi(used as i32 - 1);
            self.queue.schedule(now + delay, FEv::Redispatch { task });
        }
    }

    fn fail_task(&mut self, task: usize, now: f64) {
        let used = self.state[task].expect("scheduled").attempt;
        let s = self.state[task].as_mut().expect("scheduled");
        s.resolved = true;
        self.failures.push(FailureRecord {
            time: now,
            kind: FailureKind::TaskFailed { task, attempts: used },
        });
        self.last_resolution = self.last_resolution.max(now);
        self.pending -= 1;
    }

    fn on_redispatch(&mut self, now: f64, task: usize) {
        let st = self.state[task].expect("scheduled");
        if st.resolved || !st.aborted {
            return;
        }
        let next = st.attempt + 1;
        let demand = self.tasks[task].resource_demand;
        // Deterministic target selection: least cumulative dispatched
        // nominal compute seconds among up nodes with a live link, ties
        // broken by ascending node id. The controller is always a
        // candidate (it cannot fault), so selection only fails on capacity.
        let mut best: Option<(f64, NodeId)> = None;
        for n in self.cluster.nodes() {
            let id = n.id();
            if self.down.contains(&id) || self.link_down.contains(&id) {
                continue;
            }
            if self.config.enforce_capacity {
                let used = self.resident.get(&id).copied().unwrap_or(0.0);
                if used + demand > n.capacity() + 1e-9 {
                    continue;
                }
            }
            let load = self.dispatched_load.get(&id).copied().unwrap_or(0.0);
            let better = match best {
                None => true,
                Some((bl, bid)) => load < bl || (load == bl && id < bid),
            };
            if better {
                best = Some((load, id));
            }
        }
        match best {
            Some((_, node)) => {
                self.failures.push(FailureRecord {
                    time: now,
                    kind: FailureKind::Redispatched { task, node, attempt: next },
                });
                self.dispatch(task, node, now, next);
            }
            None => self.fail_task(task, now),
        }
    }
}

/// Simulates one allocation round under an injected [`FaultSchedule`], with
/// controller-side timeout detection, bounded retries and re-dispatch to
/// surviving nodes ([`RetryPolicy`]).
///
/// Fault semantics (DESIGN.md §9): a crash aborts every unfinished attempt
/// resident on the node (in-flight transfers, queued and executing
/// compute, parked results) and the node rejoins empty on recovery; a link
/// dropout aborts in-flight transfer legs and parks finished results until
/// restore; a straggler window multiplies compute legs starting inside it.
/// The controller detects lost attempts via per-attempt heartbeat timeouts
/// and re-dispatches after exponential backoff to the surviving node with
/// the least dispatched load (ties to the lowest id); exhausted retries
/// fail the task, which the round's decision then proceeds without.
///
/// The engine is single-threaded discrete-event simulation: results are
/// bit-identical at any `dcta-parallel` thread count, and with an empty
/// schedule the report matches [`simulate`] bitwise (heartbeat timers fire
/// only on lost attempts or after completion).
///
/// # Errors
///
/// See [`SimError`] variants: assignment validation as [`simulate`], plus
/// [`SimError::UnknownFaultNode`] / [`SimError::ControllerFault`] for bad
/// schedules and [`SimError::BadRetryPolicy`] for invalid policies.
pub fn simulate_with_faults(
    cluster: &Cluster,
    tasks: &[SimTask],
    assignment: &NodeAssignment,
    config: SimConfig,
    schedule: &FaultSchedule,
) -> Result<FaultReport, SimError> {
    validate_assignment(cluster, tasks, assignment, config)?;
    config.retry.validate()?;
    for ev in schedule.events() {
        let node = ev.kind.node();
        if cluster.node(node).is_none() {
            return Err(SimError::UnknownFaultNode { node });
        }
        if node == cluster.controller() {
            return Err(SimError::ControllerFault { node });
        }
    }

    let mut sim = FaultSim {
        cluster,
        tasks,
        config,
        controller: cluster.controller(),
        queue: EventQueue::new(),
        link_free: HashMap::new(),
        cpu_free: HashMap::new(),
        link_busy: HashMap::new(),
        node_busy: HashMap::new(),
        state: vec![None; tasks.len()],
        final_timelines: vec![None; tasks.len()],
        attempts_used: vec![0; tasks.len()],
        failures: Vec::new(),
        down: BTreeSet::new(),
        link_down: HashSet::new(),
        straggle: HashMap::new(),
        waiting: HashMap::new(),
        dispatched_load: HashMap::new(),
        resident: HashMap::new(),
        pending: 0,
        last_resolution: config.partition_overhead_s,
    };
    // Faults enter the queue first so that, at equal timestamps, a fault
    // takes effect before task events of the same instant (FIFO tie-break).
    for (idx, ev) in schedule.events().iter().enumerate() {
        sim.queue.schedule(ev.time, FEv::Fault(idx));
    }
    let t0 = config.partition_overhead_s;
    for i in 0..tasks.len() {
        if let Some(node) = assignment.node_of(i) {
            sim.dispatch(i, node, t0, 1);
            sim.pending += 1;
        }
    }
    while sim.pending > 0 {
        let Some((now, ev)) = sim.queue.pop_next() else { break };
        match ev {
            FEv::Fault(idx) => sim.on_fault(now, schedule.events()[idx].kind),
            FEv::InputArrived { task, attempt } => sim.on_input_arrived(now, task, attempt),
            FEv::ComputeDone { task, attempt } => sim.on_compute_done(now, task, attempt),
            FEv::ResultArrived { task, attempt } => sim.on_result_arrived(now, task, attempt),
            FEv::Heartbeat { task, attempt } => sim.on_heartbeat(now, task, attempt),
            FEv::Redispatch { task } => sim.on_redispatch(now, task),
        }
    }
    Ok(FaultReport {
        processing_time: sim.last_resolution + config.decision_overhead_s,
        timelines: sim.final_timelines,
        completed: sim.state.iter().map(|s| s.map(|st| st.completed).unwrap_or(false)).collect(),
        attempts: sim.attempts_used,
        failures: sim.failures,
        node_busy: sim.node_busy,
        link_busy: sim.link_busy,
        down_at_end: sim.down.into_iter().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::node::DeviceModel;

    fn cfg() -> SimConfig {
        SimConfig { partition_overhead_s: 0.0, decision_overhead_s: 0.0, ..SimConfig::default() }
    }

    fn one_task(bits: f64) -> Vec<SimTask> {
        vec![SimTask::new(bits, bits / 100.0, 1.0).unwrap()]
    }

    #[test]
    fn task_validation() {
        assert!(SimTask::new(-1.0, 0.0, 0.0).is_err());
        assert!(SimTask::new(0.0, f64::NAN, 0.0).is_err());
        assert!(SimTask::new(1.0, 1.0, 1.0).is_ok());
    }

    #[test]
    fn single_task_timeline_is_additive() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks = one_task(1e6);
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(1)));
        let r = simulate(&c, &tasks, &a, cfg()).unwrap();
        let tl = r.timelines[0].unwrap();
        let link = c.network().transfer_time(NodeId(1), 1e6);
        let compute = c.node(NodeId(1)).unwrap().compute_time(1e6);
        let back = c.network().transfer_time(NodeId(1), 1e4);
        assert!((tl.compute_start - link).abs() < 1e-9);
        assert!((tl.compute_end - (link + compute)).abs() < 1e-9);
        assert!((r.processing_time - (link + compute + back)).abs() < 1e-9);
    }

    #[test]
    fn controller_local_task_skips_network() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks = one_task(1e6);
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(0)));
        let r = simulate(&c, &tasks, &a, cfg()).unwrap();
        let compute = c.node(NodeId(0)).unwrap().compute_time(1e6);
        assert!((r.processing_time - compute).abs() < 1e-9);
        assert!(r.link_busy.is_empty());
    }

    #[test]
    fn same_node_tasks_serialize_different_nodes_parallelize() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks =
            vec![SimTask::new(1e6, 0.0, 1.0).unwrap(), SimTask::new(1e6, 0.0, 1.0).unwrap()];
        // Both on node 1.
        let mut serial = NodeAssignment::empty(2);
        serial.assign(0, Some(NodeId(1)));
        serial.assign(1, Some(NodeId(1)));
        let rs = simulate(&c, &tasks, &serial, cfg()).unwrap();
        // Split over nodes 1 and 4 (both A+ class? node 4 is A+ too: 1,4,7).
        let mut parallel = NodeAssignment::empty(2);
        parallel.assign(0, Some(NodeId(1)));
        parallel.assign(1, Some(NodeId(4)));
        let rp = simulate(&c, &tasks, &parallel, cfg()).unwrap();
        assert!(rp.processing_time < rs.processing_time);
    }

    #[test]
    fn empty_assignment_costs_only_overheads() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks = one_task(1e6);
        let a = NodeAssignment::empty(1);
        let r = simulate(
            &c,
            &tasks,
            &a,
            SimConfig {
                partition_overhead_s: 0.5,
                decision_overhead_s: 0.25,
                ..SimConfig::default()
            },
        )
        .unwrap();
        assert!((r.processing_time - 0.75).abs() < 1e-12);
        assert_eq!(r.makespan(), 0.0);
    }

    #[test]
    fn capacity_enforcement() {
        let c = Cluster::paper_testbed().unwrap();
        let cap = c.node(NodeId(1)).unwrap().capacity();
        let tasks = vec![SimTask::new(1.0, 0.0, cap + 1.0).unwrap()];
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(1)));
        assert!(matches!(simulate(&c, &tasks, &a, cfg()), Err(SimError::OverCapacity { .. })));
        // Disabled enforcement lets it through.
        let relaxed = SimConfig { enforce_capacity: false, ..cfg() };
        assert!(simulate(&c, &tasks, &a, relaxed).is_ok());
    }

    #[test]
    fn unknown_node_and_length_mismatch() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks = one_task(1.0);
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(77)));
        assert!(matches!(
            simulate(&c, &tasks, &a, cfg()),
            Err(SimError::UnknownNode { task: 0, .. })
        ));
        let a2 = NodeAssignment::empty(2);
        assert!(matches!(
            simulate(&c, &tasks, &a2, cfg()),
            Err(SimError::LengthMismatch { tasks: 1, assignments: 2 })
        ));
    }

    #[test]
    fn faster_node_finishes_sooner() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks = one_task(1e8);
        // Node 1 = A+ (slowest Pi), node 3 = B+ (fastest Pi).
        assert_eq!(c.node(NodeId(1)).unwrap().model(), DeviceModel::RaspberryPiAPlus);
        assert_eq!(c.node(NodeId(3)).unwrap().model(), DeviceModel::RaspberryPiBPlus);
        let mut slow = NodeAssignment::empty(1);
        slow.assign(0, Some(NodeId(1)));
        let mut fast = NodeAssignment::empty(1);
        fast.assign(0, Some(NodeId(3)));
        let rs = simulate(&c, &tasks, &slow, cfg()).unwrap();
        let rf = simulate(&c, &tasks, &fast, cfg()).unwrap();
        assert!(rf.processing_time < rs.processing_time);
    }

    #[test]
    fn bandwidth_scaling_reduces_processing_time() {
        let mut c = Cluster::paper_testbed().unwrap();
        let tasks = one_task(5e8);
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(1)));
        let before = simulate(&c, &tasks, &a, cfg()).unwrap().processing_time;
        c.network_mut().scale_bandwidth(4.0);
        let after = simulate(&c, &tasks, &a, cfg()).unwrap().processing_time;
        assert!(after < before);
    }

    #[test]
    fn busy_accounting_sums_durations() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks =
            vec![SimTask::new(1e6, 1e4, 1.0).unwrap(), SimTask::new(2e6, 1e4, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(2);
        a.assign(0, Some(NodeId(2)));
        a.assign(1, Some(NodeId(2)));
        let r = simulate(&c, &tasks, &a, cfg()).unwrap();
        let expected_compute = c.node(NodeId(2)).unwrap().compute_time(1e6)
            + c.node(NodeId(2)).unwrap().compute_time(2e6);
        assert!((r.node_busy[&NodeId(2)] - expected_compute).abs() < 1e-9);
        let expected_link = c.network().transfer_time(NodeId(2), 1e6)
            + c.network().transfer_time(NodeId(2), 2e6)
            + 2.0 * c.network().transfer_time(NodeId(2), 1e4);
        assert!((r.link_busy[&NodeId(2)] - expected_link).abs() < 1e-9);
    }

    #[test]
    fn results_share_the_link_with_inputs() {
        // Large result of task 0 must delay the input of task 1 when both
        // use the same link... actually inputs are all enqueued first (FIFO
        // at t0), so the *result* waits for the second input. Verify that
        // ordering.
        let c = Cluster::paper_testbed().unwrap();
        let tasks = vec![
            SimTask::new(1e4, 5e7, 1.0).unwrap(), // tiny input, huge result
            SimTask::new(5e7, 1e3, 1.0).unwrap(), // huge input
        ];
        let mut a = NodeAssignment::empty(2);
        a.assign(0, Some(NodeId(1)));
        a.assign(1, Some(NodeId(1)));
        let r = simulate(&c, &tasks, &a, cfg()).unwrap();
        let tl0 = r.timelines[0].unwrap();
        let tl1 = r.timelines[1].unwrap();
        // Task 0 computes quickly, but its result transfer cannot start
        // before task 1's input finished occupying the link.
        let input1_done = tl1.compute_start;
        assert!(tl0.result_at >= input1_done);
    }

    /// Thread-invariance tests flip the process-wide override; serialise.
    static THREADS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// A round big enough to cross [`PAR_MIN_SCHEDULED`]: varied task
    /// sizes, round-robin over every node including the controller, plus a
    /// sprinkling of unscheduled tasks.
    fn big_round(n: usize) -> (Cluster, Vec<SimTask>, NodeAssignment) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let c = Cluster::paper_testbed().unwrap();
        let ids: Vec<NodeId> = c.nodes().iter().map(|node| node.id()).collect();
        let mut rng = StdRng::seed_from_u64(0xE5D1);
        let tasks: Vec<SimTask> = (0..n)
            .map(|_| SimTask::new(rng.gen_range(1e3..5e6), rng.gen_range(1e2..1e5), 0.0).unwrap())
            .collect();
        let mut a = NodeAssignment::empty(n);
        for i in 0..n {
            if i % 17 == 11 {
                continue; // leave some tasks unscheduled
            }
            a.assign(i, Some(ids[i % ids.len()]));
        }
        (c, tasks, a)
    }

    fn report_bits(r: &SimReport) -> Vec<u64> {
        let mut bits = vec![r.processing_time.to_bits()];
        for tl in r.timelines.iter().flatten() {
            bits.extend([
                tl.transfer_start.to_bits(),
                tl.compute_start.to_bits(),
                tl.compute_end.to_bits(),
                tl.result_at.to_bits(),
            ]);
        }
        let mut busy: Vec<(NodeId, u64, Option<u64>)> = r
            .node_busy
            .iter()
            .map(|(&id, b)| (id, b.to_bits(), r.link_busy.get(&id).map(|l| l.to_bits())))
            .collect();
        busy.sort_by_key(|e| e.0 .0);
        for (id, nb, lb) in busy {
            bits.push(id.0 as u64);
            bits.push(nb);
            bits.push(lb.unwrap_or(u64::MAX));
        }
        bits
    }

    #[test]
    fn per_node_fan_out_matches_event_loop_bitwise() {
        let (c, tasks, a) = big_round(400);
        let config = SimConfig::default(); // non-zero overheads
        let reference = simulate_event_loop(&c, &tasks, &a, config);
        let fanned = simulate_per_node(&c, &tasks, &a, config);
        assert_eq!(report_bits(&fanned), report_bits(&reference));
        assert_eq!(fanned, reference);
        // And via the public entry point, which routes to the fan-out at
        // this size.
        assert!(a.scheduled_count() >= PAR_MIN_SCHEDULED);
        let public = simulate(&c, &tasks, &a, config).unwrap();
        assert_eq!(report_bits(&public), report_bits(&reference));
    }

    #[test]
    fn per_node_fan_out_parity_on_small_and_skewed_rounds() {
        let c = Cluster::paper_testbed().unwrap();
        // Everything on one worker (single group), plus a controller task.
        let tasks = vec![
            SimTask::new(1e6, 1e4, 0.0).unwrap(),
            SimTask::new(2e6, 1e3, 0.0).unwrap(),
            SimTask::new(5e5, 5e4, 0.0).unwrap(),
        ];
        let mut a = NodeAssignment::empty(3);
        a.assign(0, Some(NodeId(2)));
        a.assign(1, Some(NodeId(0)));
        a.assign(2, Some(NodeId(2)));
        let config = SimConfig::default();
        let reference = simulate_event_loop(&c, &tasks, &a, config);
        let fanned = simulate_per_node(&c, &tasks, &a, config);
        assert_eq!(report_bits(&fanned), report_bits(&reference));
        // Empty assignment.
        let empty = NodeAssignment::empty(3);
        assert_eq!(
            simulate_per_node(&c, &tasks, &empty, config),
            simulate_event_loop(&c, &tasks, &empty, config)
        );
    }

    #[test]
    fn parallel_simulate_is_thread_count_invariant() {
        let _g = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let (c, tasks, a) = big_round(600);
        let config = SimConfig::default();
        let reference = {
            let _t = parallel::ScopedThreads::new(1);
            simulate(&c, &tasks, &a, config).unwrap()
        };
        for threads in [2usize, 8] {
            let _t = parallel::ScopedThreads::new(threads);
            let got = simulate(&c, &tasks, &a, config).unwrap();
            assert_eq!(report_bits(&got), report_bits(&reference), "threads {threads}");
        }
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::faults::FaultSchedule;

    fn cfg() -> SimConfig {
        SimConfig { partition_overhead_s: 0.0, decision_overhead_s: 0.0, ..SimConfig::default() }
    }

    fn has_kind(report: &FaultReport, pred: impl Fn(&FailureKind) -> bool) -> bool {
        report.failures.iter().any(|r| pred(&r.kind))
    }

    #[test]
    fn empty_schedule_is_bitwise_identical_to_simulate() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks: Vec<SimTask> =
            (1..=6).map(|i| SimTask::new(i as f64 * 5e5, 1e4, 1.0).unwrap()).collect();
        let mut a = NodeAssignment::empty(6);
        for i in 0..6 {
            a.assign(i, Some(NodeId(1 + i % 3)));
        }
        let plain = simulate(&c, &tasks, &a, SimConfig::default()).unwrap();
        let faulty =
            simulate_with_faults(&c, &tasks, &a, SimConfig::default(), &FaultSchedule::new())
                .unwrap();
        assert_eq!(plain.processing_time.to_bits(), faulty.processing_time.to_bits());
        assert_eq!(plain.timelines, faulty.timelines);
        assert_eq!(plain.node_busy, faulty.node_busy);
        assert_eq!(plain.link_busy, faulty.link_busy);
        assert!(faulty.failures.is_empty());
        assert_eq!(faulty.attempts, vec![1; 6]);
    }

    #[test]
    fn mid_compute_crash_is_detected_and_redispatched() {
        let c = Cluster::paper_testbed().unwrap();
        // Input transfer lands ≈0.168s, compute on the A+ spans ≈[0.168, 0.643].
        let tasks = vec![SimTask::new(1e6, 1e4, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(1)));
        let schedule = FaultSchedule::new().with_crash(NodeId(1), 0.3).unwrap();
        let r = simulate_with_faults(&c, &tasks, &a, cfg(), &schedule).unwrap();
        assert_eq!(r.completed_count(), 1);
        assert_eq!(r.attempts, vec![2], "one retry after the crash");
        assert!(has_kind(&r, |k| matches!(k, FailureKind::NodeCrashed(n) if *n == NodeId(1))));
        assert!(has_kind(&r, |k| matches!(k, FailureKind::AttemptAborted { task: 0, .. })));
        assert!(has_kind(&r, |k| matches!(k, FailureKind::TimeoutDetected { task: 0, .. })));
        assert!(has_kind(&r, |k| matches!(k, FailureKind::Redispatched { task: 0, .. })));
        assert_eq!(r.down_at_end, vec![NodeId(1)]);
        // The survivor attempt ran on a different node.
        assert_ne!(r.timelines[0].unwrap().node, NodeId(1));
        let healthy = simulate(&c, &tasks, &a, cfg()).unwrap();
        assert!(r.processing_time > healthy.processing_time, "recovery is not free");
    }

    #[test]
    fn no_retry_policy_fails_the_task_on_first_loss() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks = vec![SimTask::new(1e6, 1e4, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(1)));
        let schedule = FaultSchedule::new().with_crash(NodeId(1), 0.3).unwrap();
        let mut config = cfg();
        config.retry = RetryPolicy::no_retry();
        let r = simulate_with_faults(&c, &tasks, &a, config, &schedule).unwrap();
        assert_eq!(r.completed_count(), 0);
        assert_eq!(r.failed_tasks(), vec![0]);
        assert!(r.timelines[0].is_none());
        assert!(has_kind(&r, |k| matches!(k, FailureKind::TaskFailed { task: 0, attempts: 1 })));
    }

    #[test]
    fn recovered_node_accepts_redispatch() {
        let c = Cluster::testbed_with_workers(1).unwrap();
        // Decoy keeps the controller's load ledger high so the retry
        // prefers the recovered worker.
        let tasks =
            vec![SimTask::new(1e6, 1e4, 1.0).unwrap(), SimTask::new(1e8, 0.0, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(2);
        a.assign(0, Some(NodeId(1)));
        a.assign(1, Some(NodeId(0)));
        let schedule = FaultSchedule::new()
            .with_crash(NodeId(1), 0.3)
            .unwrap()
            .with_recovery(NodeId(1), 0.4)
            .unwrap();
        let r = simulate_with_faults(&c, &tasks, &a, cfg(), &schedule).unwrap();
        assert_eq!(r.completed_count(), 2);
        assert!(has_kind(
            &r,
            |k| matches!(k, FailureKind::Redispatched { task: 0, node, .. } if *node == NodeId(1))
        ));
        assert!(has_kind(&r, |k| matches!(k, FailureKind::NodeRecovered(n) if *n == NodeId(1))));
        assert!(r.down_at_end.is_empty());
        assert_eq!(r.timelines[0].unwrap().node, NodeId(1));
    }

    #[test]
    fn short_link_outage_parks_the_result_until_restore() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks = vec![SimTask::new(1e6, 1e4, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(1)));
        // Down across the compute-done instant (≈0.643); restored well
        // before the heartbeat (≈1.94).
        let schedule = FaultSchedule::new().with_link_outage(NodeId(1), 0.5, 1.0).unwrap();
        let r = simulate_with_faults(&c, &tasks, &a, cfg(), &schedule).unwrap();
        assert_eq!(r.completed_count(), 1);
        assert_eq!(r.attempts, vec![1], "no retry needed: the result waited out the outage");
        assert!(r.timelines[0].unwrap().result_at >= 1.0);
        assert!(has_kind(&r, |k| matches!(k, FailureKind::LinkWentDown(_))));
        assert!(has_kind(&r, |k| matches!(k, FailureKind::LinkRestored(_))));
        assert!(!has_kind(&r, |k| matches!(k, FailureKind::AttemptAborted { .. })));
    }

    #[test]
    fn long_link_outage_strands_the_result_and_triggers_retry() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks = vec![SimTask::new(1e6, 1e4, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(1)));
        let schedule = FaultSchedule::new().with_link_outage(NodeId(1), 0.5, 100.0).unwrap();
        let r = simulate_with_faults(&c, &tasks, &a, cfg(), &schedule).unwrap();
        assert_eq!(r.completed_count(), 1);
        assert_eq!(r.attempts, vec![2]);
        assert_ne!(r.timelines[0].unwrap().node, NodeId(1));
        assert!(has_kind(&r, |k| matches!(k, FailureKind::AttemptAborted { task: 0, .. })));
        assert!(r.processing_time < 100.0, "retry beat waiting for the link");
    }

    #[test]
    fn straggler_window_multiplies_compute() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks = vec![SimTask::new(1e6, 1e4, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(1)));
        let schedule = FaultSchedule::new().with_straggler(NodeId(1), 0.0, 10.0, 3.0).unwrap();
        let r = simulate_with_faults(&c, &tasks, &a, cfg(), &schedule).unwrap();
        let tl = r.timelines[0].unwrap();
        let nominal = c.node(NodeId(1)).unwrap().compute_time(1e6);
        assert!((tl.compute_end - tl.compute_start - 3.0 * nominal).abs() < 1e-9);
        assert_eq!(r.attempts, vec![1], "a straggler is slow, not lost");
    }

    #[test]
    fn retries_exhaust_when_every_host_keeps_crashing() {
        let c = Cluster::testbed_with_workers(2).unwrap();
        let tasks =
            vec![SimTask::new(1e6, 1e4, 1.0).unwrap(), SimTask::new(1e8, 0.0, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(2);
        a.assign(0, Some(NodeId(1)));
        a.assign(1, Some(NodeId(0))); // decoy load keeps the controller unattractive
        let mut config = cfg();
        config.retry.max_retries = 1;
        // First host dies mid-compute; the retry lands on node 2 (least
        // load), which dies mid-compute too.
        let schedule = FaultSchedule::new()
            .with_crash(NodeId(1), 0.3)
            .unwrap()
            .with_crash(NodeId(2), 2.2)
            .unwrap();
        let r = simulate_with_faults(&c, &tasks, &a, config, &schedule).unwrap();
        assert_eq!(r.failed_tasks(), vec![0]);
        assert_eq!(r.attempts[0], 2);
        assert!(r.completed[1], "the decoy task is unaffected");
        assert!(has_kind(&r, |k| matches!(k, FailureKind::TaskFailed { task: 0, attempts: 2 })));
        assert_eq!(r.down_at_end, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn fault_schedule_validation() {
        let c = Cluster::paper_testbed().unwrap();
        let tasks = vec![SimTask::new(1e6, 1e4, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(1);
        a.assign(0, Some(NodeId(1)));
        let ghost = FaultSchedule::new().with_crash(NodeId(77), 1.0).unwrap();
        assert!(matches!(
            simulate_with_faults(&c, &tasks, &a, cfg(), &ghost),
            Err(SimError::UnknownFaultNode { node: NodeId(77) })
        ));
        let coup = FaultSchedule::new().with_crash(NodeId(0), 1.0).unwrap();
        assert!(matches!(
            simulate_with_faults(&c, &tasks, &a, cfg(), &coup),
            Err(SimError::ControllerFault { node: NodeId(0) })
        ));
        let mut config = cfg();
        config.retry.min_timeout_s = 0.0;
        assert!(matches!(
            simulate_with_faults(&c, &tasks, &a, config, &FaultSchedule::new()),
            Err(SimError::BadRetryPolicy { .. })
        ));
        // Bad assignments fail through the shared validator.
        let mut ghost_assignment = NodeAssignment::empty(1);
        ghost_assignment.assign(0, Some(NodeId(42)));
        assert!(matches!(
            simulate_with_faults(&c, &tasks, &ghost_assignment, cfg(), &FaultSchedule::new()),
            Err(SimError::UnknownNode { task: 0, node: NodeId(42) })
        ));
    }

    #[test]
    fn crash_refunds_lost_compute_reservations() {
        let c = Cluster::paper_testbed().unwrap();
        // Two tasks queued on node 1; crash kills both (one executing, one
        // queued) and both re-run elsewhere.
        let tasks =
            vec![SimTask::new(1e6, 1e4, 1.0).unwrap(), SimTask::new(1e6, 1e4, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(2);
        a.assign(0, Some(NodeId(1)));
        a.assign(1, Some(NodeId(1)));
        let schedule = FaultSchedule::new().with_crash(NodeId(1), 0.3).unwrap();
        let r = simulate_with_faults(&c, &tasks, &a, cfg(), &schedule).unwrap();
        assert_eq!(r.completed_count(), 2);
        // Node 1's committed compute is only what elapsed before the crash:
        // compute started ≈0.168 and died at 0.3.
        let burned = r.node_busy.get(&NodeId(1)).copied().unwrap_or(0.0);
        assert!((0.0..0.2).contains(&burned), "refund missing: {burned}");
    }
}

#[cfg(test)]
mod medium_tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::network::{MediumMode, StarNetwork};
    use crate::node::{DeviceModel, Node};

    fn shared_cluster() -> Cluster {
        let nodes: Vec<Node> = (0..4)
            .map(|i| {
                Node::new(
                    NodeId(i),
                    if i == 0 { DeviceModel::Laptop } else { DeviceModel::RaspberryPiB },
                )
            })
            .collect();
        let net = StarNetwork::uniform(1e6, 0.0).unwrap().with_medium(MediumMode::SharedMedium);
        Cluster::new(nodes, net, NodeId(0)).unwrap()
    }

    #[test]
    fn shared_medium_serialises_cross_node_transfers() {
        let per_link = Cluster::paper_testbed().unwrap();
        let shared = shared_cluster();
        // Three transfer-heavy tasks on three different nodes.
        let tasks: Vec<SimTask> = (0..3).map(|_| SimTask::new(1e6, 0.0, 1.0).unwrap()).collect();
        let mut a = NodeAssignment::empty(3);
        for i in 0..3 {
            a.assign(i, Some(NodeId(i + 1)));
        }
        let cfg = SimConfig {
            partition_overhead_s: 0.0,
            decision_overhead_s: 0.0,
            enforce_capacity: false,
            ..SimConfig::default()
        };
        let r_shared = simulate(&shared, &tasks, &a, cfg).unwrap();
        // Under the shared medium, input transfers cannot overlap: the last
        // task's compute cannot start before 3 transfer times have elapsed.
        let third_start =
            r_shared.timelines.iter().flatten().map(|t| t.compute_start).fold(0.0f64, f64::max);
        let one_transfer = shared.network().transfer_time(NodeId(1), 1e6);
        assert!(
            third_start >= 3.0 * one_transfer - 1e-9,
            "transfers overlapped: {third_start} < {}",
            3.0 * one_transfer
        );
        // Per-node links let them overlap.
        let r_par = simulate(&per_link, &tasks, &a, cfg).unwrap();
        let par_third =
            r_par.timelines.iter().flatten().map(|t| t.compute_start).fold(0.0f64, f64::max);
        let par_one = per_link.network().transfer_time(NodeId(1), 1e6);
        assert!(par_third < 2.0 * par_one, "per-link transfers did not overlap");
    }

    #[test]
    fn single_node_workload_is_mode_invariant() {
        // All tasks on one node: both media serialise identically.
        let shared = shared_cluster();
        let mut per_link_cluster = shared_cluster();
        *per_link_cluster.network_mut() =
            StarNetwork::uniform(1e6, 0.0).unwrap().with_medium(MediumMode::PerNodeLink);
        let tasks: Vec<SimTask> = (0..3).map(|_| SimTask::new(1e6, 1e4, 1.0).unwrap()).collect();
        let mut a = NodeAssignment::empty(3);
        for i in 0..3 {
            a.assign(i, Some(NodeId(1)));
        }
        let cfg = SimConfig::default();
        let r1 = simulate(&shared, &tasks, &a, cfg).unwrap();
        let r2 = simulate(&per_link_cluster, &tasks, &a, cfg).unwrap();
        assert!((r1.processing_time - r2.processing_time).abs() < 1e-9);
    }
}
