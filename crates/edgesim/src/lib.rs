//! # edgesim — discrete-event simulator of the paper's edge testbed
//!
//! The evaluation (§V) runs on nine Raspberry Pis (models A+, B, B+) plus a
//! laptop, star-connected over WiFi (Fig. 8). Reproducing it without that
//! hardware requires a simulator that models the same additive cost terms:
//! input transmission over per-node half-duplex links, non-preemptive
//! compute at the device's seconds-per-bit rate (Pi A+ = `4.75e-7 s/bit`,
//! the paper's constant), result return, and controller-side
//! partition/decision overheads. Processing time (`PT = t_s − t_c`) is the
//! headline metric of Figs. 9-11.
//!
//! * [`node`] — device models and compute rates.
//! * [`network`] — star WiFi links, bandwidth sweeps.
//! * [`event`] — deterministic discrete-event queue.
//! * [`cluster`] — Fig. 8 testbed assembly and variants.
//! * [`run`] — executing a task→node assignment, producing a [`run::SimReport`];
//!   fault-aware execution with retries via [`run::simulate_with_faults`].
//! * [`faults`] — seeded deterministic crash/link/straggler schedules.
//! * [`trace`] — CSV execution traces, failure logs, per-node utilisation.
//!
//! ## Example
//!
//! ```
//! use edgesim::cluster::Cluster;
//! use edgesim::node::NodeId;
//! use edgesim::run::{simulate, NodeAssignment, SimConfig, SimTask};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cluster = Cluster::paper_testbed()?;
//! let tasks = vec![SimTask::new(1e6, 1e4, 1.0)?];
//! let mut assignment = NodeAssignment::empty(1);
//! assignment.assign(0, Some(NodeId(1)));
//! let report = simulate(&cluster, &tasks, &assignment, SimConfig::default())?;
//! assert!(report.processing_time > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod event;
pub mod faults;
pub mod network;
pub mod node;
pub mod run;
pub mod trace;
