//! # edgesim — discrete-event simulator of the paper's edge testbed
//!
//! The evaluation (§V) runs on nine Raspberry Pis (models A+, B, B+) plus a
//! laptop, star-connected over WiFi (Fig. 8). Reproducing it without that
//! hardware requires a simulator that models the same additive cost terms:
//! input transmission over per-node half-duplex links, non-preemptive
//! compute at the device's seconds-per-bit rate (Pi A+ = `4.75e-7 s/bit`,
//! the paper's constant), result return, and controller-side
//! partition/decision overheads. Processing time (`PT = t_s − t_c`) is the
//! headline metric of Figs. 9-11.
//!
//! Beyond the paper's testbed, the simulator scales to 1000+-node worlds:
//! [`network::MeshNetwork`] models arbitrary topologies with static
//! shortest-path routes and proportional-share link contention, and the
//! star is its degenerate single-hop case.
//!
//! * [`node`] — device models and compute rates.
//! * [`network`] — star WiFi links and bandwidth sweeps, plus CSR mesh
//!   topologies with per-hop links and build-time routing.
//! * [`event`] — deterministic discrete-event queues: the reference
//!   `BinaryHeap` [`event::EventQueue`] and the indexed
//!   [`event::CalendarQueue`] with the identical `(time, seq)` FIFO
//!   contract.
//! * [`cluster`] — Fig. 8 testbed assembly and variants; seeded
//!   grid-with-chords mesh testbeds ([`cluster::Cluster::mesh_testbed`]).
//! * [`run`] — executing a task→node assignment, producing a [`run::SimReport`];
//!   fault-aware execution with retries via [`run::simulate_with_faults`].
//! * [`faults`] — seeded deterministic crash/link/straggler schedules.
//! * [`trace`] — CSV execution traces, failure logs, per-node utilisation.
//!
//! ## Example
//!
//! ```
//! use edgesim::cluster::Cluster;
//! use edgesim::node::NodeId;
//! use edgesim::run::{simulate, NodeAssignment, SimConfig, SimTask};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cluster = Cluster::paper_testbed()?;
//! let tasks = vec![SimTask::new(1e6, 1e4, 1.0)?];
//! let mut assignment = NodeAssignment::empty(1);
//! assignment.assign(0, Some(NodeId(1)));
//! let report = simulate(&cluster, &tasks, &assignment, SimConfig::default())?;
//! assert!(report.processing_time > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod event;
pub mod faults;
pub mod network;
pub mod node;
pub mod run;
pub mod trace;
