//! Execution-trace export.
//!
//! Turns a [`crate::run::SimReport`] into a per-task CSV trace and a
//! per-node utilisation summary — the artefacts an operator would pull off
//! a real testbed to debug an allocation round.

use crate::cluster::Cluster;
use crate::run::SimReport;
use std::fmt::Write as _;

/// Per-task timeline CSV:
/// `task,node,transfer_start,compute_start,compute_end,result_at`.
/// Unscheduled tasks appear with an empty node and blank times.
pub fn timelines_to_csv(report: &SimReport) -> String {
    let mut out = String::from("task,node,transfer_start,compute_start,compute_end,result_at\n");
    for (i, tl) in report.timelines.iter().enumerate() {
        match tl {
            Some(t) => {
                let _ = writeln!(
                    out,
                    "{},{},{:.6},{:.6},{:.6},{:.6}",
                    i, t.node.0, t.transfer_start, t.compute_start, t.compute_end, t.result_at
                );
            }
            None => {
                let _ = writeln!(out, "{i},,,,,");
            }
        }
    }
    out
}

/// One node's utilisation over a round.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeUtilization {
    /// The node.
    pub node: crate::node::NodeId,
    /// Busy compute seconds.
    pub compute_busy_s: f64,
    /// Busy link seconds.
    pub link_busy_s: f64,
    /// Compute busy time as a fraction of the round's makespan.
    pub compute_utilization: f64,
}

/// Per-node utilisation summary, sorted by node id. Nodes that did no work
/// are included (zeros) so idle capacity is visible.
pub fn utilization(report: &SimReport, cluster: &Cluster) -> Vec<NodeUtilization> {
    let makespan = report.makespan().max(1e-12);
    let mut out: Vec<NodeUtilization> = cluster
        .workers()
        .map(|n| {
            let compute = report.node_busy.get(&n.id()).copied().unwrap_or(0.0);
            let link = report.link_busy.get(&n.id()).copied().unwrap_or(0.0);
            NodeUtilization {
                node: n.id(),
                compute_busy_s: compute,
                link_busy_s: link,
                compute_utilization: compute / makespan,
            }
        })
        .collect();
    out.sort_by_key(|u| u.node);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::node::NodeId;
    use crate::run::{simulate, NodeAssignment, SimConfig, SimTask};

    fn run_small() -> (Cluster, SimReport) {
        let cluster = Cluster::paper_testbed().unwrap();
        let tasks = vec![
            SimTask::new(1e6, 1e4, 1.0).unwrap(),
            SimTask::new(2e6, 1e4, 1.0).unwrap(),
            SimTask::new(3e6, 1e4, 1.0).unwrap(),
        ];
        let mut a = NodeAssignment::empty(3);
        a.assign(0, Some(NodeId(1)));
        a.assign(2, Some(NodeId(2)));
        // task 1 unscheduled
        let report = simulate(&cluster, &tasks, &a, SimConfig::default()).unwrap();
        (cluster, report)
    }

    #[test]
    fn csv_covers_every_task() {
        let (_, report) = run_small();
        let csv = timelines_to_csv(&report);
        assert_eq!(csv.lines().count(), 1 + 3);
        // Unscheduled task 1 has the blank form.
        let line1 = csv.lines().nth(2).unwrap();
        assert_eq!(line1, "1,,,,,");
        // Scheduled task 0 names node 1.
        assert!(csv.lines().nth(1).unwrap().starts_with("0,1,"));
    }

    #[test]
    fn utilization_covers_all_workers_and_is_bounded() {
        let (cluster, report) = run_small();
        let u = utilization(&report, &cluster);
        assert_eq!(u.len(), 9);
        for nu in &u {
            assert!(nu.compute_busy_s >= 0.0);
            assert!((0.0..=1.0 + 1e-9).contains(&nu.compute_utilization));
        }
        // Only nodes 1 and 2 did work.
        let busy: Vec<usize> =
            u.iter().filter(|x| x.compute_busy_s > 0.0).map(|x| x.node.0).collect();
        assert_eq!(busy, vec![1, 2]);
    }
}
