//! Execution-trace export.
//!
//! Turns a [`crate::run::SimReport`] into a per-task CSV trace and a
//! per-node utilisation summary — the artefacts an operator would pull off
//! a real testbed to debug an allocation round. Fault-injected runs
//! additionally produce a typed failure log ([`FailureRecord`]) exportable
//! via [`failures_to_csv`].

use crate::cluster::Cluster;
use crate::node::NodeId;
use crate::run::SimReport;
use std::fmt;
use std::fmt::Write as _;

/// What went wrong (or was handled) at one instant of a fault-injected run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailureKind {
    /// A node halted; everything resident on it was lost.
    NodeCrashed(NodeId),
    /// A previously crashed node rejoined with an empty queue.
    NodeRecovered(NodeId),
    /// A node's link dropped: its star link, or on a mesh its current
    /// uplink edge (traffic re-routes where the topology allows).
    LinkWentDown(NodeId),
    /// A node's link was restored (on a mesh, the dropped edge rejoins
    /// the topology and routes are recomputed).
    LinkRestored(NodeId),
    /// An in-flight attempt (transfer or compute leg) was killed by a fault.
    AttemptAborted {
        /// Task index.
        task: usize,
        /// Node the attempt was running on.
        node: NodeId,
        /// 1-based attempt number.
        attempt: usize,
    },
    /// The controller's heartbeat timeout fired on a dead attempt.
    TimeoutDetected {
        /// Task index.
        task: usize,
        /// Node the attempt was on.
        node: NodeId,
        /// 1-based attempt number.
        attempt: usize,
    },
    /// The controller re-dispatched the task to a surviving node.
    Redispatched {
        /// Task index.
        task: usize,
        /// New target node.
        node: NodeId,
        /// 1-based attempt number of the new attempt.
        attempt: usize,
    },
    /// Retries exhausted (or no surviving node could host the task).
    TaskFailed {
        /// Task index.
        task: usize,
        /// Attempts consumed.
        attempts: usize,
    },
}

impl FailureKind {
    fn csv_fields(&self) -> (&'static str, Option<usize>, Option<NodeId>, Option<usize>) {
        match *self {
            FailureKind::NodeCrashed(n) => ("node_crashed", None, Some(n), None),
            FailureKind::NodeRecovered(n) => ("node_recovered", None, Some(n), None),
            FailureKind::LinkWentDown(n) => ("link_down", None, Some(n), None),
            FailureKind::LinkRestored(n) => ("link_up", None, Some(n), None),
            FailureKind::AttemptAborted { task, node, attempt } => {
                ("attempt_aborted", Some(task), Some(node), Some(attempt))
            }
            FailureKind::TimeoutDetected { task, node, attempt } => {
                ("timeout_detected", Some(task), Some(node), Some(attempt))
            }
            FailureKind::Redispatched { task, node, attempt } => {
                ("redispatched", Some(task), Some(node), Some(attempt))
            }
            FailureKind::TaskFailed { task, attempts } => {
                ("task_failed", Some(task), None, Some(attempts))
            }
        }
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (kind, task, node, attempt) = self.csv_fields();
        write!(f, "{kind}")?;
        if let Some(t) = task {
            write!(f, " task {t}")?;
        }
        if let Some(n) = node {
            write!(f, " on {n}")?;
        }
        if let Some(a) = attempt {
            write!(f, " (attempt {a})")?;
        }
        Ok(())
    }
}

/// One entry of the failure log a fault-injected run emits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureRecord {
    /// Simulation time of the event, seconds.
    pub time: f64,
    /// What happened.
    pub kind: FailureKind,
}

/// Failure-log CSV: `time,kind,task,node,attempt`. Records appear in event
/// order (which is time order, ties broken causally).
pub fn failures_to_csv(failures: &[FailureRecord]) -> String {
    let mut out = String::from("time,kind,task,node,attempt\n");
    for rec in failures {
        let (kind, task, node, attempt) = rec.kind.csv_fields();
        let field = |v: Option<usize>| v.map(|x| x.to_string()).unwrap_or_default();
        let _ = writeln!(
            out,
            "{:.6},{},{},{},{}",
            rec.time,
            kind,
            field(task),
            field(node.map(|n| n.0)),
            field(attempt),
        );
    }
    out
}

/// Per-task timeline CSV:
/// `task,node,transfer_start,compute_start,compute_end,result_at`.
/// Unscheduled tasks appear with an empty node and blank times.
pub fn timelines_to_csv(report: &SimReport) -> String {
    let mut out = String::from("task,node,transfer_start,compute_start,compute_end,result_at\n");
    for (i, tl) in report.timelines.iter().enumerate() {
        match tl {
            Some(t) => {
                let _ = writeln!(
                    out,
                    "{},{},{:.6},{:.6},{:.6},{:.6}",
                    i, t.node.0, t.transfer_start, t.compute_start, t.compute_end, t.result_at
                );
            }
            None => {
                let _ = writeln!(out, "{i},,,,,");
            }
        }
    }
    out
}

/// One node's availability exposure over a fault-injected round: how long
/// it was reachable, how long it was not, and how many times it crashed.
/// This is the failure-history export the availability learner consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeExposure {
    /// The node.
    pub node: NodeId,
    /// Seconds the node was up with a live route.
    pub up_s: f64,
    /// Seconds the node was crashed or cut off by a link outage.
    pub down_s: f64,
    /// Crash events observed (link outages extend `down_s` but are not
    /// counted here — a dropped link is weaker evidence of fragility).
    pub crashes: u64,
}

/// Per-node exposure summary of a failure log over a `horizon_s`-second
/// round, one entry per id in `nodes` (sorted by node id).
///
/// A node is *down* while crashed or while its link is out; overlapping
/// outages do not double-count. Outages still open at `horizon_s` are
/// closed there, so `up_s + down_s == horizon_s` for every node. The
/// summary is a pure function of the record set: records are re-sorted by
/// time internally, so caller-side ordering cannot perturb it.
pub fn node_exposures(
    failures: &[FailureRecord],
    nodes: &[NodeId],
    horizon_s: f64,
) -> Vec<NodeExposure> {
    use std::collections::BTreeMap;

    #[derive(Default, Clone, Copy)]
    struct Track {
        crashed: bool,
        link_down: bool,
        down_since: Option<f64>,
        down_s: f64,
        crashes: u64,
    }

    let horizon = horizon_s.max(0.0);
    let mut tracks: BTreeMap<usize, Track> =
        nodes.iter().map(|n| (n.0, Track::default())).collect();
    let mut ordered: Vec<&FailureRecord> = failures.iter().collect();
    ordered.sort_by(|a, b| a.time.total_cmp(&b.time));
    for rec in ordered {
        let (node, crash_delta, link_delta) = match rec.kind {
            FailureKind::NodeCrashed(n) => (n, Some(true), None),
            FailureKind::NodeRecovered(n) => (n, Some(false), None),
            FailureKind::LinkWentDown(n) => (n, None, Some(true)),
            FailureKind::LinkRestored(n) => (n, None, Some(false)),
            _ => continue,
        };
        let Some(t) = tracks.get_mut(&node.0) else { continue };
        let was_down = t.crashed || t.link_down;
        if let Some(c) = crash_delta {
            if c && !t.crashed {
                t.crashes += 1;
            }
            t.crashed = c;
        }
        if let Some(l) = link_delta {
            t.link_down = l;
        }
        let now_down = t.crashed || t.link_down;
        let at = rec.time.clamp(0.0, horizon);
        if !was_down && now_down {
            t.down_since = Some(at);
        } else if was_down && !now_down {
            t.down_s += at - t.down_since.take().unwrap_or(at);
        }
    }
    tracks
        .into_iter()
        .map(|(id, mut t)| {
            if let Some(since) = t.down_since.take() {
                t.down_s += horizon - since;
            }
            let down = t.down_s.clamp(0.0, horizon);
            NodeExposure {
                node: NodeId(id),
                up_s: horizon - down,
                down_s: down,
                crashes: t.crashes,
            }
        })
        .collect()
}

/// One node's utilisation over a round.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeUtilization {
    /// The node.
    pub node: crate::node::NodeId,
    /// Busy compute seconds.
    pub compute_busy_s: f64,
    /// Busy link seconds.
    pub link_busy_s: f64,
    /// Compute busy time as a fraction of the round's makespan.
    pub compute_utilization: f64,
}

/// Per-node utilisation summary, sorted by node id. Nodes that did no work
/// are included (zeros) so idle capacity is visible.
pub fn utilization(report: &SimReport, cluster: &Cluster) -> Vec<NodeUtilization> {
    let makespan = report.makespan().max(1e-12);
    let mut out: Vec<NodeUtilization> = cluster
        .workers()
        .map(|n| {
            let compute = report.node_busy.get(&n.id()).copied().unwrap_or(0.0);
            let link = report.link_busy.get(&n.id()).copied().unwrap_or(0.0);
            NodeUtilization {
                node: n.id(),
                compute_busy_s: compute,
                link_busy_s: link,
                compute_utilization: compute / makespan,
            }
        })
        .collect();
    out.sort_by_key(|u| u.node);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::node::NodeId;
    use crate::run::{simulate, NodeAssignment, SimConfig, SimTask};

    fn run_small() -> (Cluster, SimReport) {
        let cluster = Cluster::paper_testbed().unwrap();
        let tasks = vec![
            SimTask::new(1e6, 1e4, 1.0).unwrap(),
            SimTask::new(2e6, 1e4, 1.0).unwrap(),
            SimTask::new(3e6, 1e4, 1.0).unwrap(),
        ];
        let mut a = NodeAssignment::empty(3);
        a.assign(0, Some(NodeId(1)));
        a.assign(2, Some(NodeId(2)));
        // task 1 unscheduled
        let report = simulate(&cluster, &tasks, &a, SimConfig::default()).unwrap();
        (cluster, report)
    }

    #[test]
    fn csv_covers_every_task() {
        let (_, report) = run_small();
        let csv = timelines_to_csv(&report);
        assert_eq!(csv.lines().count(), 1 + 3);
        // Unscheduled task 1 has the blank form.
        let line1 = csv.lines().nth(2).unwrap();
        assert_eq!(line1, "1,,,,,");
        // Scheduled task 0 names node 1.
        assert!(csv.lines().nth(1).unwrap().starts_with("0,1,"));
    }

    #[test]
    fn failure_csv_round_trips_fields() {
        let log = vec![
            FailureRecord { time: 0.5, kind: FailureKind::NodeCrashed(NodeId(3)) },
            FailureRecord {
                time: 0.5,
                kind: FailureKind::AttemptAborted { task: 2, node: NodeId(3), attempt: 1 },
            },
            FailureRecord {
                time: 1.25,
                kind: FailureKind::Redispatched { task: 2, node: NodeId(5), attempt: 2 },
            },
            FailureRecord { time: 2.0, kind: FailureKind::TaskFailed { task: 2, attempts: 3 } },
        ];
        let csv = failures_to_csv(&log);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time,kind,task,node,attempt");
        assert_eq!(lines[1], "0.500000,node_crashed,,3,");
        assert_eq!(lines[2], "0.500000,attempt_aborted,2,3,1");
        assert_eq!(lines[3], "1.250000,redispatched,2,5,2");
        assert_eq!(lines[4], "2.000000,task_failed,2,,3");
        // Display form is readable.
        assert!(log[1].kind.to_string().contains("task 2"));
        assert!(log[0].kind.to_string().contains("node-3"));
    }

    #[test]
    fn utilization_covers_all_workers_and_is_bounded() {
        let (cluster, report) = run_small();
        let u = utilization(&report, &cluster);
        assert_eq!(u.len(), 9);
        for nu in &u {
            assert!(nu.compute_busy_s >= 0.0);
            assert!((0.0..=1.0 + 1e-9).contains(&nu.compute_utilization));
        }
        // Only nodes 1 and 2 did work.
        let busy: Vec<usize> =
            u.iter().filter(|x| x.compute_busy_s > 0.0).map(|x| x.node.0).collect();
        assert_eq!(busy, vec![1, 2]);
    }

    #[test]
    fn exposures_split_the_horizon_and_count_crashes() {
        let log = vec![
            FailureRecord { time: 10.0, kind: FailureKind::NodeCrashed(NodeId(1)) },
            FailureRecord { time: 30.0, kind: FailureKind::NodeRecovered(NodeId(1)) },
            FailureRecord { time: 50.0, kind: FailureKind::LinkWentDown(NodeId(2)) },
            // node 3 crashes and never recovers: open interval closes at horizon
            FailureRecord { time: 80.0, kind: FailureKind::NodeCrashed(NodeId(3)) },
            // task-level records are ignored by the exposure summary
            FailureRecord { time: 81.0, kind: FailureKind::TaskFailed { task: 0, attempts: 2 } },
        ];
        let nodes = [NodeId(1), NodeId(2), NodeId(3), NodeId(4)];
        let exp = node_exposures(&log, &nodes, 100.0);
        assert_eq!(exp.len(), 4);
        assert_eq!(exp[0].node, NodeId(1));
        assert!((exp[0].down_s - 20.0).abs() < 1e-9);
        assert!((exp[0].up_s - 80.0).abs() < 1e-9);
        assert_eq!(exp[0].crashes, 1);
        // link outage counts as downtime but not a crash
        assert!((exp[1].down_s - 50.0).abs() < 1e-9);
        assert_eq!(exp[1].crashes, 0);
        assert!((exp[2].down_s - 20.0).abs() < 1e-9);
        assert_eq!(exp[2].crashes, 1);
        // untouched node is fully up
        assert!((exp[3].up_s - 100.0).abs() < 1e-9);
        assert_eq!(exp[3].crashes, 0);
    }

    #[test]
    fn exposures_overlapping_outages_do_not_double_count() {
        let log = vec![
            FailureRecord { time: 10.0, kind: FailureKind::LinkWentDown(NodeId(5)) },
            FailureRecord { time: 20.0, kind: FailureKind::NodeCrashed(NodeId(5)) },
            FailureRecord { time: 40.0, kind: FailureKind::LinkRestored(NodeId(5)) },
            FailureRecord { time: 60.0, kind: FailureKind::NodeRecovered(NodeId(5)) },
        ];
        let exp = node_exposures(&log, &[NodeId(5)], 100.0);
        assert!((exp[0].down_s - 50.0).abs() < 1e-9, "{}", exp[0].down_s);
        assert_eq!(exp[0].crashes, 1);
    }

    #[test]
    fn exposures_are_arrival_order_invariant() {
        let log = vec![
            FailureRecord { time: 10.0, kind: FailureKind::NodeCrashed(NodeId(1)) },
            FailureRecord { time: 30.0, kind: FailureKind::NodeRecovered(NodeId(1)) },
            FailureRecord { time: 5.0, kind: FailureKind::LinkWentDown(NodeId(2)) },
            FailureRecord { time: 55.0, kind: FailureKind::LinkRestored(NodeId(2)) },
        ];
        let mut shuffled = log.clone();
        shuffled.reverse();
        let nodes = [NodeId(1), NodeId(2)];
        assert_eq!(node_exposures(&log, &nodes, 60.0), node_exposures(&shuffled, &nodes, 60.0));
    }

    #[test]
    fn trace_exports_work_on_mesh_reports() {
        let cluster = Cluster::mesh_testbed(crate::cluster::MeshSpec::new(12, 3)).unwrap();
        let tasks =
            vec![SimTask::new(1e6, 1e4, 1.0).unwrap(), SimTask::new(2e6, 1e4, 1.0).unwrap()];
        let mut a = NodeAssignment::empty(2);
        a.assign(0, Some(NodeId(4)));
        a.assign(1, Some(NodeId(7)));
        let report = simulate(&cluster, &tasks, &a, SimConfig::default()).unwrap();
        let csv = timelines_to_csv(&report);
        assert_eq!(csv.lines().count(), 1 + 2);
        assert!(csv.lines().nth(1).unwrap().starts_with("0,4,"));
        let u = utilization(&report, &cluster);
        assert_eq!(u.len(), 11);
        let busy: Vec<usize> =
            u.iter().filter(|x| x.compute_busy_s > 0.0).map(|x| x.node.0).collect();
        assert_eq!(busy, vec![4, 7]);
    }
}
