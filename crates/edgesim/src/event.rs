//! A minimal deterministic discrete-event engine.
//!
//! Events carry an `f64` timestamp and a user payload; ties are broken by
//! insertion order so simulations are fully reproducible. This engine drives
//! [`crate::run`]'s transmission/compute pipeline.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event.
#[derive(Debug, Clone, PartialEq)]
struct Scheduled<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T: PartialEq> Eq for Scheduled<T> {}

impl<T: PartialEq> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: PartialEq> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first, with
        // insertion order as tiebreak.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times must be finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// An event queue ordered by time, FIFO among equal times.
///
/// # Examples
///
/// ```
/// use edgesim::event::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "later");
/// q.schedule(1.0, "sooner");
/// assert_eq!(q.pop_next(), Some((1.0, "sooner")));
/// assert_eq!(q.pop_next(), Some((2.0, "later")));
/// assert_eq!(q.pop_next(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    seq: u64,
    now: f64,
}

impl<T: PartialEq> EventQueue<T> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), seq: 0, now: 0.0 }
    }

    /// Current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is non-finite or earlier than the current time
    /// (events cannot be scheduled in the past).
    pub fn schedule(&mut self, time: f64, payload: T) {
        assert!(time.is_finite(), "event time must be finite");
        assert!(time + 1e-12 >= self.now, "cannot schedule in the past: {time} < {}", self.now);
        self.heap.push(Scheduled { time, seq: self.seq, payload });
        self.seq += 1;
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    /// (Named `pop_next` rather than `next` to avoid reading like
    /// `Iterator::next`.)
    pub fn pop_next(&mut self) -> Option<(f64, T)> {
        let ev = self.heap.pop()?;
        self.now = ev.time;
        Some((ev.time, ev.payload))
    }
}

impl<T: PartialEq> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Smallest bucket count a [`CalendarQueue`] will shrink to.
const MIN_BUCKETS: usize = 16;
/// Largest bucket count a [`CalendarQueue`] will grow to.
const MAX_BUCKETS: usize = 1 << 20;

/// An indexed calendar (bucket) queue with the same ordering contract as
/// [`EventQueue`]: earliest time first, FIFO among equal timestamps.
///
/// Events hash into `buckets.len()` time slices of `width` seconds each
/// (`bucket = floor(time / width) mod buckets`); popping walks the calendar
/// from the current day, so insert and pop are O(1) amortised for a calendar
/// in balance — the difference against one global O(log n) heap dominates at
/// 1000+ simulated nodes where the event population stays large for the
/// whole run. Each bucket is itself a small earliest-first heap, so even a
/// long-tailed timestamp distribution that crowds one bucket degrades to
/// O(log b), never a linear sorted insert. The queue resizes (doubling or
/// halving the bucket count, re-estimating the width from the observed event
/// span) when the population drifts out of balance with the calendar, so no
/// tuning is needed.
///
/// The pop order is *identical* to [`EventQueue`]'s — same `(time, seq)`
/// key, same FIFO tie-break — which `tests/properties.rs` pins with a
/// proptest over random insert/pop interleavings. The engines in
/// [`crate::run`] rely on that equivalence: swapping the queue cannot move
/// a single event.
///
/// # Examples
///
/// ```
/// use edgesim::event::CalendarQueue;
///
/// let mut q = CalendarQueue::new();
/// q.schedule(2.0, "later");
/// q.schedule(1.0, "sooner");
/// assert_eq!(q.pop_next(), Some((1.0, "sooner")));
/// assert_eq!(q.pop_next(), Some((2.0, "later")));
/// assert_eq!(q.pop_next(), None);
/// ```
#[derive(Debug, Clone)]
pub struct CalendarQueue<T> {
    /// Each bucket is a small earliest-first heap ([`Scheduled`]'s order is
    /// inverted, so `peek`/`pop` yield the bucket's minimum `(time, seq)`).
    /// A heap rather than a sorted `Vec` keeps inserts O(log b) even when a
    /// long-tailed timestamp distribution crowds one bucket — a sorted
    /// insert would pay an O(b) memmove per event there.
    buckets: Vec<BinaryHeap<Scheduled<T>>>,
    /// Seconds covered by one bucket.
    width: f64,
    /// Virtual day the pop cursor is on: events with
    /// `floor(time / width) == day` live in bucket `day % buckets.len()`.
    day: u64,
    len: usize,
    seq: u64,
    now: f64,
}

impl<T: PartialEq> CalendarQueue<T> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        let buckets = std::iter::repeat_with(BinaryHeap::new).take(MIN_BUCKETS).collect();
        Self { buckets, width: 1.0, day: 0, len: 0, seq: 0, now: 0.0 }
    }

    /// Current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn day_of(&self, time: f64) -> u64 {
        // `as u64` saturates, so negative epsilons clamp to day 0 and huge
        // times to the last representable day.
        (time / self.width).floor().max(0.0) as u64
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is non-finite or earlier than the current time
    /// (events cannot be scheduled in the past).
    pub fn schedule(&mut self, time: f64, payload: T) {
        assert!(time.is_finite(), "event time must be finite");
        assert!(time + 1e-12 >= self.now, "cannot schedule in the past: {time} < {}", self.now);
        if self.len >= self.buckets.len() * 2 && self.buckets.len() < MAX_BUCKETS {
            self.resize(self.buckets.len() * 2);
        }
        let seq = self.seq;
        self.seq += 1;
        let ev = Scheduled { time, seq, payload };
        let n = self.buckets.len();
        let day = self.day_of(time);
        // The ε-past allowance lets `time` land one day behind the cursor
        // when a bucket boundary falls inside the epsilon; back up so the
        // scan still pops strictly in (time, seq) order.
        if day < self.day {
            self.day = day;
        }
        self.buckets[day as usize % n].push(ev);
        self.len += 1;
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop_next(&mut self) -> Option<(f64, T)> {
        if self.len == 0 {
            return None;
        }
        if self.len <= self.buckets.len() / 4 && self.buckets.len() > MIN_BUCKETS {
            self.resize((self.buckets.len() / 2).max(MIN_BUCKETS));
        }
        let n = self.buckets.len() as u64;
        // Walk the calendar from the current day; after a full fruitless
        // rotation fall back to a direct scan for the global minimum (the
        // pending events are all far in the future).
        for _ in 0..n {
            let b = (self.day % n) as usize;
            if let Some(ev) = self.buckets[b].peek() {
                if self.day_of(ev.time) <= self.day {
                    let ev = self.buckets[b].pop().expect("bucket minimum exists");
                    self.len -= 1;
                    self.now = ev.time;
                    return Some((ev.time, ev.payload));
                }
            }
            self.day += 1;
        }
        self.day = self.day_of(self.min_time().expect("len > 0"));
        let b = (self.day % n) as usize;
        let ev = self.buckets[b].pop().expect("minimum's bucket is non-empty");
        self.len -= 1;
        self.now = ev.time;
        Some((ev.time, ev.payload))
    }

    /// Earliest pending timestamp, or `None` when empty. O(buckets).
    fn min_time(&self) -> Option<f64> {
        self.buckets
            .iter()
            .filter_map(|b| b.peek().map(|e| e.time))
            .fold(None, |m, t| Some(m.map_or(t, |m: f64| m.min(t))))
    }

    /// Rebuilds the calendar with `n` buckets and a width estimated from
    /// the current event span (aiming for ~2 events per active day).
    fn resize(&mut self, n: usize) {
        let events: Vec<Scheduled<T>> = self.buckets.iter_mut().flat_map(std::mem::take).collect();
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for ev in &events {
            lo = lo.min(ev.time);
            hi = hi.max(ev.time);
        }
        let span = (hi - lo).max(0.0);
        self.width = if span > 0.0 && !events.is_empty() {
            (span * 2.0 / events.len() as f64).max(1e-9)
        } else {
            1.0
        };
        self.buckets = std::iter::repeat_with(BinaryHeap::new).take(n).collect();
        self.day = self.day_of(if lo.is_finite() { lo } else { self.now });
        for ev in events {
            let b = self.day_of(ev.time) as usize % n;
            self.buckets[b].push(ev);
        }
    }
}

impl<T: PartialEq> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 'c');
        q.schedule(1.0, 'a');
        q.schedule(2.0, 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop_next().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(1.0, 2);
        q.schedule(1.0, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop_next().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0.0);
        q.schedule(5.0, ());
        q.pop_next();
        assert_eq!(q.now(), 5.0);
    }

    #[test]
    fn scheduling_during_processing_is_allowed_at_now() {
        let mut q = EventQueue::new();
        q.schedule(5.0, "first");
        let (t, _) = q.pop_next().unwrap();
        q.schedule(t, "same-time follow-up");
        assert_eq!(q.pop_next().unwrap().1, "same-time follow-up");
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop_next();
        q.schedule(1.0, ());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_time_panics() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, ());
        assert_eq!(q.len(), 1);
        q.pop_next();
        assert!(q.is_empty());
        assert!(q.pop_next().is_none());
    }

    #[test]
    fn calendar_pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.schedule(3.0, 'c');
        q.schedule(1.0, 'a');
        q.schedule(2.0, 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop_next().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn calendar_equal_times_are_fifo() {
        let mut q = CalendarQueue::new();
        for i in 0..100 {
            q.schedule(1.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop_next().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn calendar_clock_advances_and_same_time_followup() {
        let mut q = CalendarQueue::new();
        assert_eq!(q.now(), 0.0);
        q.schedule(5.0, "first");
        let (t, _) = q.pop_next().unwrap();
        assert_eq!(q.now(), 5.0);
        q.schedule(t, "same-time follow-up");
        assert_eq!(q.pop_next().unwrap().1, "same-time follow-up");
    }

    #[test]
    #[should_panic(expected = "past")]
    fn calendar_scheduling_in_the_past_panics() {
        let mut q = CalendarQueue::new();
        q.schedule(5.0, ());
        q.pop_next();
        q.schedule(1.0, ());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn calendar_non_finite_time_panics() {
        let mut q = CalendarQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn calendar_survives_resize_cycles() {
        // Push enough to force grow resizes, drain to force shrink, with
        // wildly uneven time spreads; compare against the heap reference.
        let mut cal = CalendarQueue::new();
        let mut heap = EventQueue::new();
        let mut state = 0x5EEDu64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut pending = 0usize;
        for step in 0..4000u64 {
            if pending == 0 || rnd() % 3 != 0 {
                let base = cal.now();
                let dt = match rnd() % 4 {
                    0 => 0.0,
                    1 => (rnd() % 1000) as f64 * 1e-6,
                    2 => (rnd() % 1000) as f64,
                    _ => (rnd() % 10) as f64 * 1e6,
                };
                cal.schedule(base + dt, step);
                heap.schedule(base + dt, step);
                pending += 1;
            } else {
                assert_eq!(cal.pop_next(), heap.pop_next());
                pending -= 1;
            }
        }
        while pending > 0 {
            assert_eq!(cal.pop_next(), heap.pop_next());
            pending -= 1;
        }
        assert!(cal.pop_next().is_none());
    }

    #[test]
    fn calendar_far_future_fallback_scan() {
        // One event many "years" ahead of the cursor: the rotation comes up
        // empty and the direct-minimum fallback must find it.
        let mut q = CalendarQueue::new();
        q.schedule(0.5, "near");
        q.schedule(1e9, "far");
        assert_eq!(q.pop_next().unwrap().1, "near");
        assert_eq!(q.pop_next().unwrap().1, "far");
    }
}
