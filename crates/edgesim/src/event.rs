//! A minimal deterministic discrete-event engine.
//!
//! Events carry an `f64` timestamp and a user payload; ties are broken by
//! insertion order so simulations are fully reproducible. This engine drives
//! [`crate::run`]'s transmission/compute pipeline.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event.
#[derive(Debug, Clone, PartialEq)]
struct Scheduled<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T: PartialEq> Eq for Scheduled<T> {}

impl<T: PartialEq> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: PartialEq> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first, with
        // insertion order as tiebreak.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times must be finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// An event queue ordered by time, FIFO among equal times.
///
/// # Examples
///
/// ```
/// use edgesim::event::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "later");
/// q.schedule(1.0, "sooner");
/// assert_eq!(q.pop_next(), Some((1.0, "sooner")));
/// assert_eq!(q.pop_next(), Some((2.0, "later")));
/// assert_eq!(q.pop_next(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    seq: u64,
    now: f64,
}

impl<T: PartialEq> EventQueue<T> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), seq: 0, now: 0.0 }
    }

    /// Current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is non-finite or earlier than the current time
    /// (events cannot be scheduled in the past).
    pub fn schedule(&mut self, time: f64, payload: T) {
        assert!(time.is_finite(), "event time must be finite");
        assert!(time + 1e-12 >= self.now, "cannot schedule in the past: {time} < {}", self.now);
        self.heap.push(Scheduled { time, seq: self.seq, payload });
        self.seq += 1;
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    /// (Named `pop_next` rather than `next` to avoid reading like
    /// `Iterator::next`.)
    pub fn pop_next(&mut self) -> Option<(f64, T)> {
        let ev = self.heap.pop()?;
        self.now = ev.time;
        Some((ev.time, ev.payload))
    }
}

impl<T: PartialEq> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 'c');
        q.schedule(1.0, 'a');
        q.schedule(2.0, 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop_next().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(1.0, 2);
        q.schedule(1.0, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop_next().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0.0);
        q.schedule(5.0, ());
        q.pop_next();
        assert_eq!(q.now(), 5.0);
    }

    #[test]
    fn scheduling_during_processing_is_allowed_at_now() {
        let mut q = EventQueue::new();
        q.schedule(5.0, "first");
        let (t, _) = q.pop_next().unwrap();
        q.schedule(t, "same-time follow-up");
        assert_eq!(q.pop_next().unwrap().1, "same-time follow-up");
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop_next();
        q.schedule(1.0, ());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_time_panics() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, ());
        assert_eq!(q.len(), 1);
        q.pop_next();
        assert!(q.is_empty());
        assert!(q.pop_next().is_none());
    }
}
