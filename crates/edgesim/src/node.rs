//! Edge device models.
//!
//! The paper's testbed (§V-B, Fig. 8) is nine Raspberry Pi 3 boards of
//! models A+, B and B+ plus one laptop, star-connected over WiFi. Each
//! device is characterised by a *compute rate* in seconds per bit — the
//! paper fixes the Pi A+ at `4.75e-7 s/bit` (from its citation \[33\]) — and a
//! resource capacity that plays the `V_p` role in Eq. (4).

use std::fmt;

/// Hardware class of an edge node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceModel {
    /// Raspberry Pi model A+ — the paper's reference device
    /// (`4.75e-7 s/bit`).
    RaspberryPiAPlus,
    /// Raspberry Pi model B — slightly faster than the A+.
    RaspberryPiB,
    /// Raspberry Pi model B+ — the fastest Pi in the testbed.
    RaspberryPiBPlus,
    /// The laptop acting as controller/operation node.
    Laptop,
}

impl DeviceModel {
    /// Compute time in seconds per input bit.
    ///
    /// The A+ rate is the paper's published constant; sibling models are
    /// scaled by their relative CPU clocks, which within one Raspberry Pi
    /// generation differ modestly (roughly 1.0× / 1.13× / 1.32×); the
    /// laptop is an order of magnitude faster.
    pub fn seconds_per_bit(self) -> f64 {
        match self {
            DeviceModel::RaspberryPiAPlus => 4.75e-7,
            DeviceModel::RaspberryPiB => 4.2e-7,
            DeviceModel::RaspberryPiBPlus => 3.6e-7,
            DeviceModel::Laptop => 4.0e-8,
        }
    }

    /// Default resource capacity (the abstract `V_p` of Eq. 4). Units are
    /// arbitrary "resource units"; what matters to TATIM is their relative
    /// magnitude across heterogeneous devices.
    pub fn default_capacity(self) -> f64 {
        match self {
            DeviceModel::RaspberryPiAPlus => 4.0,
            DeviceModel::RaspberryPiB => 6.0,
            DeviceModel::RaspberryPiBPlus => 8.0,
            DeviceModel::Laptop => 32.0,
        }
    }
}

impl fmt::Display for DeviceModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DeviceModel::RaspberryPiAPlus => "Raspberry Pi A+",
            DeviceModel::RaspberryPiB => "Raspberry Pi B",
            DeviceModel::RaspberryPiBPlus => "Raspberry Pi B+",
            DeviceModel::Laptop => "Laptop",
        };
        f.write_str(name)
    }
}

/// Identifier of a node within a [`crate::cluster::Cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// A concrete edge node instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    id: NodeId,
    model: DeviceModel,
    capacity: f64,
    /// Multiplier on compute time (used for failure/degradation injection;
    /// 1.0 = nominal).
    slowdown: f64,
}

impl Node {
    /// Creates a node with the model's default capacity.
    pub fn new(id: NodeId, model: DeviceModel) -> Self {
        Self { id, model, capacity: model.default_capacity(), slowdown: 1.0 }
    }

    /// Overrides the resource capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is negative or non-finite.
    pub fn with_capacity(mut self, capacity: f64) -> Self {
        assert!(capacity.is_finite() && capacity >= 0.0, "capacity must be >= 0");
        self.capacity = capacity;
        self
    }

    /// Applies a compute slowdown factor (≥ 1.0 slows the node; used by
    /// failure-injection tests).
    ///
    /// # Panics
    ///
    /// Panics if `slowdown` is not at least 1.0 or non-finite.
    pub fn with_slowdown(mut self, slowdown: f64) -> Self {
        assert!(slowdown.is_finite() && slowdown >= 1.0, "slowdown must be >= 1.0");
        self.slowdown = slowdown;
        self
    }

    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's hardware class.
    pub fn model(&self) -> DeviceModel {
        self.model
    }

    /// Resource capacity (`V_p`).
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Compute slowdown factor (1.0 = nominal speed).
    pub fn slowdown(&self) -> f64 {
        self.slowdown
    }

    /// Seconds needed to process `bits` of input on this node.
    pub fn compute_time(&self, bits: f64) -> f64 {
        self.model.seconds_per_bit() * self.slowdown * bits.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constant_for_a_plus() {
        assert_eq!(DeviceModel::RaspberryPiAPlus.seconds_per_bit(), 4.75e-7);
    }

    #[test]
    fn laptop_is_fastest() {
        let models = [
            DeviceModel::RaspberryPiAPlus,
            DeviceModel::RaspberryPiB,
            DeviceModel::RaspberryPiBPlus,
        ];
        for m in models {
            assert!(DeviceModel::Laptop.seconds_per_bit() < m.seconds_per_bit());
            assert!(DeviceModel::Laptop.default_capacity() > m.default_capacity());
        }
    }

    #[test]
    fn pi_ordering_matches_hardware_generation() {
        assert!(
            DeviceModel::RaspberryPiBPlus.seconds_per_bit()
                < DeviceModel::RaspberryPiB.seconds_per_bit()
        );
        assert!(
            DeviceModel::RaspberryPiB.seconds_per_bit()
                < DeviceModel::RaspberryPiAPlus.seconds_per_bit()
        );
    }

    #[test]
    fn compute_time_scales_linearly() {
        let n = Node::new(NodeId(0), DeviceModel::RaspberryPiAPlus);
        assert_eq!(n.compute_time(1e6), 4.75e-7 * 1e6);
        assert_eq!(n.compute_time(0.0), 0.0);
        assert_eq!(n.compute_time(-5.0), 0.0);
    }

    #[test]
    fn slowdown_multiplies_compute() {
        let n = Node::new(NodeId(1), DeviceModel::Laptop).with_slowdown(3.0);
        let base = Node::new(NodeId(1), DeviceModel::Laptop);
        assert!((n.compute_time(1e6) - 3.0 * base.compute_time(1e6)).abs() < 1e-12);
    }

    #[test]
    fn capacity_override() {
        let n = Node::new(NodeId(2), DeviceModel::RaspberryPiB).with_capacity(99.0);
        assert_eq!(n.capacity(), 99.0);
    }

    #[test]
    #[should_panic(expected = "slowdown")]
    fn bad_slowdown_panics() {
        let _ = Node::new(NodeId(0), DeviceModel::Laptop).with_slowdown(0.5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(DeviceModel::RaspberryPiAPlus.to_string(), "Raspberry Pi A+");
        assert_eq!(NodeId(3).to_string(), "node-3");
    }
}
