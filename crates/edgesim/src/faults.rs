//! Dynamic fault injection: seeded, deterministic schedules of node
//! crashes, link dropouts, and transient straggler windows.
//!
//! The paper's testbed (§V, Fig. 8) is nine Raspberry Pis on star-topology
//! WiFi — hardware that crashes, straggles, and drops links mid-round. A
//! [`FaultSchedule`] scripts such incidents as timestamped events that
//! [`crate::run::simulate_with_faults`] injects into the discrete-event
//! queue. Schedules are plain data: validated once at construction, sorted
//! by time (stable, so same-time events keep their insertion order), and
//! replayed identically on every run — the simulator stays bit-for-bit
//! deterministic under injected faults.

use crate::node::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// One kind of injected incident.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The node halts: in-flight compute and transfer legs abort, queued
    /// inputs are lost, and nothing runs there until a matching
    /// [`FaultKind::Recover`].
    Crash(NodeId),
    /// The node rejoins with an empty queue and nominal speed.
    Recover(NodeId),
    /// The node's star link drops: in-flight transfers abort and no new
    /// transfer can start until [`FaultKind::LinkUp`]. Compute in progress
    /// is unaffected (results queue up behind the dead link).
    LinkDown(NodeId),
    /// The node's star link is restored.
    LinkUp(NodeId),
    /// Start of a transient straggler window: compute legs *starting*
    /// inside the window take `factor` times longer (factor ≥ 1).
    StragglerStart(NodeId, f64),
    /// End of the straggler window: the node returns to nominal speed.
    StragglerEnd(NodeId),
}

impl FaultKind {
    /// The node the incident targets.
    pub fn node(&self) -> NodeId {
        match *self {
            FaultKind::Crash(n)
            | FaultKind::Recover(n)
            | FaultKind::LinkDown(n)
            | FaultKind::LinkUp(n)
            | FaultKind::StragglerStart(n, _)
            | FaultKind::StragglerEnd(n) => n,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Crash(n) => write!(f, "crash {n}"),
            FaultKind::Recover(n) => write!(f, "recover {n}"),
            FaultKind::LinkDown(n) => write!(f, "link-down {n}"),
            FaultKind::LinkUp(n) => write!(f, "link-up {n}"),
            FaultKind::StragglerStart(n, x) => write!(f, "straggle {n} x{x}"),
            FaultKind::StragglerEnd(n) => write!(f, "straggle-end {n}"),
        }
    }
}

/// A timestamped incident.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Absolute simulation time of the incident, seconds.
    pub time: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// Error constructing a schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// An event time is negative, NaN or infinite.
    BadTime {
        /// Offending timestamp.
        time: f64,
    },
    /// A straggler factor below 1.0 (or non-finite).
    BadFactor {
        /// Offending factor.
        factor: f64,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::BadTime { time } => {
                write!(f, "fault time must be finite and non-negative, got {time}")
            }
            FaultError::BadFactor { factor } => {
                write!(f, "straggler factor must be finite and >= 1.0, got {factor}")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// A validated, time-sorted script of incidents for one simulation round.
///
/// Construction order is preserved among same-time events (stable sort), so
/// a schedule replays identically every run regardless of how it was built.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// The empty schedule (a fault-run with it behaves exactly like the
    /// fault-free simulator).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from explicit events, validating and time-sorting them.
    ///
    /// # Errors
    ///
    /// See [`FaultError`] variants.
    pub fn from_events(events: Vec<FaultEvent>) -> Result<Self, FaultError> {
        let mut schedule = Self::new();
        for ev in events {
            schedule.push(ev)?;
        }
        Ok(schedule)
    }

    fn push(&mut self, ev: FaultEvent) -> Result<(), FaultError> {
        if !(ev.time.is_finite() && ev.time >= 0.0) {
            return Err(FaultError::BadTime { time: ev.time });
        }
        if let FaultKind::StragglerStart(_, factor) = ev.kind {
            if !(factor.is_finite() && factor >= 1.0) {
                return Err(FaultError::BadFactor { factor });
            }
        }
        self.events.push(ev);
        // Insertion sort keeps construction cheap and the order stable.
        let mut i = self.events.len() - 1;
        while i > 0 && self.events[i - 1].time > self.events[i].time {
            self.events.swap(i - 1, i);
            i -= 1;
        }
        Ok(())
    }

    /// Adds a node crash at `time`.
    ///
    /// # Errors
    ///
    /// [`FaultError::BadTime`] on invalid timestamps.
    pub fn with_crash(mut self, node: NodeId, time: f64) -> Result<Self, FaultError> {
        self.push(FaultEvent { time, kind: FaultKind::Crash(node) })?;
        Ok(self)
    }

    /// Adds a node recovery at `time`.
    ///
    /// # Errors
    ///
    /// [`FaultError::BadTime`] on invalid timestamps.
    pub fn with_recovery(mut self, node: NodeId, time: f64) -> Result<Self, FaultError> {
        self.push(FaultEvent { time, kind: FaultKind::Recover(node) })?;
        Ok(self)
    }

    /// Adds a link dropout window `[down, up)`.
    ///
    /// # Errors
    ///
    /// [`FaultError::BadTime`] on invalid timestamps.
    pub fn with_link_outage(
        mut self,
        node: NodeId,
        down: f64,
        up: f64,
    ) -> Result<Self, FaultError> {
        self.push(FaultEvent { time: down, kind: FaultKind::LinkDown(node) })?;
        self.push(FaultEvent { time: up, kind: FaultKind::LinkUp(node) })?;
        Ok(self)
    }

    /// Adds a transient straggler window `[start, end)` with compute legs
    /// slowed by `factor`.
    ///
    /// # Errors
    ///
    /// See [`FaultError`] variants.
    pub fn with_straggler(
        mut self,
        node: NodeId,
        start: f64,
        end: f64,
        factor: f64,
    ) -> Result<Self, FaultError> {
        self.push(FaultEvent { time: start, kind: FaultKind::StragglerStart(node, factor) })?;
        self.push(FaultEvent { time: end, kind: FaultKind::StragglerEnd(node) })?;
        Ok(self)
    }

    /// Seeded random schedule over `nodes` and a time `horizon_s`: each node
    /// independently crashes with probability `crash_rate`, at a uniform
    /// time in `(0, horizon_s)`, and recovers `mttr_s` later. Nodes are
    /// visited in slice order and the RNG stream is fixed by `seed`, so the
    /// same arguments always produce the same schedule.
    ///
    /// # Errors
    ///
    /// [`FaultError::BadTime`] when `horizon_s` or `mttr_s` is invalid.
    pub fn seeded(
        seed: u64,
        nodes: &[NodeId],
        crash_rate: f64,
        mttr_s: f64,
        horizon_s: f64,
    ) -> Result<Self, FaultError> {
        if !(horizon_s.is_finite() && horizon_s > 0.0) {
            return Err(FaultError::BadTime { time: horizon_s });
        }
        if !(mttr_s.is_finite() && mttr_s >= 0.0) {
            return Err(FaultError::BadTime { time: mttr_s });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut schedule = Self::new();
        for &node in nodes {
            // Both draws happen for every node so a node's fate does not
            // shift its siblings' RNG stream.
            let crashes = rng.gen_bool(crash_rate);
            let at = rng.gen_range(0.0..1.0) * horizon_s;
            if crashes {
                schedule = schedule.with_crash(node, at)?;
                if mttr_s > 0.0 {
                    schedule = schedule.with_recovery(node, at + mttr_s)?;
                }
            }
        }
        Ok(schedule)
    }

    /// [`Self::seeded`] with a *per-node* crash probability: `rates[i]`
    /// applies to `nodes[i]`. The RNG stream matches `seeded` exactly
    /// (both draws happen for every node), so `seeded_rates` with a
    /// uniform `rates` slice reproduces `seeded` bit for bit. Heterogeneous
    /// rates give fragile and steady nodes distinct long-run behaviour —
    /// the signal an availability posterior can learn from.
    ///
    /// # Errors
    ///
    /// [`FaultError::BadTime`] when `horizon_s` or `mttr_s` is invalid.
    ///
    /// # Panics
    ///
    /// Panics when `rates.len() != nodes.len()` or a rate is outside
    /// `[0, 1]`.
    pub fn seeded_rates(
        seed: u64,
        nodes: &[NodeId],
        rates: &[f64],
        mttr_s: f64,
        horizon_s: f64,
    ) -> Result<Self, FaultError> {
        assert_eq!(rates.len(), nodes.len(), "one crash rate per node");
        assert!(rates.iter().all(|r| (0.0..=1.0).contains(r)), "crash rates must lie in [0, 1]");
        if !(horizon_s.is_finite() && horizon_s > 0.0) {
            return Err(FaultError::BadTime { time: horizon_s });
        }
        if !(mttr_s.is_finite() && mttr_s >= 0.0) {
            return Err(FaultError::BadTime { time: mttr_s });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut schedule = Self::new();
        for (&node, &rate) in nodes.iter().zip(rates) {
            let crashes = rng.gen_bool(rate);
            let at = rng.gen_range(0.0..1.0) * horizon_s;
            if crashes {
                schedule = schedule.with_crash(node, at)?;
                if mttr_s > 0.0 {
                    schedule = schedule.with_recovery(node, at + mttr_s)?;
                }
            }
        }
        Ok(schedule)
    }

    /// The events, sorted by time (stable).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no incidents are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Nodes that crash at any point in the schedule.
    pub fn crashed_nodes(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::Crash(n) => Some(n),
                _ => None,
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_time_sorted_and_stable() {
        let s = FaultSchedule::new()
            .with_crash(NodeId(2), 5.0)
            .unwrap()
            .with_crash(NodeId(1), 1.0)
            .unwrap()
            .with_recovery(NodeId(1), 5.0)
            .unwrap();
        let times: Vec<f64> = s.events().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![1.0, 5.0, 5.0]);
        // Same-time events keep insertion order: crash before recovery.
        assert_eq!(s.events()[1].kind, FaultKind::Crash(NodeId(2)));
        assert_eq!(s.events()[2].kind, FaultKind::Recover(NodeId(1)));
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(matches!(
            FaultSchedule::new().with_crash(NodeId(1), -1.0),
            Err(FaultError::BadTime { .. })
        ));
        assert!(matches!(
            FaultSchedule::new().with_crash(NodeId(1), f64::NAN),
            Err(FaultError::BadTime { .. })
        ));
        assert!(matches!(
            FaultSchedule::new().with_straggler(NodeId(1), 0.0, 1.0, 0.5),
            Err(FaultError::BadFactor { .. })
        ));
        assert!(matches!(
            FaultSchedule::new().with_straggler(NodeId(1), 0.0, 1.0, f64::INFINITY),
            Err(FaultError::BadFactor { .. })
        ));
    }

    #[test]
    fn seeded_schedules_are_deterministic() {
        let nodes: Vec<NodeId> = (1..=9).map(NodeId).collect();
        let a = FaultSchedule::seeded(7, &nodes, 0.3, 2.0, 10.0).unwrap();
        let b = FaultSchedule::seeded(7, &nodes, 0.3, 2.0, 10.0).unwrap();
        let c = FaultSchedule::seeded(8, &nodes, 0.3, 2.0, 10.0).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should differ (with overwhelming probability)");
        for ev in a.events() {
            assert!(ev.time >= 0.0 && ev.time <= 12.0);
        }
        // Every crash has a matching later recovery (mttr > 0).
        for node in a.crashed_nodes() {
            let crash = a.events().iter().find(|e| e.kind == FaultKind::Crash(node)).unwrap().time;
            let rec = a.events().iter().find(|e| e.kind == FaultKind::Recover(node)).unwrap().time;
            assert!((rec - crash - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn seeded_extremes() {
        let nodes: Vec<NodeId> = (1..=4).map(NodeId).collect();
        assert!(FaultSchedule::seeded(1, &nodes, 0.0, 1.0, 10.0).unwrap().is_empty());
        let all = FaultSchedule::seeded(1, &nodes, 1.0, 0.0, 10.0).unwrap();
        assert_eq!(all.crashed_nodes().len(), 4);
        // mttr == 0 means no recovery events.
        assert!(all.events().iter().all(|e| matches!(e.kind, FaultKind::Crash(_))));
        assert!(FaultSchedule::seeded(1, &nodes, 1.0, -1.0, 10.0).is_err());
        assert!(FaultSchedule::seeded(1, &nodes, 1.0, 1.0, 0.0).is_err());
    }

    #[test]
    fn kind_accessors_and_display() {
        let k = FaultKind::StragglerStart(NodeId(3), 2.5);
        assert_eq!(k.node(), NodeId(3));
        assert!(k.to_string().contains("node-3"));
        assert!(FaultKind::Crash(NodeId(1)).to_string().contains("crash"));
    }

    #[test]
    fn uniform_seeded_rates_reproduce_seeded_bit_for_bit() {
        let nodes: Vec<NodeId> = (1..=8).map(NodeId).collect();
        let a = FaultSchedule::seeded(42, &nodes, 0.5, 3.0, 10.0).unwrap();
        let b = FaultSchedule::seeded_rates(42, &nodes, &[0.5; 8], 3.0, 10.0).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn heterogeneous_rates_skew_crashes_toward_fragile_nodes() {
        let nodes: Vec<NodeId> = (1..=2).map(NodeId).collect();
        let mut fragile = 0usize;
        let mut steady = 0usize;
        for seed in 0..200u64 {
            let s = FaultSchedule::seeded_rates(seed, &nodes, &[0.9, 0.1], 0.0, 10.0).unwrap();
            let crashed = s.crashed_nodes();
            fragile += usize::from(crashed.contains(&NodeId(1)));
            steady += usize::from(crashed.contains(&NodeId(2)));
        }
        assert!(fragile > 3 * steady, "fragile {fragile} vs steady {steady}");
    }

    #[test]
    fn seeded_rates_validates_lengths() {
        let nodes = vec![NodeId(1)];
        let err = std::panic::catch_unwind(|| {
            FaultSchedule::seeded_rates(1, &nodes, &[0.5, 0.5], 0.0, 1.0)
        });
        assert!(err.is_err());
    }

    #[test]
    fn from_events_round_trips() {
        let evs = vec![
            FaultEvent { time: 2.0, kind: FaultKind::LinkDown(NodeId(1)) },
            FaultEvent { time: 1.0, kind: FaultKind::Crash(NodeId(2)) },
        ];
        let s = FaultSchedule::from_events(evs).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.events()[0].kind, FaultKind::Crash(NodeId(2)));
    }
}
