//! Cluster assembly: the Fig. 8 testbed and variants.
//!
//! The paper's simulation uses "nine Raspberry Pi (version 3) and one laptop
//! computer ... interconnected via WiFi under a star network topology", with
//! Pi models A+, B and B+. The controller (laptop) partitions the
//! application, allocates tasks, and aggregates the decision; sensing nodes
//! execute the allocated tasks.

use crate::network::{NetworkError, StarNetwork};
use crate::node::{DeviceModel, Node, NodeId};
use std::fmt;

/// Error building or modifying a cluster.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// A cluster needs at least the controller and one worker.
    TooFewNodes {
        /// Number supplied.
        got: usize,
    },
    /// Duplicate node id.
    DuplicateNode {
        /// The repeated id.
        node: NodeId,
    },
    /// Underlying network error.
    Network(NetworkError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::TooFewNodes { got } => {
                write!(f, "cluster needs a controller plus at least one worker, got {got} nodes")
            }
            ClusterError::DuplicateNode { node } => write!(f, "duplicate node id {node}"),
            ClusterError::Network(e) => write!(f, "network error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Network(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetworkError> for ClusterError {
    fn from(e: NetworkError) -> Self {
        ClusterError::Network(e)
    }
}

/// An edge cluster: one controller plus worker nodes on a star network.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    nodes: Vec<Node>,
    network: StarNetwork,
    controller: NodeId,
}

/// Default WiFi bandwidth of the testbed, bits per second: the effective
/// per-link throughput of contended in-building WiFi, chosen so that — as
/// the paper observes (§V-D) — "transmission time is also the main
/// component of processing time". The Fig. 11 sweep scales around this.
pub const DEFAULT_WIFI_BPS: f64 = 6e6;

impl Cluster {
    /// Builds a cluster. Node 0 is conventionally the controller; workers
    /// are every other node.
    ///
    /// # Errors
    ///
    /// [`ClusterError::TooFewNodes`] for fewer than 2 nodes,
    /// [`ClusterError::DuplicateNode`] for repeated ids.
    pub fn new(
        nodes: Vec<Node>,
        network: StarNetwork,
        controller: NodeId,
    ) -> Result<Self, ClusterError> {
        if nodes.len() < 2 {
            return Err(ClusterError::TooFewNodes { got: nodes.len() });
        }
        for (i, n) in nodes.iter().enumerate() {
            if nodes[..i].iter().any(|m| m.id() == n.id()) {
                return Err(ClusterError::DuplicateNode { node: n.id() });
            }
        }
        Ok(Self { nodes, network, controller })
    }

    /// The paper's Fig. 8 testbed: laptop controller + 9 Raspberry Pis
    /// (three each of A+, B, B+) on a uniform WiFi star.
    ///
    /// # Errors
    ///
    /// Never in practice; propagates network validation.
    pub fn paper_testbed() -> Result<Self, ClusterError> {
        Self::testbed_with_workers(9)
    }

    /// A Fig. 8-style testbed with `workers` Pis (cycling A+, B, B+), used
    /// by the Fig. 9 processor-count sweep.
    ///
    /// # Errors
    ///
    /// [`ClusterError::TooFewNodes`] when `workers == 0`.
    pub fn testbed_with_workers(workers: usize) -> Result<Self, ClusterError> {
        let mut nodes = vec![Node::new(NodeId(0), DeviceModel::Laptop)];
        let models = [
            DeviceModel::RaspberryPiAPlus,
            DeviceModel::RaspberryPiB,
            DeviceModel::RaspberryPiBPlus,
        ];
        for w in 0..workers {
            nodes.push(Node::new(NodeId(w + 1), models[w % models.len()]));
        }
        let network = StarNetwork::uniform(DEFAULT_WIFI_BPS, 1e-3)?;
        Self::new(nodes, network, NodeId(0))
    }

    /// All nodes, controller included.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Worker nodes (everything except the controller).
    pub fn workers(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(move |n| n.id() != self.controller)
    }

    /// Number of worker nodes.
    pub fn num_workers(&self) -> usize {
        self.nodes.len() - 1
    }

    /// The controller node id.
    pub fn controller(&self) -> NodeId {
        self.controller
    }

    /// The star network (immutable).
    pub fn network(&self) -> &StarNetwork {
        &self.network
    }

    /// The star network (mutable — e.g. for bandwidth sweeps).
    pub fn network_mut(&mut self) -> &mut StarNetwork {
        &mut self.network
    }

    /// Looks up a node by id.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.iter().find(|n| n.id() == id)
    }

    /// Mutable node lookup (e.g. to inject slowdowns in tests).
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut Node> {
        self.nodes.iter_mut().find(|n| n.id() == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let c = Cluster::paper_testbed().unwrap();
        assert_eq!(c.nodes().len(), 10);
        assert_eq!(c.num_workers(), 9);
        assert_eq!(c.controller(), NodeId(0));
        assert_eq!(c.node(NodeId(0)).unwrap().model(), DeviceModel::Laptop);
        // Three of each Pi model.
        let count = |m: DeviceModel| c.workers().filter(|n| n.model() == m).count();
        assert_eq!(count(DeviceModel::RaspberryPiAPlus), 3);
        assert_eq!(count(DeviceModel::RaspberryPiB), 3);
        assert_eq!(count(DeviceModel::RaspberryPiBPlus), 3);
    }

    #[test]
    fn worker_sweep_sizes() {
        for w in 1..=9 {
            let c = Cluster::testbed_with_workers(w).unwrap();
            assert_eq!(c.num_workers(), w);
        }
        assert!(matches!(
            Cluster::testbed_with_workers(0),
            Err(ClusterError::TooFewNodes { got: 1 })
        ));
    }

    #[test]
    fn duplicate_ids_rejected() {
        let nodes = vec![
            Node::new(NodeId(0), DeviceModel::Laptop),
            Node::new(NodeId(0), DeviceModel::RaspberryPiB),
        ];
        let net = StarNetwork::uniform(1e6, 0.0).unwrap();
        assert!(matches!(
            Cluster::new(nodes, net, NodeId(0)),
            Err(ClusterError::DuplicateNode { .. })
        ));
    }

    #[test]
    fn node_lookup_and_mutation() {
        let mut c = Cluster::paper_testbed().unwrap();
        assert!(c.node(NodeId(42)).is_none());
        let before = c.node(NodeId(1)).unwrap().compute_time(1e6);
        c.node_mut(NodeId(1)).map(|n| *n = n.clone().with_slowdown(2.0)).unwrap();
        assert!(c.node(NodeId(1)).unwrap().compute_time(1e6) > before);
    }
}
