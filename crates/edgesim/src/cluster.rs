//! Cluster assembly: the Fig. 8 testbed and variants.
//!
//! The paper's simulation uses "nine Raspberry Pi (version 3) and one laptop
//! computer ... interconnected via WiFi under a star network topology", with
//! Pi models A+, B and B+. The controller (laptop) partitions the
//! application, allocates tasks, and aggregates the decision; sensing nodes
//! execute the allocated tasks.

use crate::network::{Link, MeshNetwork, NetworkError, StarNetwork};
use crate::node::{DeviceModel, Node, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Error building or modifying a cluster.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// A cluster needs at least the controller and one worker.
    TooFewNodes {
        /// Number supplied.
        got: usize,
    },
    /// Duplicate node id.
    DuplicateNode {
        /// The repeated id.
        node: NodeId,
    },
    /// Mesh clusters need exactly one node per mesh vertex.
    MeshNodeCount {
        /// Nodes supplied.
        nodes: usize,
        /// Vertices in the mesh.
        mesh_nodes: usize,
    },
    /// Mesh clusters need node `i` to carry id `NodeId(i)` (ids index the
    /// adjacency directly).
    MeshNodeId {
        /// Position in the node list.
        index: usize,
        /// The id found there.
        id: NodeId,
    },
    /// Underlying network error.
    Network(NetworkError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::TooFewNodes { got } => {
                write!(f, "cluster needs a controller plus at least one worker, got {got} nodes")
            }
            ClusterError::DuplicateNode { node } => write!(f, "duplicate node id {node}"),
            ClusterError::MeshNodeCount { nodes, mesh_nodes } => {
                write!(f, "mesh has {mesh_nodes} vertices but {nodes} nodes were supplied")
            }
            ClusterError::MeshNodeId { index, id } => {
                write!(f, "mesh cluster node at position {index} must have id {index}, got {id}")
            }
            ClusterError::Network(e) => write!(f, "network error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Network(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetworkError> for ClusterError {
    fn from(e: NetworkError) -> Self {
        ClusterError::Network(e)
    }
}

/// A topology-specific accessor was called on a cluster of the other
/// topology (e.g. [`Cluster::network`] on a mesh).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologyError {
    /// What the accessor needed.
    pub expected: &'static str,
    /// What the cluster actually is.
    pub actual: &'static str,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cluster is a {}, not a {}", self.actual, self.expected)
    }
}

impl std::error::Error for TopologyError {}

/// Deterministic per-node cost of moving bits between the controller and a
/// node, queried once per allocation round via [`Cluster::route_costs`].
///
/// `per_bit_s` carries the congestion proxy: on a mesh it is the maximum
/// over the node's static route (controller→node shortest path) of
/// `load_e / bandwidth_e`, where `load_e` counts how many controller→worker
/// routes traverse edge `e` — a shared backbone edge carrying 50 routes is
/// 50× as expensive per bit as a private leaf link of the same capacity.
/// This is a proxy, not the simulator's proportional-share contention: it
/// prices the *worst case* where every worker's flow is concurrently on the
/// wire, which is exactly the congestion the allocator should avoid
/// creating. `latency_s` (summed hop latency) is second-order for the
/// multi-megabit transfers TATIM moves and is reported but not folded into
/// budget deflation.
///
/// On a star every worker has a dedicated uplink carrying exactly one
/// route, so the proxy degenerates to `1 / bandwidth` — the star uplink
/// term — and a uniform star yields identical costs on every worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteCost {
    /// Summed hop latency of the static route, seconds.
    pub latency_s: f64,
    /// Congestion-adjusted seconds per bit (`∞` when unreachable).
    pub per_bit_s: f64,
}

impl RouteCost {
    /// Zero cost (the controller's own entry).
    pub const FREE: Self = Self { latency_s: 0.0, per_bit_s: 0.0 };

    /// Nominal seconds to move `bits` over this route under the proxy.
    pub fn transfer_time(&self, bits: f64) -> f64 {
        self.latency_s + bits * self.per_bit_s
    }
}

/// The network a cluster sits on: the paper's star, or a general mesh.
#[derive(Debug, Clone, PartialEq)]
pub enum NetTopology {
    /// Hub-and-spoke WiFi star (the paper's testbed).
    Star(StarNetwork),
    /// Sparse multi-hop mesh with proportional-share contention.
    Mesh(MeshNetwork),
}

/// An edge cluster: one controller plus worker nodes on a network
/// topology (star or mesh).
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    nodes: Vec<Node>,
    topology: NetTopology,
    controller: NodeId,
    /// `id.0 → position in `nodes``, `usize::MAX` = absent: node lookup is
    /// an array read, not a scan (the per-event hot path at 1000+ nodes).
    index: Vec<usize>,
}

/// Default WiFi bandwidth of the testbed, bits per second: the effective
/// per-link throughput of contended in-building WiFi, chosen so that — as
/// the paper observes (§V-D) — "transmission time is also the main
/// component of processing time". The Fig. 11 sweep scales around this.
pub const DEFAULT_WIFI_BPS: f64 = 6e6;

impl Cluster {
    /// Builds a cluster. Node 0 is conventionally the controller; workers
    /// are every other node.
    ///
    /// # Errors
    ///
    /// [`ClusterError::TooFewNodes`] for fewer than 2 nodes,
    /// [`ClusterError::DuplicateNode`] for repeated ids.
    pub fn new(
        nodes: Vec<Node>,
        network: StarNetwork,
        controller: NodeId,
    ) -> Result<Self, ClusterError> {
        Self::with_topology(nodes, NetTopology::Star(network), controller)
    }

    /// Builds a mesh cluster: node `i` sits on mesh vertex `i`, so the
    /// node list must match the mesh vertex-for-vertex with dense ids.
    ///
    /// # Errors
    ///
    /// [`ClusterError::MeshNodeCount`] / [`ClusterError::MeshNodeId`] on a
    /// shape mismatch, plus the usual [`Cluster::new`] validation.
    pub fn new_mesh(
        nodes: Vec<Node>,
        mesh: MeshNetwork,
        controller: NodeId,
    ) -> Result<Self, ClusterError> {
        if nodes.len() != mesh.nodes() {
            return Err(ClusterError::MeshNodeCount {
                nodes: nodes.len(),
                mesh_nodes: mesh.nodes(),
            });
        }
        for (i, n) in nodes.iter().enumerate() {
            if n.id() != NodeId(i) {
                return Err(ClusterError::MeshNodeId { index: i, id: n.id() });
            }
        }
        Self::with_topology(nodes, NetTopology::Mesh(mesh), controller)
    }

    fn with_topology(
        nodes: Vec<Node>,
        topology: NetTopology,
        controller: NodeId,
    ) -> Result<Self, ClusterError> {
        if nodes.len() < 2 {
            return Err(ClusterError::TooFewNodes { got: nodes.len() });
        }
        for (i, n) in nodes.iter().enumerate() {
            if nodes[..i].iter().any(|m| m.id() == n.id()) {
                return Err(ClusterError::DuplicateNode { node: n.id() });
            }
        }
        let index = Self::build_index(&nodes);
        Ok(Self { nodes, topology, controller, index })
    }

    /// Dense id → position map; left empty (scan fallback) when ids are so
    /// sparse the table would dwarf the node list.
    fn build_index(nodes: &[Node]) -> Vec<usize> {
        let max_id = nodes.iter().map(|n| n.id().0).max().unwrap_or(0);
        if max_id >= nodes.len() * 8 + 1024 {
            return Vec::new();
        }
        let mut index = vec![usize::MAX; max_id + 1];
        for (i, n) in nodes.iter().enumerate() {
            index[n.id().0] = i;
        }
        index
    }

    /// The paper's Fig. 8 testbed: laptop controller + 9 Raspberry Pis
    /// (three each of A+, B, B+) on a uniform WiFi star.
    ///
    /// # Errors
    ///
    /// Never in practice; propagates network validation.
    pub fn paper_testbed() -> Result<Self, ClusterError> {
        Self::testbed_with_workers(9)
    }

    /// A Fig. 8-style testbed with `workers` Pis (cycling A+, B, B+), used
    /// by the Fig. 9 processor-count sweep.
    ///
    /// # Errors
    ///
    /// [`ClusterError::TooFewNodes`] when `workers == 0`.
    pub fn testbed_with_workers(workers: usize) -> Result<Self, ClusterError> {
        let mut nodes = vec![Node::new(NodeId(0), DeviceModel::Laptop)];
        let models = [
            DeviceModel::RaspberryPiAPlus,
            DeviceModel::RaspberryPiB,
            DeviceModel::RaspberryPiBPlus,
        ];
        for w in 0..workers {
            nodes.push(Node::new(NodeId(w + 1), models[w % models.len()]));
        }
        let network = StarNetwork::uniform(DEFAULT_WIFI_BPS, 1e-3)?;
        Self::new(nodes, network, NodeId(0))
    }

    /// All nodes, controller included.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Worker nodes (everything except the controller).
    pub fn workers(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(move |n| n.id() != self.controller)
    }

    /// Number of worker nodes.
    pub fn num_workers(&self) -> usize {
        self.nodes.len() - 1
    }

    /// The controller node id.
    pub fn controller(&self) -> NodeId {
        self.controller
    }

    /// The network topology.
    pub fn topology(&self) -> &NetTopology {
        &self.topology
    }

    /// The mesh, when this cluster is a mesh cluster.
    pub fn mesh(&self) -> Option<&MeshNetwork> {
        match &self.topology {
            NetTopology::Mesh(m) => Some(m),
            NetTopology::Star(_) => None,
        }
    }

    /// The mesh (mutable), when this cluster is a mesh cluster.
    pub fn mesh_mut(&mut self) -> Option<&mut MeshNetwork> {
        match &mut self.topology {
            NetTopology::Mesh(m) => Some(m),
            NetTopology::Star(_) => None,
        }
    }

    /// The star network (immutable).
    ///
    /// # Errors
    ///
    /// [`TopologyError`] on a mesh cluster — star-only call sites (Fig. 11
    /// sweeps, the paper testbeds) use this; topology-generic code matches
    /// on [`Self::topology`] instead.
    pub fn network(&self) -> Result<&StarNetwork, TopologyError> {
        match &self.topology {
            NetTopology::Star(s) => Ok(s),
            NetTopology::Mesh(_) => Err(TopologyError { expected: "star", actual: "mesh" }),
        }
    }

    /// The star network (mutable — e.g. for bandwidth sweeps).
    ///
    /// # Errors
    ///
    /// [`TopologyError`] on a mesh cluster (see [`Self::network`]).
    pub fn network_mut(&mut self) -> Result<&mut StarNetwork, TopologyError> {
        match &mut self.topology {
            NetTopology::Star(s) => Ok(s),
            NetTopology::Mesh(_) => Err(TopologyError { expected: "star", actual: "mesh" }),
        }
    }

    /// Per-node controller↔node route costs, aligned with [`Self::nodes`]
    /// (the controller's entry is [`RouteCost::FREE`]).
    ///
    /// Deterministic and cheap — one Dijkstra plus one path walk per node
    /// on a mesh, a table read per node on a star — so allocators can query
    /// it once per round. See [`RouteCost`] for the congestion proxy.
    pub fn route_costs(&self) -> Vec<RouteCost> {
        match &self.topology {
            NetTopology::Star(s) => self
                .nodes
                .iter()
                .map(|n| {
                    if n.id() == self.controller {
                        RouteCost::FREE
                    } else {
                        let link = s.link(n.id());
                        // One dedicated uplink, one route: load is 1.
                        RouteCost {
                            latency_s: link.latency_s(),
                            per_bit_s: 1.0 / link.bandwidth_bps(),
                        }
                    }
                })
                .collect(),
            NetTopology::Mesh(m) => {
                let routes = m.routes_from(self.controller.0, &[]);
                // Edge load: how many controller→worker routes cross each
                // edge (the congestion proxy's numerator).
                let mut load = vec![0u32; m.num_edges()];
                let paths: Vec<Vec<usize>> = self
                    .nodes
                    .iter()
                    .map(|n| {
                        let v = n.id().0;
                        if v == self.controller.0 || !routes.reachable(v) {
                            Vec::new()
                        } else {
                            routes.path_edges(v)
                        }
                    })
                    .collect();
                for path in &paths {
                    for &e in path {
                        load[e] += 1;
                    }
                }
                self.nodes
                    .iter()
                    .zip(&paths)
                    .map(|(n, path)| {
                        let v = n.id().0;
                        if v == self.controller.0 {
                            RouteCost::FREE
                        } else if !routes.reachable(v) {
                            RouteCost { latency_s: f64::INFINITY, per_bit_s: f64::INFINITY }
                        } else {
                            let per_bit_s = path
                                .iter()
                                .map(|&e| f64::from(load[e]) / m.link(e).bandwidth_bps())
                                .fold(0.0f64, f64::max);
                            RouteCost { latency_s: m.path_latency(&routes, v), per_bit_s }
                        }
                    })
                    .collect()
            }
        }
    }

    /// Looks up a node by id — O(1) via the dense id index.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        if self.index.is_empty() {
            return self.nodes.iter().find(|n| n.id() == id);
        }
        let i = self.index.get(id.0).copied()?;
        (i != usize::MAX).then(|| &self.nodes[i])
    }

    /// Mutable node lookup (e.g. to inject slowdowns in tests). The
    /// replacement must keep the node's id — ids index the cluster.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut Node> {
        if self.index.is_empty() {
            return self.nodes.iter_mut().find(|n| n.id() == id);
        }
        let i = self.index.get(id.0).copied()?;
        (i != usize::MAX).then(|| &mut self.nodes[i])
    }
}

/// Parameters for the seeded mesh-world generator
/// ([`Cluster::mesh_testbed`]).
///
/// The generator lays nodes on a √n × √n grid (row-major, node 0 = the
/// laptop controller in one corner), wires 4-neighbour grid edges, and
/// adds `chords_per_8` seeded long-range chords per 8 nodes. Edges carry
/// Soar-style bandwidth/latency tiers: every 8th grid row/column is a
/// fast backbone, chords are a middle tier, everything else is testbed
/// WiFi — with a small seeded per-edge bandwidth jitter so no two worlds
/// are accidentally symmetric. Worker devices cycle the paper's Pi
/// models; every 64th node is a laptop-class aggregator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshSpec {
    /// Total node count, controller included (≥ 2).
    pub nodes: usize,
    /// Seed for chords and bandwidth jitter.
    pub seed: u64,
    /// Long-range chords added per 8 nodes.
    pub chords_per_8: usize,
}

impl MeshSpec {
    /// A `nodes`-node world with the default chord density.
    pub fn new(nodes: usize, seed: u64) -> Self {
        Self { nodes, seed, chords_per_8: 1 }
    }
}

/// Backbone-tier bandwidth (every 8th grid row/column), bits/second.
pub const MESH_BACKBONE_BPS: f64 = 1e8;
/// Chord-tier bandwidth (seeded long-range links), bits/second.
pub const MESH_CHORD_BPS: f64 = 3e7;

impl Cluster {
    /// Generates a seeded mesh world per `spec` (see [`MeshSpec`]).
    ///
    /// Deterministic: the same spec always yields the same cluster, and
    /// the 100/1000/4000-node worlds used by the scale sweep are just
    /// `MeshSpec::new(n, seed)`.
    ///
    /// # Errors
    ///
    /// [`ClusterError::TooFewNodes`] when `spec.nodes < 2`; network
    /// validation never fails for the generated tiers.
    pub fn mesh_testbed(spec: MeshSpec) -> Result<Self, ClusterError> {
        let n = spec.nodes;
        if n < 2 {
            return Err(ClusterError::TooFewNodes { got: n });
        }
        let side = (n as f64).sqrt().ceil() as usize;
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let jitter = |base: f64, rng: &mut StdRng| base * (0.85 + 0.3 * rng.gen::<f64>());

        let mut builder = MeshNetwork::builder(n);
        let add =
            |a: usize, b: usize, bps: f64, lat: f64, builder: &mut crate::network::MeshBuilder| {
                // Generated edges are always valid and unique.
                builder
                    .add_edge(a, b, Link::new(bps, lat).expect("generated link"))
                    .expect("grid edge");
            };
        // 4-neighbour grid edges with tiered capacities.
        for v in 0..n {
            let (r, c) = (v / side, v % side);
            if c + 1 < side && v + 1 < n {
                let backbone = r % 8 == 0;
                let bps = if backbone { MESH_BACKBONE_BPS } else { DEFAULT_WIFI_BPS };
                let lat = if backbone { 2e-4 } else { 1e-3 };
                add(v, v + 1, jitter(bps, &mut rng), lat, &mut builder);
            }
            if v + side < n {
                let backbone = c % 8 == 0;
                let bps = if backbone { MESH_BACKBONE_BPS } else { DEFAULT_WIFI_BPS };
                let lat = if backbone { 2e-4 } else { 1e-3 };
                add(v, v + side, jitter(bps, &mut rng), lat, &mut builder);
            }
        }
        // Seeded long-range chords (middle tier); duplicates of grid edges
        // or earlier chords are simply skipped so the count stays bounded.
        let chords = n * spec.chords_per_8 / 8;
        for _ in 0..chords {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a == b {
                continue;
            }
            let bps = jitter(MESH_CHORD_BPS, &mut rng);
            let _ = builder.add_edge(a, b, Link::new(bps, 5e-4).expect("chord link"));
        }
        let mesh = builder.build();

        let models = [
            DeviceModel::RaspberryPiAPlus,
            DeviceModel::RaspberryPiB,
            DeviceModel::RaspberryPiBPlus,
        ];
        let mut nodes = Vec::with_capacity(n);
        nodes.push(Node::new(NodeId(0), DeviceModel::Laptop));
        for v in 1..n {
            let model =
                if v % 64 == 0 { DeviceModel::Laptop } else { models[(v - 1) % models.len()] };
            nodes.push(Node::new(NodeId(v), model));
        }
        Self::new_mesh(nodes, mesh, NodeId(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let c = Cluster::paper_testbed().unwrap();
        assert_eq!(c.nodes().len(), 10);
        assert_eq!(c.num_workers(), 9);
        assert_eq!(c.controller(), NodeId(0));
        assert_eq!(c.node(NodeId(0)).unwrap().model(), DeviceModel::Laptop);
        // Three of each Pi model.
        let count = |m: DeviceModel| c.workers().filter(|n| n.model() == m).count();
        assert_eq!(count(DeviceModel::RaspberryPiAPlus), 3);
        assert_eq!(count(DeviceModel::RaspberryPiB), 3);
        assert_eq!(count(DeviceModel::RaspberryPiBPlus), 3);
    }

    #[test]
    fn worker_sweep_sizes() {
        for w in 1..=9 {
            let c = Cluster::testbed_with_workers(w).unwrap();
            assert_eq!(c.num_workers(), w);
        }
        assert!(matches!(
            Cluster::testbed_with_workers(0),
            Err(ClusterError::TooFewNodes { got: 1 })
        ));
    }

    #[test]
    fn duplicate_ids_rejected() {
        let nodes = vec![
            Node::new(NodeId(0), DeviceModel::Laptop),
            Node::new(NodeId(0), DeviceModel::RaspberryPiB),
        ];
        let net = StarNetwork::uniform(1e6, 0.0).unwrap();
        assert!(matches!(
            Cluster::new(nodes, net, NodeId(0)),
            Err(ClusterError::DuplicateNode { .. })
        ));
    }

    #[test]
    fn node_lookup_and_mutation() {
        let mut c = Cluster::paper_testbed().unwrap();
        assert!(c.node(NodeId(42)).is_none());
        let before = c.node(NodeId(1)).unwrap().compute_time(1e6);
        c.node_mut(NodeId(1)).map(|n| *n = n.clone().with_slowdown(2.0)).unwrap();
        assert!(c.node(NodeId(1)).unwrap().compute_time(1e6) > before);
    }

    #[test]
    fn sparse_ids_fall_back_to_scan() {
        let nodes = vec![
            Node::new(NodeId(0), DeviceModel::Laptop),
            Node::new(NodeId(1_000_000), DeviceModel::RaspberryPiB),
        ];
        let net = StarNetwork::uniform(1e6, 0.0).unwrap();
        let c = Cluster::new(nodes, net, NodeId(0)).unwrap();
        assert!(c.node(NodeId(1_000_000)).is_some());
        assert!(c.node(NodeId(7)).is_none());
    }

    #[test]
    fn mesh_cluster_shape_validation() {
        let link = Link::new(1e6, 0.0).unwrap();
        let mut b = MeshNetwork::builder(3);
        b.add_edge(0, 1, link).unwrap();
        b.add_edge(1, 2, link).unwrap();
        let mesh = b.build();
        let two = vec![
            Node::new(NodeId(0), DeviceModel::Laptop),
            Node::new(NodeId(1), DeviceModel::RaspberryPiB),
        ];
        assert!(matches!(
            Cluster::new_mesh(two, mesh.clone(), NodeId(0)),
            Err(ClusterError::MeshNodeCount { nodes: 2, mesh_nodes: 3 })
        ));
        let misnumbered = vec![
            Node::new(NodeId(0), DeviceModel::Laptop),
            Node::new(NodeId(2), DeviceModel::RaspberryPiB),
            Node::new(NodeId(1), DeviceModel::RaspberryPiB),
        ];
        assert!(matches!(
            Cluster::new_mesh(misnumbered, mesh.clone(), NodeId(0)),
            Err(ClusterError::MeshNodeId { index: 1, .. })
        ));
        let good = vec![
            Node::new(NodeId(0), DeviceModel::Laptop),
            Node::new(NodeId(1), DeviceModel::RaspberryPiB),
            Node::new(NodeId(2), DeviceModel::RaspberryPiBPlus),
        ];
        let c = Cluster::new_mesh(good, mesh, NodeId(0)).unwrap();
        assert!(c.mesh().is_some());
        assert_eq!(c.num_workers(), 2);
    }

    #[test]
    fn star_accessor_errors_on_mesh() {
        let mut c = Cluster::mesh_testbed(MeshSpec::new(9, 7)).unwrap();
        let err = c.network().unwrap_err();
        assert_eq!(err, TopologyError { expected: "star", actual: "mesh" });
        assert_eq!(err.to_string(), "cluster is a mesh, not a star");
        assert!(c.network_mut().is_err());
        let star = Cluster::paper_testbed().unwrap();
        assert!(star.network().is_ok());
    }

    #[test]
    fn star_route_costs_are_the_uplink_term() {
        let c = Cluster::paper_testbed().unwrap();
        let costs = c.route_costs();
        assert_eq!(costs.len(), c.nodes().len());
        assert_eq!(costs[0], RouteCost::FREE);
        for cost in &costs[1..] {
            assert_eq!(cost.per_bit_s, 1.0 / DEFAULT_WIFI_BPS);
            assert_eq!(cost.latency_s, 1e-3);
        }
        let t = costs[1].transfer_time(6e6);
        assert!((t - (1e-3 + 1.0)).abs() < 1e-12, "6 Mbit over 6 Mbps ≈ 1 s, got {t}");
    }

    #[test]
    fn mesh_route_costs_price_shared_edges() {
        // Path graph 0—1—2: edge (0,1) carries both worker routes, edge
        // (1,2) only node 2's, so node 2's bottleneck is the shared edge.
        let link = Link::new(1e6, 1e-4).unwrap();
        let mut b = MeshNetwork::builder(3);
        b.add_edge(0, 1, link).unwrap();
        b.add_edge(1, 2, link).unwrap();
        let nodes = vec![
            Node::new(NodeId(0), DeviceModel::Laptop),
            Node::new(NodeId(1), DeviceModel::RaspberryPiB),
            Node::new(NodeId(2), DeviceModel::RaspberryPiB),
        ];
        let c = Cluster::new_mesh(nodes, b.build(), NodeId(0)).unwrap();
        let costs = c.route_costs();
        assert_eq!(costs[0], RouteCost::FREE);
        assert!((costs[1].per_bit_s - 2.0 / 1e6).abs() < 1e-18, "shared edge load 2");
        assert!((costs[2].per_bit_s - 2.0 / 1e6).abs() < 1e-18, "bottleneck is shared edge");
        assert!((costs[1].latency_s - 1e-4).abs() < 1e-18);
        assert!((costs[2].latency_s - 2e-4).abs() < 1e-18);
    }

    #[test]
    fn mesh_route_costs_deterministic_on_testbed() {
        let c = Cluster::mesh_testbed(MeshSpec::new(100, 42)).unwrap();
        let a = c.route_costs();
        let b = c.route_costs();
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert!(a[1..].iter().all(|r| r.per_bit_s.is_finite() && r.per_bit_s > 0.0));
    }

    #[test]
    fn mesh_testbed_is_deterministic_and_connected() {
        for &n in &[10usize, 100, 1000] {
            let a = Cluster::mesh_testbed(MeshSpec::new(n, 42)).unwrap();
            let b = Cluster::mesh_testbed(MeshSpec::new(n, 42)).unwrap();
            assert_eq!(a, b, "same spec must reproduce the same world");
            let mesh = a.mesh().unwrap();
            assert_eq!(mesh.nodes(), n);
            let routes = mesh.routes_from(0, &[]);
            assert!((0..n).all(|v| routes.reachable(v)), "grid worlds are connected");
            assert_eq!(a.node(NodeId(0)).unwrap().model(), DeviceModel::Laptop);
        }
        let other_seed = Cluster::mesh_testbed(MeshSpec::new(100, 43)).unwrap();
        assert_ne!(Cluster::mesh_testbed(MeshSpec::new(100, 42)).unwrap(), other_seed);
    }

    #[test]
    fn mesh_testbed_4000_nodes_builds() {
        let c = Cluster::mesh_testbed(MeshSpec::new(4000, 7)).unwrap();
        let mesh = c.mesh().unwrap();
        assert_eq!(mesh.nodes(), 4000);
        // Grid plus chords: strictly more edges than a spanning tree.
        assert!(mesh.num_edges() >= 4000);
    }
}
