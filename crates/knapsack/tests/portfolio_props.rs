//! Property-based tests of the anytime portfolio's contract: the result
//! never falls below the warm start, never exceeds the certified upper
//! bound, the gap certificate is sound against brute force, a larger node
//! budget never worsens the incumbent, and every budget mode is
//! bit-identical across thread counts.

use knapsack::exact::brute_force;
use knapsack::greedy::greedy_with_local_search;
use knapsack::portfolio::{solve_portfolio, SolveBudget};
use knapsack::problem::{Item, Problem, Sack};
use proptest::prelude::*;
use std::sync::Mutex;

/// See `tests/properties.rs`: the thread override is process-wide, so the
/// tests that flip it are serialised against each other.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

fn small_problem() -> impl Strategy<Value = Problem> {
    let item = (0.0f64..5.0, 0.0f64..5.0, 0.0f64..1.0)
        .prop_map(|(w, v, p)| Item::new(w, v, p).expect("valid ranges"));
    let sack =
        (0.0f64..10.0, 0.0f64..10.0).prop_map(|(w, v)| Sack::new(w, v).expect("valid ranges"));
    (prop::collection::vec(item, 0..8), prop::collection::vec(sack, 1..4))
        .prop_map(|(items, sacks)| Problem::new(items, sacks).expect("sacks non-empty"))
}

fn medium_problem() -> impl Strategy<Value = Problem> {
    let item = (0.0f64..5.0, 0.0f64..5.0, 0.0f64..1.0)
        .prop_map(|(w, v, p)| Item::new(w, v, p).expect("valid ranges"));
    let sack =
        (0.0f64..12.0, 0.0f64..12.0).prop_map(|(w, v)| Sack::new(w, v).expect("valid ranges"));
    (prop::collection::vec(item, 0..25), prop::collection::vec(sack, 1..6))
        .prop_map(|(items, sacks)| Problem::new(items, sacks).expect("sacks non-empty"))
}

/// Integer-valued instances: profit gaps are ≥ 1 ≫ the solver's 1e-12
/// epsilon, so results must agree to the bit across thread counts.
fn integer_problem() -> impl Strategy<Value = Problem> {
    let item = (0u8..5, 0u8..5, 0u8..10).prop_map(|(w, v, p)| {
        Item::new(f64::from(w), f64::from(v), f64::from(p)).expect("valid ranges")
    });
    let sack = (0u8..10, 0u8..10)
        .prop_map(|(w, v)| Sack::new(f64::from(w), f64::from(v)).expect("valid ranges"));
    (prop::collection::vec(item, 0..16), prop::collection::vec(sack, 1..5))
        .prop_map(|(items, sacks)| Problem::new(items, sacks).expect("sacks non-empty"))
}

const BUDGETS: [SolveBudget; 4] = [
    SolveBudget::Exact,
    SolveBudget::NodeBudget(50),
    SolveBudget::Anytime,
    SolveBudget::NodeBudget(0),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// In every budget mode the incumbent sits in the certified window:
    /// warm start ≤ result ≤ upper bound, and the packing is feasible.
    #[test]
    fn result_bracketed_by_warm_start_and_upper_bound(p in medium_problem()) {
        let warm = greedy_with_local_search(&p);
        for budget in BUDGETS {
            let r = solve_portfolio(&p, budget);
            prop_assert!(r.solution.packing.is_feasible(&p), "{budget:?}: infeasible packing");
            prop_assert!((r.warm_profit - warm.profit).abs() < 1e-12,
                "{budget:?}: warm profit drifted");
            prop_assert!(r.solution.profit + 1e-9 >= warm.profit,
                "{budget:?}: result {} below warm start {}", r.solution.profit, warm.profit);
            prop_assert!(r.solution.profit <= r.upper_bound + 1e-9,
                "{budget:?}: result {} above bound {}", r.solution.profit, r.upper_bound);
            prop_assert!(r.gap() >= 0.0 && r.gap().is_finite(), "{budget:?}: bad gap");
            if r.proved_optimal {
                prop_assert!(r.gap() == 0.0, "{budget:?}: proved but gap {}", r.gap());
            }
        }
    }

    /// The certificate is sound against brute force: the true optimum lies
    /// inside `[profit, upper_bound]`, and a proved-optimal result *is*
    /// the optimum. Exact mode must always prove.
    #[test]
    fn gap_certificate_is_sound_against_brute_force(p in small_problem()) {
        let opt = brute_force(&p).profit;
        for budget in BUDGETS {
            let r = solve_portfolio(&p, budget);
            prop_assert!(r.solution.profit <= opt + 1e-9,
                "{budget:?}: incumbent {} beat the optimum {}", r.solution.profit, opt);
            prop_assert!(opt <= r.upper_bound + 1e-9,
                "{budget:?}: bound {} below the optimum {}", r.upper_bound, opt);
            if r.proved_optimal {
                prop_assert!((r.solution.profit - opt).abs() < 1e-9,
                    "{budget:?}: proved {} but optimum is {}", r.solution.profit, opt);
            }
        }
        let exact = solve_portfolio(&p, SolveBudget::Exact);
        prop_assert!(exact.proved_optimal, "exact mode must prove optimality");
    }

    /// Growing the node budget never worsens the incumbent: the budgeted
    /// DFS visits a deterministic node sequence, so a larger cap explores
    /// a superset and its best can only improve.
    #[test]
    fn node_budget_is_monotone(p in medium_problem()) {
        let mut prev = f64::NEG_INFINITY;
        for nodes in [0u64, 10, 50, 250, 2_000] {
            let r = solve_portfolio(&p, SolveBudget::NodeBudget(nodes));
            prop_assert!(r.solution.profit + 1e-9 >= prev,
                "budget {} worsened the incumbent: {} < {}", nodes, r.solution.profit, prev);
            prev = r.solution.profit;
        }
    }

    /// Every budget mode returns bit-identical profit, placement, bound
    /// and certificate at 1, 2 and 8 threads (the documented determinism
    /// contract).
    #[test]
    fn portfolio_bit_identical_across_threads(p in integer_problem()) {
        let _g = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for budget in BUDGETS {
            let reference = {
                let _t = parallel::ScopedThreads::new(1);
                solve_portfolio(&p, budget)
            };
            for threads in [2usize, 8] {
                let _t = parallel::ScopedThreads::new(threads);
                let r = solve_portfolio(&p, budget);
                prop_assert_eq!(r.solution.profit.to_bits(), reference.solution.profit.to_bits(),
                    "{:?} at {} threads: profit diverged", budget, threads);
                prop_assert_eq!(r.solution.packing.placement(), reference.solution.packing.placement(),
                    "{:?} at {} threads: placement diverged", budget, threads);
                prop_assert_eq!(r.upper_bound.to_bits(), reference.upper_bound.to_bits(),
                    "{:?} at {} threads: bound diverged", budget, threads);
                prop_assert_eq!(r.proved_optimal, reference.proved_optimal,
                    "{:?} at {} threads: certificate diverged", budget, threads);
                prop_assert_eq!(r.nodes, reference.nodes,
                    "{:?} at {} threads: node count diverged", budget, threads);
            }
        }
    }
}
