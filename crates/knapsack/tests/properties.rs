//! Property-based tests of the MCMK solver stack invariants:
//! feasibility of every solver output, greedy ≤ exact ≤ upper bound, and
//! monotonicity of the optimum in capacity.

use knapsack::bounds::upper_bound;
use knapsack::exact::{brute_force, BranchAndBound, SolverOptions};
use knapsack::greedy::{greedy, greedy_with_local_search};
use knapsack::problem::{Item, Problem, Sack};
use proptest::prelude::*;
use std::sync::Mutex;

/// The parallel-vs-serial tests flip the process-wide thread override;
/// serialise them so concurrent test threads don't fight over it. (The
/// override never changes any *result* — only which sweep a test believes
/// it is timing — but the tests are only meaningful when it sticks.)
static THREADS_LOCK: Mutex<()> = Mutex::new(());

fn small_problem() -> impl Strategy<Value = Problem> {
    let item = (0.0f64..5.0, 0.0f64..5.0, 0.0f64..1.0)
        .prop_map(|(w, v, p)| Item::new(w, v, p).expect("valid ranges"));
    let sack =
        (0.0f64..10.0, 0.0f64..10.0).prop_map(|(w, v)| Sack::new(w, v).expect("valid ranges"));
    (prop::collection::vec(item, 0..8), prop::collection::vec(sack, 1..4))
        .prop_map(|(items, sacks)| Problem::new(items, sacks).expect("sacks non-empty"))
}

/// Integer-valued MCMK instances: profit gaps are ≥ 1 ≫ the solver's
/// 1e-12 epsilon, so serial and parallel answers must agree to the bit.
fn integer_problem() -> impl Strategy<Value = Problem> {
    let item = (0u8..5, 0u8..5, 0u8..10).prop_map(|(w, v, p)| {
        Item::new(f64::from(w), f64::from(v), f64::from(p)).expect("valid ranges")
    });
    let sack = (0u8..10, 0u8..10)
        .prop_map(|(w, v)| Sack::new(f64::from(w), f64::from(v)).expect("valid ranges"));
    (prop::collection::vec(item, 0..16), prop::collection::vec(sack, 1..5))
        .prop_map(|(items, sacks)| Problem::new(items, sacks).expect("sacks non-empty"))
}

fn medium_problem() -> impl Strategy<Value = Problem> {
    let item = (0.0f64..5.0, 0.0f64..5.0, 0.0f64..1.0)
        .prop_map(|(w, v, p)| Item::new(w, v, p).expect("valid ranges"));
    let sack =
        (0.0f64..12.0, 0.0f64..12.0).prop_map(|(w, v)| Sack::new(w, v).expect("valid ranges"));
    (prop::collection::vec(item, 0..25), prop::collection::vec(sack, 1..6))
        .prop_map(|(items, sacks)| Problem::new(items, sacks).expect("sacks non-empty"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_matches_brute_force(p in small_problem()) {
        let bb = BranchAndBound::new().solve(&p);
        let bf = brute_force(&p);
        prop_assert!((bb.profit - bf.profit).abs() < 1e-9,
            "bb {} != bf {}", bb.profit, bf.profit);
    }

    #[test]
    fn all_solvers_return_feasible_packings(p in medium_problem()) {
        let g = greedy(&p);
        prop_assert!(g.packing.is_feasible(&p));
        let gl = greedy_with_local_search(&p);
        prop_assert!(gl.packing.is_feasible(&p));
        // Anytime exact with a small node budget must stay feasible too.
        let bb = BranchAndBound::with_node_limit(500).solve(&p);
        prop_assert!(bb.packing.is_feasible(&p));
    }

    #[test]
    fn solver_chain_is_ordered(p in small_problem()) {
        let g = greedy(&p);
        let gl = greedy_with_local_search(&p);
        let e = BranchAndBound::new().solve(&p);
        let ub = upper_bound(&p);
        prop_assert!(g.profit <= gl.profit + 1e-9, "local search regressed greedy");
        prop_assert!(gl.profit <= e.profit + 1e-9, "heuristic beat the optimum");
        prop_assert!(e.profit <= ub + 1e-9, "optimum {} exceeded bound {}", e.profit, ub);
        prop_assert!(ub <= p.total_profit() + 1e-9);
    }

    #[test]
    fn profit_cached_equals_recomputed(p in medium_problem()) {
        let g = greedy(&p);
        prop_assert!((g.profit - g.packing.profit(&p)).abs() < 1e-9);
        let e = BranchAndBound::with_node_limit(2_000).solve(&p);
        prop_assert!((e.profit - e.packing.profit(&p)).abs() < 1e-9);
    }

    #[test]
    fn optimum_monotone_in_capacity(p in small_problem(), extra in 0.0f64..5.0) {
        let base = BranchAndBound::new().solve(&p).profit;
        let grown = Problem::new(
            p.items().to_vec(),
            p.sacks()
                .iter()
                .map(|s| Sack::new(s.weight_capacity + extra, s.volume_capacity + extra)
                    .expect("valid"))
                .collect(),
        ).expect("sacks unchanged");
        let bigger = BranchAndBound::new().solve(&grown).profit;
        prop_assert!(bigger + 1e-9 >= base, "capacity growth reduced optimum");
    }

    #[test]
    fn adding_an_item_never_hurts(p in small_problem(), w in 0.0f64..5.0, v in 0.0f64..5.0,
                                  profit in 0.0f64..1.0) {
        let base = BranchAndBound::new().solve(&p).profit;
        let mut items = p.items().to_vec();
        items.push(Item::new(w, v, profit).expect("valid"));
        let grown = Problem::new(items, p.sacks().to_vec()).expect("sacks unchanged");
        let bigger = BranchAndBound::new().solve(&grown).profit;
        prop_assert!(bigger + 1e-9 >= base, "new item reduced optimum");
    }

    #[test]
    fn parallel_bnb_matches_serial_optimum_and_assignment(p in integer_problem()) {
        let _g = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let serial = BranchAndBound::new().solve(&p);
        let par_solver = BranchAndBound::with_options(SolverOptions::new().parallel(true));
        for threads in [1usize, 2, 8] {
            let _t = parallel::ScopedThreads::new(threads);
            let par = par_solver.solve(&p);
            prop_assert_eq!(par.profit.to_bits(), serial.profit.to_bits(),
                "threads {}: parallel profit {} != serial {}", threads, par.profit, serial.profit);
            prop_assert_eq!(par.packing.placement(), serial.packing.placement(),
                "threads {}: assignment diverged", threads);
        }
    }

    #[test]
    fn parallel_bnb_profit_within_eps_on_continuous_instances(p in medium_problem()) {
        let _g = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _t = parallel::ScopedThreads::new(4);
        let serial = BranchAndBound::new().solve(&p);
        let par = BranchAndBound::with_options(SolverOptions::new().parallel(true)).solve(&p);
        // Continuous profits can tie within the solver's 1e-12 prune
        // epsilon, where the assignment may legitimately differ; the
        // optimum value itself must still agree to ~1e-12.
        prop_assert!((par.profit - serial.profit).abs() < 1e-9,
            "parallel {} vs serial {}", par.profit, serial.profit);
        prop_assert!(par.packing.is_feasible(&p));
    }

    #[test]
    fn zero_profit_items_do_not_change_optimum(p in small_problem()) {
        let base = BranchAndBound::new().solve(&p).profit;
        let mut items = p.items().to_vec();
        items.push(Item::new(1.0, 1.0, 0.0).expect("valid"));
        let grown = Problem::new(items, p.sacks().to_vec()).expect("sacks unchanged");
        let same = BranchAndBound::new().solve(&grown).profit;
        prop_assert!((same - base).abs() < 1e-9);
    }
}
