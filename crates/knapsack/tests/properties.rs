//! Property-based tests of the MCMK solver stack invariants:
//! feasibility of every solver output, greedy ≤ exact ≤ upper bound, and
//! monotonicity of the optimum in capacity.

use knapsack::bounds::upper_bound;
use knapsack::exact::{brute_force, BranchAndBound};
use knapsack::greedy::{greedy, greedy_with_local_search};
use knapsack::problem::{Item, Problem, Sack};
use proptest::prelude::*;

fn small_problem() -> impl Strategy<Value = Problem> {
    let item = (0.0f64..5.0, 0.0f64..5.0, 0.0f64..1.0)
        .prop_map(|(w, v, p)| Item::new(w, v, p).expect("valid ranges"));
    let sack =
        (0.0f64..10.0, 0.0f64..10.0).prop_map(|(w, v)| Sack::new(w, v).expect("valid ranges"));
    (prop::collection::vec(item, 0..8), prop::collection::vec(sack, 1..4))
        .prop_map(|(items, sacks)| Problem::new(items, sacks).expect("sacks non-empty"))
}

fn medium_problem() -> impl Strategy<Value = Problem> {
    let item = (0.0f64..5.0, 0.0f64..5.0, 0.0f64..1.0)
        .prop_map(|(w, v, p)| Item::new(w, v, p).expect("valid ranges"));
    let sack =
        (0.0f64..12.0, 0.0f64..12.0).prop_map(|(w, v)| Sack::new(w, v).expect("valid ranges"));
    (prop::collection::vec(item, 0..25), prop::collection::vec(sack, 1..6))
        .prop_map(|(items, sacks)| Problem::new(items, sacks).expect("sacks non-empty"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_matches_brute_force(p in small_problem()) {
        let bb = BranchAndBound::new().solve(&p);
        let bf = brute_force(&p);
        prop_assert!((bb.profit - bf.profit).abs() < 1e-9,
            "bb {} != bf {}", bb.profit, bf.profit);
    }

    #[test]
    fn all_solvers_return_feasible_packings(p in medium_problem()) {
        let g = greedy(&p);
        prop_assert!(g.packing.is_feasible(&p));
        let gl = greedy_with_local_search(&p);
        prop_assert!(gl.packing.is_feasible(&p));
        // Anytime exact with a small node budget must stay feasible too.
        let bb = BranchAndBound::with_node_limit(500).solve(&p);
        prop_assert!(bb.packing.is_feasible(&p));
    }

    #[test]
    fn solver_chain_is_ordered(p in small_problem()) {
        let g = greedy(&p);
        let gl = greedy_with_local_search(&p);
        let e = BranchAndBound::new().solve(&p);
        let ub = upper_bound(&p);
        prop_assert!(g.profit <= gl.profit + 1e-9, "local search regressed greedy");
        prop_assert!(gl.profit <= e.profit + 1e-9, "heuristic beat the optimum");
        prop_assert!(e.profit <= ub + 1e-9, "optimum {} exceeded bound {}", e.profit, ub);
        prop_assert!(ub <= p.total_profit() + 1e-9);
    }

    #[test]
    fn profit_cached_equals_recomputed(p in medium_problem()) {
        let g = greedy(&p);
        prop_assert!((g.profit - g.packing.profit(&p)).abs() < 1e-9);
        let e = BranchAndBound::with_node_limit(2_000).solve(&p);
        prop_assert!((e.profit - e.packing.profit(&p)).abs() < 1e-9);
    }

    #[test]
    fn optimum_monotone_in_capacity(p in small_problem(), extra in 0.0f64..5.0) {
        let base = BranchAndBound::new().solve(&p).profit;
        let grown = Problem::new(
            p.items().to_vec(),
            p.sacks()
                .iter()
                .map(|s| Sack::new(s.weight_capacity + extra, s.volume_capacity + extra)
                    .expect("valid"))
                .collect(),
        ).expect("sacks unchanged");
        let bigger = BranchAndBound::new().solve(&grown).profit;
        prop_assert!(bigger + 1e-9 >= base, "capacity growth reduced optimum");
    }

    #[test]
    fn adding_an_item_never_hurts(p in small_problem(), w in 0.0f64..5.0, v in 0.0f64..5.0,
                                  profit in 0.0f64..1.0) {
        let base = BranchAndBound::new().solve(&p).profit;
        let mut items = p.items().to_vec();
        items.push(Item::new(w, v, profit).expect("valid"));
        let grown = Problem::new(items, p.sacks().to_vec()).expect("sacks unchanged");
        let bigger = BranchAndBound::new().solve(&grown).profit;
        prop_assert!(bigger + 1e-9 >= base, "new item reduced optimum");
    }

    #[test]
    fn zero_profit_items_do_not_change_optimum(p in small_problem()) {
        let base = BranchAndBound::new().solve(&p).profit;
        let mut items = p.items().to_vec();
        items.push(Item::new(1.0, 1.0, 0.0).expect("valid"));
        let grown = Problem::new(items, p.sacks().to_vec()).expect("sacks unchanged");
        let same = BranchAndBound::new().solve(&grown).profit;
        prop_assert!((same - base).abs() < 1e-9);
    }
}
