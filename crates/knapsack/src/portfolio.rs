//! Anytime MCMK solver portfolio: greedy warm start → relaxation bound →
//! budgeted branch-and-bound, with an explicit optimality-gap certificate.
//!
//! The paper-scale TATIM instances (tens of tasks × ~10 processors) are
//! solved exactly; the mesh worlds push the reduction to thousands of tasks
//! × hundreds of knapsacks, where exhaustive branch-and-bound is not
//! viable. The portfolio makes the trade-off explicit instead of silent:
//!
//! 1. **Warm start** — density greedy plus local search
//!    ([`crate::greedy`]) produces a feasible incumbent in `O(N·M)`-ish
//!    time. Its profit seeds the branch-and-bound floor (and, in exhaustive
//!    mode, the shared atomic incumbent), so the search starts pruning
//!    against a realistic bar instead of rediscovering it.
//! 2. **Upper bound** — the surrogate relaxation
//!    ([`crate::bounds::surrogate_bound`]) certifies how far the incumbent
//!    can be from the optimum before any tree search runs, and certifies
//!    whole subtrees as hopeless at their roots during the search.
//! 3. **Budgeted search** — [`SolveBudget`] picks how much tree the solve
//!    is allowed: everything, an explicit per-subtree node budget, or the
//!    fixed [`ANYTIME_SUBTREE_NODE_BUDGET`].
//!
//! # Determinism contract
//!
//! Every mode is bit-identical across thread counts (1/2/8/…):
//!
//! * [`SolveBudget::Exact`] explores until exhaustion; the result is the
//!   serial solver's first optimum achiever (warm start only tightens
//!   pruning — the floor and shared-bound prunes are strict, so tie paths
//!   survive; see [`crate::exact`]).
//! * [`SolveBudget::NodeBudget`] applies the budget per subtree with the
//!   shared bound disabled, so each subtree is a pure function of the
//!   instance; more budget can only improve the incumbent.
//! * [`SolveBudget::Anytime`] is `NodeBudget(ANYTIME_SUBTREE_NODE_BUDGET)`,
//!   except that when the warm start already meets the relaxation bound the
//!   tree search is skipped entirely and the warm packing is returned as
//!   proved optimal. (`Exact`/`NodeBudget` never take this shortcut: their
//!   returned *packing* is part of the contract, not just its profit.)

use crate::bounds::surrogate_bound;
use crate::exact::solve_with_floor;
use crate::greedy::greedy_with_local_search;
use crate::problem::{Problem, Solution};

/// How much search a [`solve_portfolio`] call may spend after the warm
/// start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveBudget {
    /// Run branch-and-bound to exhaustion: the result is the proved optimum
    /// (identical packing to [`crate::exact::BranchAndBound::solve`]).
    Exact,
    /// Explore at most this many nodes *per top-level subtree* (the
    /// deterministic parallel split of [`crate::exact`]), then return the
    /// best incumbent with a gap certificate.
    NodeBudget(u64),
    /// Fixed small budget ([`ANYTIME_SUBTREE_NODE_BUDGET`]) aimed at
    /// production-size instances: warm start plus a short certificate-
    /// guided search, milliseconds-to-subseconds at thousands of items.
    Anytime,
}

/// Per-subtree node budget used by [`SolveBudget::Anytime`]. Sized so that
/// even a ~hundred-subtree split on a 1000-item instance stays well under a
/// second on one core, while still letting branch-and-bound repair the
/// greedy warm start's local mistakes near the top of the tree.
pub const ANYTIME_SUBTREE_NODE_BUDGET: u64 = 2_000;

/// A solution plus its optimality certificate.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioSolution {
    /// Best packing found (never worse than the greedy warm start).
    pub solution: Solution,
    /// Surrogate-relaxation upper bound on the optimum, clamped to at least
    /// the returned profit so [`PortfolioSolution::gap`] is never negative.
    pub upper_bound: f64,
    /// Profit of the greedy + local-search warm start alone.
    pub warm_profit: f64,
    /// True when the result is proved optimal: the budgeted search ran to
    /// exhaustion, or the warm start already met the relaxation bound.
    pub proved_optimal: bool,
    /// Branch-and-bound nodes explored. Deterministic in the budgeted
    /// modes; reported as `0` in [`SolveBudget::Exact`] because exhaustive
    /// shared-bound node counts depend on thread interleaving and would
    /// break the bit-identity contract.
    pub nodes: u64,
}

impl PortfolioSolution {
    /// Relative optimality gap certificate: `(upper_bound − profit) /
    /// upper_bound`, and exactly `0.0` when the solution is proved optimal.
    /// The true optimum is guaranteed within this fraction of the returned
    /// profit.
    pub fn gap(&self) -> f64 {
        if self.proved_optimal {
            return 0.0;
        }
        let denom = self.upper_bound.abs().max(1e-12);
        ((self.upper_bound - self.solution.profit) / denom).max(0.0)
    }
}

/// Solves `problem` with the anytime portfolio under the given budget.
///
/// See the [module docs](self) for the phase breakdown and the determinism
/// contract. The result is always feasible, never worse than the greedy
/// warm start, and carries a sound gap certificate.
///
/// # Examples
///
/// ```
/// use knapsack::portfolio::{solve_portfolio, SolveBudget};
/// use knapsack::problem::{Item, Problem, Sack};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = Problem::new(
///     vec![Item::new(2.0, 1.0, 10.0)?, Item::new(2.0, 1.0, 7.0)?],
///     vec![Sack::new(2.0, 1.0)?],
/// )?;
/// let r = solve_portfolio(&p, SolveBudget::Exact);
/// assert_eq!(r.solution.profit, 10.0);
/// assert!(r.proved_optimal);
/// assert_eq!(r.gap(), 0.0);
/// # Ok(())
/// # }
/// ```
pub fn solve_portfolio(problem: &Problem, budget: SolveBudget) -> PortfolioSolution {
    let warm = greedy_with_local_search(problem);
    let warm_profit = warm.profit;
    let raw_upper = surrogate_bound(problem);
    // A bound numerically below a feasible profit is float slack; clamping
    // keeps the certificate sound and the gap non-negative.
    let upper_bound = raw_upper.max(warm_profit);
    let proved_by_bound = raw_upper <= warm_profit + 1e-12;

    if problem.num_items() == 0 {
        return PortfolioSolution {
            solution: warm,
            upper_bound,
            warm_profit,
            proved_optimal: true,
            nodes: 0,
        };
    }

    let node_limit = match budget {
        SolveBudget::Exact => None,
        SolveBudget::NodeBudget(n) => Some(n),
        SolveBudget::Anytime => {
            if proved_by_bound {
                return PortfolioSolution {
                    solution: warm,
                    upper_bound,
                    warm_profit,
                    proved_optimal: true,
                    nodes: 0,
                };
            }
            Some(ANYTIME_SUBTREE_NODE_BUDGET)
        }
    };

    let report = solve_with_floor(problem, node_limit, warm_profit);
    // `>=` prefers the branch-and-bound packing on profit ties, so whenever
    // the search completes the returned packing is the serial solver's
    // first optimum achiever — warm start or not.
    let solution = if report.solution.profit >= warm_profit { report.solution } else { warm };
    PortfolioSolution {
        solution,
        upper_bound,
        warm_profit,
        proved_optimal: proved_by_bound || report.completed,
        nodes: if matches!(budget, SolveBudget::Exact) { 0 } else { report.nodes },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{brute_force, BranchAndBound};
    use crate::problem::{Item, Sack};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn problem(items: Vec<(f64, f64, f64)>, sacks: Vec<(f64, f64)>) -> Problem {
        Problem::new(
            items.into_iter().map(|(w, v, p)| Item::new(w, v, p).unwrap()).collect(),
            sacks.into_iter().map(|(w, v)| Sack::new(w, v).unwrap()).collect(),
        )
        .unwrap()
    }

    fn random_integer_problem(rng: &mut StdRng, max_items: usize) -> Problem {
        let n = rng.gen_range(1..=max_items);
        let m = rng.gen_range(1..=4);
        let items: Vec<(f64, f64, f64)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range(0.0..5.0f64).round(),
                    rng.gen_range(0.0..5.0f64).round(),
                    rng.gen_range(0.0..10.0f64).round(),
                )
            })
            .collect();
        let sacks: Vec<(f64, f64)> = (0..m)
            .map(|_| (rng.gen_range(0.0..9.0f64).round(), rng.gen_range(0.0..9.0f64).round()))
            .collect();
        problem(items, sacks)
    }

    #[test]
    fn empty_problem_is_trivially_proved() {
        let p = problem(vec![], vec![(1.0, 1.0)]);
        for budget in [SolveBudget::Exact, SolveBudget::NodeBudget(1), SolveBudget::Anytime] {
            let r = solve_portfolio(&p, budget);
            assert_eq!(r.solution.profit, 0.0);
            assert!(r.proved_optimal);
            assert_eq!(r.gap(), 0.0);
        }
    }

    #[test]
    fn exact_mode_matches_branch_and_bound_packing() {
        let mut rng = StdRng::seed_from_u64(2026);
        let reference = BranchAndBound::new();
        for round in 0..30 {
            let p = random_integer_problem(&mut rng, 14);
            let r = solve_portfolio(&p, SolveBudget::Exact);
            let s = reference.solve(&p);
            assert!(r.proved_optimal, "round {round}");
            assert_eq!(r.solution.profit.to_bits(), s.profit.to_bits(), "round {round}");
            assert_eq!(
                r.solution.packing.placement(),
                s.packing.placement(),
                "round {round}: packing differs from the serial first achiever"
            );
        }
    }

    #[test]
    fn proved_optimal_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(77);
        for round in 0..40 {
            let p = random_integer_problem(&mut rng, 7);
            for budget in [SolveBudget::Exact, SolveBudget::Anytime] {
                let r = solve_portfolio(&p, budget);
                let bf = brute_force(&p);
                assert!(r.solution.packing.is_feasible(&p));
                if r.proved_optimal {
                    assert!(
                        (r.solution.profit - bf.profit).abs() < 1e-9,
                        "round {round} {budget:?}: claimed optimal {} vs {}",
                        r.solution.profit,
                        bf.profit
                    );
                }
            }
        }
    }

    #[test]
    fn gap_certificate_is_sound() {
        let mut rng = StdRng::seed_from_u64(909);
        for round in 0..40 {
            let p = random_integer_problem(&mut rng, 7);
            let r = solve_portfolio(&p, SolveBudget::NodeBudget(3));
            let bf = brute_force(&p);
            assert!(r.upper_bound + 1e-9 >= bf.profit, "round {round}: bound below optimum");
            let certified_ceiling = r.solution.profit + r.gap() * r.upper_bound;
            assert!(
                certified_ceiling + 1e-9 >= bf.profit,
                "round {round}: gap certificate unsound"
            );
        }
    }
}
