//! # knapsack — multiply-constrained multiple knapsack (MCMK) substrate
//!
//! Theorem 1 of the paper reduces TATIM (task allocation with task
//! importance) to the 0-1 multiply-constrained multiple knapsack problem:
//! tasks are items (execution time = weight, resource demand = volume,
//! importance = profit) and processors are sacks (time limit and resource
//! capacity). This crate provides the combinatorial machinery:
//!
//! * [`problem`] — items, sacks, packings, feasibility.
//! * [`exact`] — branch-and-bound (optionally anytime) and brute force.
//! * [`greedy`] — density greedy + local search, the on-edge-affordable
//!   heuristics.
//! * [`portfolio`] — anytime solver portfolio: warm start + budgeted
//!   branch-and-bound + optimality-gap certificate, for production-size
//!   instances.
//! * [`dp`] — pseudo-polynomial single-sack DPs (1-D and 2-D).
//! * [`bounds`] — fractional and surrogate relaxation upper bounds.
//! * [`generator`] — long-tail random instances shaped like TATIM
//!   workloads.
//!
//! ## Example
//!
//! ```
//! use knapsack::exact::BranchAndBound;
//! use knapsack::greedy::greedy;
//! use knapsack::problem::{Item, Problem, Sack};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let problem = Problem::new(
//!     vec![Item::new(2.0, 1.0, 0.9)?, Item::new(1.0, 1.0, 0.2)?],
//!     vec![Sack::new(2.0, 2.0)?],
//! )?;
//! let heuristic = greedy(&problem);
//! let optimum = BranchAndBound::new().solve(&problem);
//! assert!(heuristic.profit <= optimum.profit);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bounds;
pub mod dp;
pub mod exact;
pub mod generator;
pub mod greedy;
pub mod portfolio;
pub mod problem;
