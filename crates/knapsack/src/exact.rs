//! Exact MCMK solvers: depth-first branch-and-bound, plus a tiny brute-force
//! enumerator used as ground truth in tests.
//!
//! TATIM instances on the edge are small (tens of tasks, ~10 processors), so
//! exact solutions are attainable offline; the paper's point is that solving
//! them *repeatedly under varying importance* is too slow on-device, which is
//! what the data-driven allocators amortise. The exact solver is the
//! reference that CRL/DCTA allocation quality is measured against.

use crate::bounds::{surrogate_bound_subset, SuffixBounds};
use crate::problem::{Packing, Problem, Solution};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Exhaustive search over all `(num_sacks + 1)^num_items` placements.
///
/// Only viable for very small instances; used to validate
/// [`BranchAndBound`]. Runs in `O((M+1)^N)`.
///
/// # Panics
///
/// Panics if `problem.num_items() > 16` — beyond that the enumeration is
/// unreasonable even for tests.
pub fn brute_force(problem: &Problem) -> Solution {
    assert!(problem.num_items() <= 16, "brute force limited to 16 items");
    let n = problem.num_items();
    let m = problem.num_sacks();
    let mut best = Packing::empty(n);
    let mut best_profit = 0.0;
    let mut current = Packing::empty(n);

    fn recurse(
        problem: &Problem,
        i: usize,
        current: &mut Packing,
        best: &mut Packing,
        best_profit: &mut f64,
    ) {
        let n = problem.num_items();
        if i == n {
            if current.is_feasible(problem) {
                let profit = current.profit(problem);
                if profit > *best_profit {
                    *best_profit = profit;
                    *best = current.clone();
                }
            }
            return;
        }
        current.assign(i, None);
        recurse(problem, i + 1, current, best, best_profit);
        for s in 0..problem.num_sacks() {
            current.assign(i, Some(s));
            recurse(problem, i + 1, current, best, best_profit);
        }
        current.assign(i, None);
    }

    let _ = m;
    recurse(problem, 0, &mut current, &mut best, &mut best_profit);
    Solution { packing: best, profit: best_profit }
}

/// Depth-first branch-and-bound exact solver.
///
/// Items are explored in decreasing profit-density order; at each node the
/// fractional aggregate relaxation ([`crate::bounds`]) prunes subtrees that
/// cannot beat the incumbent. Identical residual sacks are canonicalised to
/// curb permutation symmetry.
///
/// # Examples
///
/// ```
/// use knapsack::exact::BranchAndBound;
/// use knapsack::problem::{Item, Problem, Sack};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = Problem::new(
///     vec![Item::new(2.0, 1.0, 10.0)?, Item::new(2.0, 1.0, 7.0)?],
///     vec![Sack::new(2.0, 1.0)?],
/// )?;
/// let solution = BranchAndBound::new().solve(&p);
/// assert_eq!(solution.profit, 10.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BranchAndBound {
    options: SolverOptions,
}

/// Typed configuration for [`BranchAndBound`], replacing the old
/// positional/boolean knobs with a chainable builder:
///
/// ```
/// use knapsack::exact::SolverOptions;
/// use std::time::Duration;
///
/// let opts = SolverOptions::new()
///     .node_limit(100_000)
///     .deadline(Duration::from_millis(50))
///     .parallel(true);
/// assert_eq!(opts.node_limit, Some(100_000));
/// ```
///
/// # Determinism
///
/// * Default options reproduce the original serial solver node-for-node.
/// * `parallel(true)` keeps the *returned* `Solution` (profit **and**
///   assignment) bit-identical to the serial solver at every thread count;
///   only the set of explored nodes may differ (see
///   [`BranchAndBound::solve`]).
/// * `node_limit` with `parallel(true)` applies the budget *per subtree*
///   and disables the shared incumbent bound, so the anytime result is
///   still thread-count invariant (though it differs from the serial
///   solver's anytime result, whose budget is global).
/// * `deadline` is wall-clock and therefore inherently non-deterministic;
///   the determinism guarantees above hold only for deadline-free runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverOptions {
    /// Optional cap on explored nodes; `None` = unlimited. When the cap is
    /// hit the incumbent (a feasible, possibly sub-optimal packing) is
    /// returned — useful as an anytime solver inside benchmarks.
    pub node_limit: Option<u64>,
    /// Optional wall-clock budget; checked every 1024 nodes, so overshoot
    /// is bounded by ~1024 node expansions. `None` = no deadline.
    pub deadline: Option<Duration>,
    /// Explore top-level subtrees in parallel (via `dcta-parallel`) with a
    /// deterministic best-solution reduction. Off by default.
    pub parallel: bool,
}

impl SolverOptions {
    /// Default options: unlimited nodes, no deadline, serial.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the number of explored nodes (anytime incumbent on overrun).
    #[must_use]
    pub fn node_limit(mut self, limit: u64) -> Self {
        self.node_limit = Some(limit);
        self
    }

    /// Sets a wall-clock budget (anytime incumbent on overrun).
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Enables or disables parallel subtree exploration.
    #[must_use]
    pub fn parallel(mut self, on: bool) -> Self {
        self.parallel = on;
        self
    }
}

/// Once at least this many open subtrees exist at the split depth, prefix
/// enumeration stops deepening. Thread-count *independent* so the subtree
/// partition — and with it the reduction order — is a pure function of the
/// problem.
const PAR_SUBTREE_TARGET: usize = 64;

/// Hard cap on the split depth: past this, enumeration itself would start
/// to dominate, and a tree still this thin is heavily pruned anyway.
const PAR_MAX_SPLIT_DEPTH: usize = 12;

impl BranchAndBound {
    /// Creates an exact solver with default [`SolverOptions`] (serial,
    /// unlimited). Equivalent to `with_options(SolverOptions::new())`.
    pub fn new() -> Self {
        Self { options: SolverOptions::new() }
    }

    /// Creates an anytime solver that stops after `limit` nodes.
    ///
    /// Compatibility wrapper kept for older call sites; prefer
    /// [`BranchAndBound::with_options`] with
    /// [`SolverOptions::node_limit`].
    pub fn with_node_limit(limit: u64) -> Self {
        Self::with_options(SolverOptions::new().node_limit(limit))
    }

    /// Creates a solver from typed [`SolverOptions`].
    pub fn with_options(options: SolverOptions) -> Self {
        Self { options }
    }

    /// The solver's configuration.
    pub fn options(&self) -> &SolverOptions {
        &self.options
    }

    /// Solves `problem`, returning the best packing found (the optimum when
    /// no node/deadline budget is set).
    ///
    /// With [`SolverOptions::parallel`] the top-level branch-and-bound
    /// subtrees are explored concurrently, sharing a monotone incumbent
    /// bound through an atomic; pruning (and hence node counts) may differ
    /// across thread counts, but the returned optimum and assignment may
    /// not — the reduction scans subtrees in the fixed serial DFS order
    /// (lexicographic in the branching sequence) and keeps the first
    /// strict improvement, which is exactly the serial solver's answer.
    pub fn solve(&self, problem: &Problem) -> Solution {
        self.solve_reporting(problem).solution
    }

    /// Like [`BranchAndBound::solve`], but also reports whether the search
    /// ran to exhaustion — i.e. whether the returned incumbent is *proved*
    /// optimal — and how many nodes were explored. Callers running with a
    /// node or deadline budget should use this instead of `solve` whenever
    /// incumbent-versus-optimum matters downstream.
    pub fn solve_reporting(&self, problem: &Problem) -> SearchReport {
        let order = density_order(problem);
        let deadline = self.options.deadline.map(|d| Instant::now() + d);
        let bounds = SuffixBounds::new(problem, &order);
        if self.options.parallel && problem.num_items() > 0 {
            solve_parallel(
                problem,
                &order,
                &self.options,
                deadline,
                f64::NEG_INFINITY,
                &bounds,
                &|_| false,
            )
        } else {
            solve_serial(problem, &order, &self.options, deadline, f64::NEG_INFINITY, &bounds)
        }
    }
}

/// Outcome of [`BranchAndBound::solve_reporting`]: the incumbent plus an
/// explicit optimality signal, closing the old silent-failure path where a
/// node-capped solve was indistinguishable from a proved optimum.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchReport {
    /// Best packing found.
    pub solution: Solution,
    /// True when no node/deadline budget cut exploration short, so
    /// `solution` is proved optimal (over the region not excluded by a
    /// warm-start floor, which only ever excludes sub-incumbent packings).
    pub completed: bool,
    /// Explored node count. Deterministic for serial runs and for parallel
    /// runs with a node budget (shared-bound pruning disabled); for
    /// parallel exhaustive runs the count depends on thread interleaving
    /// and is reported as observed.
    pub nodes: u64,
}

/// Item exploration order: decreasing profit per aggregate size.
pub(crate) fn density_order(problem: &Problem) -> Vec<usize> {
    let total_w: f64 = problem.sacks().iter().map(|s| s.weight_capacity).sum::<f64>().max(1e-12);
    let total_v: f64 = problem.sacks().iter().map(|s| s.volume_capacity).sum::<f64>().max(1e-12);
    let mut order: Vec<usize> = (0..problem.num_items()).collect();
    order.sort_by(|&a, &b| {
        let da = problem.items()[a].density(total_w, total_v);
        let db = problem.items()[b].density(total_w, total_v);
        db.partial_cmp(&da).expect("densities comparable")
    });
    order
}

fn full_residual(problem: &Problem) -> Vec<(f64, f64)> {
    problem.sacks().iter().map(|s| (s.weight_capacity, s.volume_capacity)).collect()
}

fn solve_serial(
    problem: &Problem,
    order: &[usize],
    options: &SolverOptions,
    deadline: Option<Instant>,
    floor: f64,
    bounds: &SuffixBounds,
) -> SearchReport {
    let n = problem.num_items();
    let mut search = Search {
        problem,
        order,
        bounds,
        best: Packing::empty(n),
        best_profit: -1.0,
        floor,
        residual: full_residual(problem),
        current: Packing::empty(n),
        nodes: 0,
        node_limit: options.node_limit,
        limit_hit: false,
        deadline,
        deadline_hit: false,
    };
    search.dfs_shared(0, 0.0, None);
    let profit = search.best_profit.max(0.0);
    SearchReport {
        solution: Solution { packing: search.best, profit },
        completed: !search.limit_hit && !search.deadline_hit,
        nodes: search.nodes,
    }
}

struct Search<'a> {
    problem: &'a Problem,
    order: &'a [usize],
    bounds: &'a SuffixBounds,
    best: Packing,
    best_profit: f64,
    /// Warm-start incumbent profit: subtrees whose optimistic potential is
    /// strictly below this are pruned. `NEG_INFINITY` disables the floor.
    /// Strictness matters — a path tying the floor (hence possibly tying
    /// the optimum) is never cut, so the serial DFS's first optimum
    /// achiever survives and the returned packing is unchanged.
    floor: f64,
    residual: Vec<(f64, f64)>,
    current: Packing,
    nodes: u64,
    node_limit: Option<u64>,
    limit_hit: bool,
    deadline: Option<Instant>,
    deadline_hit: bool,
}

// ---------------------------------------------------------------------------
// Parallel subtree exploration.
//
// The serial solver is a fixed-order DFS whose answer is its *first*
// strict-improvement optimum achiever. The parallel solver reproduces that
// answer in three phases:
//
//  1. A serial *prefix enumeration* walks the identical DFS down to a
//     deterministic split depth, recording in DFS order both every
//     incumbent improvement it sees (`Slot::Candidate`) and every open
//     node at the split depth (`Slot::Subtree`). The split depth grows
//     until at least `PAR_SUBTREE_TARGET` subtrees exist, and is a pure
//     function of the problem — never of the thread count.
//  2. The subtrees run concurrently via `parallel::par_map_indexed`
//     (ordered assembly). Each continues the same DFS with a *local*
//     incumbent, publishing improvements into a shared `AtomicU64`
//     incumbent via `fetch_max` over the profit's bit pattern (valid
//     because non-negative IEEE-754 doubles order like their bits). The
//     shared bound prunes with a *strict* `<`: a path whose optimistic
//     potential ties the global optimum is never shared-pruned, so the
//     subtree containing the serial answer always reaches it, no matter
//     how the threads interleave. Local pruning keeps the serial solver's
//     epsilon rule.
//  3. A serial reduction scans the slots in DFS order, keeping the first
//     strict improvement — i.e. the serial solver's first achiever. The
//     slot order is the serial branching order (sack 0, 1, …, skip), so
//     ties resolve to the lexicographically-smallest branching sequence,
//     exactly as in the serial DFS.
//
// Racy sub-optimal subtrees (whose exploration was cut short by a shared
// bound published mid-flight) can only under-report — and only in subtrees
// whose true maximum is below the global optimum — so they can never win
// the reduction, and the returned `Solution` is thread-count invariant.
// Caveat: like the serial epsilon prune, the argument assumes optima are
// separated by more than 1e-12; profits built from small integers (as in
// the TATIM reduction's scaled importances) satisfy this exactly.
// ---------------------------------------------------------------------------

/// One entry of the DFS-ordered work list produced by prefix enumeration.
enum Slot {
    /// An incumbent improvement observed *during* enumeration: a feasible
    /// packing and its profit, at its serial DFS position.
    Candidate { profit: f64, packing: Packing },
    /// An unexplored subtree rooted at the split depth.
    Subtree(SubtreeRoot),
}

/// Frozen DFS state at a subtree root.
struct SubtreeRoot {
    depth: usize,
    profit: f64,
    residual: Vec<(f64, f64)>,
    current: Packing,
}

struct PrefixEnum<'a> {
    problem: &'a Problem,
    order: &'a [usize],
    bounds: &'a SuffixBounds,
    split_depth: usize,
    floor: f64,
    residual: Vec<(f64, f64)>,
    current: Packing,
    enum_best: f64,
    slots: Vec<Slot>,
}

impl PrefixEnum<'_> {
    fn walk(&mut self, depth: usize, profit: f64) {
        if profit > self.enum_best {
            self.enum_best = profit;
            self.slots.push(Slot::Candidate { profit, packing: self.current.clone() });
        }
        if depth == self.order.len() {
            return;
        }
        // Same epsilon prune as the serial DFS, but against the running
        // enumeration incumbent — a lower bar than the serial solver's
        // global incumbent at the same node, so this prunes a *subset* of
        // what the serial solver prunes and can never cut off its answer.
        let agg_w: f64 = self.residual.iter().map(|r| r.0.max(0.0)).sum();
        let agg_v: f64 = self.residual.iter().map(|r| r.1.max(0.0)).sum();
        let bound = self.bounds.bound(depth, agg_w, agg_v);
        if profit + bound <= self.enum_best + 1e-12 {
            return;
        }
        // Warm-start floor: strictly sub-incumbent prefixes need no slots.
        if profit + bound < self.floor {
            return;
        }
        if depth == self.split_depth {
            self.slots.push(Slot::Subtree(SubtreeRoot {
                depth,
                profit,
                residual: self.residual.clone(),
                current: self.current.clone(),
            }));
            return;
        }

        let item_idx = self.order[depth];
        let item = self.problem.items()[item_idx];
        let mut seen: Vec<(f64, f64)> = Vec::new();
        for s in 0..self.problem.num_sacks() {
            let (rw, rv) = self.residual[s];
            if item.weight > rw + 1e-12 || item.volume > rv + 1e-12 {
                continue;
            }
            if seen.iter().any(|&(w, v)| (w - rw).abs() < 1e-12 && (v - rv).abs() < 1e-12) {
                continue;
            }
            seen.push((rw, rv));
            self.residual[s] = (rw - item.weight, rv - item.volume);
            self.current.assign(item_idx, Some(s));
            self.walk(depth + 1, profit + item.profit);
            self.current.assign(item_idx, None);
            self.residual[s] = (rw, rv);
        }
        self.walk(depth + 1, profit);
    }
}

fn enumerate_prefix(
    problem: &Problem,
    order: &[usize],
    bounds: &SuffixBounds,
    split_depth: usize,
    floor: f64,
) -> (Vec<Slot>, f64) {
    let mut en = PrefixEnum {
        problem,
        order,
        bounds,
        split_depth,
        floor,
        residual: full_residual(problem),
        current: Packing::empty(problem.num_items()),
        enum_best: -1.0,
        slots: Vec::new(),
    };
    en.walk(0, 0.0);
    (en.slots, en.enum_best)
}

#[allow(clippy::too_many_arguments)]
fn solve_parallel(
    problem: &Problem,
    order: &[usize],
    options: &SolverOptions,
    deadline: Option<Instant>,
    floor: f64,
    bounds: &SuffixBounds,
    skip_subtree: &(dyn Fn(&SubtreeRoot) -> bool + Sync),
) -> SearchReport {
    let n = problem.num_items();
    // Deepen the split until enough independent subtrees exist. Each
    // candidate depth re-enumerates from scratch; the prefix region is tiny
    // relative to the full tree, so this costs a negligible serial prelude.
    let max_split = n.min(PAR_MAX_SPLIT_DEPTH);
    let mut split_depth = 1usize.min(max_split);
    let (mut slots, mut enum_best) = enumerate_prefix(problem, order, bounds, split_depth, floor);
    while split_depth < max_split
        && (1..PAR_SUBTREE_TARGET)
            .contains(&slots.iter().filter(|s| matches!(s, Slot::Subtree(_))).count())
    {
        split_depth += 1;
        (slots, enum_best) = enumerate_prefix(problem, order, bounds, split_depth, floor);
    }

    // A node budget makes each subtree's exploration depend on its pruning
    // history, so the shared bound must be off for the anytime result to
    // stay thread-count invariant; each subtree then is a pure function.
    // (Seeding with the warm floor is safe for the same reason the floor
    // prune is: the shared prune is strict.)
    let shared = if options.node_limit.is_none() {
        Some(AtomicU64::new(enum_best.max(0.0).max(floor).to_bits()))
    } else {
        None
    };

    let roots: Vec<&SubtreeRoot> = slots
        .iter()
        .filter_map(|s| match s {
            Slot::Subtree(root) => Some(root),
            Slot::Candidate { .. } => None,
        })
        .collect();
    // Grain 1: subtrees are few but expensive, the exact case the
    // serial-below-threshold default grain would mis-handle.
    let results: Vec<(f64, Packing, bool, u64)> = parallel::par_map_grained(&roots, 1, |root| {
        // A subtree whose surrogate-certified maximum is below the floor
        // can be discarded wholesale: it cannot contain anything the
        // portfolio would return. The predicate is a pure function of the
        // root, so the partition of skipped subtrees is thread-invariant.
        if skip_subtree(root) {
            return (f64::NEG_INFINITY, Packing::empty(n), true, 0);
        }
        let mut search = Search {
            problem,
            order,
            bounds,
            best: Packing::empty(n),
            best_profit: -1.0,
            floor,
            residual: root.residual.clone(),
            current: root.current.clone(),
            nodes: 0,
            node_limit: options.node_limit,
            limit_hit: false,
            deadline,
            deadline_hit: false,
        };
        search.dfs_shared(root.depth, root.profit, shared.as_ref());
        (search.best_profit, search.best, !search.limit_hit && !search.deadline_hit, search.nodes)
    });

    // Serial reduction in DFS slot order: first strict improvement wins,
    // reproducing the serial solver's first optimum achiever.
    let mut best_profit = -1.0;
    let mut best = Packing::empty(n);
    let mut completed = true;
    let mut nodes = 0u64;
    let mut sub_results = results.into_iter();
    for slot in slots {
        let (profit, packing) = match slot {
            Slot::Candidate { profit, packing } => (profit, packing),
            Slot::Subtree(_) => {
                let (profit, packing, sub_completed, sub_nodes) =
                    sub_results.next().expect("one result per subtree");
                completed &= sub_completed;
                nodes += sub_nodes;
                (profit, packing)
            }
        };
        if profit > best_profit {
            best_profit = profit;
            best = packing;
        }
    }
    SearchReport {
        solution: Solution { packing: best, profit: best_profit.max(0.0) },
        completed,
        nodes,
    }
}

/// Portfolio entry point (see [`crate::portfolio`]): parallel subtree
/// branch-and-bound seeded with a warm-start incumbent `floor`, with whole
/// subtrees certified-and-skipped via the surrogate relaxation when their
/// optimistic maximum is strictly below the floor.
///
/// The node budget, when given, applies per subtree (shared bound off), so
/// the result is thread-count invariant in every mode.
pub(crate) fn solve_with_floor(
    problem: &Problem,
    node_limit: Option<u64>,
    floor: f64,
) -> SearchReport {
    let order = density_order(problem);
    let bounds = SuffixBounds::new(problem, &order);
    let options = SolverOptions { node_limit, deadline: None, parallel: true };
    let skip = |root: &SubtreeRoot| {
        let agg_w: f64 = root.residual.iter().map(|r| r.0.max(0.0)).sum();
        let agg_v: f64 = root.residual.iter().map(|r| r.1.max(0.0)).sum();
        root.profit + surrogate_bound_subset(problem, &order[root.depth..], agg_w, agg_v) < floor
    };
    if problem.num_items() == 0 {
        return SearchReport {
            solution: Solution { packing: Packing::empty(0), profit: 0.0 },
            completed: true,
            nodes: 0,
        };
    }
    solve_parallel(problem, &order, &options, None, floor, &bounds, &skip)
}

impl Search<'_> {
    /// The branch-and-bound DFS, with an optional shared incumbent:
    /// improvements are published with a monotone `fetch_max` over the
    /// profit bits, and subtrees are additionally pruned against the shared
    /// bound with a *strict* `<` so tie-potential paths survive (see the
    /// module notes on determinism). `shared = None` is the serial solver.
    fn dfs_shared(&mut self, depth: usize, profit: f64, shared: Option<&AtomicU64>) {
        self.nodes += 1;
        if let Some(limit) = self.node_limit {
            if self.nodes > limit {
                self.limit_hit = true;
                return;
            }
        }
        if self.deadline_hit {
            return;
        }
        if let Some(d) = self.deadline {
            if self.nodes & 1023 == 0 && Instant::now() >= d {
                self.deadline_hit = true;
                return;
            }
        }
        if profit > self.best_profit {
            self.best_profit = profit;
            self.best = self.current.clone();
            if let Some(shared) = shared {
                shared.fetch_max(profit.to_bits(), Ordering::Relaxed);
            }
        }
        if depth == self.order.len() {
            return;
        }

        // Prune: fractional bound on the remaining items over aggregate
        // residual capacity (precomputed, bit-identical to the old per-node
        // sort — see `SuffixBounds`).
        let agg_w: f64 = self.residual.iter().map(|r| r.0.max(0.0)).sum();
        let agg_v: f64 = self.residual.iter().map(|r| r.1.max(0.0)).sum();
        let bound = self.bounds.bound(depth, agg_w, agg_v);
        let potential = profit + bound;
        if potential <= self.best_profit + 1e-12 {
            return;
        }
        if potential < self.floor {
            return;
        }
        if let Some(shared) = shared {
            if potential < f64::from_bits(shared.load(Ordering::Relaxed)) {
                return;
            }
        }

        let item_idx = self.order[depth];
        let item = self.problem.items()[item_idx];
        let mut seen: Vec<(f64, f64)> = Vec::new();
        for s in 0..self.problem.num_sacks() {
            let (rw, rv) = self.residual[s];
            if item.weight > rw + 1e-12 || item.volume > rv + 1e-12 {
                continue;
            }
            if seen.iter().any(|&(w, v)| (w - rw).abs() < 1e-12 && (v - rv).abs() < 1e-12) {
                continue;
            }
            seen.push((rw, rv));
            self.residual[s] = (rw - item.weight, rv - item.volume);
            self.current.assign(item_idx, Some(s));
            self.dfs_shared(depth + 1, profit + item.profit, shared);
            self.current.assign(item_idx, None);
            self.residual[s] = (rw, rv);
        }
        self.dfs_shared(depth + 1, profit, shared);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Item, Sack};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn problem(items: Vec<(f64, f64, f64)>, sacks: Vec<(f64, f64)>) -> Problem {
        Problem::new(
            items.into_iter().map(|(w, v, p)| Item::new(w, v, p).unwrap()).collect(),
            sacks.into_iter().map(|(w, v)| Sack::new(w, v).unwrap()).collect(),
        )
        .unwrap()
    }

    #[test]
    fn picks_higher_profit_when_capacity_binds() {
        let p = problem(vec![(2.0, 1.0, 10.0), (2.0, 1.0, 7.0)], vec![(2.0, 1.0)]);
        let s = BranchAndBound::new().solve(&p);
        assert_eq!(s.profit, 10.0);
        assert!(s.packing.is_feasible(&p));
        assert_eq!(s.packing.sack_of(0), Some(0));
        assert_eq!(s.packing.sack_of(1), None);
    }

    #[test]
    fn uses_both_sacks() {
        let p = problem(
            vec![(2.0, 1.0, 10.0), (2.0, 1.0, 7.0), (2.0, 1.0, 5.0)],
            vec![(2.0, 1.0), (2.0, 1.0)],
        );
        let s = BranchAndBound::new().solve(&p);
        assert_eq!(s.profit, 17.0);
        assert_eq!(s.packing.packed_count(), 2);
    }

    #[test]
    fn respects_volume_constraint() {
        // Weight is loose, volume binds.
        let p = problem(vec![(0.1, 2.0, 5.0), (0.1, 2.0, 4.0)], vec![(10.0, 2.0)]);
        let s = BranchAndBound::new().solve(&p);
        assert_eq!(s.profit, 5.0);
    }

    #[test]
    fn empty_items_is_zero() {
        let p = problem(vec![], vec![(1.0, 1.0)]);
        let s = BranchAndBound::new().solve(&p);
        assert_eq!(s.profit, 0.0);
        assert_eq!(s.packing.packed_count(), 0);
    }

    #[test]
    fn nothing_fits_is_zero() {
        let p = problem(vec![(5.0, 5.0, 100.0)], vec![(1.0, 1.0)]);
        let s = BranchAndBound::new().solve(&p);
        assert_eq!(s.profit, 0.0);
    }

    #[test]
    fn knapsack_classic_instance() {
        // Classic single-sack 0-1 instance (volume unconstrained):
        // capacities 10; items (w,p): (5,10) (4,40) (6,30) (3,50); opt = 90.
        let p = problem(
            vec![(5.0, 0.0, 10.0), (4.0, 0.0, 40.0), (6.0, 0.0, 30.0), (3.0, 0.0, 50.0)],
            vec![(10.0, 0.0)],
        );
        let s = BranchAndBound::new().solve(&p);
        assert_eq!(s.profit, 90.0);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(2024);
        for round in 0..60 {
            let n = rng.gen_range(1..=7);
            let m = rng.gen_range(1..=3);
            let items: Vec<(f64, f64, f64)> = (0..n)
                .map(|_| {
                    (
                        rng.gen_range(0.0..5.0f64).round(),
                        rng.gen_range(0.0..5.0f64).round(),
                        rng.gen_range(0.0..10.0f64).round(),
                    )
                })
                .collect();
            let sacks: Vec<(f64, f64)> = (0..m)
                .map(|_| (rng.gen_range(0.0..8.0f64).round(), rng.gen_range(0.0..8.0f64).round()))
                .collect();
            let p = problem(items, sacks);
            let bb = BranchAndBound::new().solve(&p);
            let bf = brute_force(&p);
            assert!(
                (bb.profit - bf.profit).abs() < 1e-9,
                "round {round}: bb {} vs bf {} on {p:?}",
                bb.profit,
                bf.profit
            );
            assert!(bb.packing.is_feasible(&p));
        }
    }

    #[test]
    fn node_limit_returns_feasible_incumbent() {
        let mut rng = StdRng::seed_from_u64(9);
        let items: Vec<(f64, f64, f64)> = (0..20)
            .map(|_| (rng.gen_range(1.0..5.0), rng.gen_range(1.0..5.0), rng.gen_range(1.0..10.0)))
            .collect();
        let p = problem(items, vec![(15.0, 15.0), (10.0, 10.0)]);
        let s = BranchAndBound::with_node_limit(50).solve(&p);
        assert!(s.packing.is_feasible(&p));
        let full = BranchAndBound::new().solve(&p);
        assert!(full.profit >= s.profit);
    }

    /// Tests below flip the process-wide thread override; serialise them.
    static THREADS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn random_integer_problem(rng: &mut StdRng, max_items: usize) -> Problem {
        let n = rng.gen_range(1..=max_items);
        let m = rng.gen_range(1..=4);
        let items: Vec<(f64, f64, f64)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range(0.0..5.0f64).round(),
                    rng.gen_range(0.0..5.0f64).round(),
                    rng.gen_range(0.0..10.0f64).round(),
                )
            })
            .collect();
        let sacks: Vec<(f64, f64)> = (0..m)
            .map(|_| (rng.gen_range(0.0..9.0f64).round(), rng.gen_range(0.0..9.0f64).round()))
            .collect();
        problem(items, sacks)
    }

    #[test]
    fn solver_options_builder_composes() {
        let opts =
            SolverOptions::new().node_limit(10).deadline(Duration::from_millis(5)).parallel(true);
        assert_eq!(opts.node_limit, Some(10));
        assert_eq!(opts.deadline, Some(Duration::from_millis(5)));
        assert!(opts.parallel);
        assert_eq!(BranchAndBound::with_options(opts).options(), &opts);
        assert_eq!(BranchAndBound::with_node_limit(7).options().node_limit, Some(7));
        assert_eq!(BranchAndBound::new().options(), &SolverOptions::default());
    }

    #[test]
    fn parallel_matches_serial_bits_across_thread_counts() {
        let _g = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut rng = StdRng::seed_from_u64(77);
        let serial_solver = BranchAndBound::new();
        let par_solver = BranchAndBound::with_options(SolverOptions::new().parallel(true));
        for round in 0..20 {
            let p = random_integer_problem(&mut rng, 18);
            let serial = serial_solver.solve(&p);
            for threads in [1usize, 2, 8] {
                let _t = parallel::ScopedThreads::new(threads);
                let par = par_solver.solve(&p);
                assert_eq!(
                    par.profit.to_bits(),
                    serial.profit.to_bits(),
                    "round {round} threads {threads}: profit mismatch {} vs {}",
                    par.profit,
                    serial.profit
                );
                assert_eq!(
                    par.packing.placement(),
                    serial.packing.placement(),
                    "round {round} threads {threads}: assignment mismatch"
                );
            }
        }
    }

    #[test]
    fn parallel_matches_brute_force_on_small_instances() {
        let _g = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _t = parallel::ScopedThreads::new(4);
        let mut rng = StdRng::seed_from_u64(31);
        let solver = BranchAndBound::with_options(SolverOptions::new().parallel(true));
        for round in 0..40 {
            let p = random_integer_problem(&mut rng, 7);
            let par = solver.solve(&p);
            let bf = brute_force(&p);
            assert!(
                (par.profit - bf.profit).abs() < 1e-9,
                "round {round}: parallel {} vs brute force {}",
                par.profit,
                bf.profit
            );
            assert!(par.packing.is_feasible(&p));
        }
    }

    #[test]
    fn parallel_node_limit_is_thread_count_invariant() {
        let _g = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut rng = StdRng::seed_from_u64(5151);
        let p = random_integer_problem(&mut rng, 18);
        let solver =
            BranchAndBound::with_options(SolverOptions::new().parallel(true).node_limit(40));
        let reference = {
            let _t = parallel::ScopedThreads::new(1);
            solver.solve(&p)
        };
        assert!(reference.packing.is_feasible(&p));
        for threads in [2usize, 8] {
            let _t = parallel::ScopedThreads::new(threads);
            let got = solver.solve(&p);
            assert_eq!(got.profit.to_bits(), reference.profit.to_bits(), "threads {threads}");
            assert_eq!(got.packing.placement(), reference.packing.placement());
        }
    }

    #[test]
    fn deadline_returns_feasible_incumbent() {
        let mut rng = StdRng::seed_from_u64(13);
        let items: Vec<(f64, f64, f64)> = (0..26)
            .map(|_| (rng.gen_range(1.0..5.0), rng.gen_range(1.0..5.0), rng.gen_range(1.0..10.0)))
            .collect();
        let p = problem(items, vec![(16.0, 16.0), (12.0, 12.0), (8.0, 8.0)]);
        for opts in [
            SolverOptions::new().deadline(Duration::ZERO),
            SolverOptions::new().deadline(Duration::ZERO).parallel(true),
        ] {
            let s = BranchAndBound::with_options(opts).solve(&p);
            assert!(s.packing.is_feasible(&p));
            assert!(s.profit >= 0.0);
        }
    }
}
