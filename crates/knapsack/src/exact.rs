//! Exact MCMK solvers: depth-first branch-and-bound, plus a tiny brute-force
//! enumerator used as ground truth in tests.
//!
//! TATIM instances on the edge are small (tens of tasks, ~10 processors), so
//! exact solutions are attainable offline; the paper's point is that solving
//! them *repeatedly under varying importance* is too slow on-device, which is
//! what the data-driven allocators amortise. The exact solver is the
//! reference that CRL/DCTA allocation quality is measured against.

use crate::bounds::upper_bound_subset;
use crate::problem::{Packing, Problem, Solution};

/// Exhaustive search over all `(num_sacks + 1)^num_items` placements.
///
/// Only viable for very small instances; used to validate
/// [`BranchAndBound`]. Runs in `O((M+1)^N)`.
///
/// # Panics
///
/// Panics if `problem.num_items() > 16` — beyond that the enumeration is
/// unreasonable even for tests.
pub fn brute_force(problem: &Problem) -> Solution {
    assert!(problem.num_items() <= 16, "brute force limited to 16 items");
    let n = problem.num_items();
    let m = problem.num_sacks();
    let mut best = Packing::empty(n);
    let mut best_profit = 0.0;
    let mut current = Packing::empty(n);

    fn recurse(
        problem: &Problem,
        i: usize,
        current: &mut Packing,
        best: &mut Packing,
        best_profit: &mut f64,
    ) {
        let n = problem.num_items();
        if i == n {
            if current.is_feasible(problem) {
                let profit = current.profit(problem);
                if profit > *best_profit {
                    *best_profit = profit;
                    *best = current.clone();
                }
            }
            return;
        }
        current.assign(i, None);
        recurse(problem, i + 1, current, best, best_profit);
        for s in 0..problem.num_sacks() {
            current.assign(i, Some(s));
            recurse(problem, i + 1, current, best, best_profit);
        }
        current.assign(i, None);
    }

    let _ = m;
    recurse(problem, 0, &mut current, &mut best, &mut best_profit);
    Solution { packing: best, profit: best_profit }
}

/// Depth-first branch-and-bound exact solver.
///
/// Items are explored in decreasing profit-density order; at each node the
/// fractional aggregate relaxation ([`crate::bounds`]) prunes subtrees that
/// cannot beat the incumbent. Identical residual sacks are canonicalised to
/// curb permutation symmetry.
///
/// # Examples
///
/// ```
/// use knapsack::exact::BranchAndBound;
/// use knapsack::problem::{Item, Problem, Sack};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = Problem::new(
///     vec![Item::new(2.0, 1.0, 10.0)?, Item::new(2.0, 1.0, 7.0)?],
///     vec![Sack::new(2.0, 1.0)?],
/// )?;
/// let solution = BranchAndBound::new().solve(&p);
/// assert_eq!(solution.profit, 10.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BranchAndBound {
    /// Optional cap on explored nodes; `None` = unlimited. When the cap is
    /// hit the incumbent (a feasible, possibly sub-optimal packing) is
    /// returned — useful as an anytime solver inside benchmarks.
    pub node_limit: Option<u64>,
}

impl BranchAndBound {
    /// Creates an exact solver with no node limit.
    pub fn new() -> Self {
        Self { node_limit: None }
    }

    /// Creates an anytime solver that stops after `limit` nodes.
    pub fn with_node_limit(limit: u64) -> Self {
        Self { node_limit: Some(limit) }
    }

    /// Solves `problem`, returning the best packing found (the optimum when
    /// no node limit is set).
    pub fn solve(&self, problem: &Problem) -> Solution {
        let n = problem.num_items();
        // Density order: big profit per aggregate size first.
        let total_w: f64 =
            problem.sacks().iter().map(|s| s.weight_capacity).sum::<f64>().max(1e-12);
        let total_v: f64 =
            problem.sacks().iter().map(|s| s.volume_capacity).sum::<f64>().max(1e-12);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            let da = problem.items()[a].density(total_w, total_v);
            let db = problem.items()[b].density(total_w, total_v);
            db.partial_cmp(&da).expect("densities comparable")
        });

        let mut search = Search {
            problem,
            order,
            best: Packing::empty(n),
            best_profit: -1.0,
            residual: problem
                .sacks()
                .iter()
                .map(|s| (s.weight_capacity, s.volume_capacity))
                .collect(),
            current: Packing::empty(n),
            nodes: 0,
            node_limit: self.node_limit,
        };
        search.dfs(0, 0.0);
        let profit = search.best_profit.max(0.0);
        Solution { packing: search.best, profit }
    }
}

struct Search<'a> {
    problem: &'a Problem,
    order: Vec<usize>,
    best: Packing,
    best_profit: f64,
    residual: Vec<(f64, f64)>,
    current: Packing,
    nodes: u64,
    node_limit: Option<u64>,
}

impl Search<'_> {
    fn dfs(&mut self, depth: usize, profit: f64) {
        self.nodes += 1;
        if let Some(limit) = self.node_limit {
            if self.nodes > limit {
                return;
            }
        }
        if profit > self.best_profit {
            self.best_profit = profit;
            self.best = self.current.clone();
        }
        if depth == self.order.len() {
            return;
        }

        // Prune: fractional bound on the remaining items over aggregate
        // residual capacity.
        let rest: Vec<usize> = self.order[depth..].to_vec();
        let agg_w: f64 = self.residual.iter().map(|r| r.0.max(0.0)).sum();
        let agg_v: f64 = self.residual.iter().map(|r| r.1.max(0.0)).sum();
        let bound = upper_bound_subset(self.problem, &rest, agg_w, agg_v);
        if profit + bound <= self.best_profit + 1e-12 {
            return;
        }

        let item_idx = self.order[depth];
        let item = self.problem.items()[item_idx];

        // Branch 1..M: place into each distinct-residual sack that fits.
        let mut seen: Vec<(f64, f64)> = Vec::new();
        for s in 0..self.problem.num_sacks() {
            let (rw, rv) = self.residual[s];
            if item.weight > rw + 1e-12 || item.volume > rv + 1e-12 {
                continue;
            }
            // Symmetry: identical residual sacks are interchangeable.
            if seen.iter().any(|&(w, v)| (w - rw).abs() < 1e-12 && (v - rv).abs() < 1e-12) {
                continue;
            }
            seen.push((rw, rv));
            self.residual[s] = (rw - item.weight, rv - item.volume);
            self.current.assign(item_idx, Some(s));
            self.dfs(depth + 1, profit + item.profit);
            self.current.assign(item_idx, None);
            self.residual[s] = (rw, rv);
        }
        // Branch 0: skip the item.
        self.dfs(depth + 1, profit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Item, Sack};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn problem(items: Vec<(f64, f64, f64)>, sacks: Vec<(f64, f64)>) -> Problem {
        Problem::new(
            items.into_iter().map(|(w, v, p)| Item::new(w, v, p).unwrap()).collect(),
            sacks.into_iter().map(|(w, v)| Sack::new(w, v).unwrap()).collect(),
        )
        .unwrap()
    }

    #[test]
    fn picks_higher_profit_when_capacity_binds() {
        let p = problem(vec![(2.0, 1.0, 10.0), (2.0, 1.0, 7.0)], vec![(2.0, 1.0)]);
        let s = BranchAndBound::new().solve(&p);
        assert_eq!(s.profit, 10.0);
        assert!(s.packing.is_feasible(&p));
        assert_eq!(s.packing.sack_of(0), Some(0));
        assert_eq!(s.packing.sack_of(1), None);
    }

    #[test]
    fn uses_both_sacks() {
        let p = problem(
            vec![(2.0, 1.0, 10.0), (2.0, 1.0, 7.0), (2.0, 1.0, 5.0)],
            vec![(2.0, 1.0), (2.0, 1.0)],
        );
        let s = BranchAndBound::new().solve(&p);
        assert_eq!(s.profit, 17.0);
        assert_eq!(s.packing.packed_count(), 2);
    }

    #[test]
    fn respects_volume_constraint() {
        // Weight is loose, volume binds.
        let p = problem(vec![(0.1, 2.0, 5.0), (0.1, 2.0, 4.0)], vec![(10.0, 2.0)]);
        let s = BranchAndBound::new().solve(&p);
        assert_eq!(s.profit, 5.0);
    }

    #[test]
    fn empty_items_is_zero() {
        let p = problem(vec![], vec![(1.0, 1.0)]);
        let s = BranchAndBound::new().solve(&p);
        assert_eq!(s.profit, 0.0);
        assert_eq!(s.packing.packed_count(), 0);
    }

    #[test]
    fn nothing_fits_is_zero() {
        let p = problem(vec![(5.0, 5.0, 100.0)], vec![(1.0, 1.0)]);
        let s = BranchAndBound::new().solve(&p);
        assert_eq!(s.profit, 0.0);
    }

    #[test]
    fn knapsack_classic_instance() {
        // Classic single-sack 0-1 instance (volume unconstrained):
        // capacities 10; items (w,p): (5,10) (4,40) (6,30) (3,50); opt = 90.
        let p = problem(
            vec![(5.0, 0.0, 10.0), (4.0, 0.0, 40.0), (6.0, 0.0, 30.0), (3.0, 0.0, 50.0)],
            vec![(10.0, 0.0)],
        );
        let s = BranchAndBound::new().solve(&p);
        assert_eq!(s.profit, 90.0);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(2024);
        for round in 0..60 {
            let n = rng.gen_range(1..=7);
            let m = rng.gen_range(1..=3);
            let items: Vec<(f64, f64, f64)> = (0..n)
                .map(|_| {
                    (
                        rng.gen_range(0.0..5.0f64).round(),
                        rng.gen_range(0.0..5.0f64).round(),
                        rng.gen_range(0.0..10.0f64).round(),
                    )
                })
                .collect();
            let sacks: Vec<(f64, f64)> = (0..m)
                .map(|_| (rng.gen_range(0.0..8.0f64).round(), rng.gen_range(0.0..8.0f64).round()))
                .collect();
            let p = problem(items, sacks);
            let bb = BranchAndBound::new().solve(&p);
            let bf = brute_force(&p);
            assert!(
                (bb.profit - bf.profit).abs() < 1e-9,
                "round {round}: bb {} vs bf {} on {p:?}",
                bb.profit,
                bf.profit
            );
            assert!(bb.packing.is_feasible(&p));
        }
    }

    #[test]
    fn node_limit_returns_feasible_incumbent() {
        let mut rng = StdRng::seed_from_u64(9);
        let items: Vec<(f64, f64, f64)> = (0..20)
            .map(|_| (rng.gen_range(1.0..5.0), rng.gen_range(1.0..5.0), rng.gen_range(1.0..10.0)))
            .collect();
        let p = problem(items, vec![(15.0, 15.0), (10.0, 10.0)]);
        let s = BranchAndBound::with_node_limit(50).solve(&p);
        assert!(s.packing.is_feasible(&p));
        let full = BranchAndBound::new().solve(&p);
        assert!(full.profit >= s.profit);
    }
}
