//! Upper bounds on MCMK optima, used for branch-and-bound pruning and as
//! optimality certificates in tests and the anytime portfolio
//! ([`crate::portfolio`]).

use crate::problem::Problem;

/// Fractional single-constraint bound: relax to one aggregate knapsack on
/// the given `capacity`, allowing fractional items, considering only the
/// constraint dimension selected by `size_of`.
fn fractional_bound(
    items: &[(f64, f64)], // (size, profit)
    capacity: f64,
) -> f64 {
    let mut sorted: Vec<(f64, f64)> = items.to_vec();
    sorted.sort_by(|a, b| {
        let da = if a.0 <= 1e-15 { f64::INFINITY } else { a.1 / a.0 };
        let db = if b.0 <= 1e-15 { f64::INFINITY } else { b.1 / b.0 };
        db.partial_cmp(&da).expect("finite or +inf densities")
    });
    let mut remaining = capacity;
    let mut bound = 0.0;
    for (size, profit) in sorted {
        if size <= 1e-15 {
            bound += profit;
        } else if size <= remaining {
            remaining -= size;
            bound += profit;
        } else {
            bound += profit * (remaining / size);
            break;
        }
    }
    bound
}

/// A valid upper bound on the optimal MCMK profit.
///
/// Every feasible packing satisfies, in aggregate, `Σ packed weights ≤
/// Σ weight capacities` and `Σ packed volumes ≤ Σ volume capacities`; hence
/// each single-constraint fractional relaxation bounds the optimum, and so
/// does their minimum.
pub fn upper_bound(problem: &Problem) -> f64 {
    let total_w: f64 = problem.sacks().iter().map(|s| s.weight_capacity).sum();
    let total_v: f64 = problem.sacks().iter().map(|s| s.volume_capacity).sum();
    upper_bound_subset(problem, &(0..problem.num_items()).collect::<Vec<_>>(), total_w, total_v)
}

/// Same bound restricted to the item subset `indices` and explicit aggregate
/// residual capacities — the form branch-and-bound needs mid-search.
pub fn upper_bound_subset(
    problem: &Problem,
    indices: &[usize],
    aggregate_weight: f64,
    aggregate_volume: f64,
) -> f64 {
    let w_items: Vec<(f64, f64)> =
        indices.iter().map(|&i| (problem.items()[i].weight, problem.items()[i].profit)).collect();
    let v_items: Vec<(f64, f64)> =
        indices.iter().map(|&i| (problem.items()[i].volume, problem.items()[i].profit)).collect();
    let wb = fractional_bound(&w_items, aggregate_weight.max(0.0));
    let vb = fractional_bound(&v_items, aggregate_volume.max(0.0));
    wb.min(vb)
}

/// Interior surrogate multipliers tried by [`surrogate_bound_subset`] on top
/// of the two pure-dimension endpoints evaluated by [`upper_bound_subset`].
/// A fixed grid keeps the bound a pure function of the instance (no search
/// state), which the portfolio's determinism contract relies on.
const SURROGATE_THETAS: [f64; 5] = [0.1, 0.25, 0.5, 0.75, 0.9];

/// Surrogate-relaxation upper bound over the whole instance: the tightest of
/// [`upper_bound`] and the fractional bounds of the combined constraints
/// `Σ (θ·w + (1−θ)·v) x ≤ θ·W + (1−θ)·V` for each `θ` in a fixed grid.
///
/// Validity: every feasible packing satisfies both aggregate constraints, so
/// it satisfies any convex combination of them; the fractional optimum of
/// that single combined knapsack therefore bounds the MCMK optimum, and so
/// does the minimum over `θ`. This is the surrogate dual of the aggregate
/// relaxation (equivalently, a Lagrangian bound on the aggregated pair),
/// and is never looser than [`upper_bound`] because the endpoints are
/// included.
pub fn surrogate_bound(problem: &Problem) -> f64 {
    let total_w: f64 = problem.sacks().iter().map(|s| s.weight_capacity).sum();
    let total_v: f64 = problem.sacks().iter().map(|s| s.volume_capacity).sum();
    surrogate_bound_subset(problem, &(0..problem.num_items()).collect::<Vec<_>>(), total_w, total_v)
}

/// [`surrogate_bound`] restricted to the item subset `indices` under explicit
/// aggregate residual capacities — used to certify whole branch-and-bound
/// subtrees against a warm-start incumbent before exploring them.
pub fn surrogate_bound_subset(
    problem: &Problem,
    indices: &[usize],
    aggregate_weight: f64,
    aggregate_volume: f64,
) -> f64 {
    let mut best = upper_bound_subset(problem, indices, aggregate_weight, aggregate_volume);
    let w = aggregate_weight.max(0.0);
    let v = aggregate_volume.max(0.0);
    for theta in SURROGATE_THETAS {
        let items: Vec<(f64, f64)> = indices
            .iter()
            .map(|&i| {
                let item = problem.items()[i];
                (theta * item.weight + (1.0 - theta) * item.volume, item.profit)
            })
            .collect();
        best = best.min(fractional_bound(&items, theta * w + (1.0 - theta) * v));
    }
    best
}

/// Precomputed suffix-bound accelerator for branch-and-bound.
///
/// At every node the solver evaluates [`upper_bound_subset`] on the
/// not-yet-branched suffix `order[depth..]` — two sorts and three
/// allocations per node. The exploration order is fixed, so the sorted
/// density view of any suffix equals the stable-sorted *whole* order
/// filtered to positions `≥ depth` (stable sorting commutes with taking
/// subsequences under the same comparator). One sort per dimension up front
/// therefore lets each query run in `O(n)` with no allocation while
/// visiting items in exactly the sequence the per-node sort would have
/// produced — the same floating-point accumulation, hence bit-identical
/// bounds.
pub struct SuffixBounds {
    by_weight: Vec<DimEntry>,
    by_volume: Vec<DimEntry>,
}

#[derive(Clone, Copy)]
struct DimEntry {
    /// Position of the item in the exploration order.
    pos: u32,
    size: f64,
    profit: f64,
}

impl SuffixBounds {
    /// Builds the per-dimension density-sorted views of `problem` over the
    /// fixed exploration `order`.
    pub fn new(problem: &Problem, order: &[usize]) -> Self {
        fn build(problem: &Problem, order: &[usize], weight_dim: bool) -> Vec<DimEntry> {
            let mut entries: Vec<DimEntry> = order
                .iter()
                .enumerate()
                .map(|(pos, &i)| {
                    let item = problem.items()[i];
                    DimEntry {
                        pos: pos as u32,
                        size: if weight_dim { item.weight } else { item.volume },
                        profit: item.profit,
                    }
                })
                .collect();
            // Same comparator as `fractional_bound`, so filtering this sort
            // by position reproduces its per-suffix sort exactly.
            entries.sort_by(|a, b| {
                let da = if a.size <= 1e-15 { f64::INFINITY } else { a.profit / a.size };
                let db = if b.size <= 1e-15 { f64::INFINITY } else { b.profit / b.size };
                db.partial_cmp(&da).expect("finite or +inf densities")
            });
            entries
        }
        Self { by_weight: build(problem, order, true), by_volume: build(problem, order, false) }
    }

    /// Upper bound on the profit attainable from the suffix `order[depth..]`
    /// under the given aggregate residual capacities. Bit-identical to
    /// `upper_bound_subset(problem, &order[depth..], agg_w, agg_v)`.
    pub fn bound(&self, depth: usize, aggregate_weight: f64, aggregate_volume: f64) -> f64 {
        let wb = dim_bound(&self.by_weight, depth, aggregate_weight.max(0.0));
        let vb = dim_bound(&self.by_volume, depth, aggregate_volume.max(0.0));
        wb.min(vb)
    }
}

fn dim_bound(sorted: &[DimEntry], depth: usize, capacity: f64) -> f64 {
    let mut remaining = capacity;
    let mut bound = 0.0;
    for e in sorted {
        if (e.pos as usize) < depth {
            continue;
        }
        if e.size <= 1e-15 {
            bound += e.profit;
        } else if e.size <= remaining {
            remaining -= e.size;
            bound += e.profit;
        } else {
            bound += e.profit * (remaining / e.size);
            break;
        }
    }
    bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Item, Sack};

    fn problem(items: Vec<(f64, f64, f64)>, sacks: Vec<(f64, f64)>) -> Problem {
        Problem::new(
            items.into_iter().map(|(w, v, p)| Item::new(w, v, p).unwrap()).collect(),
            sacks.into_iter().map(|(w, v)| Sack::new(w, v).unwrap()).collect(),
        )
        .unwrap()
    }

    #[test]
    fn bound_at_least_any_feasible_packing() {
        // Pack item 0 alone: profit 10. Bound must be >= 10.
        let p = problem(vec![(2.0, 1.0, 10.0), (3.0, 2.0, 5.0)], vec![(4.0, 2.0)]);
        assert!(upper_bound(&p) >= 10.0);
    }

    #[test]
    fn bound_no_more_than_total_profit() {
        let p = problem(vec![(1.0, 1.0, 3.0), (1.0, 1.0, 4.0)], vec![(100.0, 100.0)]);
        assert_eq!(upper_bound(&p), 7.0);
    }

    #[test]
    fn tight_on_single_constraint_fit() {
        // Weight binds: capacity 3 of weight, items of weight 2 each.
        let p = problem(vec![(2.0, 0.0, 6.0), (2.0, 0.0, 6.0)], vec![(3.0, 10.0)]);
        // Fractional: 6 + 6 * (1/2) = 9.
        assert!((upper_bound(&p) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn volume_dimension_can_be_binding() {
        let p = problem(vec![(0.0, 2.0, 6.0), (0.0, 2.0, 6.0)], vec![(100.0, 3.0)]);
        assert!((upper_bound(&p) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn zero_size_items_count_fully() {
        let p = problem(vec![(0.0, 0.0, 5.0), (1.0, 1.0, 1.0)], vec![(0.0, 0.0)]);
        assert!((upper_bound(&p) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn subset_bound_uses_residuals() {
        let p = problem(vec![(2.0, 1.0, 10.0), (2.0, 1.0, 8.0)], vec![(4.0, 2.0)]);
        let b = upper_bound_subset(&p, &[1], 1.0, 1.0);
        // Only half of item 1 fits the residual weight 1.0.
        assert!((b - 4.0).abs() < 1e-12);
        assert_eq!(upper_bound_subset(&p, &[], 4.0, 2.0), 0.0);
        assert_eq!(upper_bound_subset(&p, &[0], -1.0, 1.0), 0.0);
    }

    #[test]
    fn surrogate_never_looser_than_aggregate_bound() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..40 {
            let n = rng.gen_range(1..12);
            let m = rng.gen_range(1..4);
            let items: Vec<(f64, f64, f64)> = (0..n)
                .map(|_| {
                    (rng.gen_range(0.0..5.0), rng.gen_range(0.0..5.0), rng.gen_range(0.0..9.0))
                })
                .collect();
            let sacks: Vec<(f64, f64)> =
                (0..m).map(|_| (rng.gen_range(0.0..8.0), rng.gen_range(0.0..8.0))).collect();
            let p = problem(items, sacks);
            assert!(surrogate_bound(&p) <= upper_bound(&p) + 1e-12);
        }
    }

    #[test]
    fn surrogate_bounds_the_optimum() {
        use crate::exact::brute_force;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for round in 0..40 {
            let n = rng.gen_range(1..8);
            let m = rng.gen_range(1..4);
            let items: Vec<(f64, f64, f64)> = (0..n)
                .map(|_| {
                    (
                        rng.gen_range(0.0..5.0f64).round(),
                        rng.gen_range(0.0..5.0f64).round(),
                        rng.gen_range(0.0..9.0f64).round(),
                    )
                })
                .collect();
            let sacks: Vec<(f64, f64)> = (0..m)
                .map(|_| (rng.gen_range(0.0..8.0f64).round(), rng.gen_range(0.0..8.0f64).round()))
                .collect();
            let p = problem(items, sacks);
            let opt = brute_force(&p).profit;
            let sb = surrogate_bound(&p);
            assert!(sb + 1e-9 >= opt, "round {round}: surrogate {sb} < optimum {opt}");
        }
    }

    #[test]
    fn suffix_bounds_bit_identical_to_subset_bound() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(43);
        for _ in 0..30 {
            let n = rng.gen_range(1..15);
            let items: Vec<(f64, f64, f64)> = (0..n)
                .map(|_| {
                    // Include zero sizes and duplicate densities so stable-
                    // sort tie handling is actually exercised.
                    (
                        rng.gen_range(0.0..3.0f64).round(),
                        rng.gen_range(0.0..3.0f64).round(),
                        rng.gen_range(0.0..5.0f64).round(),
                    )
                })
                .collect();
            let p = problem(items, vec![(7.0, 7.0), (3.0, 5.0)]);
            // An arbitrary (shuffled) exploration order.
            let mut order: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let sb = SuffixBounds::new(&p, &order);
            for depth in 0..=n {
                for (agg_w, agg_v) in [(10.0, 12.0), (3.5, 2.0), (0.0, 5.0), (-1.0, 4.0)] {
                    let fast = sb.bound(depth, agg_w, agg_v);
                    let slow = upper_bound_subset(&p, &order[depth..], agg_w, agg_v);
                    assert_eq!(
                        fast.to_bits(),
                        slow.to_bits(),
                        "depth {depth} caps ({agg_w},{agg_v})"
                    );
                }
            }
        }
    }
}
