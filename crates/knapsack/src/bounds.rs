//! Upper bounds on MCMK optima, used for branch-and-bound pruning and as
//! optimality certificates in tests.

use crate::problem::Problem;

/// Fractional single-constraint bound: relax to one aggregate knapsack on
/// the given `capacity`, allowing fractional items, considering only the
/// constraint dimension selected by `size_of`.
fn fractional_bound(
    items: &[(f64, f64)], // (size, profit)
    capacity: f64,
) -> f64 {
    let mut sorted: Vec<(f64, f64)> = items.to_vec();
    sorted.sort_by(|a, b| {
        let da = if a.0 <= 1e-15 { f64::INFINITY } else { a.1 / a.0 };
        let db = if b.0 <= 1e-15 { f64::INFINITY } else { b.1 / b.0 };
        db.partial_cmp(&da).expect("finite or +inf densities")
    });
    let mut remaining = capacity;
    let mut bound = 0.0;
    for (size, profit) in sorted {
        if size <= 1e-15 {
            bound += profit;
        } else if size <= remaining {
            remaining -= size;
            bound += profit;
        } else {
            bound += profit * (remaining / size);
            break;
        }
    }
    bound
}

/// A valid upper bound on the optimal MCMK profit.
///
/// Every feasible packing satisfies, in aggregate, `Σ packed weights ≤
/// Σ weight capacities` and `Σ packed volumes ≤ Σ volume capacities`; hence
/// each single-constraint fractional relaxation bounds the optimum, and so
/// does their minimum.
pub fn upper_bound(problem: &Problem) -> f64 {
    let total_w: f64 = problem.sacks().iter().map(|s| s.weight_capacity).sum();
    let total_v: f64 = problem.sacks().iter().map(|s| s.volume_capacity).sum();
    upper_bound_subset(problem, &(0..problem.num_items()).collect::<Vec<_>>(), total_w, total_v)
}

/// Same bound restricted to the item subset `indices` and explicit aggregate
/// residual capacities — the form branch-and-bound needs mid-search.
pub fn upper_bound_subset(
    problem: &Problem,
    indices: &[usize],
    aggregate_weight: f64,
    aggregate_volume: f64,
) -> f64 {
    let w_items: Vec<(f64, f64)> =
        indices.iter().map(|&i| (problem.items()[i].weight, problem.items()[i].profit)).collect();
    let v_items: Vec<(f64, f64)> =
        indices.iter().map(|&i| (problem.items()[i].volume, problem.items()[i].profit)).collect();
    let wb = fractional_bound(&w_items, aggregate_weight.max(0.0));
    let vb = fractional_bound(&v_items, aggregate_volume.max(0.0));
    wb.min(vb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Item, Sack};

    fn problem(items: Vec<(f64, f64, f64)>, sacks: Vec<(f64, f64)>) -> Problem {
        Problem::new(
            items.into_iter().map(|(w, v, p)| Item::new(w, v, p).unwrap()).collect(),
            sacks.into_iter().map(|(w, v)| Sack::new(w, v).unwrap()).collect(),
        )
        .unwrap()
    }

    #[test]
    fn bound_at_least_any_feasible_packing() {
        // Pack item 0 alone: profit 10. Bound must be >= 10.
        let p = problem(vec![(2.0, 1.0, 10.0), (3.0, 2.0, 5.0)], vec![(4.0, 2.0)]);
        assert!(upper_bound(&p) >= 10.0);
    }

    #[test]
    fn bound_no_more_than_total_profit() {
        let p = problem(vec![(1.0, 1.0, 3.0), (1.0, 1.0, 4.0)], vec![(100.0, 100.0)]);
        assert_eq!(upper_bound(&p), 7.0);
    }

    #[test]
    fn tight_on_single_constraint_fit() {
        // Weight binds: capacity 3 of weight, items of weight 2 each.
        let p = problem(vec![(2.0, 0.0, 6.0), (2.0, 0.0, 6.0)], vec![(3.0, 10.0)]);
        // Fractional: 6 + 6 * (1/2) = 9.
        assert!((upper_bound(&p) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn volume_dimension_can_be_binding() {
        let p = problem(vec![(0.0, 2.0, 6.0), (0.0, 2.0, 6.0)], vec![(100.0, 3.0)]);
        assert!((upper_bound(&p) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn zero_size_items_count_fully() {
        let p = problem(vec![(0.0, 0.0, 5.0), (1.0, 1.0, 1.0)], vec![(0.0, 0.0)]);
        assert!((upper_bound(&p) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn subset_bound_uses_residuals() {
        let p = problem(vec![(2.0, 1.0, 10.0), (2.0, 1.0, 8.0)], vec![(4.0, 2.0)]);
        let b = upper_bound_subset(&p, &[1], 1.0, 1.0);
        // Only half of item 1 fits the residual weight 1.0.
        assert!((b - 4.0).abs() < 1e-12);
        assert_eq!(upper_bound_subset(&p, &[], 4.0, 2.0), 0.0);
        assert_eq!(upper_bound_subset(&p, &[0], -1.0, 1.0), 0.0);
    }
}
