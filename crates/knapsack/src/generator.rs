//! Random MCMK instance generation for tests and benchmarks.
//!
//! Profiles mirror the TATIM workload: long-tail profits (a few very
//! important tasks), moderately correlated sizes, heterogeneous sacks
//! (Raspberry-Pi-class processors of mixed capacity).

use crate::problem::{Item, Problem, Sack};
use rand::Rng;

/// Shape of generated instances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// Number of items (tasks).
    pub num_items: usize,
    /// Number of sacks (processors).
    pub num_sacks: usize,
    /// Upper bound of uniform item weights.
    pub max_weight: f64,
    /// Upper bound of uniform item volumes.
    pub max_volume: f64,
    /// Pareto shape for long-tail profits; smaller = heavier tail. The
    /// paper's Fig. 2 distribution is matched around `1.2`.
    pub profit_tail_shape: f64,
    /// Total sack capacity as a fraction of total item size (per
    /// dimension). `0.5` means roughly half of all items fit.
    pub capacity_ratio: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            num_items: 50,
            num_sacks: 10,
            max_weight: 10.0,
            max_volume: 10.0,
            profit_tail_shape: 1.2,
            capacity_ratio: 0.5,
        }
    }
}

/// Draws a long-tailed value in `[0, 1)`: most draws land near zero, a few
/// near one (`v = u^(4/shape)`; smaller `shape` = heavier concentration at
/// zero). At the default shape 1.2 roughly 6-13 % of draws exceed 0.8,
/// matching the paper's Fig. 2 observation that only ~12.72 % of tasks are
/// highly important.
fn long_tail_profit(rng: &mut impl Rng, shape: f64) -> f64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    u.powf(4.0 / shape.max(0.1))
}

/// Generates a random instance under `config`.
///
/// # Panics
///
/// Panics if `config.num_sacks == 0`.
pub fn generate(config: GeneratorConfig, rng: &mut impl Rng) -> Problem {
    assert!(config.num_sacks > 0, "need at least one sack");
    let items: Vec<Item> = (0..config.num_items)
        .map(|_| {
            let weight = rng.gen_range(0.0..config.max_weight.max(1e-9));
            let volume = rng.gen_range(0.0..config.max_volume.max(1e-9));
            let profit = long_tail_profit(rng, config.profit_tail_shape);
            Item::new(weight, volume, profit).expect("generated values are valid")
        })
        .collect();
    let total_w: f64 = items.iter().map(|i| i.weight).sum();
    let total_v: f64 = items.iter().map(|i| i.volume).sum();
    let m = config.num_sacks as f64;
    // Heterogeneous capacities: split the budget by random proportions.
    let mut shares: Vec<f64> = (0..config.num_sacks).map(|_| rng.gen_range(0.5..1.5)).collect();
    let share_sum: f64 = shares.iter().sum();
    for s in &mut shares {
        *s /= share_sum;
    }
    let sacks: Vec<Sack> = shares
        .iter()
        .map(|&s| {
            Sack::new(
                (total_w * config.capacity_ratio * s).max(0.0),
                (total_v * config.capacity_ratio * s).max(0.0),
            )
            .expect("generated capacities are valid")
        })
        .collect();
    let _ = m;
    Problem::new(items, sacks).expect("at least one sack")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn respects_requested_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = generate(
            GeneratorConfig { num_items: 30, num_sacks: 4, ..Default::default() },
            &mut rng,
        );
        assert_eq!(p.num_items(), 30);
        assert_eq!(p.num_sacks(), 4);
    }

    #[test]
    fn capacity_ratio_controls_total_capacity() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = generate(GeneratorConfig { capacity_ratio: 0.5, ..Default::default() }, &mut rng);
        let total_iw: f64 = p.items().iter().map(|i| i.weight).sum();
        let total_sw: f64 = p.sacks().iter().map(|s| s.weight_capacity).sum();
        assert!((total_sw / total_iw - 0.5).abs() < 1e-9);
    }

    #[test]
    fn profits_are_long_tailed() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = generate(
            GeneratorConfig { num_items: 2000, profit_tail_shape: 1.2, ..Default::default() },
            &mut rng,
        );
        let mut profits: Vec<f64> = p.items().iter().map(|i| i.profit).collect();
        profits.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let total: f64 = profits.iter().sum();
        let top_decile: f64 = profits[..200].iter().sum();
        // Long tail: top 10% of tasks carry far more than 10% of profit.
        assert!(top_decile / total > 0.25, "top decile share {}", top_decile / total);
        assert!(profits.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let a = generate(GeneratorConfig::default(), &mut StdRng::seed_from_u64(7));
        let b = generate(GeneratorConfig::default(), &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
