//! Dynamic programs for single-knapsack restrictions of MCMK.
//!
//! Exact pseudo-polynomial DPs over integerised capacities. They serve two
//! roles: (1) reference solvers when MCMK degenerates to one sack, and
//! (2) the per-processor subproblem inside decomposition heuristics.

use crate::problem::{Item, Packing, Problem, Solution};
use std::fmt;

/// Error returned by the DP solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum DpError {
    /// The problem has more than one sack (DPs here are single-sack).
    MultipleSacks {
        /// Number of sacks supplied.
        got: usize,
    },
    /// The integerised capacity grid would exceed `max_cells`.
    GridTooLarge {
        /// Cells the grid would need.
        needed: u128,
        /// Configured cap.
        max_cells: u128,
    },
    /// `resolution` was zero or non-finite.
    BadResolution {
        /// The offending value.
        resolution: f64,
    },
}

impl fmt::Display for DpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpError::MultipleSacks { got } => {
                write!(f, "dp solvers handle exactly one sack, got {got}")
            }
            DpError::GridTooLarge { needed, max_cells } => {
                write!(f, "dp grid needs {needed} cells, cap is {max_cells}")
            }
            DpError::BadResolution { resolution } => {
                write!(f, "resolution must be positive and finite, got {resolution}")
            }
        }
    }
}

impl std::error::Error for DpError {}

fn quantize(value: f64, resolution: f64) -> usize {
    // Ceil so a quantised item never under-reports its size: the DP stays
    // feasible in the continuous problem (conservative rounding).
    (value / resolution).ceil().max(0.0) as usize
}

fn quantize_capacity(value: f64, resolution: f64) -> usize {
    // Floor so a quantised capacity never over-reports: conservative again.
    (value / resolution).floor().max(0.0) as usize
}

/// Exact 0-1 knapsack DP over the *weight* dimension only (volume ignored).
/// Sizes are quantised at `resolution`; conservative rounding keeps every
/// returned packing feasible for the continuous instance.
///
/// # Errors
///
/// See [`DpError`].
pub fn single_sack_weight_dp(
    problem: &Problem,
    resolution: f64,
    max_cells: u128,
) -> Result<Solution, DpError> {
    if problem.num_sacks() != 1 {
        return Err(DpError::MultipleSacks { got: problem.num_sacks() });
    }
    if !(resolution.is_finite() && resolution > 0.0) {
        return Err(DpError::BadResolution { resolution });
    }
    let cap = quantize_capacity(problem.sacks()[0].weight_capacity, resolution);
    let n = problem.num_items();
    let needed = (cap as u128 + 1) * (n as u128 + 1);
    if needed > max_cells {
        return Err(DpError::GridTooLarge { needed, max_cells });
    }

    // dp[w] = best profit using prefix of items at weight w; keep[i][w]
    // records the take/skip decision for reconstruction.
    let mut dp = vec![0.0f64; cap + 1];
    let mut keep = vec![vec![false; cap + 1]; n];
    for (i, item) in problem.items().iter().enumerate() {
        let wq = quantize(item.weight, resolution);
        if wq > cap {
            continue;
        }
        for w in (wq..=cap).rev() {
            let candidate = dp[w - wq] + item.profit;
            if candidate > dp[w] {
                dp[w] = candidate;
                keep[i][w] = true;
            }
        }
    }
    // Reconstruct.
    let mut packing = Packing::empty(n);
    let mut w = (0..=cap).max_by(|&a, &b| dp[a].partial_cmp(&dp[b]).expect("finite")).unwrap_or(0);
    for i in (0..n).rev() {
        if keep[i][w] {
            packing.assign(i, Some(0));
            w -= quantize(problem.items()[i].weight, resolution);
        }
    }
    let profit = packing.profit(problem);
    Ok(Solution { packing, profit })
}

/// Exact 0-1 knapsack DP over *both* dimensions (weight × volume grid) for a
/// single sack — the multiply-constrained variant of Theorem 1 restricted to
/// one processor.
///
/// # Errors
///
/// See [`DpError`].
pub fn single_sack_2d_dp(
    problem: &Problem,
    resolution: f64,
    max_cells: u128,
) -> Result<Solution, DpError> {
    if problem.num_sacks() != 1 {
        return Err(DpError::MultipleSacks { got: problem.num_sacks() });
    }
    if !(resolution.is_finite() && resolution > 0.0) {
        return Err(DpError::BadResolution { resolution });
    }
    let sack = problem.sacks()[0];
    let wcap = quantize_capacity(sack.weight_capacity, resolution);
    let vcap = quantize_capacity(sack.volume_capacity, resolution);
    let n = problem.num_items();
    let needed = (wcap as u128 + 1) * (vcap as u128 + 1) * (n as u128 + 1);
    if needed > max_cells {
        return Err(DpError::GridTooLarge { needed, max_cells });
    }

    let cols = vcap + 1;
    let idx = |w: usize, v: usize| w * cols + v;
    let mut dp = vec![0.0f64; (wcap + 1) * cols];
    let mut keep = vec![vec![false; (wcap + 1) * cols]; n];
    for (i, item) in problem.items().iter().enumerate() {
        let wq = quantize(item.weight, resolution);
        let vq = quantize(item.volume, resolution);
        if wq > wcap || vq > vcap {
            continue;
        }
        for w in (wq..=wcap).rev() {
            for v in (vq..=vcap).rev() {
                let candidate = dp[idx(w - wq, v - vq)] + item.profit;
                if candidate > dp[idx(w, v)] {
                    dp[idx(w, v)] = candidate;
                    keep[i][idx(w, v)] = true;
                }
            }
        }
    }
    let mut packing = Packing::empty(n);
    let (mut w, mut v) = (wcap, vcap);
    // The grid is monotone, so the corner holds the optimum.
    for i in (0..n).rev() {
        if keep[i][idx(w, v)] {
            packing.assign(i, Some(0));
            w -= quantize(problem.items()[i].weight, resolution);
            v -= quantize(problem.items()[i].volume, resolution);
        }
    }
    let profit = packing.profit(problem);
    Ok(Solution { packing, profit })
}

/// Builds a single-sack subproblem from a subset of items, preserving order
/// via the returned index map. Helper for decomposition heuristics.
pub fn restrict_to_sack(problem: &Problem, sack: usize, item_indices: &[usize]) -> Problem {
    let items: Vec<Item> = item_indices.iter().map(|&i| problem.items()[i]).collect();
    Problem::new(items, vec![problem.sacks()[sack]]).expect("one sack by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::BranchAndBound;
    use crate::problem::Sack;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn single(items: Vec<(f64, f64, f64)>, cap: (f64, f64)) -> Problem {
        Problem::new(
            items.into_iter().map(|(w, v, p)| Item::new(w, v, p).unwrap()).collect(),
            vec![Sack::new(cap.0, cap.1).unwrap()],
        )
        .unwrap()
    }

    #[test]
    fn weight_dp_classic_instance() {
        let p = single(
            vec![(5.0, 0.0, 10.0), (4.0, 0.0, 40.0), (6.0, 0.0, 30.0), (3.0, 0.0, 50.0)],
            (10.0, 0.0),
        );
        let s = single_sack_weight_dp(&p, 1.0, 1 << 20).unwrap();
        assert_eq!(s.profit, 90.0);
        assert!(s.packing.is_feasible(&p));
    }

    #[test]
    fn weight_dp_matches_exact_when_volume_loose() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            let n = rng.gen_range(1..8);
            let items: Vec<(f64, f64, f64)> = (0..n)
                .map(|_| (rng.gen_range(0..6) as f64, 0.0, rng.gen_range(1..10) as f64))
                .collect();
            let p = single(items, (rng.gen_range(0..12) as f64, 0.0));
            let dp = single_sack_weight_dp(&p, 1.0, 1 << 22).unwrap();
            let bb = BranchAndBound::new().solve(&p);
            assert!((dp.profit - bb.profit).abs() < 1e-9, "dp {} bb {}", dp.profit, bb.profit);
        }
    }

    #[test]
    fn two_d_dp_matches_exact() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..30 {
            let n = rng.gen_range(1..8);
            let items: Vec<(f64, f64, f64)> = (0..n)
                .map(|_| {
                    (
                        rng.gen_range(0..5) as f64,
                        rng.gen_range(0..5) as f64,
                        rng.gen_range(1..10) as f64,
                    )
                })
                .collect();
            let p = single(items, (rng.gen_range(0..9) as f64, rng.gen_range(0..9) as f64));
            let dp = single_sack_2d_dp(&p, 1.0, 1 << 24).unwrap();
            let bb = BranchAndBound::new().solve(&p);
            assert!((dp.profit - bb.profit).abs() < 1e-9, "dp {} bb {}", dp.profit, bb.profit);
            assert!(dp.packing.is_feasible(&p));
        }
    }

    #[test]
    fn conservative_rounding_stays_feasible() {
        // Item weight 1.05 at resolution 0.5 quantises up to 1.5 units;
        // capacity 2.0 quantises down to 2.0: at most one copy fits in DP
        // even though 1.05+1.05 > 2.0 would actually... (2.1 > 2, infeasible
        // anyway). Use a case where naive rounding would over-pack:
        // two items of weight 1.3, capacity 2.5. True: only one fits.
        let p = single(vec![(1.3, 0.0, 1.0), (1.3, 0.0, 1.0)], (2.5, 0.0));
        let s = single_sack_weight_dp(&p, 0.5, 1 << 20).unwrap();
        assert!(s.packing.is_feasible(&p));
        assert_eq!(s.profit, 1.0);
    }

    #[test]
    fn dp_errors() {
        let p =
            Problem::new(vec![], vec![Sack::new(1.0, 1.0).unwrap(), Sack::new(1.0, 1.0).unwrap()])
                .unwrap();
        assert!(matches!(
            single_sack_weight_dp(&p, 1.0, 1 << 20),
            Err(DpError::MultipleSacks { got: 2 })
        ));
        let p1 = single(vec![(1.0, 1.0, 1.0)], (1000.0, 1000.0));
        assert!(matches!(
            single_sack_weight_dp(&p1, 0.0, 1 << 20),
            Err(DpError::BadResolution { .. })
        ));
        assert!(matches!(single_sack_2d_dp(&p1, 0.001, 10), Err(DpError::GridTooLarge { .. })));
    }

    #[test]
    fn restrict_to_sack_builds_subproblem() {
        let p = Problem::new(
            vec![
                Item::new(1.0, 1.0, 1.0).unwrap(),
                Item::new(2.0, 2.0, 2.0).unwrap(),
                Item::new(3.0, 3.0, 3.0).unwrap(),
            ],
            vec![Sack::new(5.0, 5.0).unwrap(), Sack::new(9.0, 9.0).unwrap()],
        )
        .unwrap();
        let sub = restrict_to_sack(&p, 1, &[0, 2]);
        assert_eq!(sub.num_items(), 2);
        assert_eq!(sub.num_sacks(), 1);
        assert_eq!(sub.sacks()[0].weight_capacity, 9.0);
        assert_eq!(sub.items()[1].profit, 3.0);
    }
}
