//! Problem model for the 0-1 multiply-constrained multiple knapsack problem
//! (MCMK), the combinatorial core of TATIM (paper Theorem 1).
//!
//! Terminology maps onto the paper's reduction: an *item* is a task (weight =
//! execution time `t_j`, volume = resource demand `v_j`, profit = task
//! importance `I_j`); a *sack* is a processor (weight capacity = time limit
//! `T`, volume capacity = resource capacity `V_p`). An item may be packed
//! into at most one sack; unpacked items earn nothing.

use std::fmt;

/// One item: a (time, resource, profit) triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Item {
    /// Weight consumed in the first constraint dimension (task time `t_j`).
    pub weight: f64,
    /// Volume consumed in the second constraint dimension (resource `v_j`).
    pub volume: f64,
    /// Profit earned when packed (task importance `I_j`).
    pub profit: f64,
}

impl Item {
    /// Creates an item, validating that all components are finite and
    /// non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError::BadItem`] on negative or non-finite values.
    pub fn new(weight: f64, volume: f64, profit: f64) -> Result<Self, ProblemError> {
        let ok = |v: f64| v.is_finite() && v >= 0.0;
        if !(ok(weight) && ok(volume) && ok(profit)) {
            return Err(ProblemError::BadItem { weight, volume, profit });
        }
        Ok(Self { weight, volume, profit })
    }

    /// Profit density used by greedy heuristics: profit per unit of
    /// (normalised) combined size. Zero-size items have infinite density.
    pub fn density(&self, weight_scale: f64, volume_scale: f64) -> f64 {
        let size = self.weight / weight_scale.max(1e-12) + self.volume / volume_scale.max(1e-12);
        if size <= 1e-15 {
            f64::INFINITY
        } else {
            self.profit / size
        }
    }
}

/// One sack: capacities in both constraint dimensions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sack {
    /// Capacity in the weight dimension (time limit `T`).
    pub weight_capacity: f64,
    /// Capacity in the volume dimension (resource capacity `V_p`).
    pub volume_capacity: f64,
}

impl Sack {
    /// Creates a sack, validating that capacities are finite and
    /// non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError::BadSack`] on negative or non-finite values.
    pub fn new(weight_capacity: f64, volume_capacity: f64) -> Result<Self, ProblemError> {
        let ok = |v: f64| v.is_finite() && v >= 0.0;
        if !(ok(weight_capacity) && ok(volume_capacity)) {
            return Err(ProblemError::BadSack { weight_capacity, volume_capacity });
        }
        Ok(Self { weight_capacity, volume_capacity })
    }
}

/// Error constructing or validating an MCMK problem.
#[derive(Debug, Clone, PartialEq)]
pub enum ProblemError {
    /// Item had a negative or non-finite component.
    BadItem {
        /// Offending weight.
        weight: f64,
        /// Offending volume.
        volume: f64,
        /// Offending profit.
        profit: f64,
    },
    /// Sack had a negative or non-finite capacity.
    BadSack {
        /// Offending weight capacity.
        weight_capacity: f64,
        /// Offending volume capacity.
        volume_capacity: f64,
    },
    /// The problem has no sacks.
    NoSacks,
}

impl fmt::Display for ProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProblemError::BadItem { weight, volume, profit } => {
                write!(f, "invalid item (weight {weight}, volume {volume}, profit {profit})")
            }
            ProblemError::BadSack { weight_capacity, volume_capacity } => {
                write!(f, "invalid sack (capacities {weight_capacity}, {volume_capacity})")
            }
            ProblemError::NoSacks => write!(f, "problem has no sacks"),
        }
    }
}

impl std::error::Error for ProblemError {}

/// An MCMK instance.
///
/// # Examples
///
/// ```
/// use knapsack::problem::{Item, Problem, Sack};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let problem = Problem::new(
///     vec![Item::new(2.0, 1.0, 10.0)?, Item::new(3.0, 1.0, 5.0)?],
///     vec![Sack::new(4.0, 2.0)?],
/// )?;
/// assert_eq!(problem.num_items(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Problem {
    items: Vec<Item>,
    sacks: Vec<Sack>,
}

impl Problem {
    /// Creates a problem instance.
    ///
    /// # Errors
    ///
    /// [`ProblemError::NoSacks`] when `sacks` is empty. (An empty item list
    /// is legal: the optimum is trivially zero.)
    pub fn new(items: Vec<Item>, sacks: Vec<Sack>) -> Result<Self, ProblemError> {
        if sacks.is_empty() {
            return Err(ProblemError::NoSacks);
        }
        Ok(Self { items, sacks })
    }

    /// The items.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// The sacks.
    pub fn sacks(&self) -> &[Sack] {
        &self.sacks
    }

    /// Item count.
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    /// Sack count.
    pub fn num_sacks(&self) -> usize {
        self.sacks.len()
    }

    /// Sum of all item profits — a trivial upper bound on any packing.
    pub fn total_profit(&self) -> f64 {
        self.items.iter().map(|i| i.profit).sum()
    }
}

/// A (possibly partial) packing: `placement[i]` is the sack index of item
/// `i`, or `None` when the item is left out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packing {
    placement: Vec<Option<usize>>,
}

impl Packing {
    /// An empty packing for `num_items` items.
    pub fn empty(num_items: usize) -> Self {
        Self { placement: vec![None; num_items] }
    }

    /// Builds a packing directly from a placement vector.
    pub fn from_placement(placement: Vec<Option<usize>>) -> Self {
        Self { placement }
    }

    /// The raw placement vector.
    pub fn placement(&self) -> &[Option<usize>] {
        &self.placement
    }

    /// Sack of item `i` (`None` = unpacked).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn sack_of(&self, i: usize) -> Option<usize> {
        self.placement[i]
    }

    /// Assigns item `i` to `sack` (or unpacks it with `None`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn assign(&mut self, i: usize, sack: Option<usize>) {
        self.placement[i] = sack;
    }

    /// Number of packed items.
    pub fn packed_count(&self) -> usize {
        self.placement.iter().filter(|p| p.is_some()).count()
    }

    /// Total profit of packed items under `problem`.
    ///
    /// # Panics
    ///
    /// Panics if the packing length disagrees with the problem.
    pub fn profit(&self, problem: &Problem) -> f64 {
        assert_eq!(self.placement.len(), problem.num_items(), "packing/problem size mismatch");
        self.placement
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|_| problem.items()[i].profit))
            .sum()
    }

    /// Checks every constraint: valid sack indices, and per-sack weight and
    /// volume loads within capacity (with a tiny epsilon for float
    /// accumulation).
    ///
    /// # Panics
    ///
    /// Panics if the packing length disagrees with the problem.
    pub fn is_feasible(&self, problem: &Problem) -> bool {
        assert_eq!(self.placement.len(), problem.num_items(), "packing/problem size mismatch");
        let m = problem.num_sacks();
        let mut weight = vec![0.0; m];
        let mut volume = vec![0.0; m];
        for (i, p) in self.placement.iter().enumerate() {
            if let Some(s) = *p {
                if s >= m {
                    return false;
                }
                weight[s] += problem.items()[i].weight;
                volume[s] += problem.items()[i].volume;
            }
        }
        const EPS: f64 = 1e-9;
        problem.sacks().iter().enumerate().all(|(s, sack)| {
            weight[s] <= sack.weight_capacity + EPS && volume[s] <= sack.volume_capacity + EPS
        })
    }

    /// Remaining `(weight, volume)` headroom of each sack.
    ///
    /// # Panics
    ///
    /// Panics if the packing length disagrees with the problem.
    pub fn residual_capacities(&self, problem: &Problem) -> Vec<(f64, f64)> {
        assert_eq!(self.placement.len(), problem.num_items(), "packing/problem size mismatch");
        let mut residual: Vec<(f64, f64)> =
            problem.sacks().iter().map(|s| (s.weight_capacity, s.volume_capacity)).collect();
        for (i, p) in self.placement.iter().enumerate() {
            if let Some(s) = *p {
                residual[s].0 -= problem.items()[i].weight;
                residual[s].1 -= problem.items()[i].volume;
            }
        }
        residual
    }
}

/// Outcome of a solver run: the packing plus its profit.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// The packing found.
    pub packing: Packing,
    /// Its total profit (cached by the solver).
    pub profit: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> Problem {
        Problem::new(
            vec![
                Item::new(2.0, 1.0, 10.0).unwrap(),
                Item::new(3.0, 2.0, 5.0).unwrap(),
                Item::new(1.0, 1.0, 7.0).unwrap(),
            ],
            vec![Sack::new(4.0, 2.0).unwrap(), Sack::new(2.0, 2.0).unwrap()],
        )
        .unwrap()
    }

    #[test]
    fn item_validation() {
        assert!(Item::new(-1.0, 0.0, 0.0).is_err());
        assert!(Item::new(0.0, f64::NAN, 0.0).is_err());
        assert!(Item::new(0.0, 0.0, f64::INFINITY).is_err());
        assert!(Item::new(0.0, 0.0, 0.0).is_ok());
    }

    #[test]
    fn sack_validation() {
        assert!(Sack::new(-1.0, 1.0).is_err());
        assert!(Sack::new(1.0, f64::NAN).is_err());
        assert!(Sack::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn problem_requires_sacks() {
        assert!(matches!(Problem::new(vec![], vec![]), Err(ProblemError::NoSacks)));
        assert!(Problem::new(vec![], vec![Sack::new(1.0, 1.0).unwrap()]).is_ok());
    }

    #[test]
    fn density_ordering() {
        let dense = Item::new(1.0, 1.0, 10.0).unwrap();
        let sparse = Item::new(5.0, 5.0, 10.0).unwrap();
        assert!(dense.density(1.0, 1.0) > sparse.density(1.0, 1.0));
        let free = Item::new(0.0, 0.0, 1.0).unwrap();
        assert_eq!(free.density(1.0, 1.0), f64::INFINITY);
    }

    #[test]
    fn packing_profit_and_count() {
        let p = simple();
        let mut k = Packing::empty(3);
        assert_eq!(k.profit(&p), 0.0);
        k.assign(0, Some(0));
        k.assign(2, Some(1));
        assert_eq!(k.profit(&p), 17.0);
        assert_eq!(k.packed_count(), 2);
        k.assign(0, None);
        assert_eq!(k.profit(&p), 7.0);
    }

    #[test]
    fn feasibility_checks_both_dimensions() {
        let p = simple();
        let mut k = Packing::empty(3);
        k.assign(0, Some(0)); // w 2/4, v 1/2 — ok
        assert!(k.is_feasible(&p));
        k.assign(2, Some(0)); // w 3/4, v 2/2 — ok, tight
        assert!(k.is_feasible(&p));
        k.assign(1, Some(0)); // w 6/4 — violates weight
        assert!(!k.is_feasible(&p));
        k.assign(1, Some(1)); // sack 1: w 3/2 — violates weight there
        assert!(!k.is_feasible(&p));
        k.assign(1, None);
        assert!(k.is_feasible(&p));
    }

    #[test]
    fn feasibility_rejects_bad_sack_index() {
        let p = simple();
        let k = Packing::from_placement(vec![Some(5), None, None]);
        assert!(!k.is_feasible(&p));
    }

    #[test]
    fn residual_capacities_track_loads() {
        let p = simple();
        let mut k = Packing::empty(3);
        k.assign(0, Some(0));
        let res = k.residual_capacities(&p);
        assert_eq!(res[0], (2.0, 1.0));
        assert_eq!(res[1], (2.0, 2.0));
    }

    #[test]
    fn total_profit_is_item_sum() {
        assert_eq!(simple().total_profit(), 22.0);
    }
}
