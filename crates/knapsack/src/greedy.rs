//! Greedy and local-search heuristics for MCMK.
//!
//! The density-ordered greedy is what an edge controller can afford to run
//! every allocation round; it is also the "accurate task allocation" proxy
//! used when reproducing Fig. 3 (allocate by importance under capacity
//! limits). Local search tightens it when a little more compute is
//! available.

use crate::problem::{Packing, Problem, Solution};

/// Density-ordered greedy first-fit: items are sorted by profit density
/// (profit per aggregate-normalised size) and each is placed into the sack
/// with the *least* remaining headroom that still fits (best-fit), leaving
/// big headroom for big items.
///
/// Runs in `O(N log N + N·M)`.
///
/// # Examples
///
/// ```
/// use knapsack::greedy::greedy;
/// use knapsack::problem::{Item, Problem, Sack};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = Problem::new(
///     vec![Item::new(2.0, 1.0, 10.0)?, Item::new(2.0, 1.0, 1.0)?],
///     vec![Sack::new(2.0, 1.0)?],
/// )?;
/// assert_eq!(greedy(&p).profit, 10.0);
/// # Ok(())
/// # }
/// ```
pub fn greedy(problem: &Problem) -> Solution {
    greedy_with_index(problem, &DensityIndex::new(problem))
}

/// Reusable profit-density ordering for greedy passes.
///
/// `greedy` used to re-sort a fresh density index on every call; callers
/// that solve the same item set repeatedly — day-over-day re-allocation,
/// the portfolio warm start, benchmark sweeps — can build the index once
/// and pass it to [`greedy_with_index`] to skip the `O(N log N)` sort.
/// The placement produced through a reused index is bit-identical to a
/// fresh `greedy` call (pinned by a regression test against the original
/// inline implementation).
#[derive(Debug, Clone)]
pub struct DensityIndex {
    order: Vec<usize>,
    total_w: f64,
    total_v: f64,
}

impl DensityIndex {
    /// Sorts the items of `problem` by decreasing profit density, breaking
    /// density ties by decreasing profit.
    pub fn new(problem: &Problem) -> Self {
        let total_w: f64 =
            problem.sacks().iter().map(|s| s.weight_capacity).sum::<f64>().max(1e-12);
        let total_v: f64 =
            problem.sacks().iter().map(|s| s.volume_capacity).sum::<f64>().max(1e-12);
        let mut order: Vec<usize> = (0..problem.num_items()).collect();
        order.sort_by(|&a, &b| {
            let da = problem.items()[a].density(total_w, total_v);
            let db = problem.items()[b].density(total_w, total_v);
            db.partial_cmp(&da).expect("densities comparable").then(
                problem.items()[b].profit.partial_cmp(&problem.items()[a].profit).expect("finite"),
            )
        });
        Self { order, total_w, total_v }
    }

    /// Item indices in greedy placement order.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// The aggregate `(weight, volume)` capacity scales the densities were
    /// normalised by (both clamped to ≥ 1e-12).
    pub fn scales(&self) -> (f64, f64) {
        (self.total_w, self.total_v)
    }
}

/// [`greedy`] with a prebuilt [`DensityIndex`] (which must have been built
/// for this `problem`'s items and sacks).
pub fn greedy_with_index(problem: &Problem, index: &DensityIndex) -> Solution {
    let n = problem.num_items();
    let (total_w, total_v) = (index.total_w, index.total_v);
    let mut packing = Packing::empty(n);
    let mut residual: Vec<(f64, f64)> =
        problem.sacks().iter().map(|s| (s.weight_capacity, s.volume_capacity)).collect();
    for &i in &index.order {
        let item = problem.items()[i];
        // Best fit: the feasible sack minimising leftover headroom.
        let mut best: Option<(usize, f64)> = None;
        for (s, &(rw, rv)) in residual.iter().enumerate() {
            if item.weight <= rw + 1e-12 && item.volume <= rv + 1e-12 {
                let slack = (rw - item.weight) / total_w + (rv - item.volume) / total_v;
                if best.is_none_or(|(_, b)| slack < b) {
                    best = Some((s, slack));
                }
            }
        }
        if let Some((s, _)) = best {
            residual[s].0 -= item.weight;
            residual[s].1 -= item.volume;
            packing.assign(i, Some(s));
        }
    }
    let profit = packing.profit(problem);
    Solution { packing, profit }
}

/// Hill-climbing improvement over an initial packing: repeatedly applies the
/// best profitable *insert* (unpacked item into a sack with room) or *swap*
/// (unpacked item replaces a packed one of lower profit where it fits) until
/// no move improves. Returns the improved solution.
pub fn local_search(problem: &Problem, initial: Solution, max_rounds: usize) -> Solution {
    let mut packing = initial.packing;
    for _ in 0..max_rounds {
        let mut residual = packing.residual_capacities(problem);
        let mut improved = false;

        // Insert moves.
        for i in 0..problem.num_items() {
            if packing.sack_of(i).is_some() {
                continue;
            }
            let item = problem.items()[i];
            if item.profit <= 0.0 {
                continue;
            }
            if let Some(s) = (0..problem.num_sacks()).find(|&s| {
                item.weight <= residual[s].0 + 1e-12 && item.volume <= residual[s].1 + 1e-12
            }) {
                packing.assign(i, Some(s));
                residual[s].0 -= item.weight;
                residual[s].1 -= item.volume;
                improved = true;
            }
        }

        // Swap moves: out-item j (packed) replaced by in-item i (unpacked).
        'swap: for i in 0..problem.num_items() {
            if packing.sack_of(i).is_some() {
                continue;
            }
            let inc = problem.items()[i];
            for j in 0..problem.num_items() {
                let Some(s) = packing.sack_of(j) else { continue };
                let out = problem.items()[j];
                if inc.profit <= out.profit + 1e-12 {
                    continue;
                }
                let rw = residual[s].0 + out.weight;
                let rv = residual[s].1 + out.volume;
                if inc.weight <= rw + 1e-12 && inc.volume <= rv + 1e-12 {
                    packing.assign(j, None);
                    packing.assign(i, Some(s));
                    residual[s].0 = rw - inc.weight;
                    residual[s].1 = rv - inc.volume;
                    improved = true;
                    continue 'swap;
                }
            }
        }

        if !improved {
            break;
        }
    }
    let profit = packing.profit(problem);
    Solution { packing, profit }
}

/// Convenience: greedy followed by local search.
pub fn greedy_with_local_search(problem: &Problem) -> Solution {
    local_search(problem, greedy(problem), 32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::BranchAndBound;
    use crate::problem::{Item, Sack};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn problem(items: Vec<(f64, f64, f64)>, sacks: Vec<(f64, f64)>) -> Problem {
        Problem::new(
            items.into_iter().map(|(w, v, p)| Item::new(w, v, p).unwrap()).collect(),
            sacks.into_iter().map(|(w, v)| Sack::new(w, v).unwrap()).collect(),
        )
        .unwrap()
    }

    #[test]
    fn greedy_prefers_dense_items() {
        let p = problem(vec![(2.0, 1.0, 10.0), (2.0, 1.0, 1.0)], vec![(2.0, 1.0)]);
        let s = greedy(&p);
        assert_eq!(s.profit, 10.0);
        assert!(s.packing.is_feasible(&p));
    }

    #[test]
    fn greedy_feasible_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let n = rng.gen_range(0..30);
            let m = rng.gen_range(1..6);
            let items: Vec<(f64, f64, f64)> = (0..n)
                .map(|_| {
                    (rng.gen_range(0.0..5.0), rng.gen_range(0.0..5.0), rng.gen_range(0.0..1.0))
                })
                .collect();
            let sacks: Vec<(f64, f64)> =
                (0..m).map(|_| (rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0))).collect();
            let p = problem(items, sacks);
            let s = greedy(&p);
            assert!(s.packing.is_feasible(&p));
            assert!((s.profit - s.packing.profit(&p)).abs() < 1e-12);
        }
    }

    #[test]
    fn greedy_never_beats_exact_and_is_close() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut ratio_sum = 0.0;
        let rounds = 25;
        for _ in 0..rounds {
            let n = rng.gen_range(4..9);
            let items: Vec<(f64, f64, f64)> = (0..n)
                .map(|_| {
                    (rng.gen_range(1.0..4.0), rng.gen_range(1.0..4.0), rng.gen_range(0.1..1.0))
                })
                .collect();
            let p = problem(items, vec![(6.0, 6.0), (4.0, 4.0)]);
            let g = greedy_with_local_search(&p);
            let e = BranchAndBound::new().solve(&p);
            assert!(g.profit <= e.profit + 1e-9, "greedy {} > exact {}", g.profit, e.profit);
            if e.profit > 0.0 {
                ratio_sum += g.profit / e.profit;
            } else {
                ratio_sum += 1.0;
            }
        }
        assert!(ratio_sum / rounds as f64 > 0.85, "avg ratio {}", ratio_sum / rounds as f64);
    }

    #[test]
    fn local_search_inserts_missed_items() {
        let p = problem(vec![(1.0, 1.0, 1.0), (1.0, 1.0, 2.0)], vec![(2.0, 2.0)]);
        // Start from an empty packing.
        let init = Solution { packing: Packing::empty(2), profit: 0.0 };
        let s = local_search(&p, init, 10);
        assert_eq!(s.profit, 3.0);
    }

    #[test]
    fn local_search_swaps_in_better_item() {
        let p = problem(vec![(2.0, 2.0, 1.0), (2.0, 2.0, 5.0)], vec![(2.0, 2.0)]);
        let mut packing = Packing::empty(2);
        packing.assign(0, Some(0)); // suboptimal start
        let s = local_search(&p, Solution { packing, profit: 1.0 }, 10);
        assert_eq!(s.profit, 5.0);
        assert_eq!(s.packing.sack_of(0), None);
        assert_eq!(s.packing.sack_of(1), Some(0));
    }

    #[test]
    fn local_search_terminates_at_local_optimum() {
        let p = problem(vec![(1.0, 1.0, 4.0)], vec![(1.0, 1.0)]);
        let s0 = greedy(&p);
        let s1 = local_search(&p, s0.clone(), 100);
        assert_eq!(s0, s1);
    }

    /// The original `greedy`, verbatim as it stood before the sort was
    /// hoisted into `DensityIndex` — the regression oracle for exact
    /// output equality.
    fn greedy_original(problem: &Problem) -> Solution {
        let n = problem.num_items();
        let total_w: f64 =
            problem.sacks().iter().map(|s| s.weight_capacity).sum::<f64>().max(1e-12);
        let total_v: f64 =
            problem.sacks().iter().map(|s| s.volume_capacity).sum::<f64>().max(1e-12);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            let da = problem.items()[a].density(total_w, total_v);
            let db = problem.items()[b].density(total_w, total_v);
            db.partial_cmp(&da).expect("densities comparable").then(
                problem.items()[b].profit.partial_cmp(&problem.items()[a].profit).expect("finite"),
            )
        });

        let mut packing = Packing::empty(n);
        let mut residual: Vec<(f64, f64)> =
            problem.sacks().iter().map(|s| (s.weight_capacity, s.volume_capacity)).collect();
        for &i in &order {
            let item = problem.items()[i];
            let mut best: Option<(usize, f64)> = None;
            for (s, &(rw, rv)) in residual.iter().enumerate() {
                if item.weight <= rw + 1e-12 && item.volume <= rv + 1e-12 {
                    let slack = (rw - item.weight) / total_w + (rv - item.volume) / total_v;
                    if best.is_none_or(|(_, b)| slack < b) {
                        best = Some((s, slack));
                    }
                }
            }
            if let Some((s, _)) = best {
                residual[s].0 -= item.weight;
                residual[s].1 -= item.volume;
                packing.assign(i, Some(s));
            }
        }
        let profit = packing.profit(problem);
        Solution { packing, profit }
    }

    #[test]
    fn indexed_greedy_bit_identical_to_original() {
        let mut rng = StdRng::seed_from_u64(8080);
        for round in 0..60 {
            let n = rng.gen_range(0..40);
            let m = rng.gen_range(1..8);
            // Duplicate densities and zero sizes exercise the tie-break.
            let items: Vec<(f64, f64, f64)> = (0..n)
                .map(|_| {
                    (
                        rng.gen_range(0.0..4.0f64).round(),
                        rng.gen_range(0.0..4.0f64).round(),
                        rng.gen_range(0.0..6.0f64).round(),
                    )
                })
                .collect();
            let sacks: Vec<(f64, f64)> =
                (0..m).map(|_| (rng.gen_range(0.0..9.0), rng.gen_range(0.0..9.0))).collect();
            let p = problem(items, sacks);
            let reference = greedy_original(&p);

            let fresh = greedy(&p);
            assert_eq!(fresh.packing.placement(), reference.packing.placement(), "round {round}");
            assert_eq!(fresh.profit.to_bits(), reference.profit.to_bits(), "round {round}");

            // Reusing one index across repeated solves must not drift.
            let index = DensityIndex::new(&p);
            for _ in 0..3 {
                let reused = greedy_with_index(&p, &index);
                assert_eq!(reused.packing.placement(), reference.packing.placement());
                assert_eq!(reused.profit.to_bits(), reference.profit.to_bits());
            }

            // And the full warm-start chain stays put too.
            let ls_reference = local_search(&p, reference.clone(), 32);
            let ls_now = greedy_with_local_search(&p);
            assert_eq!(ls_now.packing.placement(), ls_reference.packing.placement());
            assert_eq!(ls_now.profit.to_bits(), ls_reference.profit.to_bits());
        }
    }

    #[test]
    fn best_fit_keeps_room_for_large_items() {
        // Best-fit puts the small item in the small sack so the large item
        // still fits in the large sack. (First-fit into the large sack
        // would lose profit 10.)
        let p = problem(vec![(1.0, 0.0, 10.0), (4.0, 0.0, 10.0)], vec![(4.0, 0.0), (1.0, 0.0)]);
        let s = greedy(&p);
        assert_eq!(s.profit, 20.0);
    }
}
