//! Primal linear SVM with the squared hinge loss of the paper's Eq. (8).
//!
//! The DCTA *local process* `F2` is an SVM trained on scarce real-world
//! samples (§IV-B). Its per-sample loss is, verbatim from the paper:
//!
//! ```text
//! L_k(w) = 1/2 ||w||^2  +  1/2 * max{0, 1 - y_k w^T x_k}^2        (Eq. 8)
//! ```
//!
//! and the optimal parameters minimise the mean of `L_k` over the training
//! set. We optimise this (convex, differentiable) objective by full-batch
//! gradient descent with a decaying step size, which converges reliably on
//! the small local datasets edge devices actually have. A bias term is
//! absorbed by augmenting each sample with a constant feature, following the
//! common primal-SVM treatment.

use crate::dataset::Dataset;
use crate::linalg::dot;
use std::fmt;

/// Error returned by SVM training or prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SvmError {
    /// Training set was empty.
    EmptyDataset,
    /// Training labels were not all `±1`.
    BadLabel {
        /// Index of the first offending sample.
        index: usize,
    },
    /// Wrong feature arity at predict time.
    ArityMismatch {
        /// Arity the model was trained with.
        expected: usize,
        /// Arity supplied.
        got: usize,
    },
}

impl fmt::Display for SvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SvmError::EmptyDataset => write!(f, "cannot train an SVM on an empty dataset"),
            SvmError::BadLabel { index } => {
                write!(f, "sample {index} has a label that is not +1 or -1")
            }
            SvmError::ArityMismatch { expected, got } => {
                write!(f, "SVM expects {expected} features, got {got}")
            }
        }
    }
}

impl std::error::Error for SvmError {}

/// Hyper-parameters for [`LinearSvm`] training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmConfig {
    /// Weight of the regulariser relative to the data term. Eq. (8) fixes
    /// both coefficients at 1/2; exposing the ratio lets ablations explore
    /// softer margins. `1.0` reproduces the paper exactly.
    pub regularization: f64,
    /// Number of full-batch gradient steps.
    pub epochs: usize,
    /// Initial learning rate (decayed as `lr / (1 + t/epochs)`).
    pub learning_rate: f64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self { regularization: 1.0, epochs: 500, learning_rate: 0.1 }
    }
}

/// A trained linear SVM classifier with `±1` outputs.
///
/// # Examples
///
/// ```
/// use learn::dataset::Dataset;
/// use learn::svm::{LinearSvm, SvmConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ds = Dataset::from_rows(
///     vec![vec![2.0], vec![3.0], vec![-2.0], vec![-3.0]],
///     vec![1.0, 1.0, -1.0, -1.0],
/// )?;
/// let svm = LinearSvm::fit(&ds, SvmConfig::default())?;
/// assert_eq!(svm.predict(&[4.0])?, 1.0);
/// assert_eq!(svm.predict(&[-4.0])?, -1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSvm {
    /// Weights over the raw features (bias excluded).
    weights: Vec<f64>,
    bias: f64,
    config: SvmConfig,
}

impl LinearSvm {
    /// Trains on `data`, whose targets must all be `+1.0` or `-1.0`.
    ///
    /// # Errors
    ///
    /// [`SvmError::EmptyDataset`] or [`SvmError::BadLabel`] on invalid input.
    pub fn fit(data: &Dataset, config: SvmConfig) -> Result<Self, SvmError> {
        if data.is_empty() {
            return Err(SvmError::EmptyDataset);
        }
        if let Some(index) =
            (0..data.len()).find(|&i| data.targets()[i] != 1.0 && data.targets()[i] != -1.0)
        {
            return Err(SvmError::BadLabel { index });
        }
        let d = data.num_features();
        let n = data.len() as f64;
        // w holds [feature weights..., bias]; bias is *not* regularised.
        let mut w = vec![0.0; d + 1];
        let mut grad = vec![0.0; d + 1];
        for t in 0..config.epochs {
            // Gradient of mean_k L_k(w):
            //   reg * w  (features only)  -  mean_k [ y_k x_k * max(0, 1 - y_k w.x_k) ]
            for (g, &wi) in grad.iter_mut().zip(&w[..d]) {
                *g = config.regularization * wi;
            }
            grad[d] = 0.0;
            for i in 0..data.len() {
                let (x, y) = data.sample(i);
                let margin = 1.0 - y * (dot(&w[..d], x) + w[d]);
                if margin > 0.0 {
                    let coeff = y * margin / n;
                    for (g, &xi) in grad.iter_mut().zip(x) {
                        *g -= coeff * xi;
                    }
                    grad[d] -= coeff;
                }
            }
            let lr = config.learning_rate / (1.0 + t as f64 / config.epochs as f64);
            for (wi, g) in w.iter_mut().zip(&grad) {
                *wi -= lr * g;
            }
        }
        let bias = w[d];
        w.truncate(d);
        Ok(Self { weights: w, bias, config })
    }

    /// The learned feature weights (bias excluded).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// The configuration used at training time.
    pub fn config(&self) -> SvmConfig {
        self.config
    }

    /// Signed decision value `w·x + b`; its sign is the class, its magnitude
    /// a confidence. DCTA uses this raw margin when mixing `F2` with the
    /// general process (Eq. 6).
    ///
    /// # Errors
    ///
    /// [`SvmError::ArityMismatch`] when `x` has the wrong length.
    pub fn decision_value(&self, x: &[f64]) -> Result<f64, SvmError> {
        if x.len() != self.weights.len() {
            return Err(SvmError::ArityMismatch { expected: self.weights.len(), got: x.len() });
        }
        Ok(dot(&self.weights, x) + self.bias)
    }

    /// Hard `±1` class prediction (`0` decision values map to `+1`).
    ///
    /// # Errors
    ///
    /// [`SvmError::ArityMismatch`] when `x` has the wrong length.
    pub fn predict(&self, x: &[f64]) -> Result<f64, SvmError> {
        Ok(if self.decision_value(x)? >= 0.0 { 1.0 } else { -1.0 })
    }

    /// Mean Eq.-(8) loss of the current parameters over `data`; exposed so
    /// tests and benchmarks can verify the optimiser actually descends.
    ///
    /// # Errors
    ///
    /// [`SvmError::EmptyDataset`] or [`SvmError::ArityMismatch`] on invalid
    /// input.
    pub fn objective(&self, data: &Dataset) -> Result<f64, SvmError> {
        if data.is_empty() {
            return Err(SvmError::EmptyDataset);
        }
        let mut total = 0.0;
        for i in 0..data.len() {
            let (x, y) = data.sample(i);
            let margin = (1.0 - y * self.decision_value(x)?).max(0.0);
            total += 0.5 * self.config.regularization * dot(&self.weights, &self.weights)
                + 0.5 * margin * margin;
        }
        Ok(total / data.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn separable(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let y: f64 = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            // Clusters at (±2, ±2) with small jitter.
            rows.push(vec![2.0 * y + rng.gen_range(-0.5..0.5), 2.0 * y + rng.gen_range(-0.5..0.5)]);
            ys.push(y);
        }
        Dataset::from_rows(rows, ys).unwrap()
    }

    #[test]
    fn separates_linearly_separable_data() {
        let ds = separable(100, 11);
        let svm = LinearSvm::fit(&ds, SvmConfig::default()).unwrap();
        let preds: Vec<f64> =
            (0..ds.len()).map(|i| svm.predict(ds.features().row(i)).unwrap()).collect();
        assert_eq!(accuracy(&preds, ds.targets()).unwrap(), 1.0);
    }

    #[test]
    fn training_decreases_objective() {
        let ds = separable(60, 5);
        let short = LinearSvm::fit(&ds, SvmConfig { epochs: 1, ..SvmConfig::default() }).unwrap();
        let long = LinearSvm::fit(&ds, SvmConfig::default()).unwrap();
        assert!(long.objective(&ds).unwrap() < short.objective(&ds).unwrap());
    }

    #[test]
    fn rejects_bad_labels() {
        let ds = Dataset::from_rows(vec![vec![1.0], vec![2.0]], vec![1.0, 0.5]).unwrap();
        assert!(matches!(
            LinearSvm::fit(&ds, SvmConfig::default()),
            Err(SvmError::BadLabel { index: 1 })
        ));
    }

    #[test]
    fn rejects_empty_dataset() {
        let ds = Dataset::from_rows(vec![vec![1.0]], vec![1.0]).unwrap().subset(&[]);
        assert!(matches!(LinearSvm::fit(&ds, SvmConfig::default()), Err(SvmError::EmptyDataset)));
    }

    #[test]
    fn decision_value_is_signed_margin() {
        let ds = separable(80, 21);
        let svm = LinearSvm::fit(&ds, SvmConfig::default()).unwrap();
        // Points deeper inside a cluster carry a larger-magnitude margin.
        let near = svm.decision_value(&[0.5, 0.5]).unwrap();
        let far = svm.decision_value(&[4.0, 4.0]).unwrap();
        assert!(far > near);
        assert!(far > 0.0);
        assert!(svm.decision_value(&[-4.0, -4.0]).unwrap() < 0.0);
    }

    #[test]
    fn predict_checks_arity() {
        let ds = separable(10, 3);
        let svm = LinearSvm::fit(&ds, SvmConfig::default()).unwrap();
        assert!(matches!(
            svm.predict(&[0.0]),
            Err(SvmError::ArityMismatch { expected: 2, got: 1 })
        ));
    }

    #[test]
    fn noisy_data_still_mostly_correct() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..200 {
            let y: f64 = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            rows.push(vec![y + rng.gen_range(-1.2..1.2)]);
            ys.push(y);
        }
        let ds = Dataset::from_rows(rows, ys).unwrap();
        let svm = LinearSvm::fit(&ds, SvmConfig::default()).unwrap();
        let preds: Vec<f64> =
            (0..ds.len()).map(|i| svm.predict(ds.features().row(i)).unwrap()).collect();
        assert!(accuracy(&preds, ds.targets()).unwrap() > 0.8);
    }
}
