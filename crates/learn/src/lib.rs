//! # learn — machine-learning substrate for the TATIM/DCTA reproduction
//!
//! Self-contained implementations of every learner the paper relies on,
//! with no external ML dependency (the reproduction's substitution rule for
//! "immature DL libraries"):
//!
//! * [`linalg`] — dense vectors/matrices, Gaussian elimination.
//! * [`dataset`] — labelled datasets, splits, standardisation.
//! * [`metrics`] — MAE/RMSE/R², `±1` accuracy, the paper's similarity-style
//!   prediction accuracy.
//! * [`linear`] — ridge regression (per-task COP predictors).
//! * [`svm`] — primal squared-hinge SVM, Eq. (8) verbatim (DCTA local
//!   process).
//! * [`tree`], [`forest`], [`adaboost`] — the other §IV-B local-process
//!   candidates.
//! * [`knn`] — online environment lookup (`e = kNN(E, Z)`, §III-C).
//! * [`kmeans`] — offline environment clustering (Discussion, §VII).
//! * [`nn`] — the MLP + optimisers backing the Deep-Q-Network.
//! * [`transfer`] — multi-task transfer learning over per-task models.
//! * [`logistic`] — logistic regression (an extra local-process candidate).
//! * [`validation`] — k-fold cross-validation for scarce-data model
//!   selection.
//!
//! ## Quick example
//!
//! ```
//! use learn::dataset::Dataset;
//! use learn::linear::RidgeRegression;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ds = Dataset::from_rows(vec![vec![1.0], vec![2.0]], vec![2.0, 4.0])?;
//! let model = RidgeRegression::default().fit(&ds)?;
//! assert!((model.predict(&[3.0])? - 6.0).abs() < 1e-2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaboost;
pub mod dataset;
pub mod forest;
pub mod kmeans;
pub mod knn;
pub mod linalg;
pub mod linear;
pub mod logistic;
pub mod metrics;
pub mod nn;
pub mod svm;
pub mod transfer;
pub mod tree;
pub mod validation;
