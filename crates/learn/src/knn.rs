//! k-nearest-neighbour lookup, classification and regression.
//!
//! CRL's *environment definition* step is literally `e = kNN(E, Z)` (§III-C):
//! find, among historical environments `E`, those whose sensing-data
//! signature is closest to the current reading `Z`. The paper's Discussion
//! (§VII) also contrasts this *online* mode against offline k-means
//! clustering; both are provided (see [`crate::kmeans`] for the latter).

use crate::linalg::euclidean_distance;
use std::fmt;

/// Reference-set size beyond which the distance scan runs on the
/// [`parallel`] crew. Below it, environment stores are a handful of daily
/// signatures and thread spawn would dominate.
pub const PARALLEL_SCAN_THRESHOLD: usize = 4096;

/// Error returned by kNN queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KnnError {
    /// No reference points were supplied.
    EmptyReference,
    /// `k` was zero.
    ZeroK,
    /// The query's arity differs from the reference points'.
    ArityMismatch {
        /// Reference arity.
        expected: usize,
        /// Query arity.
        got: usize,
    },
}

impl fmt::Display for KnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnnError::EmptyReference => write!(f, "kNN reference set is empty"),
            KnnError::ZeroK => write!(f, "k must be at least 1"),
            KnnError::ArityMismatch { expected, got } => {
                write!(f, "query has {got} features, reference has {expected}")
            }
        }
    }
}

impl std::error::Error for KnnError {}

/// A brute-force kNN index over owned points.
///
/// Brute force is the right trade-off here: environment stores hold at most
/// a few thousand daily signatures and queries happen once per allocation
/// round, so index-build cost would never amortise.
///
/// # Examples
///
/// ```
/// use learn::knn::KnnIndex;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let index = KnnIndex::new(vec![vec![0.0, 0.0], vec![10.0, 10.0]])?;
/// let hits = index.nearest(&[1.0, 1.0], 1)?;
/// assert_eq!(hits[0].index, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KnnIndex {
    points: Vec<Vec<f64>>,
    arity: usize,
}

/// One kNN hit: which reference point, and how far away.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index into the reference set.
    pub index: usize,
    /// Euclidean distance from the query.
    pub distance: f64,
}

impl KnnIndex {
    /// Builds an index over `points`.
    ///
    /// # Errors
    ///
    /// [`KnnError::EmptyReference`] when `points` is empty,
    /// [`KnnError::ArityMismatch`] when points are ragged.
    pub fn new(points: Vec<Vec<f64>>) -> Result<Self, KnnError> {
        let arity = points.first().ok_or(KnnError::EmptyReference)?.len();
        if let Some(bad) = points.iter().find(|p| p.len() != arity) {
            return Err(KnnError::ArityMismatch { expected: arity, got: bad.len() });
        }
        Ok(Self { points, arity })
    }

    /// Number of reference points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the index holds no points (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Feature arity of the reference points.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Reference point at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn point(&self, index: usize) -> &[f64] {
        &self.points[index]
    }

    /// Appends another reference point (environments accumulate daily).
    ///
    /// # Errors
    ///
    /// [`KnnError::ArityMismatch`] when the point has the wrong arity.
    pub fn push(&mut self, point: Vec<f64>) -> Result<(), KnnError> {
        if point.len() != self.arity {
            return Err(KnnError::ArityMismatch { expected: self.arity, got: point.len() });
        }
        self.points.push(point);
        Ok(())
    }

    /// The `k` nearest reference points to `query`, closest first. When
    /// `k > len()`, every point is returned.
    ///
    /// The brute-force distance scan fans out across threads once the
    /// reference set is large enough to amortise the spawn cost (see
    /// [`PARALLEL_SCAN_THRESHOLD`]); per-point distances are independent,
    /// and the tie-breaking sort is total, so results are bit-identical to
    /// the serial scan at any thread count.
    ///
    /// # Errors
    ///
    /// [`KnnError::ZeroK`] or [`KnnError::ArityMismatch`] on invalid input.
    pub fn nearest(&self, query: &[f64], k: usize) -> Result<Vec<Neighbor>, KnnError> {
        if k == 0 {
            return Err(KnnError::ZeroK);
        }
        if query.len() != self.arity {
            return Err(KnnError::ArityMismatch { expected: self.arity, got: query.len() });
        }
        let mut hits: Vec<Neighbor> = if self.points.len() >= PARALLEL_SCAN_THRESHOLD {
            parallel::par_map_indexed(self.points.len(), |index| Neighbor {
                index,
                distance: euclidean_distance(query, &self.points[index]),
            })
        } else {
            self.points
                .iter()
                .enumerate()
                .map(|(index, p)| Neighbor { index, distance: euclidean_distance(query, p) })
                .collect()
        };
        hits.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .expect("finite distances")
                .then(a.index.cmp(&b.index))
        });
        hits.truncate(k);
        Ok(hits)
    }
}

/// kNN regressor: predicts the (optionally distance-weighted) mean target of
/// the `k` nearest training samples.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnRegressor {
    index: KnnIndex,
    targets: Vec<f64>,
    k: usize,
    weighted: bool,
}

impl KnnRegressor {
    /// Builds a regressor from points, targets and neighbourhood size.
    ///
    /// # Errors
    ///
    /// Propagates [`KnnError`] for empty/ragged points or `k == 0`;
    /// a point/target count mismatch reports [`KnnError::ArityMismatch`].
    pub fn new(
        points: Vec<Vec<f64>>,
        targets: Vec<f64>,
        k: usize,
        weighted: bool,
    ) -> Result<Self, KnnError> {
        if k == 0 {
            return Err(KnnError::ZeroK);
        }
        if points.len() != targets.len() {
            return Err(KnnError::ArityMismatch { expected: points.len(), got: targets.len() });
        }
        Ok(Self { index: KnnIndex::new(points)?, targets, k, weighted })
    }

    /// Predicts the target at `query`.
    ///
    /// # Errors
    ///
    /// Propagates [`KnnError::ArityMismatch`].
    pub fn predict(&self, query: &[f64]) -> Result<f64, KnnError> {
        let hits = self.index.nearest(query, self.k)?;
        if self.weighted {
            let mut num = 0.0;
            let mut den = 0.0;
            for h in &hits {
                let w = 1.0 / (h.distance + 1e-9);
                num += w * self.targets[h.index];
                den += w;
            }
            Ok(num / den)
        } else {
            Ok(hits.iter().map(|h| self.targets[h.index]).sum::<f64>() / hits.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> KnnIndex {
        KnnIndex::new(vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0], vec![5.0, 5.0]]).unwrap()
    }

    #[test]
    fn nearest_orders_by_distance() {
        let idx = grid();
        let hits = idx.nearest(&[0.1, 0.0], 3).unwrap();
        assert_eq!(hits.iter().map(|h| h.index).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(hits[0].distance < hits[1].distance);
    }

    #[test]
    fn k_larger_than_len_returns_all() {
        let idx = grid();
        assert_eq!(idx.nearest(&[0.0, 0.0], 99).unwrap().len(), 4);
    }

    #[test]
    fn ties_break_by_index() {
        let idx = KnnIndex::new(vec![vec![1.0], vec![-1.0]]).unwrap();
        let hits = idx.nearest(&[0.0], 2).unwrap();
        assert_eq!(hits[0].index, 0);
        assert_eq!(hits[1].index, 1);
    }

    #[test]
    fn errors_on_invalid_input() {
        assert!(matches!(KnnIndex::new(vec![]), Err(KnnError::EmptyReference)));
        assert!(matches!(
            KnnIndex::new(vec![vec![1.0], vec![1.0, 2.0]]),
            Err(KnnError::ArityMismatch { .. })
        ));
        let idx = grid();
        assert!(matches!(idx.nearest(&[0.0, 0.0], 0), Err(KnnError::ZeroK)));
        assert!(matches!(idx.nearest(&[0.0], 1), Err(KnnError::ArityMismatch { .. })));
    }

    #[test]
    fn push_extends_reference() {
        let mut idx = grid();
        idx.push(vec![-3.0, -3.0]).unwrap();
        assert_eq!(idx.len(), 5);
        assert_eq!(idx.nearest(&[-3.0, -3.0], 1).unwrap()[0].index, 4);
        assert!(idx.push(vec![1.0]).is_err());
    }

    #[test]
    fn regressor_unweighted_mean() {
        let reg = KnnRegressor::new(
            vec![vec![0.0], vec![1.0], vec![10.0]],
            vec![2.0, 4.0, 100.0],
            2,
            false,
        )
        .unwrap();
        assert_eq!(reg.predict(&[0.4]).unwrap(), 3.0);
    }

    #[test]
    fn regressor_weighted_prefers_closer() {
        let reg = KnnRegressor::new(vec![vec![0.0], vec![1.0]], vec![0.0, 10.0], 2, true).unwrap();
        let near_zero = reg.predict(&[0.1]).unwrap();
        assert!(near_zero < 5.0, "weighted prediction {near_zero} should lean to nearer target");
        // Exactly on a point: dominated by that point's target.
        assert!(reg.predict(&[1.0]).unwrap() > 9.9);
    }

    #[test]
    fn regressor_validates() {
        assert!(matches!(
            KnnRegressor::new(vec![vec![0.0]], vec![1.0, 2.0], 1, false),
            Err(KnnError::ArityMismatch { .. })
        ));
        assert!(matches!(
            KnnRegressor::new(vec![vec![0.0]], vec![1.0], 0, false),
            Err(KnnError::ZeroK)
        ));
    }
}
