//! AdaBoost with decision stumps (discrete AdaBoost / SAMME for 2 classes).
//!
//! The second candidate model in §IV-B's local-process comparison. Labels
//! follow the crate-wide `±1` convention.

use crate::dataset::Dataset;
use std::fmt;

/// Error returned by AdaBoost training or prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoostError {
    /// Training set was empty.
    EmptyDataset,
    /// Labels were not all `±1`.
    BadLabel {
        /// Index of the first offending sample.
        index: usize,
    },
    /// Zero rounds requested.
    ZeroRounds,
    /// Wrong feature arity at predict time.
    ArityMismatch {
        /// Arity the ensemble was trained with.
        expected: usize,
        /// Arity supplied.
        got: usize,
    },
}

impl fmt::Display for BoostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoostError::EmptyDataset => write!(f, "cannot boost on an empty dataset"),
            BoostError::BadLabel { index } => {
                write!(f, "sample {index} has a label that is not +1 or -1")
            }
            BoostError::ZeroRounds => write!(f, "boosting needs at least one round"),
            BoostError::ArityMismatch { expected, got } => {
                write!(f, "ensemble expects {expected} features, got {got}")
            }
        }
    }
}

impl std::error::Error for BoostError {}

/// A single axis-aligned decision stump `sign(polarity * (x[feature] - threshold))`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Stump {
    feature: usize,
    threshold: f64,
    /// `+1.0`: predict +1 above threshold; `-1.0`: predict +1 below.
    polarity: f64,
    /// Ensemble weight (alpha).
    alpha: f64,
}

impl Stump {
    fn raw(&self, x: &[f64]) -> f64 {
        if self.polarity * (x[self.feature] - self.threshold) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }
}

/// A trained AdaBoost ensemble of decision stumps.
///
/// # Examples
///
/// ```
/// use learn::adaboost::AdaBoost;
/// use learn::dataset::Dataset;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ds = Dataset::from_rows(
///     vec![vec![0.0], vec![1.0], vec![5.0], vec![6.0]],
///     vec![-1.0, -1.0, 1.0, 1.0],
/// )?;
/// let model = AdaBoost::fit(&ds, 10)?;
/// assert_eq!(model.predict(&[7.0])?, 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AdaBoost {
    stumps: Vec<Stump>,
    arity: usize,
}

impl AdaBoost {
    /// Boosts `rounds` stumps on `data` (targets must be `±1`).
    ///
    /// Training stops early when a stump achieves zero weighted error (the
    /// data is stump-separable) or when no stump beats random guessing.
    ///
    /// # Errors
    ///
    /// See [`BoostError`] variants.
    pub fn fit(data: &Dataset, rounds: usize) -> Result<Self, BoostError> {
        if data.is_empty() {
            return Err(BoostError::EmptyDataset);
        }
        if rounds == 0 {
            return Err(BoostError::ZeroRounds);
        }
        if let Some(index) =
            (0..data.len()).find(|&i| data.targets()[i] != 1.0 && data.targets()[i] != -1.0)
        {
            return Err(BoostError::BadLabel { index });
        }

        let n = data.len();
        let mut w = vec![1.0 / n as f64; n];
        let mut stumps = Vec::new();
        for _ in 0..rounds {
            let (mut stump, err) = best_stump(data, &w);
            if err >= 0.5 - 1e-9 {
                break; // no better than chance
            }
            let err = err.max(1e-12);
            stump.alpha = 0.5 * ((1.0 - err) / err).ln();
            // Reweight: misclassified up, correct down.
            let mut z = 0.0;
            for i in 0..n {
                let (x, y) = data.sample(i);
                w[i] *= (-stump.alpha * y * stump.raw(x)).exp();
                z += w[i];
            }
            for wi in &mut w {
                *wi /= z;
            }
            let perfect = err <= 1e-10;
            stumps.push(stump);
            if perfect {
                break;
            }
        }
        if stumps.is_empty() {
            // Fall back to the best available stump so predict() still works.
            let (mut stump, err) = best_stump(data, &w);
            stump.alpha = if err < 0.5 { 1.0 } else { 0.0 };
            stumps.push(stump);
        }
        Ok(Self { stumps, arity: data.num_features() })
    }

    /// Number of boosting rounds retained.
    pub fn num_stumps(&self) -> usize {
        self.stumps.len()
    }

    /// Weighted ensemble margin `Σ α_t h_t(x)`; sign is the class.
    ///
    /// # Errors
    ///
    /// [`BoostError::ArityMismatch`] when `x` has the wrong length.
    pub fn decision_value(&self, x: &[f64]) -> Result<f64, BoostError> {
        if x.len() != self.arity {
            return Err(BoostError::ArityMismatch { expected: self.arity, got: x.len() });
        }
        Ok(self.stumps.iter().map(|s| s.alpha * s.raw(x)).sum())
    }

    /// Hard `±1` prediction.
    ///
    /// # Errors
    ///
    /// [`BoostError::ArityMismatch`] when `x` has the wrong length.
    pub fn predict(&self, x: &[f64]) -> Result<f64, BoostError> {
        Ok(if self.decision_value(x)? >= 0.0 { 1.0 } else { -1.0 })
    }
}

/// Exhaustive weighted-error search over stumps (all features × thresholds ×
/// polarities). Returns the stump (alpha unset) and its weighted error.
fn best_stump(data: &Dataset, w: &[f64]) -> (Stump, f64) {
    let d = data.num_features();
    let n = data.len();
    let mut best = (Stump { feature: 0, threshold: 0.0, polarity: 1.0, alpha: 0.0 }, f64::INFINITY);
    for feat in 0..d {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            data.features().row(a)[feat]
                .partial_cmp(&data.features().row(b)[feat])
                .expect("finite features")
        });
        // Candidate thresholds: below the minimum, then midpoints.
        let lo = data.features().row(order[0])[feat];
        let mut candidates = vec![lo - 1.0];
        for k in 1..n {
            let a = data.features().row(order[k - 1])[feat];
            let b = data.features().row(order[k])[feat];
            if b - a > 1e-12 {
                candidates.push((a + b) / 2.0);
            }
        }
        for &threshold in &candidates {
            for polarity in [1.0, -1.0] {
                let stump = Stump { feature: feat, threshold, polarity, alpha: 0.0 };
                let err: f64 = (0..n)
                    .filter(|&i| {
                        let (x, y) = data.sample(i);
                        stump.raw(x) != y
                    })
                    .map(|i| w[i])
                    .sum();
                if err < best.1 {
                    best = (stump, err);
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn separable_1d_is_perfect_in_one_round() {
        let ds = Dataset::from_rows(
            vec![vec![0.0], vec![1.0], vec![5.0], vec![6.0]],
            vec![-1.0, -1.0, 1.0, 1.0],
        )
        .unwrap();
        let model = AdaBoost::fit(&ds, 20).unwrap();
        assert_eq!(model.num_stumps(), 1);
        for i in 0..ds.len() {
            let (x, y) = ds.sample(i);
            assert_eq!(model.predict(x).unwrap(), y);
        }
    }

    #[test]
    fn boosting_beats_single_stump_on_interval_class() {
        // +1 inside [2, 4], -1 outside: needs >= 2 stumps.
        let xs: Vec<f64> = (0..40).map(|i| i as f64 * 0.2).collect();
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let ys: Vec<f64> =
            xs.iter().map(|&x| if (2.0..=4.0).contains(&x) { 1.0 } else { -1.0 }).collect();
        let ds = Dataset::from_rows(rows, ys).unwrap();
        let one = AdaBoost::fit(&ds, 1).unwrap();
        let many = AdaBoost::fit(&ds, 50).unwrap();
        let acc = |m: &AdaBoost| {
            let preds: Vec<f64> =
                (0..ds.len()).map(|i| m.predict(ds.features().row(i)).unwrap()).collect();
            accuracy(&preds, ds.targets()).unwrap()
        };
        assert!(acc(&many) > acc(&one));
        assert!(acc(&many) > 0.95);
    }

    #[test]
    fn noisy_two_feature_problem() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..150 {
            let y: f64 = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            rows.push(vec![y * 1.5 + rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)]);
            ys.push(y);
        }
        let ds = Dataset::from_rows(rows, ys).unwrap();
        let model = AdaBoost::fit(&ds, 30).unwrap();
        let preds: Vec<f64> =
            (0..ds.len()).map(|i| model.predict(ds.features().row(i)).unwrap()).collect();
        assert!(accuracy(&preds, ds.targets()).unwrap() > 0.85);
    }

    #[test]
    fn errors() {
        let ds = Dataset::from_rows(vec![vec![1.0]], vec![1.0]).unwrap();
        assert!(matches!(AdaBoost::fit(&ds.subset(&[]), 5), Err(BoostError::EmptyDataset)));
        assert!(matches!(AdaBoost::fit(&ds, 0), Err(BoostError::ZeroRounds)));
        let bad = Dataset::from_rows(vec![vec![1.0]], vec![0.3]).unwrap();
        assert!(matches!(AdaBoost::fit(&bad, 5), Err(BoostError::BadLabel { index: 0 })));
        let model = AdaBoost::fit(&ds, 1).unwrap();
        assert!(matches!(
            model.predict(&[1.0, 2.0]),
            Err(BoostError::ArityMismatch { expected: 1, got: 2 })
        ));
    }

    #[test]
    fn decision_value_magnitude_grows_with_agreement() {
        let xs: Vec<f64> = (0..40).map(|i| i as f64 * 0.2).collect();
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let ys: Vec<f64> =
            xs.iter().map(|&x| if (2.0..=4.0).contains(&x) { 1.0 } else { -1.0 }).collect();
        let ds = Dataset::from_rows(rows, ys).unwrap();
        let model = AdaBoost::fit(&ds, 50).unwrap();
        // Deep inside the negative region, all stumps agree.
        let deep = model.decision_value(&[7.5]).unwrap();
        let edge = model.decision_value(&[4.1]).unwrap();
        assert!(deep < 0.0);
        assert!(deep <= edge);
    }
}
