//! Random forest over bootstrap-resampled [`RegressionTree`]s.
//!
//! One of the three candidate local-process models of §IV-B (the paper
//! selects SVM after comparing accuracy; the `local-model` experiment in the
//! bench harness reproduces that comparison).

use crate::dataset::Dataset;
use crate::tree::{RegressionTree, TreeConfig, TreeError};
use rand::Rng;
use std::fmt;

/// Error returned by forest training or prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForestError {
    /// Training set was empty.
    EmptyDataset,
    /// Zero trees requested.
    ZeroTrees,
    /// Wrong feature arity at predict time.
    ArityMismatch {
        /// Arity the forest was trained with.
        expected: usize,
        /// Arity supplied.
        got: usize,
    },
}

impl fmt::Display for ForestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForestError::EmptyDataset => write!(f, "cannot train a forest on an empty dataset"),
            ForestError::ZeroTrees => write!(f, "forest needs at least one tree"),
            ForestError::ArityMismatch { expected, got } => {
                write!(f, "forest expects {expected} features, got {got}")
            }
        }
    }
}

impl std::error::Error for ForestError {}

impl From<TreeError> for ForestError {
    fn from(e: TreeError) -> Self {
        match e {
            TreeError::EmptyDataset => ForestError::EmptyDataset,
            TreeError::ArityMismatch { expected, got } => {
                ForestError::ArityMismatch { expected, got }
            }
        }
    }
}

/// Hyper-parameters for [`RandomForest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestConfig {
    /// Number of bootstrap trees.
    pub num_trees: usize,
    /// Per-tree growth limits. When `max_features` is `None` here, the
    /// forest substitutes `ceil(sqrt(d))`, the usual forest default.
    pub tree: TreeConfig,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self { num_trees: 25, tree: TreeConfig::default() }
    }
}

/// A trained random forest regressor (classify via the sign of
/// [`RandomForest::predict`], which is majority vote for `±1` targets).
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
    arity: usize,
}

impl RandomForest {
    /// Trains `config.num_trees` trees on bootstrap resamples of `data`.
    ///
    /// # Errors
    ///
    /// [`ForestError::EmptyDataset`] / [`ForestError::ZeroTrees`] on invalid
    /// input.
    pub fn fit(
        data: &Dataset,
        config: ForestConfig,
        rng: &mut impl Rng,
    ) -> Result<Self, ForestError> {
        if data.is_empty() {
            return Err(ForestError::EmptyDataset);
        }
        if config.num_trees == 0 {
            return Err(ForestError::ZeroTrees);
        }
        let d = data.num_features();
        let mut tree_cfg = config.tree;
        if tree_cfg.max_features.is_none() {
            tree_cfg.max_features = Some((d as f64).sqrt().ceil() as usize);
        }
        let mut trees = Vec::with_capacity(config.num_trees);
        for _ in 0..config.num_trees {
            let (sample, _oob) = data.bootstrap(rng);
            trees.push(RegressionTree::fit(&sample, tree_cfg, rng)?);
        }
        Ok(Self { trees, arity: d })
    }

    /// Number of trees in the ensemble.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Mean prediction of all trees.
    ///
    /// # Errors
    ///
    /// [`ForestError::ArityMismatch`] when `x` has the wrong length.
    pub fn predict(&self, x: &[f64]) -> Result<f64, ForestError> {
        if x.len() != self.arity {
            return Err(ForestError::ArityMismatch { expected: self.arity, got: x.len() });
        }
        let mut sum = 0.0;
        for t in &self.trees {
            sum += t.predict(x)?;
        }
        Ok(sum / self.trees.len() as f64)
    }

    /// `±1` classification via the sign of the ensemble mean.
    ///
    /// # Errors
    ///
    /// [`ForestError::ArityMismatch`] when `x` has the wrong length.
    pub fn classify(&self, x: &[f64]) -> Result<f64, ForestError> {
        Ok(if self.predict(x)? >= 0.0 { 1.0 } else { -1.0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor_like(n: usize, seed: u64) -> Dataset {
        // Nonlinear target a single linear model cannot express.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let a = rng.gen_range(-1.0..1.0f64);
            let b = rng.gen_range(-1.0..1.0f64);
            rows.push(vec![a, b]);
            ys.push(if (a > 0.0) ^ (b > 0.0) { 1.0 } else { -1.0 });
        }
        Dataset::from_rows(rows, ys).unwrap()
    }

    #[test]
    fn learns_xor_pattern() {
        let ds = xor_like(300, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let forest = RandomForest::fit(&ds, ForestConfig::default(), &mut rng).unwrap();
        let preds: Vec<f64> =
            (0..ds.len()).map(|i| forest.classify(ds.features().row(i)).unwrap()).collect();
        assert!(accuracy(&preds, ds.targets()).unwrap() > 0.9);
    }

    #[test]
    fn more_trees_do_not_hurt() {
        let ds = xor_like(200, 10);
        let mut rng = StdRng::seed_from_u64(11);
        let small =
            RandomForest::fit(&ds, ForestConfig { num_trees: 1, ..Default::default() }, &mut rng)
                .unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let big =
            RandomForest::fit(&ds, ForestConfig { num_trees: 50, ..Default::default() }, &mut rng)
                .unwrap();
        let acc = |f: &RandomForest| {
            let preds: Vec<f64> =
                (0..ds.len()).map(|i| f.classify(ds.features().row(i)).unwrap()).collect();
            accuracy(&preds, ds.targets()).unwrap()
        };
        assert!(acc(&big) >= acc(&small) - 0.05);
        assert_eq!(big.num_trees(), 50);
    }

    #[test]
    fn regression_mean_is_bounded_by_targets() {
        let ds = Dataset::from_rows(
            vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let forest = RandomForest::fit(&ds, ForestConfig::default(), &mut rng).unwrap();
        let p = forest.predict(&[1.5]).unwrap();
        assert!((1.0..=4.0).contains(&p));
    }

    #[test]
    fn errors() {
        let mut rng = StdRng::seed_from_u64(0);
        let empty = xor_like(10, 0).subset(&[]);
        assert!(matches!(
            RandomForest::fit(&empty, ForestConfig::default(), &mut rng),
            Err(ForestError::EmptyDataset)
        ));
        let ds = xor_like(10, 0);
        assert!(matches!(
            RandomForest::fit(&ds, ForestConfig { num_trees: 0, ..Default::default() }, &mut rng),
            Err(ForestError::ZeroTrees)
        ));
        let forest = RandomForest::fit(&ds, ForestConfig::default(), &mut rng).unwrap();
        assert!(matches!(
            forest.predict(&[1.0]),
            Err(ForestError::ArityMismatch { expected: 2, got: 1 })
        ));
    }
}
