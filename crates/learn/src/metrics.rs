//! Evaluation metrics for regressors and binary classifiers.
//!
//! The paper reports COP *prediction accuracy* as the similarity between
//! predicted and real values (Table I's "Prediction Accuracy" feature); that
//! notion is implemented here as [`prediction_accuracy`].

use std::fmt;

/// Error returned when two metric input slices differ in length or are empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricError {
    expected: usize,
    got: usize,
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.expected == 0 {
            write!(f, "metric inputs are empty")
        } else {
            write!(f, "metric inputs differ in length: {} vs {}", self.expected, self.got)
        }
    }
}

impl std::error::Error for MetricError {}

fn check(pred: &[f64], truth: &[f64]) -> Result<(), MetricError> {
    if pred.is_empty() {
        return Err(MetricError { expected: 0, got: 0 });
    }
    if pred.len() != truth.len() {
        return Err(MetricError { expected: truth.len(), got: pred.len() });
    }
    Ok(())
}

/// Mean absolute error.
///
/// # Errors
///
/// Fails on empty or unequal-length inputs.
pub fn mae(pred: &[f64], truth: &[f64]) -> Result<f64, MetricError> {
    check(pred, truth)?;
    Ok(pred.iter().zip(truth).map(|(p, t)| (p - t).abs()).sum::<f64>() / pred.len() as f64)
}

/// Root mean squared error.
///
/// # Errors
///
/// Fails on empty or unequal-length inputs.
pub fn rmse(pred: &[f64], truth: &[f64]) -> Result<f64, MetricError> {
    check(pred, truth)?;
    let mse =
        pred.iter().zip(truth).map(|(p, t)| (p - t) * (p - t)).sum::<f64>() / pred.len() as f64;
    Ok(mse.sqrt())
}

/// Coefficient of determination R². A constant-truth input yields 0.0 when
/// predictions are imperfect (by convention) and 1.0 when they are exact.
///
/// # Errors
///
/// Fails on empty or unequal-length inputs.
pub fn r2(pred: &[f64], truth: &[f64]) -> Result<f64, MetricError> {
    check(pred, truth)?;
    let mean_t = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_res: f64 = pred.iter().zip(truth).map(|(p, t)| (t - p) * (t - p)).sum();
    let ss_tot: f64 = truth.iter().map(|t| (t - mean_t) * (t - mean_t)).sum();
    if ss_tot < 1e-15 {
        return Ok(if ss_res < 1e-15 { 1.0 } else { 0.0 });
    }
    Ok(1.0 - ss_res / ss_tot)
}

/// Fraction of samples whose `±1` sign matches.
///
/// # Errors
///
/// Fails on empty or unequal-length inputs.
pub fn accuracy(pred: &[f64], truth: &[f64]) -> Result<f64, MetricError> {
    check(pred, truth)?;
    let hits = pred.iter().zip(truth).filter(|(p, t)| p.signum() == t.signum()).count();
    Ok(hits as f64 / pred.len() as f64)
}

/// The paper's similarity-style accuracy for a single prediction:
/// `1 - |truth - pred| / |truth|`, clamped to `[0, 1]`.
///
/// Matches the example implementation of the decision function
/// `H(J; θ) = 1 - |D - D(θ)| / D` given under Definition 1, applied to a
/// prediction instead of a decision.
pub fn prediction_accuracy(pred: f64, truth: f64) -> f64 {
    if truth.abs() < 1e-12 {
        // Degenerate ideal: exact hit or zero credit.
        return if pred.abs() < 1e-12 { 1.0 } else { 0.0 };
    }
    (1.0 - (truth - pred).abs() / truth.abs()).clamp(0.0, 1.0)
}

/// Mean of [`prediction_accuracy`] over paired slices.
///
/// # Errors
///
/// Fails on empty or unequal-length inputs.
pub fn mean_prediction_accuracy(pred: &[f64], truth: &[f64]) -> Result<f64, MetricError> {
    check(pred, truth)?;
    Ok(pred.iter().zip(truth).map(|(&p, &t)| prediction_accuracy(p, t)).sum::<f64>()
        / pred.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_rmse_known_values() {
        let p = [1.0, 2.0, 3.0];
        let t = [1.0, 4.0, 3.0];
        assert!((mae(&p, &t).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((rmse(&p, &t).unwrap() - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn perfect_prediction_scores() {
        let t = [1.0, 2.0, 3.0];
        assert_eq!(mae(&t, &t).unwrap(), 0.0);
        assert_eq!(rmse(&t, &t).unwrap(), 0.0);
        assert_eq!(r2(&t, &t).unwrap(), 1.0);
        assert_eq!(accuracy(&[1.0, -1.0], &[2.0, -0.5]).unwrap(), 1.0);
        assert_eq!(mean_prediction_accuracy(&t, &t).unwrap(), 1.0);
    }

    #[test]
    fn r2_of_mean_predictor_is_zero() {
        let t = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 2.0];
        assert!(r2(&p, &t).unwrap().abs() < 1e-12);
    }

    #[test]
    fn r2_constant_truth_convention() {
        assert_eq!(r2(&[1.0, 1.0], &[1.0, 1.0]).unwrap(), 1.0);
        assert_eq!(r2(&[0.0, 2.0], &[1.0, 1.0]).unwrap(), 0.0);
    }

    #[test]
    fn accuracy_counts_sign_matches() {
        assert_eq!(accuracy(&[0.4, -0.2, 3.0, -9.0], &[1.0, 1.0, 1.0, -1.0]).unwrap(), 0.75);
    }

    #[test]
    fn prediction_accuracy_clamps() {
        assert_eq!(prediction_accuracy(5.0, 5.0), 1.0);
        assert_eq!(prediction_accuracy(10.0, 5.0), 0.0); // 100% off -> 0
        assert!((prediction_accuracy(4.0, 5.0) - 0.8).abs() < 1e-12);
        assert_eq!(prediction_accuracy(-20.0, 5.0), 0.0); // clamped below
        assert_eq!(prediction_accuracy(0.0, 0.0), 1.0);
        assert_eq!(prediction_accuracy(1.0, 0.0), 0.0);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(mae(&[], &[]).is_err());
        assert!(rmse(&[1.0], &[1.0, 2.0]).is_err());
        assert!(r2(&[1.0], &[]).is_err());
        assert!(accuracy(&[], &[]).is_err());
        let msg = mae(&[1.0], &[1.0, 2.0]).unwrap_err().to_string();
        assert!(msg.contains("differ in length"));
    }
}
