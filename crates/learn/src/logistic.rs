//! L2-regularised logistic regression (labels `±1`).
//!
//! A fourth candidate for the DCTA local process beyond the paper's three
//! (§IV-B compares SVM/AdaBoost/Random Forest): logistic outputs calibrated
//! probabilities directly, which is exactly the `[0, 1]` score Eq. (6)
//! consumes — worth having on the menu even though the paper's pick stands.

use crate::dataset::Dataset;
use crate::linalg::dot;
use std::fmt;

/// Error returned by logistic training or prediction.
#[derive(Debug, Clone, PartialEq)]
pub enum LogisticError {
    /// Training set was empty.
    EmptyDataset,
    /// Labels must be `±1`.
    BadLabel {
        /// Index of the first offending sample.
        index: usize,
    },
    /// Wrong feature arity at predict time.
    ArityMismatch {
        /// Trained arity.
        expected: usize,
        /// Supplied arity.
        got: usize,
    },
}

impl fmt::Display for LogisticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogisticError::EmptyDataset => write!(f, "cannot fit logistic on an empty dataset"),
            LogisticError::BadLabel { index } => {
                write!(f, "sample {index} has a label that is not +1 or -1")
            }
            LogisticError::ArityMismatch { expected, got } => {
                write!(f, "model expects {expected} features, got {got}")
            }
        }
    }
}

impl std::error::Error for LogisticError {}

/// Hyper-parameters for [`LogisticRegression::fit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogisticConfig {
    /// L2 penalty on the weights (bias unpenalised).
    pub l2: f64,
    /// Full-batch gradient steps.
    pub epochs: usize,
    /// Initial learning rate (decayed hyperbolically).
    pub learning_rate: f64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        Self { l2: 1e-3, epochs: 500, learning_rate: 0.5 }
    }
}

/// A trained logistic-regression classifier.
///
/// # Examples
///
/// ```
/// use learn::dataset::Dataset;
/// use learn::logistic::{LogisticConfig, LogisticRegression};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ds = Dataset::from_rows(
///     vec![vec![-2.0], vec![-1.0], vec![1.0], vec![2.0]],
///     vec![-1.0, -1.0, 1.0, 1.0],
/// )?;
/// let m = LogisticRegression::fit(&ds, LogisticConfig::default())?;
/// assert!(m.probability(&[3.0])? > 0.9);
/// assert!(m.probability(&[-3.0])? < 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl LogisticRegression {
    /// Fits by full-batch gradient descent on the regularised negative
    /// log-likelihood.
    ///
    /// # Errors
    ///
    /// See [`LogisticError`] variants.
    pub fn fit(data: &Dataset, config: LogisticConfig) -> Result<Self, LogisticError> {
        if data.is_empty() {
            return Err(LogisticError::EmptyDataset);
        }
        if let Some(index) =
            (0..data.len()).find(|&i| data.targets()[i] != 1.0 && data.targets()[i] != -1.0)
        {
            return Err(LogisticError::BadLabel { index });
        }
        let d = data.num_features();
        let n = data.len() as f64;
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        let mut gw = vec![0.0; d];
        for t in 0..config.epochs {
            gw.iter_mut().for_each(|g| *g = 0.0);
            let mut gb = 0.0;
            for i in 0..data.len() {
                let (x, y) = data.sample(i);
                // d/dz of -log σ(y z) is -y σ(-y z).
                let coeff = -y * sigmoid(-y * (dot(&w, x) + b)) / n;
                for (g, &xi) in gw.iter_mut().zip(x) {
                    *g += coeff * xi;
                }
                gb += coeff;
            }
            let lr = config.learning_rate / (1.0 + t as f64 / config.epochs as f64);
            // Proximal (implicit) weight decay: unconditionally stable for
            // any lr·l2, unlike the explicit `w -= lr·l2·w` step.
            let decay = 1.0 / (1.0 + lr * config.l2);
            for (wi, g) in w.iter_mut().zip(&gw) {
                *wi = (*wi - lr * g) * decay;
            }
            b -= lr * gb;
        }
        Ok(Self { weights: w, bias: b })
    }

    /// The learned weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Log-odds (the raw linear score).
    ///
    /// # Errors
    ///
    /// [`LogisticError::ArityMismatch`] on wrong arity.
    pub fn decision_value(&self, x: &[f64]) -> Result<f64, LogisticError> {
        if x.len() != self.weights.len() {
            return Err(LogisticError::ArityMismatch {
                expected: self.weights.len(),
                got: x.len(),
            });
        }
        Ok(dot(&self.weights, x) + self.bias)
    }

    /// `P(y = +1 | x)`.
    ///
    /// # Errors
    ///
    /// [`LogisticError::ArityMismatch`] on wrong arity.
    pub fn probability(&self, x: &[f64]) -> Result<f64, LogisticError> {
        Ok(sigmoid(self.decision_value(x)?))
    }

    /// Hard `±1` prediction at the 0.5 threshold.
    ///
    /// # Errors
    ///
    /// [`LogisticError::ArityMismatch`] on wrong arity.
    pub fn predict(&self, x: &[f64]) -> Result<f64, LogisticError> {
        Ok(if self.decision_value(x)? >= 0.0 { 1.0 } else { -1.0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let y: f64 = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            rows.push(vec![1.5 * y + rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)]);
            ys.push(y);
        }
        Dataset::from_rows(rows, ys).unwrap()
    }

    #[test]
    fn separates_blobs() {
        let ds = blobs(200, 1);
        let m = LogisticRegression::fit(&ds, LogisticConfig::default()).unwrap();
        let preds: Vec<f64> =
            (0..ds.len()).map(|i| m.predict(ds.features().row(i)).unwrap()).collect();
        assert!(accuracy(&preds, ds.targets()).unwrap() > 0.9);
    }

    #[test]
    fn probabilities_are_monotone_in_the_margin() {
        let ds = blobs(150, 2);
        let m = LogisticRegression::fit(&ds, LogisticConfig::default()).unwrap();
        let p_deep = m.probability(&[4.0, 0.0]).unwrap();
        let p_edge = m.probability(&[0.2, 0.0]).unwrap();
        let p_neg = m.probability(&[-4.0, 0.0]).unwrap();
        assert!(p_deep > p_edge);
        assert!(p_edge > p_neg);
        for p in [p_deep, p_edge, p_neg] {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn l2_shrinks_weights() {
        let ds = blobs(100, 3);
        let free =
            LogisticRegression::fit(&ds, LogisticConfig { l2: 0.0, ..LogisticConfig::default() })
                .unwrap();
        let shrunk =
            LogisticRegression::fit(&ds, LogisticConfig { l2: 10.0, ..LogisticConfig::default() })
                .unwrap();
        assert!(shrunk.weights()[0].abs() < free.weights()[0].abs());
    }

    #[test]
    fn validation_errors() {
        let empty = blobs(4, 0).subset(&[]);
        assert!(matches!(
            LogisticRegression::fit(&empty, LogisticConfig::default()),
            Err(LogisticError::EmptyDataset)
        ));
        let bad = Dataset::from_rows(vec![vec![1.0]], vec![0.3]).unwrap();
        assert!(matches!(
            LogisticRegression::fit(&bad, LogisticConfig::default()),
            Err(LogisticError::BadLabel { index: 0 })
        ));
        let ds = blobs(10, 4);
        let m = LogisticRegression::fit(&ds, LogisticConfig::default()).unwrap();
        assert!(matches!(
            m.probability(&[1.0]),
            Err(LogisticError::ArityMismatch { expected: 2, got: 1 })
        ));
    }
}
