//! Labelled datasets, train/test splitting, and feature standardisation.
//!
//! Every learner in this crate consumes a [`Dataset`]: a feature matrix plus a
//! target vector. Targets are `f64` throughout; classifiers interpret them as
//! `±1.0` labels (the convention used by the paper's SVM local process).

use crate::linalg::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;

/// A labelled dataset: `n` samples with `d` features and one target each.
///
/// # Examples
///
/// ```
/// use learn::dataset::Dataset;
///
/// let ds = Dataset::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]], vec![-1.0, 1.0]).unwrap();
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.num_features(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Matrix,
    targets: Vec<f64>,
}

/// Error constructing a [`Dataset`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// Feature rows were ragged or empty.
    BadFeatures,
    /// `targets.len()` did not match the number of feature rows.
    LengthMismatch {
        /// Number of feature rows supplied.
        rows: usize,
        /// Number of targets supplied.
        targets: usize,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::BadFeatures => write!(f, "feature rows are empty or ragged"),
            DatasetError::LengthMismatch { rows, targets } => {
                write!(f, "got {rows} feature rows but {targets} targets")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

impl Dataset {
    /// Builds a dataset from feature rows and targets.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::BadFeatures`] for empty/ragged rows and
    /// [`DatasetError::LengthMismatch`] when counts disagree.
    pub fn from_rows(rows: Vec<Vec<f64>>, targets: Vec<f64>) -> Result<Self, DatasetError> {
        if rows.len() != targets.len() {
            return Err(DatasetError::LengthMismatch { rows: rows.len(), targets: targets.len() });
        }
        let features = Matrix::from_rows(&rows).ok_or(DatasetError::BadFeatures)?;
        Ok(Self { features, targets })
    }

    /// Builds a dataset directly from a feature matrix and targets.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::LengthMismatch`] when counts disagree.
    pub fn new(features: Matrix, targets: Vec<f64>) -> Result<Self, DatasetError> {
        if features.rows() != targets.len() {
            return Err(DatasetError::LengthMismatch {
                rows: features.rows(),
                targets: targets.len(),
            });
        }
        Ok(Self { features, targets })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// `true` when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Number of features per sample.
    pub fn num_features(&self) -> usize {
        self.features.cols()
    }

    /// The feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// The target vector.
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// Feature row of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn sample(&self, i: usize) -> (&[f64], f64) {
        (self.features.row(i), self.targets[i])
    }

    /// Returns a new dataset containing only the samples at `indices`.
    ///
    /// Copies straight into one preallocated flat buffer — this sits on the
    /// retrain hot path (bootstrap resamples, CV folds), where a per-row
    /// `Vec` each would churn the allocator.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let d = self.num_features();
        let mut flat = Vec::with_capacity(indices.len() * d);
        let mut targets = Vec::with_capacity(indices.len());
        for &i in indices {
            flat.extend_from_slice(self.features.row(i));
            targets.push(self.targets[i]);
        }
        let features = Matrix::from_vec(indices.len(), d, flat).expect("rows share arity");
        Dataset { features, targets }
    }

    /// Splits into `(train, test)` with `train_fraction` of samples in train,
    /// after shuffling with `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `train_fraction` is not within `0.0..=1.0`.
    pub fn split(&self, train_fraction: f64, rng: &mut impl Rng) -> (Dataset, Dataset) {
        assert!(
            (0.0..=1.0).contains(&train_fraction),
            "train_fraction must be in [0, 1], got {train_fraction}"
        );
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        let cut = (self.len() as f64 * train_fraction).round() as usize;
        (self.subset(&idx[..cut]), self.subset(&idx[cut..]))
    }

    /// Draws a bootstrap resample (sampling with replacement) of the same
    /// size, returning the resample and the out-of-bag indices.
    pub fn bootstrap(&self, rng: &mut impl Rng) -> (Dataset, Vec<usize>) {
        let n = self.len();
        let mut chosen = vec![false; n];
        let idx: Vec<usize> = (0..n)
            .map(|_| {
                let i = rng.gen_range(0..n);
                chosen[i] = true;
                i
            })
            .collect();
        let oob = (0..n).filter(|&i| !chosen[i]).collect();
        (self.subset(&idx), oob)
    }
}

/// Per-feature affine standardiser: `x' = (x - mean) / std`.
///
/// Fit on training data, then applied to any vector with the same arity; the
/// local SVM process standardises Table-I features this way so that power
/// readings (kW) do not dominate temperature differences (°C).
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fits a standardiser to the dataset's features.
    ///
    /// Features with zero variance are passed through unscaled (std treated
    /// as 1) so constant features do not produce NaNs.
    pub fn fit(data: &Dataset) -> Self {
        let d = data.num_features();
        let n = data.len().max(1) as f64;
        let mut means = vec![0.0; d];
        for i in 0..data.len() {
            for (m, &x) in means.iter_mut().zip(data.features.row(i)) {
                *m += x;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; d];
        for i in 0..data.len() {
            for ((s, &x), m) in stds.iter_mut().zip(data.features.row(i)).zip(&means) {
                *s += (x - m) * (x - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Self { means, stds }
    }

    /// Number of features this standardiser was fitted on.
    pub fn num_features(&self) -> usize {
        self.means.len()
    }

    /// Standardises one feature vector in place.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the fitted arity.
    pub fn transform_in_place(&self, x: &mut [f64]) {
        assert_eq!(x.len(), self.means.len(), "feature arity mismatch");
        for ((v, m), s) in x.iter_mut().zip(&self.means).zip(&self.stds) {
            *v = (*v - m) / s;
        }
    }

    /// Returns a standardised copy of `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the fitted arity.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        let mut out = x.to_vec();
        self.transform_in_place(&mut out);
        out
    }

    /// Returns a dataset whose features are standardised (targets untouched).
    /// Standardises a single flat copy in place rather than building a `Vec`
    /// per row (this runs per retrain on the local-process path).
    pub fn transform_dataset(&self, data: &Dataset) -> Dataset {
        let mut features = data.features.clone();
        for i in 0..data.len() {
            self.transform_in_place(features.row_mut(i));
        }
        Dataset { features, targets: data.targets.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        Dataset::from_rows(
            vec![vec![0.0, 10.0], vec![1.0, 20.0], vec![2.0, 30.0], vec![3.0, 40.0]],
            vec![-1.0, -1.0, 1.0, 1.0],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            Dataset::from_rows(vec![vec![1.0]], vec![]),
            Err(DatasetError::LengthMismatch { .. })
        ));
        assert!(matches!(
            Dataset::from_rows(vec![vec![1.0], vec![1.0, 2.0]], vec![0.0, 0.0]),
            Err(DatasetError::BadFeatures)
        ));
        let m = Matrix::zeros(2, 3);
        assert!(Dataset::new(m.clone(), vec![0.0]).is_err());
        assert!(Dataset::new(m, vec![0.0, 1.0]).is_ok());
    }

    #[test]
    fn accessors() {
        let ds = toy();
        assert_eq!(ds.len(), 4);
        assert!(!ds.is_empty());
        assert_eq!(ds.num_features(), 2);
        let (x, y) = ds.sample(2);
        assert_eq!(x, &[2.0, 30.0]);
        assert_eq!(y, 1.0);
    }

    #[test]
    fn subset_preserves_pairing() {
        let ds = toy();
        let sub = ds.subset(&[3, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.sample(0), (&[3.0, 40.0][..], 1.0));
        assert_eq!(sub.sample(1), (&[0.0, 10.0][..], -1.0));
    }

    #[test]
    fn empty_subset_keeps_arity() {
        let ds = toy();
        let sub = ds.subset(&[]);
        assert!(sub.is_empty());
        assert_eq!(sub.num_features(), 2);
    }

    #[test]
    fn split_partitions_all_samples() {
        let ds = toy();
        let mut rng = StdRng::seed_from_u64(7);
        let (tr, te) = ds.split(0.75, &mut rng);
        assert_eq!(tr.len(), 3);
        assert_eq!(te.len(), 1);
        // Union of targets must be a permutation of originals.
        let mut all: Vec<f64> = tr.targets().iter().chain(te.targets()).copied().collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(all, vec![-1.0, -1.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "train_fraction")]
    fn split_rejects_bad_fraction() {
        let mut rng = StdRng::seed_from_u64(0);
        toy().split(1.5, &mut rng);
    }

    #[test]
    fn bootstrap_same_size_and_oob_disjoint() {
        let ds = toy();
        let mut rng = StdRng::seed_from_u64(42);
        let (bs, oob) = ds.bootstrap(&mut rng);
        assert_eq!(bs.len(), ds.len());
        assert!(oob.iter().all(|&i| i < ds.len()));
    }

    #[test]
    fn standardizer_zero_mean_unit_std() {
        let ds = toy();
        let st = Standardizer::fit(&ds);
        let tds = st.transform_dataset(&ds);
        for c in 0..2 {
            let col = tds.features().col(c);
            assert!(crate::linalg::mean(&col).abs() < 1e-10);
            assert!((crate::linalg::std_dev(&col) - 1.0).abs() < 1e-10);
        }
        // Targets are untouched.
        assert_eq!(tds.targets(), ds.targets());
    }

    #[test]
    fn standardizer_constant_feature_no_nan() {
        let ds = Dataset::from_rows(vec![vec![5.0, 1.0], vec![5.0, 2.0]], vec![0.0, 1.0]).unwrap();
        let st = Standardizer::fit(&ds);
        let t = st.transform(&[5.0, 1.5]);
        assert!(t.iter().all(|v| v.is_finite()));
        assert_eq!(t[0], 0.0); // (5-5)/1
    }
}
