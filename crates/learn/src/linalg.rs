//! Dense vector and matrix primitives used by every learner in this crate.
//!
//! The paper's models (ridge regression for COP prediction, the primal SVM of
//! Eq. 8, the DQN's multi-layer perceptron) are all small and dense, so a
//! straightforward row-major `Vec<f64>` representation is both sufficient and
//! easy to audit. No external BLAS is used: experiments must be bit-for-bit
//! reproducible across machines.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub};

/// A dense, row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use learn::linalg::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.transpose()[(0, 1)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Error returned when matrix dimensions do not line up for an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimensionError {
    op: &'static str,
    left: (usize, usize),
    right: (usize, usize),
}

impl fmt::Display for DimensionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dimension mismatch in {}: {}x{} vs {}x{}",
            self.op, self.left.0, self.left.1, self.right.0, self.right.1
        )
    }
}

impl std::error::Error for DimensionError {}

/// Register-block height of the tiled kernels: how many output rows (or
/// accumulators) each pass keeps live. Four doubles fit comfortably in
/// registers on every supported target while quartering the passes over the
/// shared operand; the value only affects speed, never results — every
/// kernel accumulates each output element's `k` terms in index order
/// regardless of blocking.
const MR: usize = 4;

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// Returns `None` when rows are empty or ragged (unequal lengths).
    pub fn from_rows(rows: &[Vec<f64>]) -> Option<Self> {
        let ncols = rows.first()?.len();
        if ncols == 0 || rows.iter().any(|r| r.len() != ncols) {
            return None;
        }
        let mut data = Vec::with_capacity(rows.len() * ncols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Some(Self { rows: rows.len(), cols: ncols, data })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// Returns `None` if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Option<Self> {
        (data.len() == rows * cols).then_some(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// A view of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Column `c` copied into a `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "col {c} out of bounds for {} cols", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        self.transpose_into(&mut t).expect("shape matches by construction");
        t
    }

    /// Transpose written into `out` (fully overwritten), allocating nothing.
    /// Every element is a bitwise copy.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionError`] when `out` is not `self.cols() ×
    /// self.rows()`.
    pub fn transpose_into(&self, out: &mut Matrix) -> Result<(), DimensionError> {
        if out.shape() != (self.cols, self.rows) {
            return Err(DimensionError {
                op: "transpose_into(out)",
                left: out.shape(),
                right: (self.cols, self.rows),
            });
        }
        for (r, row) in self.data.chunks_exact(self.cols.max(1)).enumerate() {
            for (c, &v) in row.iter().enumerate() {
                out.data[c * self.rows + r] = v;
            }
        }
        Ok(())
    }

    /// Matrix product `self · rhs`, computed by the register-blocked
    /// [`Matrix::matmul_into`] kernel. Each output element still accumulates
    /// its `k` terms in exactly the order of the textbook ijk triple loop —
    /// so results are bit-identical to the naive reference (see the
    /// `matmul_bits_match_naive_triple_loop` test).
    ///
    /// # Errors
    ///
    /// Returns [`DimensionError`] when `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, DimensionError> {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Matrix product `self · rhs` written into `out` (which is fully
    /// overwritten), allocating nothing.
    ///
    /// The kernel computes `MR×NR` register tiles of `out`: the accumulators
    /// for a 4-row × 8-column block live in registers across the entire `k`
    /// loop, so each output element is loaded/stored once instead of once
    /// per `k` term (the store-bound pattern that capped the old k-outer
    /// sweep). Because each accumulator still sums its `k` terms in index
    /// order, every element accumulates exactly as the textbook ijk triple
    /// loop does — bit-identical to the naive reference at any tile size.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionError`] when `self.cols() != rhs.rows()` or when
    /// `out` is not `self.rows() × rhs.cols()`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<(), DimensionError> {
        if self.cols != rhs.rows {
            return Err(DimensionError { op: "matmul", left: self.shape(), right: rhs.shape() });
        }
        if out.shape() != (self.rows, rhs.cols) {
            return Err(DimensionError {
                op: "matmul_into(out)",
                left: out.shape(),
                right: (self.rows, rhs.cols),
            });
        }
        let n = rhs.cols;
        let k = self.cols;
        if n == 0 || k == 0 {
            out.data.fill(0.0);
            return Ok(());
        }
        const NR: usize = 8;
        let mut lhs_blocks = self.data.chunks_exact(MR * k);
        let mut out_blocks = out.data.chunks_exact_mut(MR * n);
        for (lhs_block, out_block) in lhs_blocks.by_ref().zip(out_blocks.by_ref()) {
            let (l0, lr) = lhs_block.split_at(k);
            let (l1, lr) = lr.split_at(k);
            let (l2, l3) = lr.split_at(k);
            let (o0, or) = out_block.split_at_mut(n);
            let (o1, or) = or.split_at_mut(n);
            let (o2, o3) = or.split_at_mut(n);
            let mut j0 = 0;
            while j0 + NR <= n {
                let mut a0 = [0.0f64; NR];
                let mut a1 = [0.0f64; NR];
                let mut a2 = [0.0f64; NR];
                let mut a3 = [0.0f64; NR];
                for ((((&c0, &c1), &c2), &c3), rhs_row) in
                    l0.iter().zip(l1).zip(l2).zip(l3).zip(rhs.data.chunks_exact(n))
                {
                    let rv: &[f64; NR] = rhs_row[j0..j0 + NR].try_into().expect("tile width");
                    for c in 0..NR {
                        a0[c] += c0 * rv[c];
                        a1[c] += c1 * rv[c];
                        a2[c] += c2 * rv[c];
                        a3[c] += c3 * rv[c];
                    }
                }
                o0[j0..j0 + NR].copy_from_slice(&a0);
                o1[j0..j0 + NR].copy_from_slice(&a1);
                o2[j0..j0 + NR].copy_from_slice(&a2);
                o3[j0..j0 + NR].copy_from_slice(&a3);
                j0 += NR;
            }
            if j0 < n {
                // Ragged column tail (< NR wide), once per row block: same
                // tile, rhs copied into a zero-padded array. A `+0.0`
                // accumulator only ever adds `±0.0` terms in the pad lanes,
                // stays `+0.0`, and is never stored — the live lanes
                // accumulate exactly as in the full tile.
                let nt = n - j0;
                let mut acc = [[0.0f64; NR]; MR];
                for ((((&c0, &c1), &c2), &c3), rhs_row) in
                    l0.iter().zip(l1).zip(l2).zip(l3).zip(rhs.data.chunks_exact(n))
                {
                    let mut rv = [0.0f64; NR];
                    rv[..nt].copy_from_slice(&rhs_row[j0..]);
                    for (c, &x) in rv.iter().enumerate() {
                        acc[0][c] += c0 * x;
                        acc[1][c] += c1 * x;
                        acc[2][c] += c2 * x;
                        acc[3][c] += c3 * x;
                    }
                }
                o0[j0..].copy_from_slice(&acc[0][..nt]);
                o1[j0..].copy_from_slice(&acc[1][..nt]);
                o2[j0..].copy_from_slice(&acc[2][..nt]);
                o3[j0..].copy_from_slice(&acc[3][..nt]);
            }
        }
        // Tail rows (fewer than MR left): plain ikj, same accumulation order.
        for (lhs_row, out_row) in lhs_blocks
            .remainder()
            .chunks_exact(k)
            .zip(out_blocks.into_remainder().chunks_exact_mut(n))
        {
            out_row.fill(0.0);
            for (&lhs_rk, rhs_row) in lhs_row.iter().zip(rhs.data.chunks_exact(n)) {
                for (o, &x) in out_row.iter_mut().zip(rhs_row) {
                    *o += lhs_rk * x;
                }
            }
        }
        Ok(())
    }

    /// Matrix product `self · rhsᵀ` without materialising the transpose.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionError`] when `self.cols() != rhs.cols()`.
    pub fn matmul_transpose_b(&self, rhs: &Matrix) -> Result<Matrix, DimensionError> {
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_transpose_b_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Matrix product `self · rhsᵀ` written into `out` (fully overwritten),
    /// allocating nothing and never materialising the transpose.
    ///
    /// `out[i][j] = Σ_k self[i][k] · rhs[j][k]`, with `k` ascending — the
    /// same accumulation order (and therefore the same bits) as a dot
    /// product of the two rows. The kernel keeps [`MR`] accumulators live so
    /// one pass over a `self` row feeds `MR` output columns.
    ///
    /// This is the batched-forward kernel: with `self` a `B×d` batch of
    /// activation rows and `rhs` an `out×d` weight matrix, `out` holds the
    /// `B×out` pre-activations, each bit-identical to the per-sample
    /// [`Matrix::matvec`].
    ///
    /// # Errors
    ///
    /// Returns [`DimensionError`] when `self.cols() != rhs.cols()` or when
    /// `out` is not `self.rows() × rhs.rows()`.
    pub fn matmul_transpose_b_into(
        &self,
        rhs: &Matrix,
        out: &mut Matrix,
    ) -> Result<(), DimensionError> {
        if self.cols != rhs.cols {
            return Err(DimensionError {
                op: "matmul_transpose_b",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        if out.shape() != (self.rows, rhs.rows) {
            return Err(DimensionError {
                op: "matmul_transpose_b_into(out)",
                left: out.shape(),
                right: (self.rows, rhs.rows),
            });
        }
        let k = self.cols;
        if k == 0 || rhs.rows == 0 {
            out.data.fill(0.0);
            return Ok(());
        }
        for (lhs_row, out_row) in self.data.chunks_exact(k).zip(out.data.chunks_exact_mut(rhs.rows))
        {
            let mut rhs_blocks = rhs.data.chunks_exact(MR * k);
            let mut out_cells = out_row.chunks_exact_mut(MR);
            for (rhs_block, cells) in rhs_blocks.by_ref().zip(out_cells.by_ref()) {
                let (r0, rr) = rhs_block.split_at(k);
                let (r1, rr) = rr.split_at(k);
                let (r2, r3) = rr.split_at(k);
                let (mut a0, mut a1, mut a2, mut a3) = (0.0, 0.0, 0.0, 0.0);
                for (kk, &x) in lhs_row.iter().enumerate() {
                    a0 += x * r0[kk];
                    a1 += x * r1[kk];
                    a2 += x * r2[kk];
                    a3 += x * r3[kk];
                }
                cells[0] = a0;
                cells[1] = a1;
                cells[2] = a2;
                cells[3] = a3;
            }
            for (rhs_row, cell) in
                rhs_blocks.remainder().chunks_exact(k).zip(out_cells.into_remainder())
            {
                let mut acc = 0.0;
                for (&x, &w) in lhs_row.iter().zip(rhs_row) {
                    acc += x * w;
                }
                *cell = acc;
            }
        }
        Ok(())
    }

    /// Scaled Gram-style product `out = (α·selfᵀ) · rhs`, written into `out`
    /// (fully overwritten), allocating nothing and never materialising the
    /// transpose: `out[r][c] = Σ_b (α·self[b][r]) · rhs[b][c]`, with `b`
    /// ascending.
    ///
    /// This is the batched-backprop kernel: with `self` a `B×out` batch of
    /// layer deltas, `rhs` the `B×in` input activations and `α` the
    /// `1/batch` loss scale, `out` receives the layer's weight gradient with
    /// exactly the bits of the per-sample loop `grad[r][c] += (α·δ_b[r]) ·
    /// a_b[c]` accumulated over samples in order.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionError`] when `self.rows() != rhs.rows()` or when
    /// `out` is not `self.cols() × rhs.cols()`.
    pub fn matmul_transpose_a_scaled_into(
        &self,
        rhs: &Matrix,
        alpha: f64,
        out: &mut Matrix,
    ) -> Result<(), DimensionError> {
        if self.rows != rhs.rows {
            return Err(DimensionError {
                op: "matmul_transpose_a",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        if out.shape() != (self.cols, rhs.cols) {
            return Err(DimensionError {
                op: "matmul_transpose_a_scaled_into(out)",
                left: out.shape(),
                right: (self.cols, rhs.cols),
            });
        }
        let n = rhs.cols;
        out.data.fill(0.0);
        if n == 0 || self.cols == 0 {
            return Ok(());
        }
        // Column tiles keep the in-progress gradient block cache-resident:
        // `out` (out_dim × in_dim) can exceed L1, and the untiled loop would
        // re-stream all of it once per sample. Tiling reorders work only
        // across *independent* output columns — each element still
        // accumulates its samples in ascending order, so bits are unchanged.
        const NC: usize = 64;
        let mut c0 = 0;
        while c0 < n {
            let nc = NC.min(n - c0);
            for (lhs_row, rhs_row) in
                self.data.chunks_exact(self.cols).zip(rhs.data.chunks_exact(n))
            {
                let rhs_tile = &rhs_row[c0..c0 + nc];
                for (&d, out_row) in lhs_row.iter().zip(out.data.chunks_exact_mut(n)) {
                    let t = alpha * d;
                    for (o, &x) in out_row[c0..c0 + nc].iter_mut().zip(rhs_tile) {
                        *o += t * x;
                    }
                }
            }
            c0 += nc;
        }
        Ok(())
    }

    /// Matrix-vector product `self · v`.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionError`] when `self.cols() != v.len()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, DimensionError> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(v, &mut out)?;
        Ok(out)
    }

    /// Matrix-vector product `self · v` written into `out`, allocating
    /// nothing. Each `out[r]` is the dot product of row `r` with `v`,
    /// accumulated in index order — bit-identical to [`Matrix::matvec`]. The
    /// kernel keeps [`MR`] row accumulators live so each element of `v` is
    /// loaded once per `MR` rows.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionError`] when `self.cols() != v.len()` or
    /// `out.len() != self.rows()`.
    pub fn matvec_into(&self, v: &[f64], out: &mut [f64]) -> Result<(), DimensionError> {
        if self.cols != v.len() {
            return Err(DimensionError { op: "matvec", left: self.shape(), right: (v.len(), 1) });
        }
        if out.len() != self.rows {
            return Err(DimensionError {
                op: "matvec_into(out)",
                left: (out.len(), 1),
                right: (self.rows, 1),
            });
        }
        let k = self.cols;
        if k == 0 {
            out.fill(0.0);
            return Ok(());
        }
        // Deliberately the plain per-row dot: this is the per-sample
        // reference kernel the batched paths are measured against, so it is
        // kept bit- and instruction-faithful to the original implementation.
        for (row, cell) in self.data.chunks_exact(k).zip(out.iter_mut()) {
            *cell = dot(row, v);
        }
        Ok(())
    }

    /// Matrix–vector product with four-row instruction-level parallelism:
    /// rows are processed in blocks of [`MR`] independent accumulator
    /// chains, hiding the FMA latency a single dot's serial chain exposes.
    ///
    /// Each output element is still its own ascending-`k` dot product over
    /// exactly the same operand pairs, so results are bit-identical to
    /// [`Matrix::matvec_into`]. This is the latency-sensitive inference
    /// kernel (DQN action selection); `matvec_into` stays the frozen
    /// per-sample reference kernel.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionError`] when `self.cols() != v.len()` or
    /// `out.len() != self.rows()`.
    pub fn matvec_ilp_into(&self, v: &[f64], out: &mut [f64]) -> Result<(), DimensionError> {
        if self.cols != v.len() {
            return Err(DimensionError { op: "matvec", left: self.shape(), right: (v.len(), 1) });
        }
        if out.len() != self.rows {
            return Err(DimensionError {
                op: "matvec_ilp_into(out)",
                left: (out.len(), 1),
                right: (self.rows, 1),
            });
        }
        let k = self.cols;
        if k == 0 {
            out.fill(0.0);
            return Ok(());
        }
        let mut row_blocks = self.data.chunks_exact(MR * k);
        let mut out_cells = out.chunks_exact_mut(MR);
        for (block, cells) in row_blocks.by_ref().zip(out_cells.by_ref()) {
            let (r0, rr) = block.split_at(k);
            let (r1, rr) = rr.split_at(k);
            let (r2, r3) = rr.split_at(k);
            let (mut a0, mut a1, mut a2, mut a3) = (0.0, 0.0, 0.0, 0.0);
            for (kk, &x) in v.iter().enumerate() {
                a0 += r0[kk] * x;
                a1 += r1[kk] * x;
                a2 += r2[kk] * x;
                a3 += r3[kk] * x;
            }
            cells[0] = a0;
            cells[1] = a1;
            cells[2] = a2;
            cells[3] = a3;
        }
        for (row, cell) in row_blocks.remainder().chunks_exact(k).zip(out_cells.into_remainder()) {
            *cell = dot(row, v);
        }
        Ok(())
    }

    /// Element-wise map, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// In-place scaled addition `self += alpha * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionError`] on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, rhs: &Matrix) -> Result<(), DimensionError> {
        if self.shape() != rhs.shape() {
            return Err(DimensionError { op: "axpy", left: self.shape(), right: rhs.shape() });
        }
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Scales every element in place.
    pub fn scale(&mut self, alpha: f64) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Solves `self · x = b` for square `self` via Gaussian elimination with
    /// partial pivoting. Used by the ridge-regression normal equations.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] when the matrix is non-square, `b` has the
    /// wrong length, or the system is (numerically) singular.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveError> {
        let n = self.rows;
        if self.cols != n {
            return Err(SolveError::NotSquare { rows: self.rows, cols: self.cols });
        }
        if b.len() != n {
            return Err(SolveError::BadRhs { expected: n, got: b.len() });
        }
        // Augmented system, eliminated in place.
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivot.
            let pivot = (col..n)
                .max_by(|&i, &j| {
                    a[i * n + col].abs().partial_cmp(&a[j * n + col].abs()).expect("non-NaN")
                })
                .expect("non-empty range");
            if a[pivot * n + col].abs() < 1e-12 {
                return Err(SolveError::Singular { col });
            }
            if pivot != col {
                for k in 0..n {
                    a.swap(col * n + k, pivot * n + k);
                }
                x.swap(col, pivot);
            }
            let diag = a[col * n + col];
            for row in (col + 1)..n {
                let factor = a[row * n + col] / diag;
                if factor == 0.0 {
                    continue;
                }
                for k in col..n {
                    a[row * n + k] -= factor * a[col * n + k];
                }
                x[row] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut sum = x[col];
            for k in (col + 1)..n {
                sum -= a[col * n + k] * x[k];
            }
            x[col] = sum / a[col * n + col];
        }
        Ok(x)
    }
}

/// Error returned by [`Matrix::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The coefficient matrix is not square.
    NotSquare {
        /// Row count of the offending matrix.
        rows: usize,
        /// Column count of the offending matrix.
        cols: usize,
    },
    /// The right-hand side has the wrong length.
    BadRhs {
        /// Expected length (matrix order).
        expected: usize,
        /// Supplied length.
        got: usize,
    },
    /// A pivot below tolerance was encountered.
    Singular {
        /// Column at which elimination failed.
        col: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::NotSquare { rows, cols } => {
                write!(f, "cannot solve non-square system of shape {rows}x{cols}")
            }
            SolveError::BadRhs { expected, got } => {
                write!(f, "right-hand side has length {got}, expected {expected}")
            }
            SolveError::Singular { col } => {
                write!(f, "matrix is singular at column {col}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Matrix::axpy`] for a fallible variant.
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix addition shape mismatch");
        let mut out = self.clone();
        out.axpy(1.0, rhs).expect("shapes checked");
        out
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Matrix::axpy`] for a fallible variant.
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix subtraction shape mismatch");
        let mut out = self.clone();
        out.axpy(-1.0, rhs).expect("shapes checked");
        out
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, alpha: f64) -> Matrix {
        let mut out = self.clone();
        out.scale(alpha);
        out
    }
}

impl AddAssign<&Matrix> for Matrix {
    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Matrix::axpy`] for a fallible variant.
    fn add_assign(&mut self, rhs: &Matrix) {
        self.axpy(1.0, rhs).expect("matrix += shape mismatch");
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm of a slice.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// In-place scaled vector addition `a += alpha * b`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn axpy(a: &mut [f64], alpha: f64, b: &[f64]) {
    assert_eq!(a.len(), b.len(), "axpy length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += alpha * y;
    }
}

/// Mean of a slice; `0.0` for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Population variance of a slice; `0.0` for slices shorter than 2.
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64
}

/// Population standard deviation of a slice.
pub fn std_dev(a: &[f64]) -> f64 {
    variance(a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_requested_shape_and_content() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_is_diagonal_ones() {
        let m = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(m[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_none());
        assert!(Matrix::from_rows(&[]).is_none());
        assert!(Matrix::from_rows(&[vec![]]).is_none());
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![0.0; 3]).is_none());
        assert!(Matrix::from_vec(2, 2, vec![0.0; 4]).is_some());
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (3, 2));
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    /// The textbook ijk triple loop the ikj implementation must match
    /// bit-for-bit: each output element accumulates its `k` terms in index
    /// order.
    fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a[(i, k)] * b[(k, j)];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    /// Deterministic value mix: varied magnitudes, signs, and exact zeros
    /// (zeros exercised deliberately — the previous implementation skipped
    /// zero lhs entries, which is not order-preserving around signed zeros).
    fn dense_test_matrix(rows: usize, cols: usize, salt: u64) -> Matrix {
        let mut state = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let data: Vec<f64> = (0..rows * cols)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                match state % 7 {
                    0 => 0.0,
                    1 => -0.0,
                    k => ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 10f64.powi(k as i32),
                }
            })
            .collect();
        Matrix::from_vec(rows, cols, data).unwrap()
    }

    #[test]
    fn matmul_bits_match_naive_triple_loop() {
        // Shapes straddle the MR register block: exact multiples, tails of
        // every size, and degenerate single rows/columns.
        for (m, k, n, salt) in [
            (1, 1, 1, 1),
            (3, 5, 2, 2),
            (4, 4, 4, 6),
            (5, 9, 4, 7),
            (8, 8, 8, 3),
            (17, 31, 13, 4),
            (40, 7, 40, 5),
        ] {
            let a = dense_test_matrix(m, k, salt);
            let b = dense_test_matrix(k, n, salt ^ 0xFFFF);
            let fast = a.matmul(&b).unwrap();
            let slow = matmul_naive(&a, &b);
            let fast_bits: Vec<u64> = fast.as_slice().iter().map(|x| x.to_bits()).collect();
            let slow_bits: Vec<u64> = slow.as_slice().iter().map(|x| x.to_bits()).collect();
            assert_eq!(fast_bits, slow_bits, "shape {m}x{k}·{k}x{n} diverged from naive order");

            // The into-variant is the same kernel without the allocation.
            let mut out = Matrix::filled(m, n, f64::NAN);
            a.matmul_into(&b, &mut out).unwrap();
            assert_eq!(
                out.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                slow_bits,
                "matmul_into diverged at {m}x{k}·{k}x{n}"
            );

            // A·Bᵀ must match matmul against the materialised transpose.
            let bt = dense_test_matrix(n, k, salt ^ 0xAAAA);
            let via_transpose = a.matmul(&bt.transpose()).unwrap();
            let direct = a.matmul_transpose_b(&bt).unwrap();
            assert_eq!(
                direct.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                via_transpose.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "matmul_transpose_b diverged at {m}x{k}·({n}x{k})ᵀ"
            );
        }
    }

    #[test]
    fn matmul_transpose_a_scaled_matches_per_sample_loop() {
        for (b, m, n, salt) in [(1, 1, 1, 11), (4, 3, 5, 12), (9, 4, 4, 13), (32, 5, 7, 14)] {
            let delta = dense_test_matrix(b, m, salt);
            let acts = dense_test_matrix(b, n, salt ^ 0x5555);
            let alpha = 1.0 / b as f64;
            // Reference: the per-sample accumulation order of nn backprop.
            let mut reference = Matrix::zeros(m, n);
            for s in 0..b {
                for r in 0..m {
                    for c in 0..n {
                        reference[(r, c)] += alpha * delta[(s, r)] * acts[(s, c)];
                    }
                }
            }
            let mut out = Matrix::filled(m, n, f64::NAN);
            delta.matmul_transpose_a_scaled_into(&acts, alpha, &mut out).unwrap();
            assert_eq!(
                out.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                reference.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "scaled δᵀ·A diverged at {b}x{m} · {b}x{n}"
            );
        }
    }

    #[test]
    fn matvec_into_bits_match_dot_products() {
        for (m, k, salt) in [(1, 1, 21), (4, 6, 22), (7, 9, 23), (12, 33, 24)] {
            let a = dense_test_matrix(m, k, salt);
            let v: Vec<f64> = dense_test_matrix(1, k, salt ^ 0x3333).into_vec();
            let reference: Vec<u64> = (0..m).map(|r| dot(a.row(r), &v).to_bits()).collect();
            let mut out = vec![f64::NAN; m];
            a.matvec_into(&v, &mut out).unwrap();
            assert_eq!(
                out.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                reference,
                "matvec_into diverged at {m}x{k}"
            );
            let alloc: Vec<u64> = a.matvec(&v).unwrap().iter().map(|x| x.to_bits()).collect();
            assert_eq!(alloc, reference);
        }
    }

    #[test]
    fn into_kernels_validate_shapes() {
        let a = Matrix::zeros(3, 4);
        let b = Matrix::zeros(4, 2);
        let mut bad = Matrix::zeros(2, 2);
        assert!(a.matmul_into(&b, &mut bad).is_err());
        assert!(a.matmul_into(&Matrix::zeros(3, 2), &mut Matrix::zeros(3, 2)).is_err());
        assert!(a.matmul_transpose_b_into(&Matrix::zeros(2, 3), &mut bad).is_err());
        assert!(a.matmul_transpose_b_into(&Matrix::zeros(2, 4), &mut bad).is_err());
        assert!(a.matmul_transpose_a_scaled_into(&Matrix::zeros(2, 2), 1.0, &mut bad).is_err());
        assert!(a
            .matmul_transpose_a_scaled_into(&Matrix::zeros(3, 2), 1.0, &mut Matrix::zeros(3, 3))
            .is_err());
        assert!(a.matvec_into(&[0.0; 3], &mut [0.0; 3]).is_err());
        assert!(a.matvec_into(&[0.0; 4], &mut [0.0; 2]).is_err());
    }

    #[test]
    fn zero_dimension_kernels_are_safe() {
        // Empty inner dimension: every output element is an empty sum (0.0).
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let mut out = Matrix::filled(3, 2, f64::NAN);
        a.matmul_into(&b, &mut out).unwrap();
        assert!(out.as_slice().iter().all(|&x| x == 0.0));
        let bt = Matrix::zeros(2, 0);
        let mut out_t = Matrix::filled(3, 2, f64::NAN);
        a.matmul_transpose_b_into(&bt, &mut out_t).unwrap();
        assert!(out_t.as_slice().iter().all(|&x| x == 0.0));
        let mut mv = [f64::NAN; 3];
        a.matvec_into(&[], &mut mv).unwrap();
        assert!(mv.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]).unwrap());
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.matmul(&Matrix::identity(2)).unwrap(), a);
        assert_eq!(Matrix::identity(2).matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_dimension_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let err = a.matmul(&b).unwrap_err();
        assert!(err.to_string().contains("matmul"));
    }

    #[test]
    fn matvec_matches_manual() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let x = a.solve(&[3.0, 5.0]).unwrap();
        // 2x + y = 3, x + 3y = 5 => x = 4/5, y = 7/5
        assert!((x[0] - 0.8).abs() < 1e-10);
        assert!((x[1] - 1.4).abs() < 1e-10);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero leading pivot forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_detects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(a.solve(&[1.0, 2.0]), Err(SolveError::Singular { .. })));
    }

    #[test]
    fn solve_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(a.solve(&[0.0, 0.0]), Err(SolveError::NotSquare { .. })));
        let b = Matrix::identity(2);
        assert!(matches!(b.solve(&[0.0]), Err(SolveError::BadRhs { .. })));
    }

    #[test]
    fn operators_add_sub_scale() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![10.0, 20.0]]).unwrap();
        assert_eq!((&a + &b).as_slice(), &[11.0, 22.0]);
        assert_eq!((&b - &a).as_slice(), &[9.0, 18.0]);
        assert_eq!((&a * 3.0).as_slice(), &[3.0, 6.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[11.0, 22.0]);
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        let mut v = vec![1.0, 1.0];
        axpy(&mut v, 2.0, &[1.0, 2.0]);
        assert_eq!(v, vec![3.0, 5.0]);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn row_col_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn map_and_norm() {
        let m = Matrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.map(|x| x * x).as_slice(), &[9.0, 16.0]);
        assert_eq!(m.frobenius_norm(), 5.0);
    }
}
