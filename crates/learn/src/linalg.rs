//! Dense vector and matrix primitives used by every learner in this crate.
//!
//! The paper's models (ridge regression for COP prediction, the primal SVM of
//! Eq. 8, the DQN's multi-layer perceptron) are all small and dense, so a
//! straightforward row-major `Vec<f64>` representation is both sufficient and
//! easy to audit. No external BLAS is used: experiments must be bit-for-bit
//! reproducible across machines.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub};

/// A dense, row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use learn::linalg::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.transpose()[(0, 1)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Error returned when matrix dimensions do not line up for an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimensionError {
    op: &'static str,
    left: (usize, usize),
    right: (usize, usize),
}

impl fmt::Display for DimensionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dimension mismatch in {}: {}x{} vs {}x{}",
            self.op, self.left.0, self.left.1, self.right.0, self.right.1
        )
    }
}

impl std::error::Error for DimensionError {}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// Returns `None` when rows are empty or ragged (unequal lengths).
    pub fn from_rows(rows: &[Vec<f64>]) -> Option<Self> {
        let ncols = rows.first()?.len();
        if ncols == 0 || rows.iter().any(|r| r.len() != ncols) {
            return None;
        }
        let mut data = Vec::with_capacity(rows.len() * ncols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Some(Self { rows: rows.len(), cols: ncols, data })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// Returns `None` if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Option<Self> {
        (data.len() == rows * cols).then_some(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// A view of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Column `c` copied into a `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "col {c} out of bounds for {} cols", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self · rhs`, computed in ikj order over the flat
    /// row-major buffers: the innermost loop walks `rhs` and `out` rows
    /// contiguously (cache-friendly, auto-vectorisable), while each output
    /// element still accumulates its `k` terms in exactly the order of the
    /// textbook ijk triple loop — so results are bit-identical to the naive
    /// reference (see the `matmul_bits_match_naive_triple_loop` test).
    ///
    /// # Errors
    ///
    /// Returns [`DimensionError`] when `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, DimensionError> {
        if self.cols != rhs.rows {
            return Err(DimensionError { op: "matmul", left: self.shape(), right: rhs.shape() });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let n = rhs.cols;
        for (lhs_row, out_row) in
            self.data.chunks_exact(self.cols).zip(out.data.chunks_exact_mut(n))
        {
            for (&lhs_rk, rhs_row) in lhs_row.iter().zip(rhs.data.chunks_exact(n)) {
                for (o, &x) in out_row.iter_mut().zip(rhs_row) {
                    *o += lhs_rk * x;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self · v`.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionError`] when `self.cols() != v.len()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, DimensionError> {
        if self.cols != v.len() {
            return Err(DimensionError { op: "matvec", left: self.shape(), right: (v.len(), 1) });
        }
        Ok((0..self.rows).map(|r| dot(self.row(r), v)).collect())
    }

    /// Element-wise map, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// In-place scaled addition `self += alpha * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionError`] on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, rhs: &Matrix) -> Result<(), DimensionError> {
        if self.shape() != rhs.shape() {
            return Err(DimensionError { op: "axpy", left: self.shape(), right: rhs.shape() });
        }
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Scales every element in place.
    pub fn scale(&mut self, alpha: f64) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Solves `self · x = b` for square `self` via Gaussian elimination with
    /// partial pivoting. Used by the ridge-regression normal equations.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] when the matrix is non-square, `b` has the
    /// wrong length, or the system is (numerically) singular.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveError> {
        let n = self.rows;
        if self.cols != n {
            return Err(SolveError::NotSquare { rows: self.rows, cols: self.cols });
        }
        if b.len() != n {
            return Err(SolveError::BadRhs { expected: n, got: b.len() });
        }
        // Augmented system, eliminated in place.
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivot.
            let pivot = (col..n)
                .max_by(|&i, &j| {
                    a[i * n + col].abs().partial_cmp(&a[j * n + col].abs()).expect("non-NaN")
                })
                .expect("non-empty range");
            if a[pivot * n + col].abs() < 1e-12 {
                return Err(SolveError::Singular { col });
            }
            if pivot != col {
                for k in 0..n {
                    a.swap(col * n + k, pivot * n + k);
                }
                x.swap(col, pivot);
            }
            let diag = a[col * n + col];
            for row in (col + 1)..n {
                let factor = a[row * n + col] / diag;
                if factor == 0.0 {
                    continue;
                }
                for k in col..n {
                    a[row * n + k] -= factor * a[col * n + k];
                }
                x[row] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut sum = x[col];
            for k in (col + 1)..n {
                sum -= a[col * n + k] * x[k];
            }
            x[col] = sum / a[col * n + col];
        }
        Ok(x)
    }
}

/// Error returned by [`Matrix::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The coefficient matrix is not square.
    NotSquare {
        /// Row count of the offending matrix.
        rows: usize,
        /// Column count of the offending matrix.
        cols: usize,
    },
    /// The right-hand side has the wrong length.
    BadRhs {
        /// Expected length (matrix order).
        expected: usize,
        /// Supplied length.
        got: usize,
    },
    /// A pivot below tolerance was encountered.
    Singular {
        /// Column at which elimination failed.
        col: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::NotSquare { rows, cols } => {
                write!(f, "cannot solve non-square system of shape {rows}x{cols}")
            }
            SolveError::BadRhs { expected, got } => {
                write!(f, "right-hand side has length {got}, expected {expected}")
            }
            SolveError::Singular { col } => {
                write!(f, "matrix is singular at column {col}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Matrix::axpy`] for a fallible variant.
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix addition shape mismatch");
        let mut out = self.clone();
        out.axpy(1.0, rhs).expect("shapes checked");
        out
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Matrix::axpy`] for a fallible variant.
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix subtraction shape mismatch");
        let mut out = self.clone();
        out.axpy(-1.0, rhs).expect("shapes checked");
        out
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, alpha: f64) -> Matrix {
        let mut out = self.clone();
        out.scale(alpha);
        out
    }
}

impl AddAssign<&Matrix> for Matrix {
    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Matrix::axpy`] for a fallible variant.
    fn add_assign(&mut self, rhs: &Matrix) {
        self.axpy(1.0, rhs).expect("matrix += shape mismatch");
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm of a slice.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// In-place scaled vector addition `a += alpha * b`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn axpy(a: &mut [f64], alpha: f64, b: &[f64]) {
    assert_eq!(a.len(), b.len(), "axpy length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += alpha * y;
    }
}

/// Mean of a slice; `0.0` for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Population variance of a slice; `0.0` for slices shorter than 2.
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64
}

/// Population standard deviation of a slice.
pub fn std_dev(a: &[f64]) -> f64 {
    variance(a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_requested_shape_and_content() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_is_diagonal_ones() {
        let m = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(m[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_none());
        assert!(Matrix::from_rows(&[]).is_none());
        assert!(Matrix::from_rows(&[vec![]]).is_none());
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![0.0; 3]).is_none());
        assert!(Matrix::from_vec(2, 2, vec![0.0; 4]).is_some());
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (3, 2));
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    /// The textbook ijk triple loop the ikj implementation must match
    /// bit-for-bit: each output element accumulates its `k` terms in index
    /// order.
    fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a[(i, k)] * b[(k, j)];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    /// Deterministic value mix: varied magnitudes, signs, and exact zeros
    /// (zeros exercised deliberately — the previous implementation skipped
    /// zero lhs entries, which is not order-preserving around signed zeros).
    fn dense_test_matrix(rows: usize, cols: usize, salt: u64) -> Matrix {
        let mut state = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let data: Vec<f64> = (0..rows * cols)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                match state % 7 {
                    0 => 0.0,
                    1 => -0.0,
                    k => ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 10f64.powi(k as i32),
                }
            })
            .collect();
        Matrix::from_vec(rows, cols, data).unwrap()
    }

    #[test]
    fn matmul_bits_match_naive_triple_loop() {
        for (m, k, n, salt) in
            [(1, 1, 1, 1), (3, 5, 2, 2), (8, 8, 8, 3), (17, 31, 13, 4), (40, 7, 40, 5)]
        {
            let a = dense_test_matrix(m, k, salt);
            let b = dense_test_matrix(k, n, salt ^ 0xFFFF);
            let fast = a.matmul(&b).unwrap();
            let slow = matmul_naive(&a, &b);
            let fast_bits: Vec<u64> = fast.as_slice().iter().map(|x| x.to_bits()).collect();
            let slow_bits: Vec<u64> = slow.as_slice().iter().map(|x| x.to_bits()).collect();
            assert_eq!(fast_bits, slow_bits, "shape {m}x{k}·{k}x{n} diverged from naive order");
        }
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]).unwrap());
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.matmul(&Matrix::identity(2)).unwrap(), a);
        assert_eq!(Matrix::identity(2).matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_dimension_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let err = a.matmul(&b).unwrap_err();
        assert!(err.to_string().contains("matmul"));
    }

    #[test]
    fn matvec_matches_manual() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let x = a.solve(&[3.0, 5.0]).unwrap();
        // 2x + y = 3, x + 3y = 5 => x = 4/5, y = 7/5
        assert!((x[0] - 0.8).abs() < 1e-10);
        assert!((x[1] - 1.4).abs() < 1e-10);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero leading pivot forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_detects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(a.solve(&[1.0, 2.0]), Err(SolveError::Singular { .. })));
    }

    #[test]
    fn solve_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(a.solve(&[0.0, 0.0]), Err(SolveError::NotSquare { .. })));
        let b = Matrix::identity(2);
        assert!(matches!(b.solve(&[0.0]), Err(SolveError::BadRhs { .. })));
    }

    #[test]
    fn operators_add_sub_scale() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![10.0, 20.0]]).unwrap();
        assert_eq!((&a + &b).as_slice(), &[11.0, 22.0]);
        assert_eq!((&b - &a).as_slice(), &[9.0, 18.0]);
        assert_eq!((&a * 3.0).as_slice(), &[3.0, 6.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[11.0, 22.0]);
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        let mut v = vec![1.0, 1.0];
        axpy(&mut v, 2.0, &[1.0, 2.0]);
        assert_eq!(v, vec![3.0, 5.0]);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn row_col_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn map_and_norm() {
        let m = Matrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.map(|x| x * x).as_slice(), &[9.0, 16.0]);
        assert_eq!(m.frobenius_norm(), 5.0);
    }
}
