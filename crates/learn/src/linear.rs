//! Ordinary least squares and ridge regression.
//!
//! The per-task COP predictors in the green-building scenario are small ridge
//! regressors: each chiller-load *task* maps telemetry features to a
//! coefficient-of-performance estimate. Ridge (rather than plain OLS) keeps
//! tasks with very few on-edge samples well-posed, which is exactly the data
//! scarcity regime the paper motivates.

use crate::dataset::Dataset;
use crate::linalg::{dot, Matrix};
use std::fmt;

/// Error returned when fitting a linear model fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// The training set was empty.
    EmptyDataset,
    /// The normal equations were singular (use a larger ridge penalty).
    Singular,
    /// A prediction was requested with the wrong feature arity.
    ArityMismatch {
        /// Arity the model was trained with.
        expected: usize,
        /// Arity supplied.
        got: usize,
    },
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::EmptyDataset => write!(f, "cannot fit a model on an empty dataset"),
            FitError::Singular => {
                write!(f, "normal equations are singular; increase the ridge penalty")
            }
            FitError::ArityMismatch { expected, got } => {
                write!(f, "model expects {expected} features, got {got}")
            }
        }
    }
}

impl std::error::Error for FitError {}

/// A fitted linear model `y = w·x + b`.
///
/// # Examples
///
/// ```
/// use learn::dataset::Dataset;
/// use learn::linear::RidgeRegression;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // y = 2x + 1
/// let ds = Dataset::from_rows(
///     vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]],
///     vec![1.0, 3.0, 5.0, 7.0],
/// )?;
/// let model = RidgeRegression::new(1e-9).fit(&ds)?;
/// assert!((model.predict(&[4.0])? - 9.0).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    weights: Vec<f64>,
    bias: f64,
}

impl LinearModel {
    /// Creates a model directly from weights and bias, primarily for tests
    /// and for transfer-learning warm starts.
    pub fn from_parts(weights: Vec<f64>, bias: f64) -> Self {
        Self { weights, bias }
    }

    /// The learned weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Predicts the target for one feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`FitError::ArityMismatch`] when `x` has the wrong length.
    pub fn predict(&self, x: &[f64]) -> Result<f64, FitError> {
        if x.len() != self.weights.len() {
            return Err(FitError::ArityMismatch { expected: self.weights.len(), got: x.len() });
        }
        Ok(dot(&self.weights, x) + self.bias)
    }

    /// Predicts targets for every sample of a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`FitError::ArityMismatch`] on feature-arity mismatch.
    pub fn predict_dataset(&self, data: &Dataset) -> Result<Vec<f64>, FitError> {
        (0..data.len()).map(|i| self.predict(data.features().row(i))).collect()
    }
}

/// Ridge regression trainer (L2-regularised least squares, closed form).
///
/// `lambda = 0` recovers ordinary least squares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RidgeRegression {
    lambda: f64,
}

impl RidgeRegression {
    /// Creates a trainer with ridge penalty `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or non-finite.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda.is_finite() && lambda >= 0.0, "lambda must be >= 0, got {lambda}");
        Self { lambda }
    }

    /// The configured penalty.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Solves the normal equations `(XᵀX + λI) w = Xᵀy` on the augmented
    /// design matrix (a trailing all-ones column carries the intercept; the
    /// intercept itself is *not* penalised, matching standard practice).
    ///
    /// # Errors
    ///
    /// [`FitError::EmptyDataset`] when `data` has no samples,
    /// [`FitError::Singular`] when the system cannot be solved.
    pub fn fit(&self, data: &Dataset) -> Result<LinearModel, FitError> {
        if data.is_empty() {
            return Err(FitError::EmptyDataset);
        }
        let n = data.len();
        let d = data.num_features();
        // Augmented design: d feature columns + intercept column.
        let mut xtx = Matrix::zeros(d + 1, d + 1);
        let mut xty = vec![0.0; d + 1];
        for i in 0..n {
            let (x, y) = data.sample(i);
            for a in 0..d {
                for b in 0..d {
                    xtx[(a, b)] += x[a] * x[b];
                }
                xtx[(a, d)] += x[a];
                xtx[(d, a)] += x[a];
                xty[a] += x[a] * y;
            }
            xtx[(d, d)] += 1.0;
            xty[d] += y;
        }
        for a in 0..d {
            xtx[(a, a)] += self.lambda;
        }
        let sol = xtx.solve(&xty).map_err(|_| FitError::Singular)?;
        let (weights, bias) = sol.split_at(d);
        Ok(LinearModel { weights: weights.to_vec(), bias: bias[0] })
    }
}

impl Default for RidgeRegression {
    /// A small default penalty that keeps scarce-data fits well-posed.
    fn default() -> Self {
        Self { lambda: 1e-6 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rmse;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn line_data(n: usize, w: &[f64], b: f64, noise: f64, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let x: Vec<f64> = (0..w.len()).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let y = dot(w, &x) + b + noise * rng.gen_range(-1.0..1.0);
            rows.push(x);
            ys.push(y);
        }
        Dataset::from_rows(rows, ys).unwrap()
    }

    #[test]
    fn recovers_exact_line() {
        let ds = line_data(50, &[2.0, -3.0], 0.5, 0.0, 1);
        let m = RidgeRegression::new(0.0).fit(&ds).unwrap();
        assert!((m.weights()[0] - 2.0).abs() < 1e-8);
        assert!((m.weights()[1] + 3.0).abs() < 1e-8);
        assert!((m.bias() - 0.5).abs() < 1e-8);
    }

    #[test]
    fn noisy_fit_has_low_rmse() {
        let ds = line_data(200, &[1.0, 2.0, 3.0], -1.0, 0.1, 2);
        let m = RidgeRegression::default().fit(&ds).unwrap();
        let preds = m.predict_dataset(&ds).unwrap();
        assert!(rmse(&preds, ds.targets()).unwrap() < 0.12);
    }

    #[test]
    fn ridge_shrinks_weights() {
        let ds = line_data(30, &[5.0], 0.0, 0.0, 3);
        let free = RidgeRegression::new(0.0).fit(&ds).unwrap();
        let shrunk = RidgeRegression::new(1e4).fit(&ds).unwrap();
        assert!(shrunk.weights()[0].abs() < free.weights()[0].abs());
    }

    #[test]
    fn ridge_handles_underdetermined() {
        // 2 samples, 3 features: OLS is singular; ridge is not.
        let ds = Dataset::from_rows(vec![vec![1.0, 0.0, 2.0], vec![0.0, 1.0, 1.0]], vec![1.0, 2.0])
            .unwrap();
        assert!(matches!(RidgeRegression::new(0.0).fit(&ds), Err(FitError::Singular)));
        assert!(RidgeRegression::new(0.1).fit(&ds).is_ok());
    }

    #[test]
    fn empty_dataset_rejected() {
        let ds = Dataset::from_rows(vec![vec![1.0]], vec![1.0]).unwrap().subset(&[]);
        assert!(matches!(RidgeRegression::default().fit(&ds), Err(FitError::EmptyDataset)));
    }

    #[test]
    fn predict_checks_arity() {
        let m = LinearModel::from_parts(vec![1.0, 2.0], 0.0);
        assert!(matches!(m.predict(&[1.0]), Err(FitError::ArityMismatch { expected: 2, got: 1 })));
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn negative_lambda_panics() {
        RidgeRegression::new(-1.0);
    }
}
