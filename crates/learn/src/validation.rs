//! k-fold cross-validation utilities.
//!
//! Model selection in §IV-B ("we compare several state-of-the-art models …
//! We select SVM because of its highest accuracy") needs an evaluation
//! protocol; k-fold CV is the standard one when data is scarce, which is
//! exactly the local process's regime.

use crate::dataset::Dataset;
use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;

/// Error returned by cross-validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// Fewer than 2 folds requested, or more folds than samples.
    BadFolds {
        /// Requested folds.
        folds: usize,
        /// Samples available.
        samples: usize,
    },
    /// A fold score could not be computed.
    Score(String),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::BadFolds { folds, samples } => {
                write!(f, "{folds} folds invalid for {samples} samples")
            }
            ValidationError::Score(msg) => write!(f, "fold scoring failed: {msg}"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Shuffled index partition into `k` near-equal folds.
///
/// # Errors
///
/// [`ValidationError::BadFolds`] when `k < 2` or `k > n`.
pub fn kfold_indices(
    n: usize,
    k: usize,
    rng: &mut impl Rng,
) -> Result<Vec<Vec<usize>>, ValidationError> {
    if k < 2 || k > n {
        return Err(ValidationError::BadFolds { folds: k, samples: n });
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let mut folds = vec![Vec::new(); k];
    for (i, j) in idx.into_iter().enumerate() {
        folds[i % k].push(j);
    }
    Ok(folds)
}

/// Runs k-fold cross-validation: `score(train, test)` is called once per
/// fold and must return a higher-is-better score. Returns the per-fold
/// scores.
///
/// # Errors
///
/// [`ValidationError::BadFolds`] on an invalid `k`;
/// [`ValidationError::Score`] when the callback fails.
pub fn cross_validate<E: fmt::Display>(
    data: &Dataset,
    k: usize,
    rng: &mut impl Rng,
    mut score: impl FnMut(&Dataset, &Dataset) -> Result<f64, E>,
) -> Result<Vec<f64>, ValidationError> {
    let folds = kfold_indices(data.len(), k, rng)?;
    let mut scores = Vec::with_capacity(k);
    for held in 0..k {
        let test = data.subset(&folds[held]);
        let train_idx: Vec<usize> = folds
            .iter()
            .enumerate()
            .filter(|(f, _)| *f != held)
            .flat_map(|(_, v)| v.iter().copied())
            .collect();
        let train = data.subset(&train_idx);
        scores.push(score(&train, &test).map_err(|e| ValidationError::Score(e.to_string()))?);
    }
    Ok(scores)
}

/// Mean of per-fold scores (convenience).
pub fn mean_score(scores: &[f64]) -> f64 {
    if scores.is_empty() {
        0.0
    } else {
        scores.iter().sum::<f64>() / scores.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::RidgeRegression;
    use crate::metrics::rmse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..n).map(|i| 2.0 * i as f64 + 1.0).collect();
        Dataset::from_rows(rows, ys).unwrap()
    }

    #[test]
    fn folds_partition_everything() {
        let mut rng = StdRng::seed_from_u64(1);
        let folds = kfold_indices(17, 5, &mut rng).unwrap();
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..17).collect::<Vec<_>>());
        // Near-equal sizes.
        for f in &folds {
            assert!((3..=4).contains(&f.len()));
        }
    }

    #[test]
    fn bad_folds_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(matches!(kfold_indices(5, 1, &mut rng), Err(ValidationError::BadFolds { .. })));
        assert!(matches!(kfold_indices(3, 5, &mut rng), Err(ValidationError::BadFolds { .. })));
    }

    #[test]
    fn cv_scores_linear_model_well_on_linear_data() {
        let ds = line(30);
        let mut rng = StdRng::seed_from_u64(3);
        let scores = cross_validate(&ds, 5, &mut rng, |train, test| {
            let model = RidgeRegression::default().fit(train)?;
            let preds = model.predict_dataset(test)?;
            // Higher-is-better: negated RMSE.
            Ok::<f64, Box<dyn std::error::Error>>(-rmse(&preds, test.targets()).unwrap())
        })
        .unwrap();
        assert_eq!(scores.len(), 5);
        assert!(mean_score(&scores) > -1e-3, "scores {scores:?}");
    }

    #[test]
    fn score_errors_are_propagated() {
        let ds = line(10);
        let mut rng = StdRng::seed_from_u64(4);
        let res = cross_validate(&ds, 2, &mut rng, |_, _| Err::<f64, _>("boom"));
        assert!(matches!(res, Err(ValidationError::Score(msg)) if msg == "boom"));
    }

    #[test]
    fn mean_score_handles_empty() {
        assert_eq!(mean_score(&[]), 0.0);
        assert_eq!(mean_score(&[1.0, 3.0]), 2.0);
    }
}
