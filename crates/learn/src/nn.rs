//! A small dense multi-layer perceptron with backpropagation.
//!
//! The paper's Deep Q-Network (§III-D, Alg. 1) needs only a modest value
//! network: the state is an `N × M` binary selection matrix flattened to a
//! vector, and the output is one Q-value per action. This module provides
//! exactly that — dense layers, ReLU/tanh activations, mean-squared-error
//! loss, and SGD/Adam optimisers — with no external deep-learning
//! dependency, as called for by the reproduction's substitution rule.

use crate::linalg::Matrix;
use rand::Rng;
use std::fmt;

/// Activation function applied element-wise after a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// Rectified linear unit `max(0, x)`.
    #[default]
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// No nonlinearity (used for output layers of value networks).
    Identity,
}

impl Activation {
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }

    /// Derivative expressed in terms of the *pre-activation* input `x`.
    fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - x.tanh().powi(2),
            Activation::Identity => 1.0,
        }
    }
}

/// Error returned by network construction or use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// Fewer than two layer sizes supplied (need at least input and output).
    TooFewLayers,
    /// A layer size was zero.
    ZeroWidth,
    /// Input/target arity did not match the network.
    ArityMismatch {
        /// Expected length.
        expected: usize,
        /// Supplied length.
        got: usize,
    },
    /// An empty training batch was supplied.
    EmptyBatch,
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::TooFewLayers => {
                write!(f, "network needs at least input and output sizes")
            }
            NetworkError::ZeroWidth => write!(f, "layer width must be at least 1"),
            NetworkError::ArityMismatch { expected, got } => {
                write!(f, "expected a vector of length {expected}, got {got}")
            }
            NetworkError::EmptyBatch => write!(f, "training batch is empty"),
        }
    }
}

impl std::error::Error for NetworkError {}

#[derive(Debug, Clone, PartialEq)]
struct Layer {
    /// `out × in` weight matrix.
    weights: Matrix,
    bias: Vec<f64>,
    activation: Activation,
}

/// Gradients of the loss with respect to one layer's parameters.
///
/// Public only because [`Optimizer::step`] mentions it; its fields are
/// crate-private, so downstream crates cannot construct or inspect it.
#[doc(hidden)]
#[derive(Debug, Clone, PartialEq)]
pub struct LayerGrad {
    weights: Matrix,
    bias: Vec<f64>,
}

/// Number of samples per fixed gradient-accumulation chunk.
///
/// Batches up to this size are accumulated in one stream, which keeps the
/// batched path bit-identical to the per-sample reference
/// ([`Mlp::train_batch`]). Larger batches are split at fixed `GRAD_CHUNK`
/// boundaries; chunk partials are computed (possibly in parallel) and reduced
/// serially in ascending order, so the result depends only on the batch
/// contents and this constant — never on the thread count (DESIGN.md §8.1,
/// §10).
const GRAD_CHUNK: usize = 64;

/// Reusable scratch for the batched forward/backward paths.
///
/// Owns the packed activation, pre-activation, delta and gradient buffers so
/// steady-state training (same architecture, same batch size) performs zero
/// heap allocations. Create one per training loop and pass it to
/// [`Mlp::forward_batch_ws`] / [`Mlp::train_batch_ws`]; buffers are resized
/// lazily whenever the architecture or batch size changes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BatchWorkspace {
    sizes: Vec<usize>,
    batch: usize,
    /// `acts[0]` is the packed `B × input` batch; `acts[l + 1]` holds layer
    /// `l`'s activations.
    acts: Vec<Matrix>,
    /// `pres[l]` holds layer `l`'s pre-activations (`z + b`).
    pres: Vec<Matrix>,
    /// `deltas[l]` holds ∂loss/∂z for layer `l`.
    deltas: Vec<Matrix>,
    /// `wts[l]` caches layer `l`'s weights transposed (`in × out`), refreshed
    /// on every batched forward. The transposed layout turns the forward
    /// `Z = A·Wᵀ` into the plain `A·(Wᵀ)` kernel whose inner loop walks the
    /// output dimension contiguously — auto-vectorisable, unlike the
    /// row-by-row dot products of `matmul_transpose_b` — while each output
    /// element still accumulates identical terms in identical `k` order, so
    /// the bits cannot change.
    wts: Vec<Matrix>,
    grads: Vec<LayerGrad>,
}

impl BatchWorkspace {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, net: &Mlp, batch: usize) {
        if self.sizes == net.sizes && self.batch == batch {
            return;
        }
        self.sizes.clone_from(&net.sizes);
        self.batch = batch;
        self.acts = net.sizes.iter().map(|&w| Matrix::zeros(batch, w)).collect();
        self.pres = net.sizes[1..].iter().map(|&w| Matrix::zeros(batch, w)).collect();
        self.deltas = net.sizes[1..].iter().map(|&w| Matrix::zeros(batch, w)).collect();
        self.wts =
            net.layers.iter().map(|l| Matrix::zeros(l.weights.cols(), l.weights.rows())).collect();
        self.grads = net
            .layers
            .iter()
            .map(|l| LayerGrad {
                weights: Matrix::zeros(l.weights.rows(), l.weights.cols()),
                bias: vec![0.0; l.bias.len()],
            })
            .collect();
    }
}

/// A dense feed-forward network.
///
/// # Examples
///
/// ```
/// use learn::nn::{Activation, Mlp, SgdOptimizer};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// // 2 inputs -> 8 hidden -> 1 output.
/// let mut net = Mlp::new(&[2, 8, 1], Activation::Tanh, &mut rng)?;
/// let mut opt = SgdOptimizer::new(0.1, 0.0);
/// for _ in 0..500 {
///     // learn XOR-ish parity of signs
///     net.train_batch(
///         &[vec![1.0, 1.0], vec![-1.0, -1.0], vec![1.0, -1.0], vec![-1.0, 1.0]],
///         &[vec![-1.0], vec![-1.0], vec![1.0], vec![1.0]],
///         &mut opt,
///     )?;
/// }
/// assert!(net.forward(&[1.0, -1.0])?[0] > 0.0);
/// assert!(net.forward(&[1.0, 1.0])?[0] < 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Layer>,
    sizes: Vec<usize>,
}

impl Mlp {
    /// Builds a network with the given layer sizes. All hidden layers use
    /// `hidden_activation`; the output layer is linear (Identity), the
    /// standard choice for Q-value regression.
    ///
    /// Weights are initialised with He/Xavier-style scaling from `rng`.
    ///
    /// # Errors
    ///
    /// [`NetworkError::TooFewLayers`] / [`NetworkError::ZeroWidth`] on a bad
    /// architecture.
    pub fn new(
        sizes: &[usize],
        hidden_activation: Activation,
        rng: &mut impl Rng,
    ) -> Result<Self, NetworkError> {
        if sizes.len() < 2 {
            return Err(NetworkError::TooFewLayers);
        }
        if sizes.contains(&0) {
            return Err(NetworkError::ZeroWidth);
        }
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for w in sizes.windows(2) {
            let (fan_in, fan_out) = (w[0], w[1]);
            let is_output = layers.len() == sizes.len() - 2;
            let scale = (2.0 / fan_in as f64).sqrt();
            let mut weights = Matrix::zeros(fan_out, fan_in);
            for v in weights.as_mut_slice() {
                *v = rng.gen_range(-1.0..1.0) * scale;
            }
            layers.push(Layer {
                weights,
                bias: vec![0.0; fan_out],
                activation: if is_output { Activation::Identity } else { hidden_activation },
            });
        }
        Ok(Self { layers, sizes: sizes.to_vec() })
    }

    /// Input arity.
    pub fn input_size(&self) -> usize {
        self.sizes[0]
    }

    /// Output arity.
    pub fn output_size(&self) -> usize {
        *self.sizes.last().expect("at least two sizes")
    }

    /// Total number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.layers.iter().map(|l| l.weights.rows() * l.weights.cols() + l.bias.len()).sum()
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// [`NetworkError::ArityMismatch`] when `input` has the wrong length.
    pub fn forward(&self, input: &[f64]) -> Result<Vec<f64>, NetworkError> {
        if input.len() != self.input_size() {
            return Err(NetworkError::ArityMismatch {
                expected: self.input_size(),
                got: input.len(),
            });
        }
        let mut act = input.to_vec();
        for layer in &self.layers {
            let z = layer.weights.matvec(&act).expect("sizes consistent by construction");
            act =
                z.iter().zip(&layer.bias).map(|(&zi, &b)| layer.activation.apply(zi + b)).collect();
        }
        Ok(act)
    }

    /// Forward pass through the ILP-blocked inference kernel
    /// ([`Matrix::matvec_ilp_into`]). Bit-identical to [`Mlp::forward`] —
    /// every output element is the same ascending-`k` dot — but several
    /// times faster on deep-and-narrow latency chains, so action selection
    /// and other single-sample inference go through here while the
    /// per-sample training reference keeps the frozen `forward`.
    ///
    /// # Errors
    ///
    /// [`NetworkError::ArityMismatch`] when `input` has the wrong length.
    pub fn forward_ilp(&self, input: &[f64]) -> Result<Vec<f64>, NetworkError> {
        if input.len() != self.input_size() {
            return Err(NetworkError::ArityMismatch {
                expected: self.input_size(),
                got: input.len(),
            });
        }
        let mut act = input.to_vec();
        let mut z = Vec::new();
        for layer in &self.layers {
            z.resize(layer.weights.rows(), 0.0);
            layer.weights.matvec_ilp_into(&act, &mut z).expect("sizes consistent by construction");
            act.clear();
            act.extend(z.iter().zip(&layer.bias).map(|(&zi, &b)| layer.activation.apply(zi + b)));
        }
        Ok(act)
    }

    /// Forward pass retaining pre-activations and activations per layer, for
    /// backprop. Returns `(pre_activations, activations)` where
    /// `activations[0]` is the input.
    fn forward_trace(&self, input: &[f64]) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut pres = Vec::with_capacity(self.layers.len());
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(input.to_vec());
        for layer in &self.layers {
            let mut z = layer.weights.matvec(acts.last().expect("non-empty")).expect("sizes");
            for (zi, &b) in z.iter_mut().zip(&layer.bias) {
                *zi += b;
            }
            let a = z.iter().map(|&zi| layer.activation.apply(zi)).collect();
            pres.push(z);
            acts.push(a);
        }
        (pres, acts)
    }

    /// Batched forward pass: one blocked matmul per layer instead of `B`
    /// matvecs. Row `s` of the result equals `self.forward(inputs[s])` bit
    /// for bit — the `linalg` kernels keep every output element's textbook
    /// accumulation order.
    ///
    /// Allocating convenience wrapper; hot loops should hold a
    /// [`BatchWorkspace`] and call [`Mlp::forward_batch_ws`].
    ///
    /// # Errors
    ///
    /// [`NetworkError::EmptyBatch`] / [`NetworkError::ArityMismatch`].
    pub fn forward_batch(&self, inputs: &[&[f64]]) -> Result<Vec<Vec<f64>>, NetworkError> {
        let mut ws = BatchWorkspace::new();
        let out = self.forward_batch_ws(inputs, &mut ws)?;
        Ok((0..inputs.len()).map(|s| out.row(s).to_vec()).collect())
    }

    /// Allocation-free batched forward pass. Returns the `B × out` activation
    /// matrix held in `ws`; row `s` is the output for `inputs[s]`.
    ///
    /// # Errors
    ///
    /// [`NetworkError::EmptyBatch`] / [`NetworkError::ArityMismatch`].
    pub fn forward_batch_ws<'w>(
        &self,
        inputs: &[&[f64]],
        ws: &'w mut BatchWorkspace,
    ) -> Result<&'w Matrix, NetworkError> {
        self.pack_batch(inputs, ws)?;
        self.forward_trace_batch(ws);
        Ok(ws.acts.last().expect("at least the input buffer"))
    }

    /// Validates `inputs` and copies them into `ws.acts[0]`.
    fn pack_batch(&self, inputs: &[&[f64]], ws: &mut BatchWorkspace) -> Result<(), NetworkError> {
        if inputs.is_empty() {
            return Err(NetworkError::EmptyBatch);
        }
        for x in inputs {
            if x.len() != self.input_size() {
                return Err(NetworkError::ArityMismatch {
                    expected: self.input_size(),
                    got: x.len(),
                });
            }
        }
        ws.ensure(self, inputs.len());
        for (s, x) in inputs.iter().enumerate() {
            ws.acts[0].row_mut(s).copy_from_slice(x);
        }
        Ok(())
    }

    /// Batched analogue of `forward_trace` over the packed batch in
    /// `ws.acts[0]`: per layer `Z = A·Wᵀ` (one blocked matmul), `Z += bias`
    /// broadcast row-wise, `A' = σ(Z)`.
    ///
    /// The weight matrix is transposed into `ws.wts` first so the product
    /// runs through the plain [`Matrix::matmul_into`] kernel, whose inner
    /// loop is contiguous over the output dimension and auto-vectorises;
    /// `A·(Wᵀ)` multiplies the same operand pairs in the same `k` order as
    /// the row-dot formulation, so the result is bit-identical.
    fn forward_trace_batch(&self, ws: &mut BatchWorkspace) {
        let batch = ws.batch;
        for (li, layer) in self.layers.iter().enumerate() {
            layer.weights.transpose_into(&mut ws.wts[li]).expect("sizes consistent");
            let (done, rest) = ws.acts.split_at_mut(li + 1);
            let a_in = &done[li];
            let pre = &mut ws.pres[li];
            a_in.matmul_into(&ws.wts[li], pre).expect("sizes consistent");
            let a_out = &mut rest[0];
            for s in 0..batch {
                for (z, &b) in pre.row_mut(s).iter_mut().zip(&layer.bias) {
                    *z += b;
                }
                for (o, &z) in a_out.row_mut(s).iter_mut().zip(pre.row(s)) {
                    *o = layer.activation.apply(z);
                }
            }
        }
    }

    /// Loss and gradients for one chunk, all samples in a single accumulation
    /// stream, written into `ws.grads`. Returns the *unscaled* summed loss
    /// `Σ_s ||f(x_s) − y_s||² / 2`.
    fn grad_chunk_into(
        &self,
        inputs: &[&[f64]],
        targets: &[&[f64]],
        scale: f64,
        ws: &mut BatchWorkspace,
    ) -> Result<f64, NetworkError> {
        self.pack_batch(inputs, ws)?;
        self.forward_trace_batch(ws);
        let batch = inputs.len();
        let last = self.layers.len() - 1;
        let mut total_loss = 0.0;
        // Output delta (out − y) ⊙ σ'(z) and the per-sample loss terms, in
        // the same ascending sample order as the per-sample reference.
        for (s, y) in targets.iter().enumerate() {
            let out = ws.acts[last + 1].row(s);
            total_loss +=
                out.iter().zip(y.iter()).map(|(o, t)| (o - t) * (o - t)).sum::<f64>() / 2.0;
            let act = self.layers[last].activation;
            let pre = ws.pres[last].row(s);
            for (((d, o), t), &z) in
                ws.deltas[last].row_mut(s).iter_mut().zip(out).zip(y.iter()).zip(pre)
            {
                *d = (o - t) * act.derivative(z);
            }
        }
        self.backward_layers_into(last, batch, scale, ws);
        Ok(total_loss)
    }

    /// TD variant of [`Mlp::grad_chunk_into`]: the target row for sample `s`
    /// is this pass's own output with entry `actions[s]` replaced by
    /// `bootstraps[s]`, so the redundant "predict the targets" forward the
    /// dense formulation needs is fused away — and because every off-action
    /// residual is the exact `+0.0` of the dense subtraction `o − o`, the
    /// output-layer backward touches only the action entries instead of all
    /// `B × out` deltas.
    ///
    /// The skipped terms are all exact `±0.0` products, and skipping them
    /// cannot change any accumulated bit: under round-to-nearest an f64
    /// accumulator that starts at `+0.0` can never reach `-0.0` (cancellation
    /// `x + (−x)` yields `+0.0`, and sums never underflow to zero), so
    /// adding a `±0.0` term is always the identity. Loss and gradients are
    /// therefore bit-identical to the dense reference; only the transient
    /// delta buffer (whose skipped entries feed nothing) is left unwritten.
    /// The scalar-vs-batched DQN tests gate the end-to-end equivalence.
    fn grad_td_chunk_into(
        &self,
        inputs: &[&[f64]],
        actions: &[usize],
        bootstraps: &[f64],
        scale: f64,
        ws: &mut BatchWorkspace,
    ) -> Result<f64, NetworkError> {
        self.pack_batch(inputs, ws)?;
        self.forward_trace_batch(ws);
        let batch = inputs.len();
        let last = self.layers.len() - 1;
        let act_last = self.layers[last].activation;
        let mut total_loss = 0.0;
        // Sparse output layer: per sample the only non-zero residual sits at
        // the action index, so the loss reduces to that one squared term and
        // dW/db accumulate a single scaled row per sample — in the same
        // ascending sample order as the dense accumulation.
        let LayerGrad { weights: gw, bias: gb } = &mut ws.grads[last];
        gw.as_mut_slice().fill(0.0);
        gb.fill(0.0);
        for (s, (&a, &bootstrap)) in actions.iter().zip(bootstraps).enumerate() {
            let o = ws.acts[last + 1].row(s)[a];
            let r = o - bootstrap;
            total_loss += r * r / 2.0;
            let d = r * act_last.derivative(ws.pres[last].row(s)[a]);
            ws.deltas[last].row_mut(s)[a] = d;
            let t = scale * d;
            for (gwc, &x) in gw.row_mut(a).iter_mut().zip(ws.acts[last].row(s)) {
                *gwc += t * x;
            }
            gb[a] += t;
        }
        if last > 0 {
            // Sparse propagation: Δ_prev[s] = δ_s · W[a_s] ⊙ σ'(z_prev) —
            // one weight row per sample instead of the full Δ·W product.
            let w = &self.layers[last].weights;
            let act_prev = self.layers[last - 1].activation;
            let (lower, upper) = ws.deltas.split_at_mut(last);
            let prev = &mut lower[last - 1];
            for (s, &a) in actions.iter().enumerate() {
                let d = upper[0].row(s)[a];
                for ((p, &wv), &z) in
                    prev.row_mut(s).iter_mut().zip(w.row(a)).zip(ws.pres[last - 1].row(s))
                {
                    *p = (d * wv) * act_prev.derivative(z);
                }
            }
            self.backward_layers_into(last - 1, batch, scale, ws);
        }
        Ok(total_loss)
    }

    /// Shared dense backward pass over layers `0..=top`: consumes the deltas
    /// already in `ws.deltas[top]` and fills `ws.grads[..=top]`.
    fn backward_layers_into(&self, top: usize, batch: usize, scale: f64, ws: &mut BatchWorkspace) {
        for li in (0..=top).rev() {
            // dW = (scale·Δ)ᵀ·A_in with samples ascending — the same
            // accumulation order (and the same `(scale·δ)·a` product shape)
            // as the per-sample reference; db likewise.
            ws.deltas[li]
                .matmul_transpose_a_scaled_into(&ws.acts[li], scale, &mut ws.grads[li].weights)
                .expect("sizes consistent");
            let gb = &mut ws.grads[li].bias;
            gb.fill(0.0);
            for s in 0..batch {
                for (b, &d) in gb.iter_mut().zip(ws.deltas[li].row(s)) {
                    *b += scale * d;
                }
            }
            // Propagate: Δ_prev = (Δ·W) ⊙ σ'(z_prev), rows of W ascending as
            // in the per-sample loop.
            if li > 0 {
                let (lower, upper) = ws.deltas.split_at_mut(li);
                let prev = &mut lower[li - 1];
                upper[0].matmul_into(&self.layers[li].weights, prev).expect("sizes consistent");
                let act = self.layers[li - 1].activation;
                for s in 0..batch {
                    for (d, &z) in prev.row_mut(s).iter_mut().zip(ws.pres[li - 1].row(s)) {
                        *d *= act.derivative(z);
                    }
                }
            }
        }
    }

    /// Batched loss + gradients written into `ws.grads`.
    ///
    /// Bit-identical to the per-sample [`Mlp::gradients`] for batches of at
    /// most `GRAD_CHUNK` samples. Larger batches are split at fixed
    /// `GRAD_CHUNK` boundaries, chunk partials run through `dcta-parallel`,
    /// and the reduction happens serially in ascending chunk order — a
    /// different (equally valid) summation order than the per-sample path,
    /// but invariant to the thread count.
    fn gradients_batched(
        &self,
        inputs: &[&[f64]],
        targets: &[&[f64]],
        ws: &mut BatchWorkspace,
    ) -> Result<f64, NetworkError> {
        if inputs.is_empty() || inputs.len() != targets.len() {
            return Err(NetworkError::EmptyBatch);
        }
        for y in targets {
            if y.len() != self.output_size() {
                return Err(NetworkError::ArityMismatch {
                    expected: self.output_size(),
                    got: y.len(),
                });
            }
        }
        let scale = 1.0 / inputs.len() as f64;
        if inputs.len() <= GRAD_CHUNK {
            let total = self.grad_chunk_into(inputs, targets, scale, ws)?;
            return Ok(total * scale);
        }
        let bounds: Vec<(usize, usize)> = (0..inputs.len())
            .step_by(GRAD_CHUNK)
            .map(|s| (s, (s + GRAD_CHUNK).min(inputs.len())))
            .collect();
        // Grain 1: one chunk is GRAD_CHUNK whole forward/backward passes,
        // far above thread spawn cost, so even two chunks get two threads.
        let partials = parallel::try_par_map_grained(&bounds, 1, |&(s, e)| {
            let mut local = BatchWorkspace::new();
            self.grad_chunk_into(&inputs[s..e], &targets[s..e], scale, &mut local)
                .map(|loss| (loss, local.grads))
        })?;
        // Serial ascending reduction into the caller's workspace.
        ws.ensure(self, 0);
        for g in &mut ws.grads {
            g.weights.as_mut_slice().fill(0.0);
            g.bias.fill(0.0);
        }
        let mut total = 0.0;
        for (chunk_loss, chunk_grads) in &partials {
            total += chunk_loss;
            for (dst, src) in ws.grads.iter_mut().zip(chunk_grads) {
                for (d, &s) in dst.weights.as_mut_slice().iter_mut().zip(src.weights.as_slice()) {
                    *d += s;
                }
                for (d, &s) in dst.bias.iter_mut().zip(&src.bias) {
                    *d += s;
                }
            }
        }
        Ok(total * scale)
    }

    /// One optimiser step on the batch MSE via the batched path; scratch
    /// lives in `ws`, so steady-state training allocates nothing for batches
    /// of at most `GRAD_CHUNK` samples. Returns the pre-step loss.
    ///
    /// Bit-identical to [`Mlp::train_batch`] for such batches.
    ///
    /// # Errors
    ///
    /// [`NetworkError::EmptyBatch`] or [`NetworkError::ArityMismatch`].
    pub fn train_batch_ws(
        &mut self,
        inputs: &[&[f64]],
        targets: &[&[f64]],
        optimizer: &mut impl Optimizer,
        ws: &mut BatchWorkspace,
    ) -> Result<f64, NetworkError> {
        let loss = self.gradients_batched(inputs, targets, ws)?;
        optimizer.step(self, &ws.grads);
        Ok(loss)
    }

    /// One optimiser step on the temporal-difference loss: the target row
    /// for sample `s` is the network's *own* prediction with entry
    /// `actions[s]` replaced by `bootstraps[s]` — the Q-learning update —
    /// computed from the training forward itself instead of a separate
    /// predict-the-targets pass. Bit-identical to materialising those target
    /// rows and calling [`Mlp::train_batch_ws`], one batched forward
    /// cheaper. Chunking above `GRAD_CHUNK` behaves exactly as in
    /// [`Mlp::train_batch_ws`].
    ///
    /// # Errors
    ///
    /// [`NetworkError::EmptyBatch`] when the batch is empty or the slice
    /// lengths disagree; [`NetworkError::ArityMismatch`] when an action
    /// index is out of range for the output layer.
    pub fn train_td_batch_ws(
        &mut self,
        inputs: &[&[f64]],
        actions: &[usize],
        bootstraps: &[f64],
        optimizer: &mut impl Optimizer,
        ws: &mut BatchWorkspace,
    ) -> Result<f64, NetworkError> {
        if inputs.is_empty() || inputs.len() != actions.len() || inputs.len() != bootstraps.len() {
            return Err(NetworkError::EmptyBatch);
        }
        for &a in actions {
            if a >= self.output_size() {
                return Err(NetworkError::ArityMismatch { expected: self.output_size(), got: a });
            }
        }
        let scale = 1.0 / inputs.len() as f64;
        let loss = if inputs.len() <= GRAD_CHUNK {
            let total = self.grad_td_chunk_into(inputs, actions, bootstraps, scale, ws)?;
            total * scale
        } else {
            let bounds: Vec<(usize, usize)> = (0..inputs.len())
                .step_by(GRAD_CHUNK)
                .map(|s| (s, (s + GRAD_CHUNK).min(inputs.len())))
                .collect();
            // Grain 1, as in `gradients_batched`: a chunk is GRAD_CHUNK whole
            // forward/backward passes.
            let partials = parallel::try_par_map_grained(&bounds, 1, |&(s, e)| {
                let mut local = BatchWorkspace::new();
                self.grad_td_chunk_into(
                    &inputs[s..e],
                    &actions[s..e],
                    &bootstraps[s..e],
                    scale,
                    &mut local,
                )
                .map(|loss| (loss, local.grads))
            })?;
            ws.ensure(self, 0);
            for g in &mut ws.grads {
                g.weights.as_mut_slice().fill(0.0);
                g.bias.fill(0.0);
            }
            let mut total = 0.0;
            for (chunk_loss, chunk_grads) in &partials {
                total += chunk_loss;
                for (dst, src) in ws.grads.iter_mut().zip(chunk_grads) {
                    for (d, &s) in dst.weights.as_mut_slice().iter_mut().zip(src.weights.as_slice())
                    {
                        *d += s;
                    }
                    for (d, &s) in dst.bias.iter_mut().zip(&src.bias) {
                        *d += s;
                    }
                }
            }
            total * scale
        };
        optimizer.step(self, &ws.grads);
        Ok(loss)
    }

    /// All trainable parameters' raw `f64` bit patterns in a fixed layer
    /// order. Test hook for bit-identity assertions across execution
    /// strategies.
    #[doc(hidden)]
    pub fn parameter_bits(&self) -> Vec<u64> {
        let mut bits = Vec::with_capacity(self.num_parameters());
        for l in &self.layers {
            bits.extend(l.weights.as_slice().iter().map(|x| x.to_bits()));
            bits.extend(l.bias.iter().map(|x| x.to_bits()));
        }
        bits
    }

    /// Mean-squared-error over a batch: `mean_i ||f(x_i) - y_i||² / 2`.
    ///
    /// # Errors
    ///
    /// [`NetworkError::EmptyBatch`] or [`NetworkError::ArityMismatch`].
    pub fn loss(&self, inputs: &[Vec<f64>], targets: &[Vec<f64>]) -> Result<f64, NetworkError> {
        if inputs.is_empty() || inputs.len() != targets.len() {
            return Err(NetworkError::EmptyBatch);
        }
        // One batched forward instead of a fresh allocating `forward` per
        // sample; per-row outputs (and hence the loss) are bit-identical.
        let refs: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
        let mut ws = BatchWorkspace::new();
        let out = self.forward_batch_ws(&refs, &mut ws)?;
        let mut total = 0.0;
        for (s, y) in targets.iter().enumerate() {
            if y.len() != self.output_size() {
                return Err(NetworkError::ArityMismatch {
                    expected: self.output_size(),
                    got: y.len(),
                });
            }
            total += out.row(s).iter().zip(y).map(|(o, t)| (o - t) * (o - t)).sum::<f64>() / 2.0;
        }
        Ok(total / inputs.len() as f64)
    }

    /// One optimiser step on the batch MSE. Returns the pre-step loss.
    ///
    /// This is the *per-sample reference path* (one forward/backward per
    /// sample); [`Mlp::train_batch_ws`] is the batched equivalent, kept
    /// bit-identical for batches of at most `GRAD_CHUNK` samples so the two
    /// can be A/B-compared in tests and benchmarks.
    ///
    /// DQN usage note: passing targets equal to the current prediction in
    /// every coordinate except the taken action makes this exactly the Alg. 1
    /// per-action temporal-difference update.
    ///
    /// # Errors
    ///
    /// [`NetworkError::EmptyBatch`] or [`NetworkError::ArityMismatch`].
    pub fn train_batch(
        &mut self,
        inputs: &[Vec<f64>],
        targets: &[Vec<f64>],
        optimizer: &mut impl Optimizer,
    ) -> Result<f64, NetworkError> {
        let (loss, grads) = self.gradients(inputs, targets)?;
        optimizer.step(self, &grads);
        Ok(loss)
    }

    /// Computes batch loss and parameter gradients without applying them.
    fn gradients(
        &self,
        inputs: &[Vec<f64>],
        targets: &[Vec<f64>],
    ) -> Result<(f64, Vec<LayerGrad>), NetworkError> {
        if inputs.is_empty() || inputs.len() != targets.len() {
            return Err(NetworkError::EmptyBatch);
        }
        let mut grads: Vec<LayerGrad> = self
            .layers
            .iter()
            .map(|l| LayerGrad {
                weights: Matrix::zeros(l.weights.rows(), l.weights.cols()),
                bias: vec![0.0; l.bias.len()],
            })
            .collect();
        let mut total_loss = 0.0;
        let scale = 1.0 / inputs.len() as f64;

        for (x, y) in inputs.iter().zip(targets) {
            if x.len() != self.input_size() {
                return Err(NetworkError::ArityMismatch {
                    expected: self.input_size(),
                    got: x.len(),
                });
            }
            if y.len() != self.output_size() {
                return Err(NetworkError::ArityMismatch {
                    expected: self.output_size(),
                    got: y.len(),
                });
            }
            let (pres, acts) = self.forward_trace(x);
            let out = acts.last().expect("non-empty");
            total_loss += out.iter().zip(y).map(|(o, t)| (o - t) * (o - t)).sum::<f64>() / 2.0;

            // delta at output: (out - y) ⊙ σ'(z)
            let mut delta: Vec<f64> = out
                .iter()
                .zip(y)
                .zip(&pres[self.layers.len() - 1])
                .map(|((o, t), &z)| {
                    (o - t) * self.layers[self.layers.len() - 1].activation.derivative(z)
                })
                .collect();

            for li in (0..self.layers.len()).rev() {
                // Accumulate grads for layer li: dW = delta ⊗ act_in, db = delta.
                let act_in = &acts[li];
                let g = &mut grads[li];
                for (r, &dr) in delta.iter().enumerate() {
                    let row = g.weights.row_mut(r);
                    for (gw, &a) in row.iter_mut().zip(act_in) {
                        *gw += scale * dr * a;
                    }
                    g.bias[r] += scale * dr;
                }
                // Propagate delta to previous layer.
                if li > 0 {
                    let w = &self.layers[li].weights;
                    let mut next = vec![0.0; w.cols()];
                    for (r, &dr) in delta.iter().enumerate() {
                        for (nc, &wrc) in next.iter_mut().zip(w.row(r)) {
                            *nc += dr * wrc;
                        }
                    }
                    for (nc, &z) in next.iter_mut().zip(&pres[li - 1]) {
                        *nc *= self.layers[li - 1].activation.derivative(z);
                    }
                    delta = next;
                }
            }
        }
        Ok((total_loss * scale, grads))
    }

    /// Copies all parameters from `other` (used for DQN target networks).
    ///
    /// # Errors
    ///
    /// [`NetworkError::ArityMismatch`] when architectures differ.
    pub fn copy_parameters_from(&mut self, other: &Mlp) -> Result<(), NetworkError> {
        if self.sizes != other.sizes {
            return Err(NetworkError::ArityMismatch {
                expected: self.num_parameters(),
                got: other.num_parameters(),
            });
        }
        self.layers.clone_from(&other.layers);
        Ok(())
    }
}

/// A gradient-descent rule. Sealed in practice: the two provided impls cover
/// the paper's needs and the trait operates on private gradient types.
pub trait Optimizer {
    /// Applies one update to `net` from accumulated `grads`.
    #[doc(hidden)]
    fn step(&mut self, net: &mut Mlp, grads: &[LayerGrad]);
}

/// Plain SGD with optional momentum.
#[derive(Debug, Clone, PartialEq)]
pub struct SgdOptimizer {
    learning_rate: f64,
    momentum: f64,
    velocity: Option<Vec<LayerGrad>>,
}

impl SgdOptimizer {
    /// Creates an SGD optimiser.
    ///
    /// # Panics
    ///
    /// Panics unless `learning_rate > 0` and `0 <= momentum < 1`.
    pub fn new(learning_rate: f64, momentum: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self { learning_rate, momentum, velocity: None }
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }
}

impl Optimizer for SgdOptimizer {
    fn step(&mut self, net: &mut Mlp, grads: &[LayerGrad]) {
        let velocity = self.velocity.get_or_insert_with(|| {
            grads
                .iter()
                .map(|g| LayerGrad {
                    weights: Matrix::zeros(g.weights.rows(), g.weights.cols()),
                    bias: vec![0.0; g.bias.len()],
                })
                .collect()
        });
        for ((layer, grad), vel) in net.layers.iter_mut().zip(grads).zip(velocity.iter_mut()) {
            vel.weights.scale(self.momentum);
            vel.weights.axpy(-self.learning_rate, &grad.weights).expect("same shape");
            layer.weights.axpy(1.0, &vel.weights).expect("same shape");
            for ((b, &g), v) in layer.bias.iter_mut().zip(&grad.bias).zip(&mut vel.bias) {
                *v = self.momentum * *v - self.learning_rate * g;
                *b += *v;
            }
        }
    }
}

/// Adam optimiser (Kingma & Ba) — the usual choice for DQN training.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamOptimizer {
    learning_rate: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    t: u64,
    m: Option<Vec<LayerGrad>>,
    v: Option<Vec<LayerGrad>>,
}

impl AdamOptimizer {
    /// Creates an Adam optimiser with standard betas (0.9, 0.999).
    ///
    /// # Panics
    ///
    /// Panics unless `learning_rate > 0`.
    pub fn new(learning_rate: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        Self { learning_rate, beta1: 0.9, beta2: 0.999, epsilon: 1e-8, t: 0, m: None, v: None }
    }
}

impl Optimizer for AdamOptimizer {
    fn step(&mut self, net: &mut Mlp, grads: &[LayerGrad]) {
        let zeros = || -> Vec<LayerGrad> {
            grads
                .iter()
                .map(|g| LayerGrad {
                    weights: Matrix::zeros(g.weights.rows(), g.weights.cols()),
                    bias: vec![0.0; g.bias.len()],
                })
                .collect()
        };
        if self.m.is_none() {
            self.m = Some(zeros());
            self.v = Some(zeros());
        }
        self.t += 1;
        let (b1, b2) = (self.beta1, self.beta2);
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let m = self.m.as_mut().expect("initialised above");
        let v = self.v.as_mut().expect("initialised above");
        for (((layer, grad), mi), vi) in
            net.layers.iter_mut().zip(grads).zip(m.iter_mut()).zip(v.iter_mut())
        {
            // Zipped slice walks (no per-element indexing) so the whole
            // element-wise update — including the sqrt/divide — vectorises;
            // per-element arithmetic is unchanged, so bits are unchanged.
            let (lr, eps) = (self.learning_rate, self.epsilon);
            for (((w, &g), mk), vk) in layer
                .weights
                .as_mut_slice()
                .iter_mut()
                .zip(grad.weights.as_slice())
                .zip(mi.weights.as_mut_slice().iter_mut())
                .zip(vi.weights.as_mut_slice().iter_mut())
            {
                *mk = b1 * *mk + (1.0 - b1) * g;
                *vk = b2 * *vk + (1.0 - b2) * g * g;
                let m_hat = *mk / bc1;
                let v_hat = *vk / bc2;
                *w -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            for (((w, &g), mk), vk) in layer
                .bias
                .iter_mut()
                .zip(&grad.bias)
                .zip(mi.bias.iter_mut())
                .zip(vi.bias.iter_mut())
            {
                *mk = b1 * *mk + (1.0 - b1) * g;
                *vk = b2 * *vk + (1.0 - b2) * g * g;
                let m_hat = *mk / bc1;
                let v_hat = *vk / bc2;
                *w -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn construction_validates() {
        let mut r = rng(0);
        assert!(matches!(
            Mlp::new(&[3], Activation::Relu, &mut r),
            Err(NetworkError::TooFewLayers)
        ));
        assert!(matches!(
            Mlp::new(&[3, 0, 1], Activation::Relu, &mut r),
            Err(NetworkError::ZeroWidth)
        ));
        let net = Mlp::new(&[3, 4, 2], Activation::Relu, &mut r).unwrap();
        assert_eq!(net.input_size(), 3);
        assert_eq!(net.output_size(), 2);
        assert_eq!(net.num_parameters(), 3 * 4 + 4 + 4 * 2 + 2);
    }

    #[test]
    fn forward_checks_arity() {
        let net = Mlp::new(&[2, 3, 1], Activation::Relu, &mut rng(1)).unwrap();
        assert!(net.forward(&[1.0, 2.0]).is_ok());
        assert!(matches!(
            net.forward(&[1.0]),
            Err(NetworkError::ArityMismatch { expected: 2, got: 1 })
        ));
    }

    #[test]
    fn gradients_match_finite_differences() {
        // The canonical backprop correctness check.
        let mut net = Mlp::new(&[2, 3, 2], Activation::Tanh, &mut rng(2)).unwrap();
        let inputs = vec![vec![0.3, -0.7], vec![-0.1, 0.9]];
        let targets = vec![vec![0.5, -0.5], vec![-1.0, 1.0]];
        let (_, grads) = net.gradients(&inputs, &targets).unwrap();
        let eps = 1e-6;
        for li in 0..net.layers.len() {
            for k in 0..net.layers[li].weights.as_slice().len() {
                let orig = net.layers[li].weights.as_slice()[k];
                net.layers[li].weights.as_mut_slice()[k] = orig + eps;
                let lp = net.loss(&inputs, &targets).unwrap();
                net.layers[li].weights.as_mut_slice()[k] = orig - eps;
                let lm = net.loss(&inputs, &targets).unwrap();
                net.layers[li].weights.as_mut_slice()[k] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = grads[li].weights.as_slice()[k];
                assert!(
                    (numeric - analytic).abs() < 1e-6,
                    "layer {li} weight {k}: numeric {numeric} vs analytic {analytic}"
                );
            }
            for k in 0..net.layers[li].bias.len() {
                let orig = net.layers[li].bias[k];
                net.layers[li].bias[k] = orig + eps;
                let lp = net.loss(&inputs, &targets).unwrap();
                net.layers[li].bias[k] = orig - eps;
                let lm = net.loss(&inputs, &targets).unwrap();
                net.layers[li].bias[k] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                assert!((numeric - grads[li].bias[k]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn sgd_descends_on_linear_target() {
        let mut net = Mlp::new(&[1, 8, 1], Activation::Relu, &mut rng(3)).unwrap();
        let inputs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 10.0 - 1.0]).collect();
        let targets: Vec<Vec<f64>> = inputs.iter().map(|x| vec![2.0 * x[0] + 0.3]).collect();
        let mut opt = SgdOptimizer::new(0.05, 0.9);
        let first = net.loss(&inputs, &targets).unwrap();
        for _ in 0..300 {
            net.train_batch(&inputs, &targets, &mut opt).unwrap();
        }
        let last = net.loss(&inputs, &targets).unwrap();
        assert!(last < first / 10.0, "loss {first} -> {last}");
    }

    #[test]
    fn adam_fits_xor() {
        let mut net = Mlp::new(&[2, 12, 1], Activation::Tanh, &mut rng(4)).unwrap();
        let inputs = vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]];
        let targets = vec![vec![0.0], vec![1.0], vec![1.0], vec![0.0]];
        let mut opt = AdamOptimizer::new(0.01);
        for _ in 0..2000 {
            net.train_batch(&inputs, &targets, &mut opt).unwrap();
        }
        for (x, y) in inputs.iter().zip(&targets) {
            let out = net.forward(x).unwrap()[0];
            assert!((out - y[0]).abs() < 0.2, "xor({x:?}) = {out}, want {}", y[0]);
        }
    }

    #[test]
    fn copy_parameters_makes_outputs_identical() {
        let mut a = Mlp::new(&[3, 5, 2], Activation::Relu, &mut rng(5)).unwrap();
        let b = Mlp::new(&[3, 5, 2], Activation::Relu, &mut rng(6)).unwrap();
        let x = vec![0.1, -0.2, 0.3];
        assert_ne!(a.forward(&x).unwrap(), b.forward(&x).unwrap());
        a.copy_parameters_from(&b).unwrap();
        assert_eq!(a.forward(&x).unwrap(), b.forward(&x).unwrap());
        // Architecture mismatch is rejected.
        let c = Mlp::new(&[3, 6, 2], Activation::Relu, &mut rng(7)).unwrap();
        assert!(a.copy_parameters_from(&c).is_err());
    }

    #[test]
    fn empty_batch_rejected() {
        let mut net = Mlp::new(&[1, 1], Activation::Relu, &mut rng(8)).unwrap();
        let mut opt = SgdOptimizer::new(0.1, 0.0);
        assert!(matches!(net.train_batch(&[], &[], &mut opt), Err(NetworkError::EmptyBatch)));
        assert!(net.loss(&[], &[]).is_err());
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn bad_learning_rate_panics() {
        SgdOptimizer::new(0.0, 0.0);
    }

    fn random_batch(rng: &mut StdRng, n: usize, dim: usize) -> Vec<Vec<f64>> {
        (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect()).collect()
    }

    #[test]
    fn forward_batch_bits_match_per_sample_forward() {
        let mut r = rng(40);
        let net = Mlp::new(&[5, 9, 7, 3], Activation::Relu, &mut r).unwrap();
        for n in [1, 4, 5, 32] {
            let inputs = random_batch(&mut r, n, 5);
            let refs: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
            let batched = net.forward_batch(&refs).unwrap();
            for (x, row) in inputs.iter().zip(&batched) {
                let single = net.forward(x).unwrap();
                assert_eq!(
                    row.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    single.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "batch size {n} diverged from per-sample forward"
                );
            }
        }
    }

    #[test]
    fn train_batch_ws_bits_match_per_sample_path() {
        for batch in [1, 3, 32, GRAD_CHUNK] {
            let mut r = rng(41);
            let mut scalar = Mlp::new(&[4, 8, 2], Activation::Tanh, &mut r).unwrap();
            let mut batched = scalar.clone();
            let inputs = random_batch(&mut r, batch, 4);
            let targets = random_batch(&mut r, batch, 2);
            let refs_x: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
            let refs_y: Vec<&[f64]> = targets.iter().map(Vec::as_slice).collect();
            let mut opt_s = AdamOptimizer::new(0.01);
            let mut opt_b = AdamOptimizer::new(0.01);
            let mut ws = BatchWorkspace::new();
            for _ in 0..5 {
                let ls = scalar.train_batch(&inputs, &targets, &mut opt_s).unwrap();
                let lb = batched.train_batch_ws(&refs_x, &refs_y, &mut opt_b, &mut ws).unwrap();
                assert_eq!(ls.to_bits(), lb.to_bits(), "loss diverged at batch {batch}");
            }
            assert_eq!(
                scalar.parameter_bits(),
                batched.parameter_bits(),
                "parameters diverged at batch {batch}"
            );
        }
    }

    #[test]
    fn chunked_gradients_match_manual_chunk_reduction() {
        // Above GRAD_CHUNK the batched path switches to fixed-boundary chunk
        // partials reduced in ascending order; replicate that reduction by
        // hand from per-sample gradients and compare bits.
        let n = GRAD_CHUNK + 37;
        let mut r = rng(42);
        let net = Mlp::new(&[3, 6, 2], Activation::Relu, &mut r).unwrap();
        let inputs = random_batch(&mut r, n, 3);
        let targets = random_batch(&mut r, n, 2);
        let refs_x: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
        let refs_y: Vec<&[f64]> = targets.iter().map(Vec::as_slice).collect();
        let mut ws = BatchWorkspace::new();
        let loss = net.gradients_batched(&refs_x, &refs_y, &mut ws).unwrap();

        let scale = 1.0 / n as f64;
        let mut expected: Vec<LayerGrad> = ws
            .grads
            .iter()
            .map(|g| LayerGrad {
                weights: Matrix::zeros(g.weights.rows(), g.weights.cols()),
                bias: vec![0.0; g.bias.len()],
            })
            .collect();
        let mut expected_loss = 0.0;
        for start in (0..n).step_by(GRAD_CHUNK) {
            let end = (start + GRAD_CHUNK).min(n);
            let mut chunk_ws = BatchWorkspace::new();
            let chunk_loss = net
                .grad_chunk_into(&refs_x[start..end], &refs_y[start..end], scale, &mut chunk_ws)
                .unwrap();
            expected_loss += chunk_loss;
            for (dst, src) in expected.iter_mut().zip(&chunk_ws.grads) {
                for (d, &s) in dst.weights.as_mut_slice().iter_mut().zip(src.weights.as_slice()) {
                    *d += s;
                }
                for (d, &s) in dst.bias.iter_mut().zip(&src.bias) {
                    *d += s;
                }
            }
        }
        assert_eq!(loss.to_bits(), (expected_loss * scale).to_bits());
        for (got, want) in ws.grads.iter().zip(&expected) {
            let gb: Vec<u64> = got.weights.as_slice().iter().map(|x| x.to_bits()).collect();
            let wb: Vec<u64> = want.weights.as_slice().iter().map(|x| x.to_bits()).collect();
            assert_eq!(gb, wb);
            assert_eq!(
                got.bias.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                want.bias.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn chunked_gradients_descend() {
        // Sanity: a > GRAD_CHUNK batch still trains (finite-difference level
        // checks live in gradients_match_finite_differences; this guards the
        // chunk plumbing end to end).
        let n = 2 * GRAD_CHUNK + 5;
        let mut r = rng(43);
        let mut net = Mlp::new(&[1, 8, 1], Activation::Relu, &mut r).unwrap();
        let inputs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64 - 0.5]).collect();
        let targets: Vec<Vec<f64>> = inputs.iter().map(|x| vec![1.5 * x[0] - 0.2]).collect();
        let refs_x: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
        let refs_y: Vec<&[f64]> = targets.iter().map(Vec::as_slice).collect();
        let mut opt = SgdOptimizer::new(0.05, 0.9);
        let mut ws = BatchWorkspace::new();
        let first = net.loss(&inputs, &targets).unwrap();
        for _ in 0..300 {
            net.train_batch_ws(&refs_x, &refs_y, &mut opt, &mut ws).unwrap();
        }
        let last = net.loss(&inputs, &targets).unwrap();
        assert!(last < first / 10.0, "loss {first} -> {last}");
    }

    #[test]
    fn batched_path_validates() {
        let mut net = Mlp::new(&[2, 3, 1], Activation::Relu, &mut rng(44)).unwrap();
        let mut opt = SgdOptimizer::new(0.1, 0.0);
        let mut ws = BatchWorkspace::new();
        assert!(matches!(net.forward_batch(&[]), Err(NetworkError::EmptyBatch)));
        assert!(matches!(
            net.forward_batch(&[&[1.0][..]]),
            Err(NetworkError::ArityMismatch { expected: 2, got: 1 })
        ));
        assert!(matches!(
            net.train_batch_ws(&[], &[], &mut opt, &mut ws),
            Err(NetworkError::EmptyBatch)
        ));
        assert!(matches!(
            net.train_batch_ws(&[&[1.0, 2.0][..]], &[&[0.0, 0.0][..]], &mut opt, &mut ws),
            Err(NetworkError::ArityMismatch { expected: 1, got: 2 })
        ));
    }
}
