//! A small dense multi-layer perceptron with backpropagation.
//!
//! The paper's Deep Q-Network (§III-D, Alg. 1) needs only a modest value
//! network: the state is an `N × M` binary selection matrix flattened to a
//! vector, and the output is one Q-value per action. This module provides
//! exactly that — dense layers, ReLU/tanh activations, mean-squared-error
//! loss, and SGD/Adam optimisers — with no external deep-learning
//! dependency, as called for by the reproduction's substitution rule.

use crate::linalg::Matrix;
use rand::Rng;
use std::fmt;

/// Activation function applied element-wise after a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// Rectified linear unit `max(0, x)`.
    #[default]
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// No nonlinearity (used for output layers of value networks).
    Identity,
}

impl Activation {
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }

    /// Derivative expressed in terms of the *pre-activation* input `x`.
    fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - x.tanh().powi(2),
            Activation::Identity => 1.0,
        }
    }
}

/// Error returned by network construction or use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// Fewer than two layer sizes supplied (need at least input and output).
    TooFewLayers,
    /// A layer size was zero.
    ZeroWidth,
    /// Input/target arity did not match the network.
    ArityMismatch {
        /// Expected length.
        expected: usize,
        /// Supplied length.
        got: usize,
    },
    /// An empty training batch was supplied.
    EmptyBatch,
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::TooFewLayers => {
                write!(f, "network needs at least input and output sizes")
            }
            NetworkError::ZeroWidth => write!(f, "layer width must be at least 1"),
            NetworkError::ArityMismatch { expected, got } => {
                write!(f, "expected a vector of length {expected}, got {got}")
            }
            NetworkError::EmptyBatch => write!(f, "training batch is empty"),
        }
    }
}

impl std::error::Error for NetworkError {}

#[derive(Debug, Clone, PartialEq)]
struct Layer {
    /// `out × in` weight matrix.
    weights: Matrix,
    bias: Vec<f64>,
    activation: Activation,
}

/// Gradients of the loss with respect to one layer's parameters.
///
/// Public only because [`Optimizer::step`] mentions it; its fields are
/// crate-private, so downstream crates cannot construct or inspect it.
#[doc(hidden)]
#[derive(Debug, Clone, PartialEq)]
pub struct LayerGrad {
    weights: Matrix,
    bias: Vec<f64>,
}

/// A dense feed-forward network.
///
/// # Examples
///
/// ```
/// use learn::nn::{Activation, Mlp, SgdOptimizer};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// // 2 inputs -> 8 hidden -> 1 output.
/// let mut net = Mlp::new(&[2, 8, 1], Activation::Tanh, &mut rng)?;
/// let mut opt = SgdOptimizer::new(0.1, 0.0);
/// for _ in 0..500 {
///     // learn XOR-ish parity of signs
///     net.train_batch(
///         &[vec![1.0, 1.0], vec![-1.0, -1.0], vec![1.0, -1.0], vec![-1.0, 1.0]],
///         &[vec![-1.0], vec![-1.0], vec![1.0], vec![1.0]],
///         &mut opt,
///     )?;
/// }
/// assert!(net.forward(&[1.0, -1.0])?[0] > 0.0);
/// assert!(net.forward(&[1.0, 1.0])?[0] < 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Layer>,
    sizes: Vec<usize>,
}

impl Mlp {
    /// Builds a network with the given layer sizes. All hidden layers use
    /// `hidden_activation`; the output layer is linear (Identity), the
    /// standard choice for Q-value regression.
    ///
    /// Weights are initialised with He/Xavier-style scaling from `rng`.
    ///
    /// # Errors
    ///
    /// [`NetworkError::TooFewLayers`] / [`NetworkError::ZeroWidth`] on a bad
    /// architecture.
    pub fn new(
        sizes: &[usize],
        hidden_activation: Activation,
        rng: &mut impl Rng,
    ) -> Result<Self, NetworkError> {
        if sizes.len() < 2 {
            return Err(NetworkError::TooFewLayers);
        }
        if sizes.contains(&0) {
            return Err(NetworkError::ZeroWidth);
        }
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for w in sizes.windows(2) {
            let (fan_in, fan_out) = (w[0], w[1]);
            let is_output = layers.len() == sizes.len() - 2;
            let scale = (2.0 / fan_in as f64).sqrt();
            let mut weights = Matrix::zeros(fan_out, fan_in);
            for v in weights.as_mut_slice() {
                *v = rng.gen_range(-1.0..1.0) * scale;
            }
            layers.push(Layer {
                weights,
                bias: vec![0.0; fan_out],
                activation: if is_output { Activation::Identity } else { hidden_activation },
            });
        }
        Ok(Self { layers, sizes: sizes.to_vec() })
    }

    /// Input arity.
    pub fn input_size(&self) -> usize {
        self.sizes[0]
    }

    /// Output arity.
    pub fn output_size(&self) -> usize {
        *self.sizes.last().expect("at least two sizes")
    }

    /// Total number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.layers.iter().map(|l| l.weights.rows() * l.weights.cols() + l.bias.len()).sum()
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// [`NetworkError::ArityMismatch`] when `input` has the wrong length.
    pub fn forward(&self, input: &[f64]) -> Result<Vec<f64>, NetworkError> {
        if input.len() != self.input_size() {
            return Err(NetworkError::ArityMismatch {
                expected: self.input_size(),
                got: input.len(),
            });
        }
        let mut act = input.to_vec();
        for layer in &self.layers {
            let z = layer.weights.matvec(&act).expect("sizes consistent by construction");
            act =
                z.iter().zip(&layer.bias).map(|(&zi, &b)| layer.activation.apply(zi + b)).collect();
        }
        Ok(act)
    }

    /// Forward pass retaining pre-activations and activations per layer, for
    /// backprop. Returns `(pre_activations, activations)` where
    /// `activations[0]` is the input.
    fn forward_trace(&self, input: &[f64]) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut pres = Vec::with_capacity(self.layers.len());
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(input.to_vec());
        for layer in &self.layers {
            let mut z = layer.weights.matvec(acts.last().expect("non-empty")).expect("sizes");
            for (zi, &b) in z.iter_mut().zip(&layer.bias) {
                *zi += b;
            }
            let a = z.iter().map(|&zi| layer.activation.apply(zi)).collect();
            pres.push(z);
            acts.push(a);
        }
        (pres, acts)
    }

    /// Mean-squared-error over a batch: `mean_i ||f(x_i) - y_i||² / 2`.
    ///
    /// # Errors
    ///
    /// [`NetworkError::EmptyBatch`] or [`NetworkError::ArityMismatch`].
    pub fn loss(&self, inputs: &[Vec<f64>], targets: &[Vec<f64>]) -> Result<f64, NetworkError> {
        if inputs.is_empty() || inputs.len() != targets.len() {
            return Err(NetworkError::EmptyBatch);
        }
        let mut total = 0.0;
        for (x, y) in inputs.iter().zip(targets) {
            let out = self.forward(x)?;
            if out.len() != y.len() {
                return Err(NetworkError::ArityMismatch { expected: out.len(), got: y.len() });
            }
            total += out.iter().zip(y).map(|(o, t)| (o - t) * (o - t)).sum::<f64>() / 2.0;
        }
        Ok(total / inputs.len() as f64)
    }

    /// One optimiser step on the batch MSE. Returns the pre-step loss.
    ///
    /// DQN usage note: passing targets equal to the current prediction in
    /// every coordinate except the taken action makes this exactly the Alg. 1
    /// per-action temporal-difference update.
    ///
    /// # Errors
    ///
    /// [`NetworkError::EmptyBatch`] or [`NetworkError::ArityMismatch`].
    pub fn train_batch(
        &mut self,
        inputs: &[Vec<f64>],
        targets: &[Vec<f64>],
        optimizer: &mut impl Optimizer,
    ) -> Result<f64, NetworkError> {
        let (loss, grads) = self.gradients(inputs, targets)?;
        optimizer.step(self, &grads);
        Ok(loss)
    }

    /// Computes batch loss and parameter gradients without applying them.
    fn gradients(
        &self,
        inputs: &[Vec<f64>],
        targets: &[Vec<f64>],
    ) -> Result<(f64, Vec<LayerGrad>), NetworkError> {
        if inputs.is_empty() || inputs.len() != targets.len() {
            return Err(NetworkError::EmptyBatch);
        }
        let mut grads: Vec<LayerGrad> = self
            .layers
            .iter()
            .map(|l| LayerGrad {
                weights: Matrix::zeros(l.weights.rows(), l.weights.cols()),
                bias: vec![0.0; l.bias.len()],
            })
            .collect();
        let mut total_loss = 0.0;
        let scale = 1.0 / inputs.len() as f64;

        for (x, y) in inputs.iter().zip(targets) {
            if x.len() != self.input_size() {
                return Err(NetworkError::ArityMismatch {
                    expected: self.input_size(),
                    got: x.len(),
                });
            }
            if y.len() != self.output_size() {
                return Err(NetworkError::ArityMismatch {
                    expected: self.output_size(),
                    got: y.len(),
                });
            }
            let (pres, acts) = self.forward_trace(x);
            let out = acts.last().expect("non-empty");
            total_loss += out.iter().zip(y).map(|(o, t)| (o - t) * (o - t)).sum::<f64>() / 2.0;

            // delta at output: (out - y) ⊙ σ'(z)
            let mut delta: Vec<f64> = out
                .iter()
                .zip(y)
                .zip(&pres[self.layers.len() - 1])
                .map(|((o, t), &z)| {
                    (o - t) * self.layers[self.layers.len() - 1].activation.derivative(z)
                })
                .collect();

            for li in (0..self.layers.len()).rev() {
                // Accumulate grads for layer li: dW = delta ⊗ act_in, db = delta.
                let act_in = &acts[li];
                let g = &mut grads[li];
                for (r, &dr) in delta.iter().enumerate() {
                    let row = g.weights.row_mut(r);
                    for (gw, &a) in row.iter_mut().zip(act_in) {
                        *gw += scale * dr * a;
                    }
                    g.bias[r] += scale * dr;
                }
                // Propagate delta to previous layer.
                if li > 0 {
                    let w = &self.layers[li].weights;
                    let mut next = vec![0.0; w.cols()];
                    for (r, &dr) in delta.iter().enumerate() {
                        for (nc, &wrc) in next.iter_mut().zip(w.row(r)) {
                            *nc += dr * wrc;
                        }
                    }
                    for (nc, &z) in next.iter_mut().zip(&pres[li - 1]) {
                        *nc *= self.layers[li - 1].activation.derivative(z);
                    }
                    delta = next;
                }
            }
        }
        Ok((total_loss * scale, grads))
    }

    /// Copies all parameters from `other` (used for DQN target networks).
    ///
    /// # Errors
    ///
    /// [`NetworkError::ArityMismatch`] when architectures differ.
    pub fn copy_parameters_from(&mut self, other: &Mlp) -> Result<(), NetworkError> {
        if self.sizes != other.sizes {
            return Err(NetworkError::ArityMismatch {
                expected: self.num_parameters(),
                got: other.num_parameters(),
            });
        }
        self.layers.clone_from(&other.layers);
        Ok(())
    }
}

/// A gradient-descent rule. Sealed in practice: the two provided impls cover
/// the paper's needs and the trait operates on private gradient types.
pub trait Optimizer {
    /// Applies one update to `net` from accumulated `grads`.
    #[doc(hidden)]
    fn step(&mut self, net: &mut Mlp, grads: &[LayerGrad]);
}

/// Plain SGD with optional momentum.
#[derive(Debug, Clone, PartialEq)]
pub struct SgdOptimizer {
    learning_rate: f64,
    momentum: f64,
    velocity: Option<Vec<LayerGrad>>,
}

impl SgdOptimizer {
    /// Creates an SGD optimiser.
    ///
    /// # Panics
    ///
    /// Panics unless `learning_rate > 0` and `0 <= momentum < 1`.
    pub fn new(learning_rate: f64, momentum: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self { learning_rate, momentum, velocity: None }
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }
}

impl Optimizer for SgdOptimizer {
    fn step(&mut self, net: &mut Mlp, grads: &[LayerGrad]) {
        let velocity = self.velocity.get_or_insert_with(|| {
            grads
                .iter()
                .map(|g| LayerGrad {
                    weights: Matrix::zeros(g.weights.rows(), g.weights.cols()),
                    bias: vec![0.0; g.bias.len()],
                })
                .collect()
        });
        for ((layer, grad), vel) in net.layers.iter_mut().zip(grads).zip(velocity.iter_mut()) {
            vel.weights.scale(self.momentum);
            vel.weights.axpy(-self.learning_rate, &grad.weights).expect("same shape");
            layer.weights.axpy(1.0, &vel.weights).expect("same shape");
            for ((b, &g), v) in layer.bias.iter_mut().zip(&grad.bias).zip(&mut vel.bias) {
                *v = self.momentum * *v - self.learning_rate * g;
                *b += *v;
            }
        }
    }
}

/// Adam optimiser (Kingma & Ba) — the usual choice for DQN training.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamOptimizer {
    learning_rate: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    t: u64,
    m: Option<Vec<LayerGrad>>,
    v: Option<Vec<LayerGrad>>,
}

impl AdamOptimizer {
    /// Creates an Adam optimiser with standard betas (0.9, 0.999).
    ///
    /// # Panics
    ///
    /// Panics unless `learning_rate > 0`.
    pub fn new(learning_rate: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        Self { learning_rate, beta1: 0.9, beta2: 0.999, epsilon: 1e-8, t: 0, m: None, v: None }
    }
}

impl Optimizer for AdamOptimizer {
    fn step(&mut self, net: &mut Mlp, grads: &[LayerGrad]) {
        let zeros = || -> Vec<LayerGrad> {
            grads
                .iter()
                .map(|g| LayerGrad {
                    weights: Matrix::zeros(g.weights.rows(), g.weights.cols()),
                    bias: vec![0.0; g.bias.len()],
                })
                .collect()
        };
        if self.m.is_none() {
            self.m = Some(zeros());
            self.v = Some(zeros());
        }
        self.t += 1;
        let (b1, b2) = (self.beta1, self.beta2);
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let m = self.m.as_mut().expect("initialised above");
        let v = self.v.as_mut().expect("initialised above");
        for (((layer, grad), mi), vi) in
            net.layers.iter_mut().zip(grads).zip(m.iter_mut()).zip(v.iter_mut())
        {
            let wlen = layer.weights.as_slice().len();
            for k in 0..wlen {
                let g = grad.weights.as_slice()[k];
                let mk = &mut mi.weights.as_mut_slice()[k];
                *mk = b1 * *mk + (1.0 - b1) * g;
                let vk = &mut vi.weights.as_mut_slice()[k];
                *vk = b2 * *vk + (1.0 - b2) * g * g;
                let m_hat = *mk / bc1;
                let v_hat = *vk / bc2;
                layer.weights.as_mut_slice()[k] -=
                    self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
            }
            for k in 0..layer.bias.len() {
                let g = grad.bias[k];
                mi.bias[k] = b1 * mi.bias[k] + (1.0 - b1) * g;
                vi.bias[k] = b2 * vi.bias[k] + (1.0 - b2) * g * g;
                let m_hat = mi.bias[k] / bc1;
                let v_hat = vi.bias[k] / bc2;
                layer.bias[k] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn construction_validates() {
        let mut r = rng(0);
        assert!(matches!(
            Mlp::new(&[3], Activation::Relu, &mut r),
            Err(NetworkError::TooFewLayers)
        ));
        assert!(matches!(
            Mlp::new(&[3, 0, 1], Activation::Relu, &mut r),
            Err(NetworkError::ZeroWidth)
        ));
        let net = Mlp::new(&[3, 4, 2], Activation::Relu, &mut r).unwrap();
        assert_eq!(net.input_size(), 3);
        assert_eq!(net.output_size(), 2);
        assert_eq!(net.num_parameters(), 3 * 4 + 4 + 4 * 2 + 2);
    }

    #[test]
    fn forward_checks_arity() {
        let net = Mlp::new(&[2, 3, 1], Activation::Relu, &mut rng(1)).unwrap();
        assert!(net.forward(&[1.0, 2.0]).is_ok());
        assert!(matches!(
            net.forward(&[1.0]),
            Err(NetworkError::ArityMismatch { expected: 2, got: 1 })
        ));
    }

    #[test]
    fn gradients_match_finite_differences() {
        // The canonical backprop correctness check.
        let mut net = Mlp::new(&[2, 3, 2], Activation::Tanh, &mut rng(2)).unwrap();
        let inputs = vec![vec![0.3, -0.7], vec![-0.1, 0.9]];
        let targets = vec![vec![0.5, -0.5], vec![-1.0, 1.0]];
        let (_, grads) = net.gradients(&inputs, &targets).unwrap();
        let eps = 1e-6;
        for li in 0..net.layers.len() {
            for k in 0..net.layers[li].weights.as_slice().len() {
                let orig = net.layers[li].weights.as_slice()[k];
                net.layers[li].weights.as_mut_slice()[k] = orig + eps;
                let lp = net.loss(&inputs, &targets).unwrap();
                net.layers[li].weights.as_mut_slice()[k] = orig - eps;
                let lm = net.loss(&inputs, &targets).unwrap();
                net.layers[li].weights.as_mut_slice()[k] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = grads[li].weights.as_slice()[k];
                assert!(
                    (numeric - analytic).abs() < 1e-6,
                    "layer {li} weight {k}: numeric {numeric} vs analytic {analytic}"
                );
            }
            for k in 0..net.layers[li].bias.len() {
                let orig = net.layers[li].bias[k];
                net.layers[li].bias[k] = orig + eps;
                let lp = net.loss(&inputs, &targets).unwrap();
                net.layers[li].bias[k] = orig - eps;
                let lm = net.loss(&inputs, &targets).unwrap();
                net.layers[li].bias[k] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                assert!((numeric - grads[li].bias[k]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn sgd_descends_on_linear_target() {
        let mut net = Mlp::new(&[1, 8, 1], Activation::Relu, &mut rng(3)).unwrap();
        let inputs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 10.0 - 1.0]).collect();
        let targets: Vec<Vec<f64>> = inputs.iter().map(|x| vec![2.0 * x[0] + 0.3]).collect();
        let mut opt = SgdOptimizer::new(0.05, 0.9);
        let first = net.loss(&inputs, &targets).unwrap();
        for _ in 0..300 {
            net.train_batch(&inputs, &targets, &mut opt).unwrap();
        }
        let last = net.loss(&inputs, &targets).unwrap();
        assert!(last < first / 10.0, "loss {first} -> {last}");
    }

    #[test]
    fn adam_fits_xor() {
        let mut net = Mlp::new(&[2, 12, 1], Activation::Tanh, &mut rng(4)).unwrap();
        let inputs = vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]];
        let targets = vec![vec![0.0], vec![1.0], vec![1.0], vec![0.0]];
        let mut opt = AdamOptimizer::new(0.01);
        for _ in 0..2000 {
            net.train_batch(&inputs, &targets, &mut opt).unwrap();
        }
        for (x, y) in inputs.iter().zip(&targets) {
            let out = net.forward(x).unwrap()[0];
            assert!((out - y[0]).abs() < 0.2, "xor({x:?}) = {out}, want {}", y[0]);
        }
    }

    #[test]
    fn copy_parameters_makes_outputs_identical() {
        let mut a = Mlp::new(&[3, 5, 2], Activation::Relu, &mut rng(5)).unwrap();
        let b = Mlp::new(&[3, 5, 2], Activation::Relu, &mut rng(6)).unwrap();
        let x = vec![0.1, -0.2, 0.3];
        assert_ne!(a.forward(&x).unwrap(), b.forward(&x).unwrap());
        a.copy_parameters_from(&b).unwrap();
        assert_eq!(a.forward(&x).unwrap(), b.forward(&x).unwrap());
        // Architecture mismatch is rejected.
        let c = Mlp::new(&[3, 6, 2], Activation::Relu, &mut rng(7)).unwrap();
        assert!(a.copy_parameters_from(&c).is_err());
    }

    #[test]
    fn empty_batch_rejected() {
        let mut net = Mlp::new(&[1, 1], Activation::Relu, &mut rng(8)).unwrap();
        let mut opt = SgdOptimizer::new(0.1, 0.0);
        assert!(matches!(net.train_batch(&[], &[], &mut opt), Err(NetworkError::EmptyBatch)));
        assert!(net.loss(&[], &[]).is_err());
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn bad_learning_rate_panics() {
        SgdOptimizer::new(0.0, 0.0);
    }
}
