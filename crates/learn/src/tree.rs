//! CART-style binary regression trees.
//!
//! Trees are the building block for the random forest of §IV-B's model
//! comparison (SVM vs AdaBoost vs Random Forest). We fit regression trees on
//! squared error; classification uses `±1` targets and takes the sign of the
//! leaf mean, which for pure leaves is exactly majority vote.

use crate::dataset::Dataset;
use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;

/// Error returned by tree training or prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// Training set was empty.
    EmptyDataset,
    /// Wrong feature arity at predict time.
    ArityMismatch {
        /// Arity the tree was trained with.
        expected: usize,
        /// Arity supplied.
        got: usize,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::EmptyDataset => write!(f, "cannot grow a tree on an empty dataset"),
            TreeError::ArityMismatch { expected, got } => {
                write!(f, "tree expects {expected} features, got {got}")
            }
        }
    }
}

impl std::error::Error for TreeError {}

/// Growth limits for a [`RegressionTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeConfig {
    /// Maximum depth (root at depth 0).
    pub max_depth: usize,
    /// Minimum samples a node must hold to be split further.
    pub min_samples_split: usize,
    /// Number of features considered per split; `None` means all (plain
    /// CART), `Some(m)` random-samples `m` (used by random forests).
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self { max_depth: 8, min_samples_split: 2, max_features: None }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf { value: f64 },
    Split { feature: usize, threshold: f64, left: Box<Node>, right: Box<Node> },
}

/// A fitted regression tree.
///
/// # Examples
///
/// ```
/// use learn::dataset::Dataset;
/// use learn::tree::{RegressionTree, TreeConfig};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ds = Dataset::from_rows(
///     vec![vec![0.0], vec![1.0], vec![10.0], vec![11.0]],
///     vec![0.0, 0.0, 5.0, 5.0],
/// )?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let tree = RegressionTree::fit(&ds, TreeConfig::default(), &mut rng)?;
/// assert_eq!(tree.predict(&[0.5])?, 0.0);
/// assert_eq!(tree.predict(&[10.5])?, 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTree {
    root: Node,
    arity: usize,
    node_count: usize,
}

impl RegressionTree {
    /// Grows a tree on `data` under `config`, drawing feature subsets from
    /// `rng` when `config.max_features` is set.
    ///
    /// # Errors
    ///
    /// [`TreeError::EmptyDataset`] when `data` has no samples.
    pub fn fit(data: &Dataset, config: TreeConfig, rng: &mut impl Rng) -> Result<Self, TreeError> {
        if data.is_empty() {
            return Err(TreeError::EmptyDataset);
        }
        let indices: Vec<usize> = (0..data.len()).collect();
        let mut node_count = 0;
        let root = grow(data, &indices, &config, 0, rng, &mut node_count);
        Ok(Self { root, arity: data.num_features(), node_count })
    }

    /// Number of nodes (splits + leaves) in the tree.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Depth of the deepest leaf (root = 0).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }

    /// Predicts the target for one feature vector.
    ///
    /// # Errors
    ///
    /// [`TreeError::ArityMismatch`] when `x` has the wrong length.
    pub fn predict(&self, x: &[f64]) -> Result<f64, TreeError> {
        if x.len() != self.arity {
            return Err(TreeError::ArityMismatch { expected: self.arity, got: x.len() });
        }
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { value } => return Ok(*value),
                Node::Split { feature, threshold, left, right } => {
                    node = if x[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }
}

fn mean_of(data: &Dataset, idx: &[usize]) -> f64 {
    idx.iter().map(|&i| data.targets()[i]).sum::<f64>() / idx.len() as f64
}

fn sse_of(data: &Dataset, idx: &[usize]) -> f64 {
    let m = mean_of(data, idx);
    idx.iter().map(|&i| (data.targets()[i] - m).powi(2)).sum()
}

fn grow(
    data: &Dataset,
    idx: &[usize],
    config: &TreeConfig,
    depth: usize,
    rng: &mut impl Rng,
    node_count: &mut usize,
) -> Node {
    *node_count += 1;
    let value = mean_of(data, idx);
    if depth >= config.max_depth
        || idx.len() < config.min_samples_split
        || sse_of(data, idx) < 1e-12
    {
        return Node::Leaf { value };
    }

    let d = data.num_features();
    let mut features: Vec<usize> = (0..d).collect();
    if let Some(m) = config.max_features {
        features.shuffle(rng);
        features.truncate(m.clamp(1, d));
    }

    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
    for &feat in &features {
        // Sort sample indices by this feature; candidate thresholds are
        // midpoints between consecutive distinct values.
        let mut order = idx.to_vec();
        order.sort_by(|&a, &b| {
            data.features().row(a)[feat]
                .partial_cmp(&data.features().row(b)[feat])
                .expect("finite features")
        });
        // Prefix sums over sorted order for O(1) split evaluation.
        let ys: Vec<f64> = order.iter().map(|&i| data.targets()[i]).collect();
        let mut prefix_sum = vec![0.0; ys.len() + 1];
        let mut prefix_sq = vec![0.0; ys.len() + 1];
        for (i, &y) in ys.iter().enumerate() {
            prefix_sum[i + 1] = prefix_sum[i] + y;
            prefix_sq[i + 1] = prefix_sq[i] + y * y;
        }
        for cut in 1..order.len() {
            let lo = data.features().row(order[cut - 1])[feat];
            let hi = data.features().row(order[cut])[feat];
            if hi - lo < 1e-12 {
                continue;
            }
            let nl = cut as f64;
            let nr = (order.len() - cut) as f64;
            let sum_l = prefix_sum[cut];
            let sum_r = prefix_sum[order.len()] - sum_l;
            let sq_l = prefix_sq[cut];
            let sq_r = prefix_sq[order.len()] - sq_l;
            let sse = (sq_l - sum_l * sum_l / nl) + (sq_r - sum_r * sum_r / nr);
            if best.is_none_or(|(_, _, b)| sse < b) {
                best = Some((feat, (lo + hi) / 2.0, sse));
            }
        }
    }

    let Some((feature, threshold, best_sse)) = best else {
        return Node::Leaf { value };
    };
    // No improvement over leaving the node intact: stop.
    if best_sse >= sse_of(data, idx) - 1e-12 {
        return Node::Leaf { value };
    }

    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
        idx.iter().partition(|&&i| data.features().row(i)[feature] <= threshold);
    if left_idx.is_empty() || right_idx.is_empty() {
        return Node::Leaf { value };
    }
    Node::Split {
        feature,
        threshold,
        left: Box::new(grow(data, &left_idx, config, depth + 1, rng, node_count)),
        right: Box::new(grow(data, &right_idx, config, depth + 1, rng, node_count)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    fn step_data() -> Dataset {
        Dataset::from_rows(
            vec![vec![0.0], vec![1.0], vec![2.0], vec![10.0], vec![11.0], vec![12.0]],
            vec![1.0, 1.0, 1.0, -1.0, -1.0, -1.0],
        )
        .unwrap()
    }

    #[test]
    fn learns_step_function() {
        let ds = step_data();
        let tree = RegressionTree::fit(&ds, TreeConfig::default(), &mut rng()).unwrap();
        assert_eq!(tree.predict(&[1.5]).unwrap(), 1.0);
        assert_eq!(tree.predict(&[11.0]).unwrap(), -1.0);
        assert_eq!(tree.depth(), 1);
    }

    #[test]
    fn depth_zero_is_constant_mean() {
        let ds = step_data();
        let cfg = TreeConfig { max_depth: 0, ..TreeConfig::default() };
        let tree = RegressionTree::fit(&ds, cfg, &mut rng()).unwrap();
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[5.0]).unwrap(), 0.0); // mean of ±1 targets
    }

    #[test]
    fn perfectly_fits_distinct_points_at_high_depth() {
        let ds = Dataset::from_rows(
            vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]],
            vec![5.0, -2.0, 7.0, 0.5],
        )
        .unwrap();
        let cfg = TreeConfig { max_depth: 10, ..TreeConfig::default() };
        let tree = RegressionTree::fit(&ds, cfg, &mut rng()).unwrap();
        for i in 0..ds.len() {
            let (x, y) = ds.sample(i);
            assert_eq!(tree.predict(x).unwrap(), y);
        }
    }

    #[test]
    fn two_dimensional_split_uses_informative_feature() {
        // Feature 0 is noise; feature 1 carries the signal.
        let ds = Dataset::from_rows(
            vec![vec![0.3, 0.0], vec![0.9, 1.0], vec![0.1, 10.0], vec![0.7, 11.0]],
            vec![1.0, 1.0, -1.0, -1.0],
        )
        .unwrap();
        let tree = RegressionTree::fit(&ds, TreeConfig::default(), &mut rng()).unwrap();
        assert_eq!(tree.predict(&[0.5, 0.5]).unwrap(), 1.0);
        assert_eq!(tree.predict(&[0.5, 10.5]).unwrap(), -1.0);
    }

    #[test]
    fn constant_targets_yield_single_leaf() {
        let ds =
            Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![2.0]], vec![3.0, 3.0, 3.0]).unwrap();
        let tree = RegressionTree::fit(&ds, TreeConfig::default(), &mut rng()).unwrap();
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[99.0]).unwrap(), 3.0);
    }

    #[test]
    fn identical_features_cannot_split() {
        let ds = Dataset::from_rows(vec![vec![1.0], vec![1.0]], vec![0.0, 10.0]).unwrap();
        let tree = RegressionTree::fit(&ds, TreeConfig::default(), &mut rng()).unwrap();
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[1.0]).unwrap(), 5.0);
    }

    #[test]
    fn errors() {
        let empty = step_data().subset(&[]);
        assert!(matches!(
            RegressionTree::fit(&empty, TreeConfig::default(), &mut rng()),
            Err(TreeError::EmptyDataset)
        ));
        let tree = RegressionTree::fit(&step_data(), TreeConfig::default(), &mut rng()).unwrap();
        assert!(matches!(
            tree.predict(&[1.0, 2.0]),
            Err(TreeError::ArityMismatch { expected: 1, got: 2 })
        ));
    }

    #[test]
    fn max_features_one_still_learns_single_feature_signal() {
        let ds = step_data();
        let cfg = TreeConfig { max_features: Some(1), ..TreeConfig::default() };
        let tree = RegressionTree::fit(&ds, cfg, &mut rng()).unwrap();
        assert_eq!(tree.predict(&[0.0]).unwrap(), 1.0);
    }
}
