//! Lloyd's k-means clustering.
//!
//! This is the *offline* environment-definition mode the paper's Discussion
//! (§VII) contrasts against online kNN: historical environment signatures are
//! clustered in advance, and at run time the nearest centroid's samples are
//! used. The fig. ablation `knn-vs-kmeans` in the bench harness compares the
//! two modes.

use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;

use crate::linalg::euclidean_distance;

/// Error returned by k-means.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KMeansError {
    /// No points supplied.
    EmptyInput,
    /// `k` was zero or exceeded the number of points.
    BadK {
        /// Requested cluster count.
        k: usize,
        /// Number of points available.
        points: usize,
    },
    /// Points were ragged.
    ArityMismatch {
        /// Arity of the first point.
        expected: usize,
        /// Arity of the offending point.
        got: usize,
    },
}

impl fmt::Display for KMeansError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KMeansError::EmptyInput => write!(f, "k-means input is empty"),
            KMeansError::BadK { k, points } => {
                write!(f, "k = {k} is invalid for {points} points")
            }
            KMeansError::ArityMismatch { expected, got } => {
                write!(f, "point has {got} features, expected {expected}")
            }
        }
    }
}

impl std::error::Error for KMeansError {}

/// A fitted k-means model.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    centroids: Vec<Vec<f64>>,
    assignments: Vec<usize>,
    inertia: f64,
}

impl KMeans {
    /// Runs Lloyd's algorithm with k-means++-style seeding until assignment
    /// convergence or `max_iters`.
    ///
    /// # Errors
    ///
    /// See [`KMeansError`] variants.
    pub fn fit(
        points: &[Vec<f64>],
        k: usize,
        max_iters: usize,
        rng: &mut impl Rng,
    ) -> Result<Self, KMeansError> {
        if points.is_empty() {
            return Err(KMeansError::EmptyInput);
        }
        let arity = points[0].len();
        if let Some(bad) = points.iter().find(|p| p.len() != arity) {
            return Err(KMeansError::ArityMismatch { expected: arity, got: bad.len() });
        }
        if k == 0 || k > points.len() {
            return Err(KMeansError::BadK { k, points: points.len() });
        }

        // k-means++ seeding: first centroid uniform, rest ∝ squared distance.
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
        centroids.push(points.choose(rng).expect("non-empty").clone());
        while centroids.len() < k {
            let d2: Vec<f64> = points
                .iter()
                .map(|p| {
                    centroids
                        .iter()
                        .map(|c| euclidean_distance(p, c).powi(2))
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            let total: f64 = d2.iter().sum();
            let next = if total <= 0.0 {
                // All remaining points coincide with centroids; pick any.
                points.choose(rng).expect("non-empty").clone()
            } else {
                let mut target = rng.gen_range(0.0..total);
                let mut chosen = points.len() - 1;
                for (i, &w) in d2.iter().enumerate() {
                    if target < w {
                        chosen = i;
                        break;
                    }
                    target -= w;
                }
                points[chosen].clone()
            };
            centroids.push(next);
        }

        let mut assignments = vec![0usize; points.len()];
        for _ in 0..max_iters {
            // Assignment step.
            let mut changed = false;
            for (a, p) in assignments.iter_mut().zip(points) {
                let best = nearest_centroid(&centroids, p);
                if best != *a {
                    *a = best;
                    changed = true;
                }
            }
            // Update step.
            let mut sums = vec![vec![0.0; arity]; k];
            let mut counts = vec![0usize; k];
            for (&a, p) in assignments.iter().zip(points) {
                counts[a] += 1;
                for (s, &x) in sums[a].iter_mut().zip(p) {
                    *s += x;
                }
            }
            for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
                if count > 0 {
                    for (ci, &s) in c.iter_mut().zip(sum) {
                        *ci = s / count as f64;
                    }
                }
                // Empty clusters keep their previous centroid.
            }
            if !changed {
                break;
            }
        }

        let inertia = assignments
            .iter()
            .zip(points)
            .map(|(&a, p)| euclidean_distance(&centroids[a], p).powi(2))
            .sum();
        Ok(Self { centroids, assignments, inertia })
    }

    /// Cluster centroids, one per cluster.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Training-point assignments, parallel to the input order.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Sum of squared distances of points to their centroid.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Index of the centroid closest to `point`.
    ///
    /// # Panics
    ///
    /// Panics if `point` has the wrong arity.
    pub fn predict(&self, point: &[f64]) -> usize {
        nearest_centroid(&self.centroids, point)
    }
}

fn nearest_centroid(centroids: &[Vec<f64>], p: &[f64]) -> usize {
    centroids
        .iter()
        .enumerate()
        .map(|(i, c)| (i, euclidean_distance(c, p)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0)))
        .expect("at least one centroid")
        .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_blobs(n_per: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts = Vec::new();
        for _ in 0..n_per {
            pts.push(vec![rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)]);
        }
        for _ in 0..n_per {
            pts.push(vec![10.0 + rng.gen_range(-0.5..0.5), 10.0 + rng.gen_range(-0.5..0.5)]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = two_blobs(25, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let km = KMeans::fit(&pts, 2, 100, &mut rng).unwrap();
        // All of blob 1 shares one label; blob 2 the other.
        let a0 = km.assignments()[0];
        assert!(km.assignments()[..25].iter().all(|&a| a == a0));
        assert!(km.assignments()[25..].iter().all(|&a| a != a0));
        assert!(km.inertia() < 25.0);
    }

    #[test]
    fn predict_routes_to_nearest() {
        let pts = two_blobs(25, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let km = KMeans::fit(&pts, 2, 100, &mut rng).unwrap();
        let near_origin = km.predict(&[0.2, -0.1]);
        let near_ten = km.predict(&[9.8, 10.3]);
        assert_ne!(near_origin, near_ten);
        assert_eq!(near_origin, km.assignments()[0]);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts = vec![vec![0.0], vec![5.0], vec![9.0]];
        let mut rng = StdRng::seed_from_u64(5);
        let km = KMeans::fit(&pts, 3, 50, &mut rng).unwrap();
        assert!(km.inertia() < 1e-12);
    }

    #[test]
    fn errors_on_invalid_input() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(KMeans::fit(&[], 1, 10, &mut rng), Err(KMeansError::EmptyInput)));
        let pts = vec![vec![0.0], vec![1.0]];
        assert!(matches!(KMeans::fit(&pts, 0, 10, &mut rng), Err(KMeansError::BadK { .. })));
        assert!(matches!(KMeans::fit(&pts, 3, 10, &mut rng), Err(KMeansError::BadK { .. })));
        let ragged = vec![vec![0.0], vec![1.0, 2.0]];
        assert!(matches!(
            KMeans::fit(&ragged, 1, 10, &mut rng),
            Err(KMeansError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn duplicate_points_do_not_crash_seeding() {
        let pts = vec![vec![1.0, 1.0]; 10];
        let mut rng = StdRng::seed_from_u64(9);
        let km = KMeans::fit(&pts, 3, 10, &mut rng).unwrap();
        assert_eq!(km.centroids().len(), 3);
        assert!(km.inertia() < 1e-12);
    }
}
