//! Multi-task transfer learning (MTL) over per-task ridge models.
//!
//! The paper defines a *task* as "a set of data, label and its corresponding
//! learning model for a predefined context" (§II-A) — e.g. COP prediction of
//! one chiller under one load band. Its experiment setup (§V-B) exercises
//! three MTL flavours: **independent** (no sharing), **self-adapted**
//! (similarity-weighted parameter transfer) and **clustered** (transfer
//! within task clusters). All three are implemented here.
//!
//! Parameter transfer uses biased ridge regression: the target task minimises
//! `||y − Xw||² + λ‖w − w₀‖²` where `w₀` is a similarity-weighted blend of
//! source-task parameters. With scarce target data the prior dominates
//! (knowledge flows in); with abundant data the likelihood dominates
//! (tasks stay autonomous) — exactly the data-scarcity remedy the paper
//! attributes to transfer learning.

use crate::dataset::Dataset;
use crate::kmeans::KMeans;
use crate::linalg::{euclidean_distance, Matrix};
use crate::linear::{FitError, LinearModel};
use crate::metrics::mean_prediction_accuracy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// A single learning task: named context plus its local dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferTask {
    name: String,
    data: Dataset,
}

impl TransferTask {
    /// Creates a task from a context name and its dataset.
    pub fn new(name: impl Into<String>, data: Dataset) -> Self {
        Self { name: name.into(), data }
    }

    /// The task's context name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The task's local training data.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Mean feature vector — the task's *signature* used for similarity.
    pub fn signature(&self) -> Vec<f64> {
        let d = self.data.num_features();
        let mut sig = vec![0.0; d];
        for i in 0..self.data.len() {
            for (s, &x) in sig.iter_mut().zip(self.data.features().row(i)) {
                *s += x;
            }
        }
        let n = self.data.len().max(1) as f64;
        for s in &mut sig {
            *s /= n;
        }
        sig
    }
}

/// How knowledge moves between tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MtlMode {
    /// Every task learns alone (the paper's independent MTL baseline).
    Independent,
    /// Each task's prior is a similarity-weighted blend of all other tasks'
    /// independently-fit parameters.
    #[default]
    SelfAdapted,
    /// Tasks are clustered by signature; transfer happens within clusters.
    Clustered {
        /// Number of task clusters.
        num_clusters: usize,
    },
}

/// Hyper-parameters for [`MtlSystem::fit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MtlConfig {
    /// Transfer flavour.
    pub mode: MtlMode,
    /// Ridge penalty of the per-task base fit.
    pub base_lambda: f64,
    /// Strength of the pull toward the transferred prior (λ of the biased
    /// ridge). `0` disables transfer regardless of mode.
    pub transfer_strength: f64,
    /// RBF bandwidth for signature similarity.
    pub similarity_bandwidth: f64,
    /// Seed for clustered-mode k-means.
    pub seed: u64,
}

impl Default for MtlConfig {
    fn default() -> Self {
        Self {
            mode: MtlMode::SelfAdapted,
            base_lambda: 1e-3,
            transfer_strength: 1.0,
            similarity_bandwidth: 1.0,
            seed: 0,
        }
    }
}

/// Error returned by MTL training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MtlError {
    /// No tasks supplied.
    NoTasks,
    /// Tasks disagree on feature arity.
    MixedArity {
        /// Arity of task 0.
        expected: usize,
        /// Index of the offending task.
        task: usize,
        /// Its arity.
        got: usize,
    },
    /// An underlying per-task fit failed.
    TaskFit {
        /// Index of the failing task.
        task: usize,
        /// The underlying error.
        source: FitError,
    },
}

impl fmt::Display for MtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MtlError::NoTasks => write!(f, "no tasks supplied"),
            MtlError::MixedArity { expected, task, got } => {
                write!(f, "task {task} has {got} features, expected {expected}")
            }
            MtlError::TaskFit { task, source } => write!(f, "task {task} failed to fit: {source}"),
        }
    }
}

impl std::error::Error for MtlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MtlError::TaskFit { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A fitted multi-task system: one [`LinearModel`] per task, plus the
/// similarity structure used for transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct MtlSystem {
    models: Vec<LinearModel>,
    names: Vec<String>,
    similarity: Matrix,
    config: MtlConfig,
}

impl MtlSystem {
    /// Fits all tasks under `config`.
    ///
    /// # Errors
    ///
    /// See [`MtlError`] variants.
    pub fn fit(tasks: &[TransferTask], config: MtlConfig) -> Result<Self, MtlError> {
        if tasks.is_empty() {
            return Err(MtlError::NoTasks);
        }
        let arity = tasks[0].data.num_features();
        for (i, t) in tasks.iter().enumerate() {
            if t.data.num_features() != arity {
                return Err(MtlError::MixedArity {
                    expected: arity,
                    task: i,
                    got: t.data.num_features(),
                });
            }
        }

        // Stage 1: independent base fits. Per-task normal equations are
        // independent, so they fan out across the deterministic crew; each
        // task's fit is a pure function of its dataset, keeping results
        // bit-identical to the serial loop at any thread count.
        let base: Vec<LinearModel> = parallel::try_par_map_indexed(tasks.len(), |i| {
            fit_biased_ridge(&tasks[i].data, config.base_lambda, None)
                .map_err(|source| MtlError::TaskFit { task: i, source })
        })?;

        let similarity = signature_similarity(tasks, config.similarity_bandwidth);

        // Stage 2: transfer. Group membership limits which sources feed a
        // target's prior.
        let groups: Vec<usize> = match config.mode {
            MtlMode::Independent => (0..tasks.len()).collect(), // all singleton
            MtlMode::SelfAdapted => vec![0; tasks.len()],       // one big group
            MtlMode::Clustered { num_clusters } => {
                let sigs: Vec<Vec<f64>> = tasks.iter().map(TransferTask::signature).collect();
                let k = num_clusters.clamp(1, tasks.len());
                let mut rng = StdRng::seed_from_u64(config.seed);
                KMeans::fit(&sigs, k, 100, &mut rng)
                    .map(|km| km.assignments().to_vec())
                    .unwrap_or_else(|_| vec![0; tasks.len()])
            }
        };

        // Stage 2: transfer refits. Every target's prior reads only the
        // (already final) stage-1 models, so refits are likewise
        // independent across tasks.
        let models = if config.transfer_strength <= 0.0
            || matches!(config.mode, MtlMode::Independent)
        {
            base
        } else {
            parallel::try_par_map_indexed(tasks.len(), |i| {
                match blended_prior(i, &base, &similarity, &groups) {
                    Some(p) => fit_biased_ridge(&tasks[i].data, config.transfer_strength, Some(&p))
                        .map_err(|source| MtlError::TaskFit { task: i, source }),
                    None => Ok(base[i].clone()),
                }
            })?
        };

        Ok(Self {
            models,
            names: tasks.iter().map(|t| t.name.clone()).collect(),
            similarity,
            config,
        })
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// `true` when the system holds no tasks (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The fitted model of task `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn model(&self, i: usize) -> &LinearModel {
        &self.models[i]
    }

    /// All fitted models, task order preserved.
    pub fn models(&self) -> &[LinearModel] {
        &self.models
    }

    /// Task names, order preserved.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Pairwise task-similarity matrix (RBF of signature distance).
    pub fn similarity(&self) -> &Matrix {
        &self.similarity
    }

    /// The configuration used at fit time.
    pub fn config(&self) -> MtlConfig {
        self.config
    }

    /// Per-task prediction accuracy (the paper's similarity-style metric) on
    /// held-out datasets, one per task.
    ///
    /// # Errors
    ///
    /// [`MtlError::MixedArity`] when eval sets disagree with the models;
    /// [`MtlError::TaskFit`] if prediction fails.
    pub fn evaluate(&self, eval: &[Dataset]) -> Result<Vec<f64>, MtlError> {
        if eval.len() != self.models.len() {
            return Err(MtlError::MixedArity {
                expected: self.models.len(),
                task: eval.len(),
                got: eval.len(),
            });
        }
        let mut out = Vec::with_capacity(eval.len());
        for (i, (m, ds)) in self.models.iter().zip(eval).enumerate() {
            let preds =
                m.predict_dataset(ds).map_err(|source| MtlError::TaskFit { task: i, source })?;
            out.push(mean_prediction_accuracy(&preds, ds.targets()).unwrap_or(0.0));
        }
        Ok(out)
    }
}

/// Ridge regression optionally biased toward a prior model:
/// minimises `Σ (y − w·x − b)² + λ(‖w − w₀‖² + (b − b₀)²)`.
///
/// With `prior = None` this is ordinary ridge toward zero (intercept
/// unpenalised).
///
/// # Errors
///
/// Mirrors [`crate::linear::RidgeRegression::fit`].
pub fn fit_biased_ridge(
    data: &Dataset,
    lambda: f64,
    prior: Option<&LinearModel>,
) -> Result<LinearModel, FitError> {
    if data.is_empty() {
        return Err(FitError::EmptyDataset);
    }
    let d = data.num_features();
    if let Some(p) = prior {
        if p.weights().len() != d {
            return Err(FitError::ArityMismatch { expected: d, got: p.weights().len() });
        }
    }
    let mut xtx = Matrix::zeros(d + 1, d + 1);
    let mut xty = vec![0.0; d + 1];
    for i in 0..data.len() {
        let (x, y) = data.sample(i);
        for a in 0..d {
            for b in 0..d {
                xtx[(a, b)] += x[a] * x[b];
            }
            xtx[(a, d)] += x[a];
            xtx[(d, a)] += x[a];
            xty[a] += x[a] * y;
        }
        xtx[(d, d)] += 1.0;
        xty[d] += y;
    }
    for a in 0..d {
        xtx[(a, a)] += lambda;
    }
    // With a prior, penalise the intercept toward the prior intercept too:
    // the prior *is* meaningful there (COP level of the source task).
    // Without one, the intercept stays unpenalised, matching
    // `RidgeRegression`.
    if let Some(p) = prior {
        xtx[(d, d)] += lambda;
        for (a, &pw) in p.weights().iter().enumerate() {
            xty[a] += lambda * pw;
        }
        xty[d] += lambda * p.bias();
    }
    let sol = xtx.solve(&xty).map_err(|_| FitError::Singular)?;
    let (w, b) = sol.split_at(d);
    Ok(LinearModel::from_parts(w.to_vec(), b[0]))
}

/// Instance transfer: augments `target` with all samples of `sources`, each
/// source weighted by replicating its samples in proportion to
/// `round(weight * 10)` (0 drops the source). A simple, deterministic form
/// of importance-weighted pooling.
pub fn pool_instances(target: &Dataset, sources: &[(&Dataset, f64)]) -> Dataset {
    let mut rows: Vec<Vec<f64>> =
        (0..target.len()).map(|i| target.features().row(i).to_vec()).collect();
    let mut ys = target.targets().to_vec();
    for (src, weight) in sources {
        let copies = (weight * 10.0).round().max(0.0) as usize;
        let copies = copies.min(10);
        if copies == 0 {
            continue;
        }
        // Replicate proportionally (out of 10): take every sample `copies`
        // times out of 10 by repeating floor(copies/10 * len) pattern.
        for i in 0..src.len() {
            if (i * 10) % 10 < copies * 10 / 10 && (i % 10) < copies {
                rows.push(src.features().row(i).to_vec());
                ys.push(src.targets()[i]);
            }
        }
    }
    Dataset::from_rows(rows, ys).expect("consistent arity by construction")
}

fn signature_similarity(tasks: &[TransferTask], bandwidth: f64) -> Matrix {
    let n = tasks.len();
    let sigs: Vec<Vec<f64>> = tasks.iter().map(TransferTask::signature).collect();
    let mut sim = Matrix::zeros(n, n);
    let bw = bandwidth.max(1e-9);
    for i in 0..n {
        for j in 0..n {
            let d = euclidean_distance(&sigs[i], &sigs[j]);
            sim[(i, j)] = (-(d * d) / (2.0 * bw * bw)).exp();
        }
    }
    sim
}

/// Similarity-weighted average of other tasks' base parameters, restricted to
/// the target's group. `None` when the target has no group peers.
fn blended_prior(
    target: usize,
    base: &[LinearModel],
    similarity: &Matrix,
    groups: &[usize],
) -> Option<LinearModel> {
    let d = base[target].weights().len();
    let mut w = vec![0.0; d];
    let mut b = 0.0;
    let mut total = 0.0;
    for (j, m) in base.iter().enumerate() {
        if j == target || groups[j] != groups[target] {
            continue;
        }
        let s = similarity[(target, j)];
        if s <= 0.0 {
            continue;
        }
        for (wi, &mw) in w.iter_mut().zip(m.weights()) {
            *wi += s * mw;
        }
        b += s * m.bias();
        total += s;
    }
    if total <= 1e-12 {
        return None;
    }
    for wi in &mut w {
        *wi /= total;
    }
    Some(LinearModel::from_parts(w, b / total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Builds `n_tasks` related tasks: all share the true weight vector
    /// `[2, -1]`, per-task biases differ slightly; `scarce` tasks get only 3
    /// samples while others get 60.
    fn related_tasks(n_tasks: usize, scarce: &[usize], seed: u64) -> Vec<TransferTask> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n_tasks)
            .map(|t| {
                let n = if scarce.contains(&t) { 3 } else { 60 };
                let bias = 0.1 * t as f64;
                let mut rows = Vec::new();
                let mut ys = Vec::new();
                for _ in 0..n {
                    let x = vec![rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0)];
                    let y = 2.0 * x[0] - x[1] + bias + 0.3 * rng.gen_range(-1.0..1.0);
                    rows.push(x);
                    ys.push(y);
                }
                TransferTask::new(format!("task-{t}"), Dataset::from_rows(rows, ys).unwrap())
            })
            .collect()
    }

    fn weight_error(m: &LinearModel) -> f64 {
        euclidean_distance(m.weights(), &[2.0, -1.0])
    }

    #[test]
    fn transfer_helps_scarce_task() {
        let tasks = related_tasks(6, &[0], 42);
        let indep = MtlSystem::fit(
            &tasks,
            MtlConfig { mode: MtlMode::Independent, ..MtlConfig::default() },
        )
        .unwrap();
        let shared = MtlSystem::fit(
            &tasks,
            MtlConfig { mode: MtlMode::SelfAdapted, transfer_strength: 5.0, ..Default::default() },
        )
        .unwrap();
        // The scarce task's weights should land closer to truth with transfer.
        assert!(
            weight_error(shared.model(0)) < weight_error(indep.model(0)),
            "transfer {} vs independent {}",
            weight_error(shared.model(0)),
            weight_error(indep.model(0))
        );
    }

    #[test]
    fn zero_strength_equals_independent() {
        let tasks = related_tasks(4, &[], 7);
        let a = MtlSystem::fit(
            &tasks,
            MtlConfig { mode: MtlMode::SelfAdapted, transfer_strength: 0.0, ..Default::default() },
        )
        .unwrap();
        let b = MtlSystem::fit(
            &tasks,
            MtlConfig { mode: MtlMode::Independent, ..MtlConfig::default() },
        )
        .unwrap();
        for (ma, mb) in a.models().iter().zip(b.models()) {
            assert_eq!(ma, mb);
        }
    }

    #[test]
    fn clustered_mode_limits_transfer_to_cluster() {
        // Two families of tasks with very different signatures; the scarce
        // task should borrow only from its own family.
        let mut rng = StdRng::seed_from_u64(3);
        let mut tasks = Vec::new();
        for t in 0..3 {
            // Family A near origin, true w = [1, 0], plenty of data except task 0.
            let n = if t == 0 { 3 } else { 50 };
            let mut rows = Vec::new();
            let mut ys = Vec::new();
            for _ in 0..n {
                let x = vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)];
                ys.push(x[0] + 0.05 * rng.gen_range(-1.0..1.0));
                rows.push(x);
            }
            tasks.push(TransferTask::new(format!("a{t}"), Dataset::from_rows(rows, ys).unwrap()));
        }
        for t in 0..3 {
            // Family B far away, true w = [-1, 0].
            let mut rows = Vec::new();
            let mut ys = Vec::new();
            for _ in 0..50 {
                let x = vec![100.0 + rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)];
                ys.push(-(x[0] - 100.0) + 0.05 * rng.gen_range(-1.0..1.0));
                rows.push(x);
            }
            tasks.push(TransferTask::new(format!("b{t}"), Dataset::from_rows(rows, ys).unwrap()));
        }
        let sys = MtlSystem::fit(
            &tasks,
            MtlConfig {
                mode: MtlMode::Clustered { num_clusters: 2 },
                transfer_strength: 5.0,
                similarity_bandwidth: 5.0,
                ..Default::default()
            },
        )
        .unwrap();
        // Task 0's weights should stay near +1 (family A), not be dragged to -1.
        assert!(sys.model(0).weights()[0] > 0.3, "w0 = {:?}", sys.model(0).weights());
    }

    #[test]
    fn biased_ridge_with_huge_lambda_returns_prior() {
        let tasks = related_tasks(1, &[], 9);
        let prior = LinearModel::from_parts(vec![5.0, 5.0], 1.0);
        let m = fit_biased_ridge(tasks[0].data(), 1e9, Some(&prior)).unwrap();
        assert!(euclidean_distance(m.weights(), prior.weights()) < 1e-3);
        assert!((m.bias() - prior.bias()).abs() < 1e-3);
    }

    #[test]
    fn biased_ridge_validates_prior_arity() {
        let tasks = related_tasks(1, &[], 10);
        let prior = LinearModel::from_parts(vec![1.0], 0.0);
        assert!(matches!(
            fit_biased_ridge(tasks[0].data(), 1.0, Some(&prior)),
            Err(FitError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn errors_on_bad_task_sets() {
        assert!(matches!(MtlSystem::fit(&[], MtlConfig::default()), Err(MtlError::NoTasks)));
        let a =
            TransferTask::new("a", Dataset::from_rows(vec![vec![1.0, 2.0]], vec![0.0]).unwrap());
        let b = TransferTask::new("b", Dataset::from_rows(vec![vec![1.0]], vec![0.0]).unwrap());
        assert!(matches!(
            MtlSystem::fit(&[a, b], MtlConfig::default()),
            Err(MtlError::MixedArity { task: 1, .. })
        ));
    }

    #[test]
    fn similarity_matrix_is_symmetric_with_unit_diagonal() {
        let tasks = related_tasks(5, &[], 11);
        let sys = MtlSystem::fit(&tasks, MtlConfig::default()).unwrap();
        let s = sys.similarity();
        for i in 0..5 {
            assert!((s[(i, i)] - 1.0).abs() < 1e-12);
            for j in 0..5 {
                assert!((s[(i, j)] - s[(j, i)]).abs() < 1e-12);
                assert!((0.0..=1.0).contains(&s[(i, j)]));
            }
        }
    }

    #[test]
    fn evaluate_reports_high_accuracy_on_train_like_data() {
        let tasks = related_tasks(3, &[], 12);
        let sys = MtlSystem::fit(&tasks, MtlConfig::default()).unwrap();
        let evals: Vec<Dataset> = tasks.iter().map(|t| t.data().clone()).collect();
        let accs = sys.evaluate(&evals).unwrap();
        assert_eq!(accs.len(), 3);
        assert!(accs.iter().all(|&a| a > 0.5), "accs {accs:?}");
    }

    #[test]
    fn pool_instances_grows_dataset() {
        let t = Dataset::from_rows(vec![vec![0.0]], vec![1.0]).unwrap();
        let s = Dataset::from_rows(vec![vec![1.0], vec![2.0]], vec![3.0, 4.0]).unwrap();
        let pooled = pool_instances(&t, &[(&s, 1.0)]);
        assert_eq!(pooled.len(), 3);
        let dropped = pool_instances(&t, &[(&s, 0.0)]);
        assert_eq!(dropped.len(), 1);
    }

    #[test]
    fn signature_is_feature_mean() {
        let t = TransferTask::new(
            "t",
            Dataset::from_rows(vec![vec![0.0, 2.0], vec![2.0, 4.0]], vec![0.0, 0.0]).unwrap(),
        );
        assert_eq!(t.signature(), vec![1.0, 3.0]);
    }
}
