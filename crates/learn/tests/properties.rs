//! Property-based tests of the ML substrate's core invariants.

use learn::dataset::{Dataset, Standardizer};
use learn::linalg::{dot, euclidean_distance, Matrix};
use learn::linear::RidgeRegression;
use learn::metrics::{mae, prediction_accuracy, rmse};
use learn::nn::{Activation, AdamOptimizer, BatchWorkspace, Mlp};
use learn::transfer::fit_biased_ridge;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, len)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Reference `C[i][j] = Σ_k A[i][k]·B[k][j]` with `k` strictly ascending —
/// the accumulation order every blocked kernel must preserve.
fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0;
            for k in 0..a.cols() {
                acc += a[(i, k)] * b[(k, j)];
            }
            out[(i, j)] = acc;
        }
    }
    out
}

fn small_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..5, 1usize..5).prop_flat_map(|(r, c)| {
        prop::collection::vec(-10.0f64..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).expect("length matches"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involutive(m in small_matrix()) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_with_identity_is_identity(m in small_matrix()) {
        let left = Matrix::identity(m.rows()).matmul(&m).expect("shapes");
        let right = m.matmul(&Matrix::identity(m.cols())).expect("shapes");
        prop_assert_eq!(&left, &m);
        prop_assert_eq!(&right, &m);
    }

    #[test]
    fn solve_recovers_solution(x in finite_vec(3), rows in prop::collection::vec(finite_vec(3), 3)) {
        let a = Matrix::from_rows(&rows).expect("3x3");
        // Build b = A x; a solvable system must return (approximately) x
        // whenever A is well-conditioned.
        let b = a.matvec(&x).expect("shapes");
        if let Ok(sol) = a.solve(&b) {
            let back = a.matvec(&sol).expect("shapes");
            let err = euclidean_distance(&back, &b);
            let scale = 1.0 + b.iter().map(|v| v.abs()).fold(0.0, f64::max);
            prop_assert!(err / scale < 1e-6, "residual {err}");
        }
    }

    #[test]
    fn dot_is_symmetric_and_bilinear(a in finite_vec(4), b in finite_vec(4), k in -5.0f64..5.0) {
        prop_assert!((dot(&a, &b) - dot(&b, &a)).abs() < 1e-9);
        let scaled: Vec<f64> = a.iter().map(|x| k * x).collect();
        prop_assert!((dot(&scaled, &b) - k * dot(&a, &b)).abs() < 1e-6);
    }

    #[test]
    fn standardizer_is_idempotent_on_standardised_data(
        rows in prop::collection::vec(finite_vec(3), 4..12)
    ) {
        let n = rows.len();
        let ds = Dataset::from_rows(rows, vec![0.0; n]).expect("consistent");
        let st = Standardizer::fit(&ds);
        let tds = st.transform_dataset(&ds);
        let st2 = Standardizer::fit(&tds);
        let ttds = st2.transform_dataset(&tds);
        for i in 0..tds.len() {
            let d = euclidean_distance(tds.features().row(i), ttds.features().row(i));
            prop_assert!(d < 1e-9, "row {i} moved by {d}");
        }
    }

    #[test]
    fn ridge_residual_never_beats_ols_on_train(
        xs in prop::collection::vec(-5.0f64..5.0, 8..20),
        w in -3.0f64..3.0,
        b in -3.0f64..3.0,
    ) {
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| w * x + b).collect();
        let ds = Dataset::from_rows(rows, ys).expect("consistent");
        // Distinct x values needed for a well-posed OLS.
        let distinct = {
            let mut v = xs.clone();
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            v.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
            v.len()
        };
        prop_assume!(distinct >= 2);
        let ols = RidgeRegression::new(0.0).fit(&ds);
        prop_assume!(ols.is_ok());
        let ols = ols.expect("checked");
        let ridge = RidgeRegression::new(10.0).fit(&ds).expect("regularised is solvable");
        let res = |m: &learn::linear::LinearModel| -> f64 {
            let preds = m.predict_dataset(&ds).expect("arity");
            rmse(&preds, ds.targets()).expect("non-empty")
        };
        prop_assert!(res(&ols) <= res(&ridge) + 1e-6);
    }

    #[test]
    fn biased_ridge_with_zero_lambda_matches_data(
        xs in prop::collection::vec(-5.0f64..5.0, 6..15),
        w in -3.0f64..3.0,
    ) {
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| w * x).collect();
        let ds = Dataset::from_rows(rows, ys).expect("consistent");
        let distinct = {
            let mut v = xs.clone();
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            v.dedup_by(|a, b| (*a - *b).abs() < 1e-6);
            v.len()
        };
        prop_assume!(distinct >= 2);
        if let Ok(m) = fit_biased_ridge(&ds, 0.0, None) {
            let preds = m.predict_dataset(&ds).expect("arity");
            prop_assert!(mae(&preds, ds.targets()).expect("non-empty") < 1e-6);
        }
    }

    #[test]
    fn prediction_accuracy_bounded(p in -100.0f64..100.0, t in -100.0f64..100.0) {
        let a = prediction_accuracy(p, t);
        prop_assert!((0.0..=1.0).contains(&a));
        // Exact predictions always score 1.
        prop_assert!((prediction_accuracy(t, t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn blocked_matmul_bits_match_naive_triple_loop(
        m in 1usize..12, k in 1usize..12, n in 1usize..12,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rand_mat = |r: usize, c: usize| {
            let data: Vec<f64> =
                (0..r * c).map(|_| rand::Rng::gen_range(&mut rng, -10.0..10.0)).collect();
            Matrix::from_vec(r, c, data).expect("length matches")
        };
        let a = rand_mat(m, k);
        let b = rand_mat(k, n);
        let slow = matmul_naive(&a, &b);
        let fast = a.matmul(&b).expect("shapes");
        prop_assert_eq!(bits(fast.as_slice()), bits(slow.as_slice()));
        // A·Bᵀ against the materialised transpose.
        let bt = rand_mat(n, k);
        let direct = a.matmul_transpose_b(&bt).expect("shapes");
        let via = a.matmul(&bt.transpose()).expect("shapes");
        prop_assert_eq!(bits(direct.as_slice()), bits(via.as_slice()));
        // Allocation-free matvec against per-row dot products.
        let v: Vec<f64> = (0..k).map(|_| rand::Rng::gen_range(&mut rng, -10.0..10.0)).collect();
        let mut out = vec![f64::NAN; m];
        a.matvec_into(&v, &mut out).expect("shapes");
        let per_row: Vec<f64> = (0..m).map(|r| dot(a.row(r), &v)).collect();
        prop_assert_eq!(bits(&out), bits(&per_row));
    }

    #[test]
    fn batched_forward_bits_match_per_sample(
        seed in 0u64..10_000,
        hidden in 1usize..10,
        inputs in prop::collection::vec(prop::collection::vec(-5.0f64..5.0, 4), 1..40),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Mlp::new(&[4, hidden, 3], Activation::Tanh, &mut rng).expect("valid sizes");
        let refs: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
        let batched = net.forward_batch(&refs).expect("valid batch");
        for (x, row) in inputs.iter().zip(&batched) {
            let single = net.forward(x).expect("arity");
            prop_assert_eq!(bits(row), bits(&single));
        }
    }

    #[test]
    fn batched_training_bits_match_per_sample(
        seed in 0u64..10_000,
        hidden in 1usize..10,
        samples in prop::collection::vec(
            (prop::collection::vec(-5.0f64..5.0, 3), prop::collection::vec(-2.0f64..2.0, 2)),
            1..48,
        ),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scalar = Mlp::new(&[3, hidden, 2], Activation::Relu, &mut rng).expect("sizes");
        let mut batched = scalar.clone();
        let inputs: Vec<Vec<f64>> = samples.iter().map(|(x, _)| x.clone()).collect();
        let targets: Vec<Vec<f64>> = samples.iter().map(|(_, y)| y.clone()).collect();
        let refs_x: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
        let refs_y: Vec<&[f64]> = targets.iter().map(Vec::as_slice).collect();
        let mut opt_s = AdamOptimizer::new(0.01);
        let mut opt_b = AdamOptimizer::new(0.01);
        let mut ws = BatchWorkspace::new();
        for _ in 0..3 {
            let ls = scalar.train_batch(&inputs, &targets, &mut opt_s).expect("valid batch");
            let lb = batched
                .train_batch_ws(&refs_x, &refs_y, &mut opt_b, &mut ws)
                .expect("valid batch");
            prop_assert_eq!(ls.to_bits(), lb.to_bits());
        }
        prop_assert_eq!(scalar.parameter_bits(), batched.parameter_bits());
    }

    #[test]
    fn ilp_kernels_bits_match_reference(
        seed in 0u64..10_000,
        hidden in 1usize..10,
        x in prop::collection::vec(-5.0f64..5.0, 4),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Mlp::new(&[4, hidden, 3], Activation::Tanh, &mut rng).expect("valid sizes");
        let reference = net.forward(&x).expect("arity");
        let ilp = net.forward_ilp(&x).expect("arity");
        prop_assert_eq!(bits(&reference), bits(&ilp));
    }

    #[test]
    fn fused_td_training_bits_match_dense_targets(
        seed in 0u64..10_000,
        hidden in 1usize..10,
        samples in prop::collection::vec(
            (prop::collection::vec(-5.0f64..5.0, 3), 0usize..4, -2.0f64..2.0),
            1..48,
        ),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dense = Mlp::new(&[3, hidden, 4], Activation::Relu, &mut rng).expect("sizes");
        let mut fused = dense.clone();
        let inputs: Vec<Vec<f64>> = samples.iter().map(|(x, _, _)| x.clone()).collect();
        let refs_x: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
        let actions: Vec<usize> = samples.iter().map(|(_, a, _)| *a).collect();
        let bootstraps: Vec<f64> = samples.iter().map(|(_, _, b)| *b).collect();
        let mut opt_d = AdamOptimizer::new(0.01);
        let mut opt_f = AdamOptimizer::new(0.01);
        let mut ws = BatchWorkspace::new();
        for _ in 0..3 {
            // Dense reference: materialise full target rows from the net's
            // own current predictions, exactly like the scalar DQN path.
            let targets: Vec<Vec<f64>> = inputs
                .iter()
                .zip(&actions)
                .zip(&bootstraps)
                .map(|((x, &a), &b)| {
                    let mut t = dense.forward(x).expect("arity");
                    t[a] = b;
                    t
                })
                .collect();
            let ld = dense.train_batch(&inputs, &targets, &mut opt_d).expect("valid batch");
            let lf = fused
                .train_td_batch_ws(&refs_x, &actions, &bootstraps, &mut opt_f, &mut ws)
                .expect("valid batch");
            prop_assert_eq!(ld.to_bits(), lf.to_bits());
        }
        prop_assert_eq!(dense.parameter_bits(), fused.parameter_bits());
    }

    #[test]
    fn dataset_split_partitions(rows in prop::collection::vec(finite_vec(2), 2..20),
                                frac in 0.0f64..1.0, seed in 0u64..1000) {
        use rand::SeedableRng;
        let n = rows.len();
        let ds = Dataset::from_rows(rows, (0..n).map(|i| i as f64).collect()).expect("ok");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (tr, te) = ds.split(frac, &mut rng);
        prop_assert_eq!(tr.len() + te.len(), n);
        // Targets form a permutation of 0..n.
        let mut all: Vec<f64> = tr.targets().iter().chain(te.targets()).copied().collect();
        all.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let expect: Vec<f64> = (0..n).map(|i| i as f64).collect();
        prop_assert_eq!(all, expect);
    }
}
