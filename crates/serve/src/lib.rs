//! # serve — allocation-as-a-service over frozen pipeline cores
//!
//! The batch pipeline answers one caller at a time; this crate turns it
//! into a long-lived, multi-tenant service. An [`AllocatorService`] owns a
//! registry of prepared scenarios keyed by tenant name — each a
//! [`dcta_core::shared::PreparedCore`], the `Send + Sync` frozen form of a
//! prepared pipeline — and answers [`AllocRequest`]s from any number of
//! threads through shared state:
//!
//! * full evaluation runs ([`Query::Run`]) and bare allocation decisions
//!   ([`Query::Decision`]) execute directly on the tenant's core;
//! * Q-value queries ([`Query::QValues`]) ride *cross-request batched* DQN
//!   inference: concurrent queries against the same per-context agent
//!   coalesce in a [`rl::batcher::QBatcher`] (flush at 64 queued states or
//!   after 100 µs, whichever first) and are answered by one batched forward
//!   — bit-identical to scalar answers, because the batched kernel is
//!   row-wise bit-identical to the scalar one.
//!
//! [`pool::ServicePool`] adds a worker pool in front of the service:
//! [`pool::ServicePool::submit`] enqueues a request and returns a
//! [`pool::Ticket`] to wait on, so callers overlap while a fixed number of
//! workers drain the queue.
//!
//! ## Determinism contract
//!
//! Every response except `Method::RandomMapping` runs (which are still
//! deterministic per `(seed, day)`, just differently seeded than the batch
//! pipeline — see the `dcta_core::shared` module docs) is bit-identical to
//! the same query answered solo on a freshly frozen core: no request order,
//! interleaving, worker count, or batch composition can change an answer.
//! Tenants are fully isolated — they share no caches, agents, or RNG.
//!
//! ## Example
//!
//! ```no_run
//! use buildings::scenario::{Scenario, ScenarioConfig};
//! use dcta_core::pipeline::{Method, Pipeline, PipelineConfig, RunSpec};
//! use serve::{AllocRequest, AllocatorService, Query};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = Scenario::generate(ScenarioConfig::default())?;
//! let core = Pipeline::builder(PipelineConfig::default()).prepare(&scenario)?.into_core()?;
//! let service = AllocatorService::new();
//! service.register("plant-a", core)?;
//! let day = service.with_core("plant-a", |c| c.test_days().start)?;
//! let response = service.handle(&AllocRequest {
//!     tenant: "plant-a".into(),
//!     query: Query::Run(RunSpec::new(Method::Dcta, day)),
//! })?;
//! println!("PT = {:.3}s", response.into_run().unwrap().processing_time_s());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod pool;
pub mod service;

pub use service::{AllocRequest, AllocResponse, AllocatorService, Query, ServeError, TenantStats};
