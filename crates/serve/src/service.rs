//! The multi-tenant allocator service: tenant registry, request/response
//! types, and the synchronous request handler the worker pool drains into.

use dcta_core::allocation::Allocation;
use dcta_core::cache::CacheStats;
use dcta_core::objective::AllocQuery;
use dcta_core::pipeline::{Method, PipelineError, RunReport, RunSpec};
use dcta_core::shared::PreparedCore;
use rl::alloc_env::{AllocEnv, AllocSpec, SpecError};
use rl::batcher::{BatcherStats, QBatcher, DEFAULT_MAX_BATCH, DEFAULT_MAX_WAIT};
use rl::crl::CrlError;
use rl::dqn::DqnError;
use rl::mdp::Environment;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// Error raised by the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// No tenant registered under this name.
    UnknownTenant(String),
    /// A tenant with this name already exists.
    DuplicateTenant(String),
    /// A supplied Q-value state has the wrong dimension for the context's
    /// agent.
    StateArity {
        /// Dimension the agent expects.
        expected: usize,
        /// Dimension supplied.
        got: usize,
    },
    /// The tenant's core failed the run.
    Pipeline(PipelineError),
    /// The frozen CRL failed (environment definition or agent training).
    Crl(CrlError),
    /// The batched DQN forward failed.
    Dqn(DqnError),
    /// Building the default Q-value state failed spec validation.
    Spec(SpecError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownTenant(name) => write!(f, "unknown tenant {name:?}"),
            ServeError::DuplicateTenant(name) => {
                write!(f, "tenant {name:?} is already registered")
            }
            ServeError::StateArity { expected, got } => {
                write!(f, "state has dimension {got}, agent expects {expected}")
            }
            ServeError::Pipeline(e) => write!(f, "run failed: {e}"),
            ServeError::Crl(e) => write!(f, "CRL failed: {e}"),
            ServeError::Dqn(e) => write!(f, "DQN inference failed: {e}"),
            ServeError::Spec(e) => write!(f, "default state construction failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Pipeline(e) => Some(e),
            ServeError::Crl(e) => Some(e),
            ServeError::Dqn(e) => Some(e),
            ServeError::Spec(e) => Some(e),
            _ => None,
        }
    }
}

macro_rules! from_err {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for ServeError {
            fn from(e: $ty) -> Self {
                ServeError::$variant(e)
            }
        }
    };
}

from_err!(Pipeline, PipelineError);
from_err!(Crl, CrlError);
from_err!(Dqn, DqnError);
from_err!(Spec, SpecError);

/// What a request asks of a tenant's core.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// A full evaluation run (allocate + simulate + metrics) described by a
    /// [`RunSpec`] — healthy or fault-injected.
    Run(RunSpec),
    /// The Q-values of the day's CRL context at a state — answered through
    /// cross-request batched inference. `None` evaluates the context's
    /// initial state (nothing assigned yet).
    QValues {
        /// Evaluation-day index (selects the sensing signature, hence the
        /// per-context agent).
        day: usize,
        /// State to evaluate, or `None` for the environment's reset state.
        state: Option<Vec<f64>>,
    },
    /// A bare allocation decision: which tasks go where, no simulation.
    Decision {
        /// Allocation method to run.
        method: Method,
        /// Evaluation-day index.
        day: usize,
    },
}

/// One request against the service: which tenant, and what to ask.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocRequest {
    /// Tenant key (as passed to [`AllocatorService::register`]).
    pub tenant: String,
    /// The query.
    pub query: Query,
}

/// A successful answer, one variant per [`Query`] kind.
#[derive(Debug, Clone, PartialEq)]
pub enum AllocResponse {
    /// Answer to [`Query::Run`].
    Run(RunReport),
    /// Answer to [`Query::QValues`].
    QValues {
        /// The CRL context key the day's signature resolved to.
        key: usize,
        /// Q-value per action, bit-identical to a scalar
        /// `agent.q_values(state)` call.
        q: Vec<f64>,
    },
    /// Answer to [`Query::Decision`].
    Decision {
        /// The allocation.
        allocation: Allocation,
        /// Wall-clock seconds the allocator consumed.
        allocator_seconds: f64,
    },
}

impl AllocResponse {
    /// The run report, if this answered a [`Query::Run`].
    pub fn into_run(self) -> Option<RunReport> {
        match self {
            AllocResponse::Run(r) => Some(r),
            _ => None,
        }
    }

    /// The Q-value row, if this answered a [`Query::QValues`].
    pub fn into_q_values(self) -> Option<Vec<f64>> {
        match self {
            AllocResponse::QValues { q, .. } => Some(q),
            _ => None,
        }
    }

    /// The allocation, if this answered a [`Query::Decision`].
    pub fn into_decision(self) -> Option<Allocation> {
        match self {
            AllocResponse::Decision { allocation, .. } => Some(allocation),
            _ => None,
        }
    }
}

/// A registered scenario: its frozen core plus the per-context batchers
/// coalescing its Q-value traffic.
#[derive(Debug)]
struct Tenant {
    core: PreparedCore,
    /// One batcher per CRL context key — a batcher must only ever see one
    /// agent (see [`QBatcher`]), and agents are per-context.
    batchers: Mutex<HashMap<usize, Arc<QBatcher>>>,
    max_batch: usize,
    max_wait: Duration,
}

impl Tenant {
    fn batcher_for(&self, key: usize) -> Arc<QBatcher> {
        let mut map = self.batchers.lock().expect("batcher registry poisoned");
        Arc::clone(
            map.entry(key)
                .or_insert_with(|| Arc::new(QBatcher::new(self.max_batch, self.max_wait))),
        )
    }

    fn answer(&self, query: &Query) -> Result<AllocResponse, ServeError> {
        match query {
            Query::Run(spec) => Ok(AllocResponse::Run(self.core.run(spec)?)),
            Query::Decision { method, day } => {
                let out = self.core.allocate(&AllocQuery::new(*method, *day))?;
                Ok(AllocResponse::Decision {
                    allocation: out.allocation,
                    allocator_seconds: out.overhead_s,
                })
            }
            Query::QValues { day, state } => {
                let signature = self.core.signature_of_day(*day)?;
                let shared = self.core.crl().shared();
                let (key, blend) = shared.define_environment(signature)?;
                let agent = shared.agent(key)?;
                let state = match state {
                    Some(s) => s.clone(),
                    None => {
                        // The context's initial state: its blended
                        // importances over the blind instance, nothing
                        // assigned yet.
                        let spec = AllocSpec {
                            importances: blend,
                            ..self.core.blind_instance().to_alloc_spec()
                        };
                        AllocEnv::new(spec)?.reset()
                    }
                };
                if state.len() != agent.state_dim() {
                    return Err(ServeError::StateArity {
                        expected: agent.state_dim(),
                        got: state.len(),
                    });
                }
                let q = self.batcher_for(key).submit(agent, &state)?;
                Ok(AllocResponse::QValues { key, q })
            }
        }
    }
}

/// Point-in-time counters describing one tenant's serving state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantStats {
    /// The tenant's decision-performance cache counters.
    pub cache: CacheStats,
    /// Q-value batching counters, summed over the tenant's per-context
    /// batchers.
    pub batcher: BatcherStats,
    /// Per-context batchers instantiated so far.
    pub batchers: usize,
    /// CRL agents trained so far (standalone CRL; DCTA's internal CRL
    /// trains its own on the allocation path).
    pub trained_agents: usize,
}

/// The long-lived, multi-tenant allocation service. `&self` throughout:
/// share one instance (e.g. in an `Arc`) across as many request threads as
/// you like, or put a [`crate::pool::ServicePool`] in front of it.
#[derive(Debug)]
pub struct AllocatorService {
    tenants: RwLock<HashMap<String, Arc<Tenant>>>,
    max_batch: usize,
    max_wait: Duration,
}

impl Default for AllocatorService {
    fn default() -> Self {
        Self::new()
    }
}

impl AllocatorService {
    /// An empty service with the default Q-value batching policy
    /// (flush at [`DEFAULT_MAX_BATCH`] states or [`DEFAULT_MAX_WAIT`]).
    pub fn new() -> Self {
        Self::with_batch_policy(DEFAULT_MAX_BATCH, DEFAULT_MAX_WAIT)
    }

    /// An empty service whose tenants flush Q-value batches at `max_batch`
    /// queued states or after `max_wait`, whichever comes first.
    ///
    /// # Panics
    ///
    /// Panics when `max_batch` is zero.
    pub fn with_batch_policy(max_batch: usize, max_wait: Duration) -> Self {
        assert!(max_batch > 0, "batch trigger must be positive");
        Self { tenants: RwLock::new(HashMap::new()), max_batch, max_wait }
    }

    /// Registers `core` under `name`. Tenants are fully isolated from each
    /// other: nothing — caches, agents, batchers — is shared between them.
    ///
    /// # Errors
    ///
    /// [`ServeError::DuplicateTenant`] when the name is taken.
    pub fn register(&self, name: impl Into<String>, core: PreparedCore) -> Result<(), ServeError> {
        let name = name.into();
        let mut tenants = self.tenants.write().expect("tenant registry poisoned");
        if tenants.contains_key(&name) {
            return Err(ServeError::DuplicateTenant(name));
        }
        tenants.insert(
            name,
            Arc::new(Tenant {
                core,
                batchers: Mutex::new(HashMap::new()),
                max_batch: self.max_batch,
                max_wait: self.max_wait,
            }),
        );
        Ok(())
    }

    /// Removes a tenant, returning whether it existed.
    pub fn deregister(&self, name: &str) -> bool {
        self.tenants.write().expect("tenant registry poisoned").remove(name).is_some()
    }

    /// Registered tenant names, sorted.
    pub fn tenant_names(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.tenants.read().expect("tenant registry poisoned").keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered tenants.
    pub fn num_tenants(&self) -> usize {
        self.tenants.read().expect("tenant registry poisoned").len()
    }

    fn tenant(&self, name: &str) -> Result<Arc<Tenant>, ServeError> {
        self.tenants
            .read()
            .expect("tenant registry poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownTenant(name.to_string()))
    }

    /// Runs `f` against a tenant's frozen core — the escape hatch for
    /// anything the [`Query`] surface doesn't cover (day ranges, true
    /// importances, direct runs).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] when the tenant doesn't exist.
    pub fn with_core<R>(
        &self,
        tenant: &str,
        f: impl FnOnce(&PreparedCore) -> R,
    ) -> Result<R, ServeError> {
        Ok(f(&self.tenant(tenant)?.core))
    }

    /// Answers one request on the calling thread. Safe to call from any
    /// number of threads concurrently; Q-value queries from concurrent
    /// callers against the same tenant context coalesce into batched
    /// forwards.
    ///
    /// # Errors
    ///
    /// See [`ServeError`] variants.
    pub fn handle(&self, request: &AllocRequest) -> Result<AllocResponse, ServeError> {
        self.tenant(&request.tenant)?.answer(&request.query)
    }

    /// Eagerly trains every CRL agent of a tenant (both the standalone CRL
    /// and DCTA's internal one), so no request pays first-touch training.
    /// Returns how many agents this call trained.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] / training failures.
    pub fn warm(&self, tenant: &str) -> Result<usize, ServeError> {
        let tenant = self.tenant(tenant)?;
        let a = tenant.core.crl().pretrain_all()?;
        let b = tenant.core.dcta().crl().pretrain_all()?;
        Ok(a + b)
    }

    /// Point-in-time serving counters of a tenant.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] when the tenant doesn't exist.
    pub fn stats(&self, tenant: &str) -> Result<TenantStats, ServeError> {
        let tenant = self.tenant(tenant)?;
        let batchers = tenant.batchers.lock().expect("batcher registry poisoned");
        let mut batcher = BatcherStats::default();
        for b in batchers.values() {
            let s = b.stats();
            batcher.requests += s.requests;
            batcher.batches += s.batches;
            batcher.size_flushes += s.size_flushes;
            batcher.deadline_flushes += s.deadline_flushes;
            batcher.batched_states += s.batched_states;
        }
        Ok(TenantStats {
            cache: tenant.core.cache_stats(),
            batcher,
            batchers: batchers.len(),
            trained_agents: tenant.core.crl().cached_agents(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ServicePool;
    use buildings::scenario::{Scenario, ScenarioConfig};
    use dcta_core::pipeline::{Pipeline, PipelineConfig};
    use rl::crl::CrlConfig;
    use rl::dqn::DqnConfig;

    fn test_core() -> PreparedCore {
        let scenario = Scenario::generate(ScenarioConfig {
            num_buildings: 2,
            chillers_per_building: 2,
            bands_per_chiller: 4,
            num_tasks: 10,
            history_days: 40,
            eval_days: 7,
            mean_input_mbit: 40.0,
            ..ScenarioConfig::default()
        })
        .unwrap();
        Pipeline::new(PipelineConfig {
            workers: 3,
            env_history_days: 4,
            crl: CrlConfig {
                episodes: 8,
                dqn: DqnConfig { hidden: vec![16], ..DqnConfig::default() },
                ..CrlConfig::default()
            },
            ..PipelineConfig::default()
        })
        .prepare(&scenario)
        .unwrap()
        .into_core()
        .unwrap()
    }

    #[test]
    fn service_and_pool_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AllocatorService>();
        assert_send_sync::<ServicePool>();
        assert_send_sync::<ServeError>();
    }

    #[test]
    fn registry_queries_and_errors() {
        let service = AllocatorService::new();
        service.register("a", test_core()).unwrap();
        assert_eq!(service.tenant_names(), vec!["a".to_string()]);
        assert_eq!(service.num_tenants(), 1);
        assert!(matches!(service.register("a", test_core()), Err(ServeError::DuplicateTenant(_))));
        let missing = AllocRequest {
            tenant: "nope".into(),
            query: Query::Decision { method: Method::Dml, day: 4 },
        };
        assert!(matches!(service.handle(&missing), Err(ServeError::UnknownTenant(_))));

        let day = service.with_core("a", |c| c.test_days().start).unwrap();
        // Run and Decision answers equal direct core calls bit for bit.
        let run = service
            .handle(&AllocRequest {
                tenant: "a".into(),
                query: Query::Run(RunSpec::new(Method::Dcta, day)),
            })
            .unwrap()
            .into_run()
            .unwrap();
        let direct = service.with_core("a", |c| c.run(&RunSpec::new(Method::Dcta, day))).unwrap();
        assert_eq!(run, direct.unwrap());
        let decision = service
            .handle(&AllocRequest {
                tenant: "a".into(),
                query: Query::Decision { method: Method::GreedyOracle, day },
            })
            .unwrap()
            .into_decision()
            .unwrap();
        let direct_alloc = service
            .with_core("a", |c| c.allocate(&AllocQuery::new(Method::GreedyOracle, day)))
            .unwrap()
            .unwrap()
            .allocation;
        assert_eq!(decision, direct_alloc);

        // Wrong-arity Q-value states are rejected before touching a batch.
        let bad = AllocRequest {
            tenant: "a".into(),
            query: Query::QValues { day, state: Some(vec![0.0; 3]) },
        };
        assert!(matches!(service.handle(&bad), Err(ServeError::StateArity { .. })));

        assert!(service.deregister("a"));
        assert!(!service.deregister("a"));
        assert_eq!(service.num_tenants(), 0);
    }

    #[test]
    fn concurrent_q_values_ride_batches_and_stay_bit_identical() {
        let service = AllocatorService::with_batch_policy(4, Duration::from_micros(200));
        service.register("t", test_core()).unwrap();
        let days: Vec<usize> = service.with_core("t", |c| c.test_days().collect()).unwrap();
        // Scalar references straight off the per-context agents.
        let scalar: Vec<Vec<f64>> = service
            .with_core("t", |c| {
                days.iter()
                    .map(|&d| {
                        let shared = c.crl().shared();
                        let (key, blend) =
                            shared.define_environment(c.signature_of_day(d).unwrap()).unwrap();
                        let spec =
                            AllocSpec { importances: blend, ..c.blind_instance().to_alloc_spec() };
                        let state = AllocEnv::new(spec).unwrap().reset();
                        shared.agent(key).unwrap().q_values(&state).unwrap()
                    })
                    .collect()
            })
            .unwrap();
        const THREADS: usize = 6;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let service = &service;
                let days = &days;
                let scalar = &scalar;
                scope.spawn(move || {
                    for (i, &day) in days.iter().enumerate() {
                        let q = service
                            .handle(&AllocRequest {
                                tenant: "t".into(),
                                query: Query::QValues { day, state: None },
                            })
                            .unwrap()
                            .into_q_values()
                            .unwrap();
                        let got: Vec<u64> = q.iter().map(|v| v.to_bits()).collect();
                        let want: Vec<u64> = scalar[i].iter().map(|v| v.to_bits()).collect();
                        assert_eq!(got, want, "thread {t} day {day}");
                    }
                });
            }
        });
        let stats = service.stats("t").unwrap();
        assert_eq!(stats.batcher.requests, (THREADS * days.len()) as u64);
        assert_eq!(stats.batcher.batched_states, stats.batcher.requests);
        assert!(stats.batchers >= 1);
        assert!(stats.trained_agents >= 1);
    }

    #[test]
    fn pool_answers_match_direct_handling() {
        let service = Arc::new(AllocatorService::new());
        service.register("t", test_core()).unwrap();
        let day = service.with_core("t", |c| c.test_days().start).unwrap();
        let requests: Vec<AllocRequest> = [Method::Dml, Method::GreedyOracle, Method::Dcta]
            .into_iter()
            .map(|m| AllocRequest { tenant: "t".into(), query: Query::Run(RunSpec::new(m, day)) })
            .chain([AllocRequest {
                tenant: "t".into(),
                query: Query::QValues { day, state: None },
            }])
            .collect();
        let direct: Vec<AllocResponse> =
            requests.iter().map(|r| service.handle(r).unwrap()).collect();
        let pool = ServicePool::new(Arc::clone(&service), 2);
        assert_eq!(pool.workers(), 2);
        let tickets: Vec<_> = requests.iter().map(|r| pool.submit(r.clone())).collect();
        for (ticket, want) in tickets.into_iter().zip(&direct) {
            assert_eq!(&ticket.wait().unwrap(), want);
        }
        // Tickets submitted right before drop still get answered.
        let late = pool.submit(requests[0].clone());
        drop(pool);
        assert_eq!(&late.wait().unwrap(), &direct[0]);
    }
}
