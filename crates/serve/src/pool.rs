//! A fixed worker pool in front of an [`AllocatorService`]: submissions
//! enqueue and return a [`Ticket`]; `workers` threads drain the queue by
//! calling [`AllocatorService::handle`].
//!
//! The pool adds *throughput*, not semantics — every answer is exactly what
//! a direct `handle` call would have produced (see the crate-level
//! determinism contract), so the worker count is a pure performance knob.
//! Dropping the pool finishes all queued work before joining the workers.

use crate::service::{AllocRequest, AllocResponse, AllocatorService, ServeError};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One submission's answer slot, filled by whichever worker ran it.
#[derive(Debug, Default)]
struct TicketState {
    slot: Mutex<Option<Result<AllocResponse, ServeError>>>,
    ready: Condvar,
}

/// A pending answer from [`ServicePool::submit`]; redeem with
/// [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    state: Arc<TicketState>,
}

impl Ticket {
    /// Blocks until a worker answers the request, then returns the answer.
    pub fn wait(self) -> Result<AllocResponse, ServeError> {
        let mut slot = self.state.slot.lock().expect("ticket poisoned");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.state.ready.wait(slot).expect("ticket poisoned");
        }
    }
}

#[derive(Debug)]
struct Job {
    request: AllocRequest,
    ticket: Arc<TicketState>,
}

#[derive(Debug)]
struct PoolShared {
    service: Arc<AllocatorService>,
    queue: Mutex<VecDeque<Job>>,
    work_ready: Condvar,
    shutdown: AtomicBool,
}

/// The worker pool. Create with [`ServicePool::new`]; submit with
/// [`ServicePool::submit`].
#[derive(Debug)]
pub struct ServicePool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl ServicePool {
    /// Spawns `workers` threads serving `service`.
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero or a thread fails to spawn.
    pub fn new(service: Arc<AllocatorService>, workers: usize) -> Self {
        assert!(workers > 0, "a pool needs at least one worker");
        let shared = Arc::new(PoolShared {
            service,
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn serve worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// The service behind the pool.
    pub fn service(&self) -> &Arc<AllocatorService> {
        &self.shared.service
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues `request` and returns a [`Ticket`] for its answer.
    pub fn submit(&self, request: AllocRequest) -> Ticket {
        let state = Arc::new(TicketState::default());
        {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            queue.push_back(Job { request, ticket: Arc::clone(&state) });
        }
        self.shared.work_ready.notify_one();
        Ticket { state }
    }
}

impl Drop for ServicePool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            // A worker that panicked already filled no ticket; surfacing the
            // panic here beats silently swallowing it.
            if let Err(e) = worker.join() {
                std::panic::resume_unwind(e);
            }
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                // Queued work drains before shutdown is honoured, so a
                // dropped pool still answers everything submitted.
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared.work_ready.wait(queue).expect("pool queue poisoned");
            }
        };
        let result = shared.service.handle(&job.request);
        *job.ticket.slot.lock().expect("ticket poisoned") = Some(result);
        job.ticket.ready.notify_all();
    }
}
