//! Chiller physics: COP curves and part-load behaviour.
//!
//! Each chiller follows the standard quadratic part-load model: efficiency
//! peaks at full load and degrades with the square of the distance from it,
//! and warmer condenser (outdoor) temperatures shave off a linear factor.
//! The *true* COP here is the hidden ground truth the learned task models
//! try to recover from noisy telemetry.

/// Floor below which no operating chiller's COP falls.
pub const MIN_COP: f64 = 0.5;

/// Physical ceiling on COP for any machine in the fleet.
pub const MAX_COP: f64 = 12.0;

/// Outdoor temperature (°C) at which `peak_cop` is rated.
pub const RATING_TEMP_C: f64 = 28.0;

/// Compressor technology of a chiller (a Table-I domain feature).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChillerModel {
    /// Centrifugal compressor — large machines, best peak efficiency.
    Centrifugal,
    /// Screw compressor — mid-size workhorse.
    Screw,
    /// Scroll compressor — small machines.
    Scroll,
}

impl ChillerModel {
    /// Encodes the model as an ordinal feature value.
    pub fn as_feature(self) -> f64 {
        match self {
            ChillerModel::Centrifugal => 0.0,
            ChillerModel::Screw => 1.0,
            ChillerModel::Scroll => 2.0,
        }
    }

    /// Stable name used by the CSV interchange.
    pub fn name(self) -> &'static str {
        match self {
            ChillerModel::Centrifugal => "centrifugal",
            ChillerModel::Screw => "screw",
            ChillerModel::Scroll => "scroll",
        }
    }

    /// Parses a name written by [`ChillerModel::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "centrifugal" => Some(ChillerModel::Centrifugal),
            "screw" => Some(ChillerModel::Screw),
            "scroll" => Some(ChillerModel::Scroll),
            _ => None,
        }
    }
}

/// One physical chiller with its hidden efficiency curve.
#[derive(Debug, Clone, PartialEq)]
pub struct Chiller {
    model: ChillerModel,
    capacity_kw: f64,
    peak_cop: f64,
    curvature: f64,
    temp_coeff: f64,
}

impl Chiller {
    /// Builds a chiller from its curve parameters.
    ///
    /// * `capacity_kw` — rated cooling capacity (> 0).
    /// * `peak_cop` — COP at full load and [`RATING_TEMP_C`].
    /// * `curvature` — quadratic part-load penalty in `[0, 1)`; COP at zero
    ///   load is `peak_cop · (1 − curvature)`.
    /// * `temp_coeff` — fractional COP loss per °C above [`RATING_TEMP_C`].
    ///
    /// # Panics
    ///
    /// Panics on non-positive capacity or out-of-range curve parameters —
    /// these are construction bugs, not runtime conditions.
    pub fn new(
        model: ChillerModel,
        capacity_kw: f64,
        peak_cop: f64,
        curvature: f64,
        temp_coeff: f64,
    ) -> Self {
        assert!(capacity_kw > 0.0, "capacity must be positive");
        assert!(peak_cop > MIN_COP && peak_cop <= MAX_COP, "peak COP out of range");
        assert!((0.0..1.0).contains(&curvature), "curvature out of [0,1)");
        assert!((0.0..0.05).contains(&temp_coeff), "temp coefficient out of range");
        Self { model, capacity_kw, peak_cop, curvature, temp_coeff }
    }

    /// Compressor technology.
    pub fn model(&self) -> ChillerModel {
        self.model
    }

    /// Rated cooling capacity, kW.
    pub fn capacity_kw(&self) -> f64 {
        self.capacity_kw
    }

    /// COP at full load and rating temperature.
    pub fn peak_cop(&self) -> f64 {
        self.peak_cop
    }

    /// Part-load ratio for a given cooling load (clamped to `[0, 1]`).
    pub fn plr(&self, load_kw: f64) -> f64 {
        (load_kw / self.capacity_kw).clamp(0.0, 1.0)
    }

    /// True COP at `load_kw` under outdoor temperature `outdoor_temp_c`:
    ///
    /// ```text
    /// cop = peak · (1 − curvature · (1 − plr)²) · (1 − temp_coeff · (T − 28))
    /// ```
    ///
    /// clamped to `[MIN_COP, MAX_COP]`.
    pub fn cop(&self, load_kw: f64, outdoor_temp_c: f64) -> f64 {
        let plr = self.plr(load_kw);
        let part_load = 1.0 - self.curvature * (1.0 - plr) * (1.0 - plr);
        let temp = 1.0 - self.temp_coeff * (outdoor_temp_c - RATING_TEMP_C);
        (self.peak_cop * part_load * temp).clamp(MIN_COP, MAX_COP)
    }

    /// True electrical power (kW) drawn while delivering `load_kw` of
    /// cooling at `outdoor_temp_c`.
    pub fn power_kw(&self, load_kw: f64, outdoor_temp_c: f64) -> f64 {
        if load_kw <= 0.0 {
            0.0
        } else {
            load_kw / self.cop(load_kw, outdoor_temp_c)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chiller() -> Chiller {
        Chiller::new(ChillerModel::Screw, 500.0, 5.4, 0.9, 0.008)
    }

    #[test]
    fn model_features_are_distinct_ordinals() {
        let all = [ChillerModel::Centrifugal, ChillerModel::Screw, ChillerModel::Scroll];
        for (i, m) in all.iter().enumerate() {
            assert_eq!(m.as_feature(), i as f64);
            assert_eq!(ChillerModel::from_name(m.name()), Some(*m));
        }
        assert_eq!(ChillerModel::from_name("magnetic"), None);
    }

    #[test]
    fn cop_peaks_at_full_load() {
        let c = chiller();
        let full = c.cop(500.0, RATING_TEMP_C);
        assert!((full - 5.4).abs() < 1e-12);
        for load in [50.0, 150.0, 300.0, 450.0] {
            assert!(c.cop(load, RATING_TEMP_C) < full);
        }
    }

    #[test]
    fn cop_monotone_in_load_below_capacity() {
        let c = chiller();
        let mut prev = c.cop(10.0, 30.0);
        for load in (1..=50).map(|i| i as f64 * 10.0) {
            let cop = c.cop(load, 30.0);
            assert!(cop >= prev - 1e-12, "COP dipped at load {load}");
            prev = cop;
        }
    }

    #[test]
    fn heat_hurts_efficiency() {
        let c = chiller();
        assert!(c.cop(400.0, 34.0) < c.cop(400.0, RATING_TEMP_C));
        assert!(c.cop(400.0, 20.0) > c.cop(400.0, RATING_TEMP_C));
    }

    #[test]
    fn cop_stays_clamped() {
        let c = chiller();
        for load in [0.0, 1.0, 250.0, 500.0, 900.0] {
            for temp in [-10.0, 15.0, 28.0, 45.0, 80.0] {
                let cop = c.cop(load, temp);
                assert!((MIN_COP..=MAX_COP).contains(&cop), "cop {cop} at {load}/{temp}");
            }
        }
    }

    #[test]
    fn power_is_load_over_cop() {
        let c = chiller();
        let p = c.power_kw(400.0, 30.0);
        assert!((p - 400.0 / c.cop(400.0, 30.0)).abs() < 1e-12);
        assert_eq!(c.power_kw(0.0, 30.0), 0.0);
        assert_eq!(c.power_kw(-5.0, 30.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        Chiller::new(ChillerModel::Scroll, 0.0, 5.0, 0.9, 0.008);
    }
}
