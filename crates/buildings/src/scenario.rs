//! The 50-task, four-year, three-building scenario generator.
//!
//! The paper evaluates on a proprietary 1 TB log of three buildings'
//! chiller plants spanning four years (§V). The allocator never sees raw
//! sensor streams — it consumes per-task datasets, day contexts and
//! importance statistics — so this generator reproduces those
//! *distributions* instead: seeded plants with hidden COP curves, a
//! seasonal weather process, a daily operation log whose records land in
//! per-`(building, chiller, load-band)` task datasets, and evaluation-day
//! contexts for the decision function. One task = one COP-prediction model
//! for one load band of one chiller, exactly the granularity of §V-B.
//!
//! Generation is fully deterministic: a [`ScenarioConfig`] (including its
//! `seed`) maps to a bit-identical [`Scenario`].

use crate::chiller::{Chiller, ChillerModel};
use crate::plant::{Plant, MAX_CHILLERS};
use crate::telemetry::TelemetryRecord;
use crate::weather::{WeatherModel, WeatherSample};
use learn::dataset::{Dataset, DatasetError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Sequencing decisions (and telemetry snapshots) per day. The paper's
/// plants re-decide a few times a day as load shifts between the morning
/// ramp, midday peak and evening shoulder.
pub const DECISION_SLOTS_PER_DAY: usize = 3;

/// Days between commissioning sweeps in the history log. On sweep days the
/// operators exercise every chiller across its whole band grid (day 0
/// included), so every task owns at least one sample — scarce tasks are
/// scarce, not empty.
pub const COMMISSIONING_INTERVAL_DAYS: u32 = 28;

/// Scenario generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// Number of buildings (each with its own plant).
    pub num_buildings: usize,
    /// Chillers per building's plant.
    pub chillers_per_building: usize,
    /// Load bands per chiller — the task granularity of §V-B.
    pub bands_per_chiller: usize,
    /// Tasks to keep, best-covered first (`0` = the full
    /// `buildings × chillers × bands` grid).
    pub num_tasks: usize,
    /// History days of operation telemetry to synthesise (the paper logs
    /// four years).
    pub history_days: u32,
    /// Evaluation days following the history.
    pub eval_days: u32,
    /// Mean per-task input size, Mbit (the edge-offloading payload).
    pub mean_input_mbit: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            num_buildings: 3,
            chillers_per_building: 3,
            bands_per_chiller: 6,
            num_tasks: 50,
            history_days: 1460,
            eval_days: 8,
            mean_input_mbit: 500.0,
            seed: 0xDC7A,
        }
    }
}

/// Error generating a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// A grid dimension (buildings/chillers/bands) is zero, or the plant
    /// exceeds the sequencing enumerator's machine bound.
    BadGrid {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// `history_days` or `eval_days` is zero.
    BadHorizon,
    /// `mean_input_mbit` is not a positive finite size.
    BadInputSize {
        /// The offending value.
        mean_input_mbit: f64,
    },
    /// More tasks requested than the task grid holds.
    TooManyTasks {
        /// Requested task count.
        requested: usize,
        /// Grid capacity (`buildings × chillers × bands`).
        grid: usize,
    },
    /// A per-task dataset could not be assembled.
    Dataset(DatasetError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::BadGrid { reason } => write!(f, "bad scenario grid: {reason}"),
            ScenarioError::BadHorizon => {
                write!(f, "history_days and eval_days must both be at least 1")
            }
            ScenarioError::BadInputSize { mean_input_mbit } => {
                write!(f, "mean input size {mean_input_mbit} Mbit is not positive and finite")
            }
            ScenarioError::TooManyTasks { requested, grid } => {
                write!(f, "{requested} tasks requested but the grid only has {grid} cells")
            }
            ScenarioError::Dataset(e) => write!(f, "task dataset assembly failed: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Dataset(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DatasetError> for ScenarioError {
    fn from(e: DatasetError) -> Self {
        ScenarioError::Dataset(e)
    }
}

/// One COP-prediction task: a load band of one chiller (§V-B).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// Human-readable task name (`b{building}c{chiller}band{band}`).
    pub name: String,
    /// Building index.
    pub building: usize,
    /// Chiller index within the building's plant.
    pub chiller: usize,
    /// Load-band index within the chiller.
    pub band: usize,
}

/// One sequencing decision slot of an evaluation day.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionSlot {
    /// Weather at decision time (shared across buildings).
    pub weather: WeatherSample,
    /// Cooling demand of each building, kW.
    pub demand_kw: Vec<f64>,
}

/// Everything the system observes about one evaluation day.
#[derive(Debug, Clone, PartialEq)]
pub struct DayContext {
    /// The day's decision slots, in chronological order.
    pub hours: Vec<DecisionSlot>,
    /// Representative (midday-peak) weather for feature building.
    pub weather: WeatherSample,
    /// Environment-sensing vector for the CRL stage: normalised mean
    /// temperature, mean sky condition, then each building's demand
    /// fraction — the low-rate "sensing data" of Fig. 1.
    pub sensing: Vec<f64>,
}

/// A fully generated evaluation scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    config: ScenarioConfig,
    plants: Vec<Plant>,
    tasks: Vec<TaskSpec>,
    task_index: Vec<Option<usize>>,
    datasets: Vec<Dataset>,
    days: Vec<DayContext>,
    input_bits: Vec<f64>,
}

impl Scenario {
    /// Generates the scenario `config` describes. Deterministic: equal
    /// configs (including `seed`) produce bit-identical scenarios.
    ///
    /// # Errors
    ///
    /// [`ScenarioError`] on degenerate grids, horizons or input sizes, or
    /// when `num_tasks` exceeds the task grid.
    pub fn generate(config: ScenarioConfig) -> Result<Self, ScenarioError> {
        let grid = validate(&config)?;
        let num_tasks = if config.num_tasks == 0 { grid } else { config.num_tasks };

        let mut rng = SmallRng::seed_from_u64(config.seed);
        let weather = WeatherModel::seeded(&mut rng);
        let plants = gen_plants(&config, &mut rng);
        // Per-building baseline demand fraction: how loaded the plant runs
        // at the annual-mean temperature.
        let base_frac: Vec<f64> =
            (0..config.num_buildings).map(|_| 0.46 + 0.10 * rng.gen::<f64>()).collect();

        // History log → per-grid-cell telemetry rows.
        let bands = config.bands_per_chiller;
        let cell =
            |b: usize, c: usize, band: usize| (b * config.chillers_per_building + c) * bands + band;
        let mut rows: Vec<Vec<Vec<f64>>> = vec![Vec::new(); grid];
        let mut targets: Vec<Vec<f64>> = vec![Vec::new(); grid];
        let mut log = |b: usize, c: usize, chiller: &Chiller, day, slot, w, load, cop| {
            let rec = TelemetryRecord::from_operating_point(b, c, chiller, day, slot, w, load, cop);
            if let Some(band) = plants[b].load_band(c, load, bands) {
                rows[cell(b, c, band)].push(rec.domain_features(chiller).to_vec());
                targets[cell(b, c, band)].push(rec.measured_cop);
            }
        };
        for day in 0..config.history_days {
            if day % COMMISSIONING_INTERVAL_DAYS == 0 {
                // Commissioning sweep: every chiller is exercised at every
                // band midpoint and its COP logged.
                let w = weather.sample(day, 0, &mut rng);
                for (b, plant) in plants.iter().enumerate() {
                    for (c, chiller) in plant.chillers().iter().enumerate() {
                        for band in 0..bands {
                            let mid =
                                plant.band_midpoint_kw(c, band, bands).expect("band within grid");
                            let cop = measured_cop(chiller, mid, &w, &mut rng);
                            log(b, c, chiller, day, 0, w, mid, cop);
                        }
                    }
                }
            }
            for slot in 0..DECISION_SLOTS_PER_DAY {
                let w = weather.sample(day, slot, &mut rng);
                for (b, plant) in plants.iter().enumerate() {
                    let demand = demand_kw(plant, base_frac[b], &w, &mut rng);
                    let Ok((seq, _)) = plant.best_sequencing_true(demand, w.outdoor_temp_c) else {
                        continue;
                    };
                    for c in seq.running().collect::<Vec<_>>() {
                        let load = seq.load_kw(c).expect("running chiller has a load");
                        let chiller = &plant.chillers()[c];
                        let cop = measured_cop(chiller, load, &w, &mut rng);
                        log(b, c, chiller, day, slot, w, load, cop);
                    }
                }
            }
        }
        // Release the closure's borrow of rows/targets.
        #[allow(clippy::drop_non_drop)]
        drop(log);

        // Task selection: best-covered cells first (ties by grid order),
        // then re-sorted into grid order for stable task indices.
        let mut order: Vec<usize> = (0..grid).collect();
        order.sort_by_key(|&i| (usize::MAX - rows[i].len(), i));
        if order.len() > num_tasks {
            order.truncate(num_tasks);
        }
        order.sort_unstable();
        let mut task_index = vec![None; grid];
        let mut tasks = Vec::with_capacity(order.len());
        let mut datasets = Vec::with_capacity(order.len());
        let chillers = config.chillers_per_building;
        for (t, &i) in order.iter().enumerate() {
            let band = i % bands;
            let c = (i / bands) % chillers;
            let b = i / (bands * chillers);
            task_index[i] = Some(t);
            tasks.push(TaskSpec {
                name: format!("b{b}c{c}band{band}"),
                building: b,
                chiller: c,
                band,
            });
            datasets.push(Dataset::from_rows(
                std::mem::take(&mut rows[i]),
                std::mem::take(&mut targets[i]),
            )?);
        }

        // Evaluation days continue the same seasonal/demand processes.
        let days = (0..config.eval_days)
            .map(|d| {
                let day = config.history_days + d;
                let hours: Vec<DecisionSlot> = (0..DECISION_SLOTS_PER_DAY)
                    .map(|slot| {
                        let w = weather.sample(day, slot, &mut rng);
                        let demand_kw = plants
                            .iter()
                            .zip(&base_frac)
                            .map(|(p, &f)| demand_kw(p, f, &w, &mut rng))
                            .collect();
                        DecisionSlot { weather: w, demand_kw }
                    })
                    .collect();
                let mean_temp = hours.iter().map(|h| h.weather.outdoor_temp_c).sum::<f64>()
                    / hours.len() as f64;
                let mean_cond = hours.iter().map(|h| h.weather.condition.as_feature()).sum::<f64>()
                    / hours.len() as f64;
                let mut sensing = vec![mean_temp / 10.0, mean_cond];
                for (b, plant) in plants.iter().enumerate() {
                    let mean_demand =
                        hours.iter().map(|h| h.demand_kw[b]).sum::<f64>() / hours.len() as f64;
                    sensing.push(mean_demand / plant.total_capacity_kw());
                }
                // Slot 1 is the midday peak — the day's representative weather.
                DayContext { weather: hours[1].weather, hours, sensing }
            })
            .collect();

        // Per-task input sizes: drawn last so sweeping `mean_input_mbit`
        // rescales payloads without disturbing any other draw.
        let input_bits = (0..tasks.len())
            .map(|_| config.mean_input_mbit * 1e6 * (0.45 + 1.1 * rng.gen::<f64>()))
            .collect();

        Ok(Self { config, plants, tasks, task_index, datasets, days, input_bits })
    }

    /// The generating configuration.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// The buildings' plants, indexed by building.
    pub fn plants(&self) -> &[Plant] {
        &self.plants
    }

    /// Building `b`'s plant.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of bounds.
    pub fn plant(&self, b: usize) -> &Plant {
        &self.plants[b]
    }

    /// Number of tasks in the scenario.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// All task specs, in stable grid order.
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// The task covering band `band` of chiller `c` in building `b`, if the
    /// scenario kept one there.
    pub fn task_for(&self, b: usize, c: usize, band: usize) -> Option<usize> {
        let cfg = &self.config;
        if b >= cfg.num_buildings || c >= cfg.chillers_per_building || band >= cfg.bands_per_chiller
        {
            return None;
        }
        self.task_index[(b * cfg.chillers_per_building + c) * cfg.bands_per_chiller + band]
    }

    /// Task `t`'s training dataset (Table-I domain features → measured COP).
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of bounds.
    pub fn dataset(&self, t: usize) -> &Dataset {
        &self.datasets[t]
    }

    /// The evaluation days, in order.
    pub fn days(&self) -> &[DayContext] {
        &self.days
    }

    /// Evaluation day `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of bounds.
    pub fn day(&self, d: usize) -> &DayContext {
        &self.days[d]
    }

    /// Input payload of task `t` when offloaded to the edge, bits.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of bounds.
    pub fn input_bits(&self, t: usize) -> f64 {
        self.input_bits[t]
    }

    /// Ground-truth COP of task `t`'s chiller at `load_kw` and
    /// `outdoor_temp_c` — what a perfect model would predict.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of bounds.
    pub fn true_cop(&self, t: usize, load_kw: f64, outdoor_temp_c: f64) -> f64 {
        let spec = &self.tasks[t];
        self.plants[spec.building].chillers()[spec.chiller].cop(load_kw, outdoor_temp_c)
    }
}

fn validate(config: &ScenarioConfig) -> Result<usize, ScenarioError> {
    if config.num_buildings == 0 {
        return Err(ScenarioError::BadGrid { reason: "num_buildings is zero" });
    }
    if config.chillers_per_building == 0 {
        return Err(ScenarioError::BadGrid { reason: "chillers_per_building is zero" });
    }
    if config.chillers_per_building > MAX_CHILLERS {
        return Err(ScenarioError::BadGrid {
            reason: "chillers_per_building exceeds MAX_CHILLERS",
        });
    }
    if config.bands_per_chiller == 0 {
        return Err(ScenarioError::BadGrid { reason: "bands_per_chiller is zero" });
    }
    if config.history_days == 0 || config.eval_days == 0 {
        return Err(ScenarioError::BadHorizon);
    }
    if !config.mean_input_mbit.is_finite() || config.mean_input_mbit <= 0.0 {
        return Err(ScenarioError::BadInputSize { mean_input_mbit: config.mean_input_mbit });
    }
    let grid = config.num_buildings * config.chillers_per_building * config.bands_per_chiller;
    if config.num_tasks > grid {
        return Err(ScenarioError::TooManyTasks { requested: config.num_tasks, grid });
    }
    Ok(grid)
}

/// Draws one building's plant fleet. Machines within a plant share a
/// building-level baseline with modest per-machine spread, which keeps the
/// all-chillers-on candidate the strict power maximum (the Fig. 3 naive
/// baseline) while still giving the learned models real ranking work.
fn gen_plants(config: &ScenarioConfig, rng: &mut SmallRng) -> Vec<Plant> {
    (0..config.num_buildings)
        .map(|_| {
            let base_cap = 380.0 + 260.0 * rng.gen::<f64>();
            let base_peak = 5.1 + 0.5 * rng.gen::<f64>();
            let temp_coeff = 0.006 + 0.004 * rng.gen::<f64>();
            let chillers = (0..config.chillers_per_building)
                .map(|c| {
                    let model = match c % 3 {
                        0 => ChillerModel::Centrifugal,
                        1 => ChillerModel::Screw,
                        _ => ChillerModel::Scroll,
                    };
                    let capacity = base_cap * (0.95 + 0.10 * rng.gen::<f64>());
                    let peak = base_peak * (0.95 + 0.10 * rng.gen::<f64>());
                    let curvature = 0.90 + 0.04 * rng.gen::<f64>();
                    Chiller::new(model, capacity, peak, curvature, temp_coeff)
                })
                .collect();
            Plant::new(chillers)
        })
        .collect()
}

/// A building's cooling demand at one decision slot: baseline occupancy
/// load plus a weather-tracking component and operational noise, clamped so
/// the plant can always (just barely to comfortably) serve it.
fn demand_kw(plant: &Plant, base_frac: f64, w: &WeatherSample, rng: &mut SmallRng) -> f64 {
    let weather_pull = 0.12 * (w.outdoor_temp_c - 24.0) / 10.0;
    let noise = 0.025 * (2.0 * rng.gen::<f64>() - 1.0);
    let frac = (base_frac + weather_pull + noise).clamp(0.18, 0.92);
    frac * plant.total_capacity_kw()
}

/// The sensed COP at an operating point: ground truth plus ±3 % sensor
/// noise. Band-crossing noise in these measurements is what makes task
/// importance fluctuate day to day (Obs. 3).
fn measured_cop(chiller: &Chiller, load_kw: f64, w: &WeatherSample, rng: &mut SmallRng) -> f64 {
    let noise = 1.0 + 0.03 * (2.0 * rng.gen::<f64>() - 1.0);
    (chiller.cop(load_kw, w.outdoor_temp_c) * noise).max(0.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ScenarioConfig {
        ScenarioConfig {
            history_days: 40,
            eval_days: 3,
            num_tasks: 12,
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn default_grid_holds_fifty_tasks() {
        let cfg = ScenarioConfig::default();
        assert_eq!(cfg.num_buildings * cfg.chillers_per_building * cfg.bands_per_chiller, 54);
        assert_eq!(cfg.num_tasks, 50);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Scenario::generate(quick()).unwrap();
        let b = Scenario::generate(quick()).unwrap();
        assert_eq!(a, b);
        let c = Scenario::generate(ScenarioConfig { seed: 7, ..quick() }).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn task_grid_is_consistent() {
        let s = Scenario::generate(quick()).unwrap();
        assert_eq!(s.num_tasks(), 12);
        for (t, spec) in s.tasks().iter().enumerate() {
            assert_eq!(s.task_for(spec.building, spec.chiller, spec.band), Some(t));
            assert!(!s.dataset(t).is_empty(), "task {t} has no data");
            assert_eq!(spec.name, format!("b{}c{}band{}", spec.building, spec.chiller, spec.band));
        }
        assert_eq!(s.task_for(99, 0, 0), None);
    }

    #[test]
    fn zero_num_tasks_means_full_grid() {
        let s = Scenario::generate(ScenarioConfig { num_tasks: 0, ..quick() }).unwrap();
        assert_eq!(s.num_tasks(), 54);
        for b in 0..3 {
            for c in 0..3 {
                for band in 0..6 {
                    assert!(s.task_for(b, c, band).is_some());
                }
            }
        }
    }

    #[test]
    fn kept_tasks_are_the_best_covered() {
        let full = Scenario::generate(ScenarioConfig { num_tasks: 0, ..quick() }).unwrap();
        let trimmed = Scenario::generate(quick()).unwrap();
        let mut lens: Vec<usize> = (0..full.num_tasks()).map(|t| full.dataset(t).len()).collect();
        lens.sort_unstable_by(|a, b| b.cmp(a));
        let floor = lens[trimmed.num_tasks() - 1];
        for t in 0..trimmed.num_tasks() {
            assert!(trimmed.dataset(t).len() >= floor.min(1));
        }
    }

    #[test]
    fn days_have_slots_and_sensing() {
        let s = Scenario::generate(quick()).unwrap();
        assert_eq!(s.days().len(), 3);
        for day in s.days() {
            assert_eq!(day.hours.len(), DECISION_SLOTS_PER_DAY);
            assert_eq!(day.weather, day.hours[1].weather);
            assert_eq!(day.sensing.len(), 2 + s.plants().len());
            for slot in &day.hours {
                assert_eq!(slot.demand_kw.len(), s.plants().len());
                for (b, plant) in s.plants().iter().enumerate() {
                    assert!(slot.demand_kw[b] > 0.0);
                    assert!(slot.demand_kw[b] <= plant.total_capacity_kw());
                }
            }
        }
    }

    #[test]
    fn input_sizes_scale_with_mean() {
        let a = Scenario::generate(quick()).unwrap();
        let b = Scenario::generate(ScenarioConfig { mean_input_mbit: 1000.0, ..quick() }).unwrap();
        for t in 0..a.num_tasks() {
            assert!((b.input_bits(t) / a.input_bits(t) - 2.0).abs() < 1e-9);
            assert!(a.input_bits(t) > 0.0);
        }
    }

    #[test]
    fn degenerate_configs_rejected() {
        let ok = quick();
        assert!(matches!(
            Scenario::generate(ScenarioConfig { num_buildings: 0, ..ok }),
            Err(ScenarioError::BadGrid { .. })
        ));
        assert!(matches!(
            Scenario::generate(ScenarioConfig { history_days: 0, ..ok }),
            Err(ScenarioError::BadHorizon)
        ));
        assert!(matches!(
            Scenario::generate(ScenarioConfig { eval_days: 0, ..ok }),
            Err(ScenarioError::BadHorizon)
        ));
        assert!(matches!(
            Scenario::generate(ScenarioConfig { mean_input_mbit: 0.0, ..ok }),
            Err(ScenarioError::BadInputSize { .. })
        ));
        assert!(matches!(
            Scenario::generate(ScenarioConfig { num_tasks: 55, ..ok }),
            Err(ScenarioError::TooManyTasks { requested: 55, grid: 54 })
        ));
    }

    #[test]
    fn true_cop_matches_the_plant() {
        let s = Scenario::generate(quick()).unwrap();
        let spec = &s.tasks()[0];
        let chiller = &s.plant(spec.building).chillers()[spec.chiller];
        assert_eq!(s.true_cop(0, 200.0, 30.0), chiller.cop(200.0, 30.0));
    }
}
