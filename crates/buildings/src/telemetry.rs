//! Sensing records carrying the Table-I domain fields.
//!
//! Every decision slot in the history log yields one telemetry record per
//! running chiller: the eight domain features of the paper's Table I
//! (building, chiller model, operating power, weather condition, outdoor
//! temperature, cooling load, chilled-water mass flow, water ΔT) plus the
//! measured COP the learned models regress onto. The water-loop figures
//! are derived from the load through the heat-balance relation
//! `Q = ṁ · c_p · ΔT` with the plant's nominal ΔT schedule, then observed
//! with sensor noise upstream (in the scenario generator) — a record itself
//! is already "what the sensors said".

use crate::chiller::Chiller;
use crate::weather::WeatherSample;

/// Specific heat capacity of water, kJ/(kg·K) — converts between cooling
/// load, mass flow and water temperature difference.
pub const WATER_CP: f64 = 4.186;

/// One sensed operating point of one chiller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryRecord {
    /// Building index the chiller belongs to.
    pub building: usize,
    /// Chiller index within the building's plant.
    pub chiller: usize,
    /// Day the record was logged.
    pub day: u32,
    /// Decision slot within the day.
    pub slot: usize,
    /// Weather at logging time.
    pub weather: WeatherSample,
    /// Cooling load served, kW.
    pub load_kw: f64,
    /// Electrical power drawn, kW (sensed; leaks the COP target).
    pub power_kw: f64,
    /// Chilled-water mass flow, kg/s.
    pub flow_kg_s: f64,
    /// Chilled-water temperature difference, °C.
    pub delta_t_c: f64,
    /// Measured COP — the regression target.
    pub measured_cop: f64,
}

impl TelemetryRecord {
    /// Number of domain features a record exposes (Table I's eight).
    pub const NUM_DOMAIN_FEATURES: usize = 8;

    /// Derives a record from an operating point. `measured_cop` is the
    /// *sensed* COP (true COP plus whatever noise the caller injected);
    /// power and the water loop are made consistent with it.
    #[allow(clippy::too_many_arguments)] // mirrors the Table-I field list
    pub fn from_operating_point(
        building: usize,
        chiller_index: usize,
        chiller: &Chiller,
        day: u32,
        slot: usize,
        weather: WeatherSample,
        load_kw: f64,
        measured_cop: f64,
    ) -> Self {
        let plr = chiller.plr(load_kw);
        let delta_t_c = 4.0 + 2.0 * plr;
        let flow_kg_s = load_kw / (WATER_CP * delta_t_c);
        let power_kw = if measured_cop > 0.0 { load_kw / measured_cop } else { 0.0 };
        Self {
            building,
            chiller: chiller_index,
            day,
            slot,
            weather,
            load_kw,
            power_kw,
            flow_kg_s,
            delta_t_c,
            measured_cop,
        }
    }

    /// The Table-I domain feature vector, in the fixed order the rest of
    /// the system assumes (operating power at index 2).
    pub fn domain_features(&self, chiller: &Chiller) -> [f64; Self::NUM_DOMAIN_FEATURES] {
        [
            self.building as f64,
            chiller.model().as_feature(),
            self.power_kw,
            self.weather.condition.as_feature(),
            self.weather.outdoor_temp_c,
            self.load_kw,
            self.flow_kg_s,
            self.delta_t_c,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chiller::ChillerModel;
    use crate::weather::{WeatherCondition, WeatherSample};

    fn record() -> (TelemetryRecord, Chiller) {
        let c = Chiller::new(ChillerModel::Screw, 500.0, 5.4, 0.9, 0.008);
        let w = WeatherSample { condition: WeatherCondition::Cloudy, outdoor_temp_c: 26.5 };
        let r = TelemetryRecord::from_operating_point(1, 0, &c, 12, 2, w, 250.0, 5.0);
        (r, c)
    }

    #[test]
    fn water_loop_respects_heat_balance() {
        let (r, _) = record();
        // ΔT at plr 0.5 is 5 °C; Q = ṁ · c_p · ΔT must recover the load.
        assert!((r.delta_t_c - 5.0).abs() < 1e-12);
        assert!((r.flow_kg_s * WATER_CP * r.delta_t_c - r.load_kw).abs() < 1e-9);
    }

    #[test]
    fn power_matches_measured_cop() {
        let (r, _) = record();
        assert!((r.power_kw - 250.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn domain_features_have_the_pinned_layout() {
        let (r, c) = record();
        let f = r.domain_features(&c);
        assert_eq!(f.len(), TelemetryRecord::NUM_DOMAIN_FEATURES);
        assert_eq!(f[0], 1.0); // building
        assert_eq!(f[1], ChillerModel::Screw.as_feature());
        assert_eq!(f[2], r.power_kw); // power at index 2 (stripped for training)
        assert_eq!(f[3], WeatherCondition::Cloudy.as_feature());
        assert_eq!(f[4], 26.5);
        assert_eq!(f[5], 250.0);
        assert_eq!(f[6], r.flow_kg_s);
        assert_eq!(f[7], r.delta_t_c);
    }
}
