//! Multi-chiller plants and the sequencing decision.
//!
//! The paper's driving decision (§V) is *chiller sequencing*: given a
//! building's cooling demand, choose which chillers to run so total
//! electrical power is minimal. A plant enumerates every feasible subset of
//! its machines (capacity must cover demand), splits the demand across a
//! subset in proportion to capacity — the equal-part-load-ratio rule real
//! plants use — and ranks the candidates by predicted or true power.
//!
//! Candidate order is deterministic: fewest machines first, then lowest
//! machine-index bitmask, so tie-breaking never depends on float noise.

use crate::chiller::Chiller;
use std::fmt;

/// Most chillers a single plant may hold (the candidate set is the power
/// set of the machines, so this bounds enumeration at 65 535 subsets).
pub const MAX_CHILLERS: usize = 16;

/// One sequencing candidate: which chillers run and at what load.
#[derive(Debug, Clone, PartialEq)]
pub struct Sequencing {
    loads: Vec<Option<f64>>,
}

impl Sequencing {
    /// Per-chiller assignment: `Some(load_kw)` for running machines, `None`
    /// for machines kept off.
    pub fn loads(&self) -> &[Option<f64>] {
        &self.loads
    }

    /// Load assigned to chiller `c`, if it runs.
    pub fn load_kw(&self, c: usize) -> Option<f64> {
        self.loads.get(c).copied().flatten()
    }

    /// Iterator over the indices of running chillers.
    pub fn running(&self) -> impl Iterator<Item = usize> + '_ {
        self.loads.iter().enumerate().filter(|(_, l)| l.is_some()).map(|(c, _)| c)
    }

    /// Total cooling delivered, kW.
    pub fn total_load_kw(&self) -> f64 {
        self.loads.iter().flatten().sum()
    }
}

/// Error raised by sequencing operations.
#[derive(Debug, Clone, PartialEq)]
pub enum PlantError {
    /// The plant holds no chillers.
    NoChillers,
    /// Demand was zero, negative or non-finite — there is nothing to decide.
    BadDemand {
        /// The offending demand, kW.
        demand_kw: f64,
    },
    /// Demand exceeds the combined capacity of every chiller.
    InsufficientCapacity {
        /// Requested cooling, kW.
        demand_kw: f64,
        /// Total plant capacity, kW.
        capacity_kw: f64,
    },
}

impl fmt::Display for PlantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlantError::NoChillers => write!(f, "plant has no chillers"),
            PlantError::BadDemand { demand_kw } => {
                write!(f, "demand {demand_kw} kW is not a positive finite load")
            }
            PlantError::InsufficientCapacity { demand_kw, capacity_kw } => {
                write!(f, "demand {demand_kw} kW exceeds plant capacity {capacity_kw} kW")
            }
        }
    }
}

impl std::error::Error for PlantError {}

/// A building's chiller plant.
#[derive(Debug, Clone, PartialEq)]
pub struct Plant {
    chillers: Vec<Chiller>,
}

impl Plant {
    /// Builds a plant from its machines.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_CHILLERS`] machines are supplied.
    pub fn new(chillers: Vec<Chiller>) -> Self {
        assert!(chillers.len() <= MAX_CHILLERS, "too many chillers for subset enumeration");
        Self { chillers }
    }

    /// The plant's machines, in fixed index order.
    pub fn chillers(&self) -> &[Chiller] {
        &self.chillers
    }

    /// Combined rated capacity, kW.
    pub fn total_capacity_kw(&self) -> f64 {
        self.chillers.iter().map(Chiller::capacity_kw).sum()
    }

    /// The load band (discretised part-load-ratio bucket) chiller `c` would
    /// occupy at `load_kw`, out of `bands` equal-width buckets. `None` when
    /// the chiller or band grid doesn't exist, or the load is non-positive
    /// or beyond capacity — such loads are outside every task's remit.
    pub fn load_band(&self, c: usize, load_kw: f64, bands: usize) -> Option<usize> {
        let chiller = self.chillers.get(c)?;
        if bands == 0 || !load_kw.is_finite() || load_kw <= 0.0 {
            return None;
        }
        let cap = chiller.capacity_kw();
        if load_kw > cap {
            return None;
        }
        let band = (load_kw / cap * bands as f64).floor() as usize;
        Some(band.min(bands - 1))
    }

    /// Midpoint load (kW) of band `band` of chiller `c` on a `bands`-bucket
    /// grid — the canonical operating point a task's model is asked about.
    pub fn band_midpoint_kw(&self, c: usize, band: usize, bands: usize) -> Option<f64> {
        let chiller = self.chillers.get(c)?;
        if bands == 0 || band >= bands {
            return None;
        }
        Some((band as f64 + 0.5) * chiller.capacity_kw() / bands as f64)
    }

    /// Every feasible sequencing for `demand_kw`: each non-empty chiller
    /// subset whose combined capacity covers the demand, loaded
    /// capacity-proportionally (equal part-load ratio). Ordered by running
    /// count then machine bitmask, so the last candidate is always the
    /// all-chillers-on baseline.
    ///
    /// # Errors
    ///
    /// [`PlantError`] when the plant is empty, the demand is non-positive,
    /// or no subset can cover it.
    pub fn sequencing_candidates(&self, demand_kw: f64) -> Result<Vec<Sequencing>, PlantError> {
        let n = self.chillers.len();
        if n == 0 {
            return Err(PlantError::NoChillers);
        }
        if !demand_kw.is_finite() || demand_kw <= 0.0 {
            return Err(PlantError::BadDemand { demand_kw });
        }
        let total = self.total_capacity_kw();
        if demand_kw > total {
            return Err(PlantError::InsufficientCapacity { demand_kw, capacity_kw: total });
        }
        let mut masks: Vec<u32> = (1u32..(1u32 << n))
            .filter(|mask| {
                let cap: f64 = (0..n)
                    .filter(|c| mask & (1 << c) != 0)
                    .map(|c| self.chillers[c].capacity_kw())
                    .sum();
                cap >= demand_kw
            })
            .collect();
        masks.sort_by_key(|mask| (mask.count_ones(), *mask));
        Ok(masks
            .into_iter()
            .map(|mask| {
                let cap: f64 = (0..n)
                    .filter(|c| mask & (1 << c) != 0)
                    .map(|c| self.chillers[c].capacity_kw())
                    .sum();
                let loads = (0..n)
                    .map(|c| {
                        (mask & (1 << c) != 0)
                            .then(|| demand_kw * self.chillers[c].capacity_kw() / cap)
                    })
                    .collect();
                Sequencing { loads }
            })
            .collect())
    }

    /// Picks the candidate minimising `Σ load / cop_fn(chiller, load)` — the
    /// data-driven decision when `cop_fn` is a learned predictor. Strict
    /// comparison keeps the first (fewest-machines, lowest-index) candidate
    /// on ties, so the choice is deterministic.
    ///
    /// # Errors
    ///
    /// Propagates [`PlantError`] from candidate enumeration.
    pub fn best_sequencing_by(
        &self,
        demand_kw: f64,
        cop_fn: impl Fn(usize, f64) -> f64,
    ) -> Result<(Sequencing, f64), PlantError> {
        let candidates = self.sequencing_candidates(demand_kw)?;
        let mut best: Option<(Sequencing, f64)> = None;
        for seq in candidates {
            let power: f64 = seq
                .loads
                .iter()
                .enumerate()
                .filter_map(|(c, l)| l.map(|load| (c, load)))
                .map(|(c, load)| {
                    let cop = cop_fn(c, load).max(crate::chiller::MIN_COP);
                    load / cop
                })
                .sum();
            if power.is_finite() && best.as_ref().is_none_or(|(_, p)| power < *p) {
                best = Some((seq, power));
            }
        }
        // Candidates are non-empty whenever enumeration succeeds, and the
        // MIN_COP floor keeps every power sum finite.
        best.ok_or(PlantError::BadDemand { demand_kw })
    }

    /// The true-optimal sequencing under the ground-truth COP curves at
    /// `outdoor_temp_c`, with its electrical power (the paper's `D`).
    ///
    /// # Errors
    ///
    /// Propagates [`PlantError`] from candidate enumeration.
    pub fn best_sequencing_true(
        &self,
        demand_kw: f64,
        outdoor_temp_c: f64,
    ) -> Result<(Sequencing, f64), PlantError> {
        self.best_sequencing_by(demand_kw, |c, load| self.chillers[c].cop(load, outdoor_temp_c))
    }

    /// Actual electrical power (kW) the plant draws under `seq` at
    /// `outdoor_temp_c`, evaluated on the ground-truth curves.
    pub fn true_power(&self, seq: &Sequencing, outdoor_temp_c: f64) -> f64 {
        seq.loads
            .iter()
            .enumerate()
            .filter_map(|(c, l)| l.map(|load| (c, load)))
            .map(|(c, load)| self.chillers[c].power_kw(load, outdoor_temp_c))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chiller::ChillerModel;

    fn plant() -> Plant {
        Plant::new(vec![
            Chiller::new(ChillerModel::Centrifugal, 600.0, 5.6, 0.9, 0.008),
            Chiller::new(ChillerModel::Screw, 500.0, 5.2, 0.9, 0.008),
            Chiller::new(ChillerModel::Scroll, 400.0, 4.9, 0.9, 0.008),
        ])
    }

    #[test]
    fn candidates_cover_demand_and_split_proportionally() {
        let p = plant();
        let cands = p.sequencing_candidates(700.0).unwrap();
        assert!(!cands.is_empty());
        for seq in &cands {
            assert!((seq.total_load_kw() - 700.0).abs() < 1e-9);
            // Equal part-load ratio across running machines.
            let plrs: Vec<f64> = seq
                .running()
                .map(|c| seq.load_kw(c).unwrap() / p.chillers()[c].capacity_kw())
                .collect();
            for w in plrs.windows(2) {
                assert!((w[0] - w[1]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn candidate_order_ends_with_all_on() {
        let p = plant();
        let cands = p.sequencing_candidates(300.0).unwrap();
        // 300 kW fits any single machine: all 7 subsets are feasible.
        assert_eq!(cands.len(), 7);
        assert_eq!(cands[0].running().count(), 1);
        let last = cands.last().unwrap();
        assert_eq!(last.running().count(), 3);
    }

    #[test]
    fn infeasible_subsets_are_dropped() {
        let p = plant();
        let cands = p.sequencing_candidates(1200.0).unwrap();
        for seq in &cands {
            let cap: f64 = seq.running().map(|c| p.chillers()[c].capacity_kw()).sum();
            assert!(cap >= 1200.0);
        }
        assert!(cands.iter().all(|s| s.running().count() >= 3));
    }

    #[test]
    fn errors_are_reported() {
        let p = plant();
        assert_eq!(p.sequencing_candidates(0.0), Err(PlantError::BadDemand { demand_kw: 0.0 }));
        assert!(matches!(
            p.sequencing_candidates(5000.0),
            Err(PlantError::InsufficientCapacity { .. })
        ));
        assert_eq!(Plant::new(vec![]).sequencing_candidates(10.0), Err(PlantError::NoChillers));
    }

    #[test]
    fn true_best_is_no_worse_than_any_candidate() {
        let p = plant();
        for demand in [250.0, 600.0, 1000.0, 1400.0] {
            let (best, best_power) = p.best_sequencing_true(demand, 30.0).unwrap();
            assert!((p.true_power(&best, 30.0) - best_power).abs() < 1e-9);
            for seq in p.sequencing_candidates(demand).unwrap() {
                assert!(p.true_power(&seq, 30.0) + 1e-9 >= best_power);
            }
        }
    }

    #[test]
    fn misleading_cops_change_the_decision() {
        let p = plant();
        // At 400 kW the true optimum is machine 0 (best part-load COP)...
        let (honest, _) = p.best_sequencing_true(400.0, 30.0).unwrap();
        assert_eq!(honest.running().collect::<Vec<_>>(), vec![0]);
        // ...but a predictor convinced machine 2 is magnificent picks it.
        let (fooled, _) =
            p.best_sequencing_by(400.0, |c, _| if c == 2 { 11.0 } else { 1.0 }).unwrap();
        assert_eq!(fooled.running().collect::<Vec<_>>(), vec![2]);
        assert_ne!(p.true_power(&fooled, 30.0), p.true_power(&honest, 30.0));
    }

    #[test]
    fn load_band_partitions_capacity() {
        let p = plant();
        assert_eq!(p.load_band(0, 0.0, 6), None);
        assert_eq!(p.load_band(0, 601.0, 6), None);
        assert_eq!(p.load_band(0, 50.0, 6), Some(0));
        assert_eq!(p.load_band(0, 600.0, 6), Some(5));
        assert_eq!(p.load_band(9, 50.0, 6), None);
        // Midpoints land back in their own band.
        for band in 0..6 {
            let mid = p.band_midpoint_kw(1, band, 6).unwrap();
            assert_eq!(p.load_band(1, mid, 6), Some(band));
        }
        assert_eq!(p.band_midpoint_kw(1, 6, 6), None);
    }
}
