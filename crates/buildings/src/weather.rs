//! Seeded seasonal/diurnal weather process.
//!
//! The paper's buildings sit in a subtropical campus where cooling runs
//! year-round; what matters to the chiller-sequencing decision is the
//! outdoor wet-bulb proxy (here a single dry-bulb temperature) and a
//! coarse sky condition. The process is a deterministic seasonal carrier
//! plus a diurnal offset per decision slot, with seeded per-sample noise —
//! the same `(day, slot)` under the same RNG stream always reproduces the
//! same sample.

use rand::Rng;

/// Coarse sky condition attached to every weather sample (one of the
/// Table-I domain features).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeatherCondition {
    /// Clear sky: full solar gain, hottest.
    Clear,
    /// Overcast: reduced solar gain.
    Cloudy,
    /// Rain: evaporative cooling, coolest.
    Rain,
}

impl WeatherCondition {
    /// Encodes the condition as an ordinal feature value (Table-I uses a
    /// categorical weather field; the reproduction's models consume the
    /// ordinal directly).
    pub fn as_feature(self) -> f64 {
        match self {
            WeatherCondition::Clear => 0.0,
            WeatherCondition::Cloudy => 1.0,
            WeatherCondition::Rain => 2.0,
        }
    }

    /// Stable name used by the CSV interchange.
    pub fn name(self) -> &'static str {
        match self {
            WeatherCondition::Clear => "clear",
            WeatherCondition::Cloudy => "cloudy",
            WeatherCondition::Rain => "rain",
        }
    }

    /// Parses a name written by [`WeatherCondition::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "clear" => Some(WeatherCondition::Clear),
            "cloudy" => Some(WeatherCondition::Cloudy),
            "rain" => Some(WeatherCondition::Rain),
            _ => None,
        }
    }
}

/// One weather observation: the context of a sequencing decision slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeatherSample {
    /// Sky condition.
    pub condition: WeatherCondition,
    /// Outdoor dry-bulb temperature, °C.
    pub outdoor_temp_c: f64,
}

/// The seeded weather process: seasonal sinusoid + diurnal slot offsets +
/// per-sample noise and sky condition.
#[derive(Debug, Clone, PartialEq)]
pub struct WeatherModel {
    annual_mean_c: f64,
    seasonal_amp_c: f64,
    phase_days: f64,
    diurnal_offsets_c: [f64; 3],
    noise_amp_c: f64,
}

/// Days per year used by the seasonal carrier.
const DAYS_PER_YEAR: f64 = 365.25;

impl WeatherModel {
    /// Builds a weather process with an explicit seasonal carrier.
    ///
    /// `phase_days` shifts where in the year day 0 falls; the diurnal
    /// offsets and noise amplitude take the scenario defaults.
    pub fn new(annual_mean_c: f64, seasonal_amp_c: f64, phase_days: f64) -> Self {
        Self {
            annual_mean_c,
            seasonal_amp_c,
            phase_days,
            diurnal_offsets_c: [-2.0, 3.0, 0.5],
            noise_amp_c: 1.2,
        }
    }

    /// Draws the scenario-convention process: subtropical campus climate
    /// (annual mean ≈ 24 °C, seasonal swing ≈ ±7 °C) with a seeded phase so
    /// different scenario seeds start in different seasons.
    pub fn seeded(rng: &mut impl Rng) -> Self {
        let phase = rng.gen::<f64>() * DAYS_PER_YEAR;
        Self::new(24.0, 7.0, phase)
    }

    /// The annual mean temperature, °C.
    pub fn annual_mean_c(&self) -> f64 {
        self.annual_mean_c
    }

    /// The seasonal half-swing, °C.
    pub fn seasonal_amp_c(&self) -> f64 {
        self.seasonal_amp_c
    }

    /// The noiseless seasonal carrier at `day` (slot offsets excluded).
    pub fn seasonal_mean_c(&self, day: u32) -> f64 {
        let angle = 2.0 * std::f64::consts::PI * (f64::from(day) + self.phase_days) / DAYS_PER_YEAR;
        self.annual_mean_c + self.seasonal_amp_c * angle.sin()
    }

    /// Samples the weather of decision slot `slot` on `day`, consuming the
    /// RNG stream (two draws: condition, noise). Slots beyond the diurnal
    /// table wrap around.
    pub fn sample(&self, day: u32, slot: usize, rng: &mut impl Rng) -> WeatherSample {
        let u = rng.gen::<f64>();
        let condition = if u < 0.15 {
            WeatherCondition::Rain
        } else if u < 0.42 {
            WeatherCondition::Cloudy
        } else {
            WeatherCondition::Clear
        };
        let condition_offset = match condition {
            WeatherCondition::Clear => 1.0,
            WeatherCondition::Cloudy => -0.8,
            WeatherCondition::Rain => -2.2,
        };
        let noise = self.noise_amp_c * (2.0 * rng.gen::<f64>() - 1.0);
        let outdoor_temp_c = self.seasonal_mean_c(day)
            + self.diurnal_offsets_c[slot % self.diurnal_offsets_c.len()]
            + condition_offset
            + noise;
        WeatherSample { condition, outdoor_temp_c }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn condition_features_are_distinct_ordinals() {
        let all = [WeatherCondition::Clear, WeatherCondition::Cloudy, WeatherCondition::Rain];
        for (i, c) in all.iter().enumerate() {
            assert_eq!(c.as_feature(), i as f64);
            assert_eq!(WeatherCondition::from_name(c.name()), Some(*c));
        }
        assert_eq!(WeatherCondition::from_name("hail"), None);
    }

    #[test]
    fn seasonal_carrier_spans_the_configured_swing() {
        let w = WeatherModel::new(24.0, 7.0, 0.0);
        let temps: Vec<f64> = (0u32..366).map(|d| w.seasonal_mean_c(d)).collect();
        let lo = temps.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = temps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!((lo - 17.0).abs() < 0.1, "min {lo}");
        assert!((hi - 31.0).abs() < 0.1, "max {hi}");
    }

    #[test]
    fn sampling_is_deterministic_per_stream() {
        let w = WeatherModel::new(24.0, 7.0, 10.0);
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for day in 0..30 {
            for slot in 0..3 {
                assert_eq!(w.sample(day, slot, &mut a), w.sample(day, slot, &mut b));
            }
        }
    }

    #[test]
    fn samples_stay_in_a_physical_band() {
        let mut rng = SmallRng::seed_from_u64(1);
        let w = WeatherModel::seeded(&mut rng);
        for day in 0..400 {
            for slot in 0..3 {
                let s = w.sample(day, slot, &mut rng);
                assert!(
                    (5.0..=45.0).contains(&s.outdoor_temp_c),
                    "day {day} slot {slot}: {}",
                    s.outdoor_temp_c
                );
            }
        }
    }
}
