//! # dcta-buildings — the synthetic green-building data substrate
//!
//! The paper's evaluation runs on a proprietary 1 TB, four-year operation
//! log of three commercial buildings' chiller plants (§V). Its allocator
//! only ever consumes *distributional statistics* of that data — per-task
//! sample counts, task importance profiles, day-to-day drift — so this
//! crate substitutes a seeded parametric generator calibrated to the
//! published statistics (Obs. 1: ~12.72 % of tasks carry >80 % of decision
//! performance; Obs. 3: importance fluctuates day to day).
//!
//! * [`weather`] — seeded seasonal/diurnal weather process.
//! * [`chiller`] — chiller physics: COP curves, part-load ratio.
//! * [`plant`] — multi-chiller plants and sequencing operations.
//! * [`telemetry`] — sensing records carrying the Table-I domain fields.
//! * [`export`] — CSV interchange for datasets and day contexts.
//! * [`scenario`] — the 50-task, four-year, three-building scenario
//!   generator ([`scenario::Scenario`] / [`scenario::ScenarioConfig`]).
//!
//! Everything is deterministic per seed: the same
//! [`scenario::ScenarioConfig`] always yields a bit-identical
//! [`scenario::Scenario`] (no wall-clock, no global state).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chiller;
pub mod export;
pub mod plant;
pub mod scenario;
pub mod telemetry;
pub mod weather;
