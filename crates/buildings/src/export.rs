//! CSV interchange for datasets and day contexts.
//!
//! The substrate is synthetic, but downstream tooling (notebooks, external
//! baselines, the bench harness's artifact dumps) wants the same
//! interchange a real plant historian would offer: flat CSV. Floats are
//! written with Rust's shortest round-trip formatting, so
//! `from_csv(to_csv(x)) == x` bit-for-bit — the property tests rely on it.

use crate::scenario::{DayContext, DecisionSlot};
use crate::weather::{WeatherCondition, WeatherSample};
use learn::dataset::Dataset;
use std::fmt;
use std::fmt::Write as _;

/// Error parsing a CSV interchange document.
#[derive(Debug, Clone, PartialEq)]
pub struct ExportError {
    /// 1-based line where parsing failed.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CSV parse error at line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ExportError {}

fn err(line: usize, reason: impl Into<String>) -> ExportError {
    ExportError { line, reason: reason.into() }
}

fn parse_f64(line: usize, field: &str) -> Result<f64, ExportError> {
    field.trim().parse::<f64>().map_err(|e| err(line, format!("bad float {field:?}: {e}")))
}

/// Serialises a task dataset: a `feature0..featureN,target` header followed
/// by one row per sample.
pub fn dataset_to_csv(data: &Dataset) -> String {
    let mut out = String::new();
    let n = data.num_features();
    for i in 0..n {
        let _ = write!(out, "feature{i},");
    }
    out.push_str("target\n");
    for i in 0..data.len() {
        for v in data.features().row(i) {
            let _ = write!(out, "{v},");
        }
        let _ = writeln!(out, "{}", data.targets()[i]);
    }
    out
}

/// Parses a document written by [`dataset_to_csv`].
///
/// # Errors
///
/// [`ExportError`] on malformed headers, ragged rows or bad floats.
pub fn dataset_from_csv(csv: &str) -> Result<Dataset, ExportError> {
    let mut lines = csv.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| err(1, "empty document"))?;
    let cols = header.split(',').count();
    if cols < 2 || header.split(',').next_back() != Some("target") {
        return Err(err(1, "header must be feature columns followed by `target`"));
    }
    let mut rows = Vec::new();
    let mut targets = Vec::new();
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != cols {
            return Err(err(i + 1, format!("expected {cols} fields, got {}", fields.len())));
        }
        let mut row = Vec::with_capacity(cols - 1);
        for f in &fields[..cols - 1] {
            row.push(parse_f64(i + 1, f)?);
        }
        targets.push(parse_f64(i + 1, fields[cols - 1])?);
        rows.push(row);
    }
    Dataset::from_rows(rows, targets).map_err(|e| err(1, format!("invalid dataset: {e}")))
}

/// Serialises a day context: a `weather` line, a `sensing` line, then one
/// `slot` line per decision slot carrying its weather and per-building
/// demands.
pub fn day_to_csv(day: &DayContext) -> String {
    let mut out = String::new();
    let _ =
        writeln!(out, "weather,{},{}", day.weather.condition.name(), day.weather.outdoor_temp_c);
    out.push_str("sensing");
    for v in &day.sensing {
        let _ = write!(out, ",{v}");
    }
    out.push('\n');
    for slot in &day.hours {
        let _ =
            write!(out, "slot,{},{}", slot.weather.condition.name(), slot.weather.outdoor_temp_c);
        for d in &slot.demand_kw {
            let _ = write!(out, ",{d}");
        }
        out.push('\n');
    }
    out
}

/// Parses a document written by [`day_to_csv`].
///
/// # Errors
///
/// [`ExportError`] on unknown record kinds, bad condition names or floats.
pub fn day_from_csv(csv: &str) -> Result<DayContext, ExportError> {
    let mut weather = None;
    let mut sensing = None;
    let mut hours = Vec::new();
    for (i, line) in csv.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let kind = fields.next().unwrap_or_default();
        match kind {
            "weather" => weather = Some(parse_weather(i + 1, &mut fields)?),
            "sensing" => {
                sensing =
                    Some(fields.map(|f| parse_f64(i + 1, f)).collect::<Result<Vec<f64>, _>>()?);
            }
            "slot" => {
                let w = parse_weather(i + 1, &mut fields)?;
                let demand_kw =
                    fields.map(|f| parse_f64(i + 1, f)).collect::<Result<Vec<f64>, _>>()?;
                hours.push(DecisionSlot { weather: w, demand_kw });
            }
            other => return Err(err(i + 1, format!("unknown record kind {other:?}"))),
        }
    }
    Ok(DayContext {
        weather: weather.ok_or_else(|| err(1, "missing weather line"))?,
        sensing: sensing.ok_or_else(|| err(1, "missing sensing line"))?,
        hours,
    })
}

fn parse_weather<'a>(
    line: usize,
    fields: &mut impl Iterator<Item = &'a str>,
) -> Result<WeatherSample, ExportError> {
    let name = fields.next().ok_or_else(|| err(line, "missing weather condition"))?;
    let condition = WeatherCondition::from_name(name.trim())
        .ok_or_else(|| err(line, format!("unknown weather condition {name:?}")))?;
    let temp = fields.next().ok_or_else(|| err(line, "missing outdoor temperature"))?;
    Ok(WeatherSample { condition, outdoor_temp_c: parse_f64(line, temp)? })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioConfig};

    fn scenario() -> Scenario {
        Scenario::generate(ScenarioConfig {
            history_days: 35,
            eval_days: 2,
            num_tasks: 8,
            ..ScenarioConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn dataset_round_trips_exactly() {
        let s = scenario();
        for t in 0..s.num_tasks() {
            let csv = dataset_to_csv(s.dataset(t));
            let back = dataset_from_csv(&csv).unwrap();
            assert_eq!(&back, s.dataset(t), "task {t} not bit-identical");
        }
    }

    #[test]
    fn day_round_trips_exactly() {
        let s = scenario();
        for day in s.days() {
            let csv = day_to_csv(day);
            assert_eq!(&day_from_csv(&csv).unwrap(), day);
        }
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(dataset_from_csv("").is_err());
        assert!(dataset_from_csv("feature0,nottarget\n1,2\n").is_err());
        assert!(dataset_from_csv("feature0,target\n1\n").is_err());
        assert!(dataset_from_csv("feature0,target\nx,2\n").is_err());
        assert!(day_from_csv("weather,hail,30\n").is_err());
        assert!(day_from_csv("party,clear,30\n").is_err());
        assert!(day_from_csv("sensing,1,2\n").is_err(), "missing weather line");
    }
}
