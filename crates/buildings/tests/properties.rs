//! Property tests for the data substrate: determinism per seed, exact CSV
//! round-trips, and physical plausibility of everything the generator
//! emits, across randomly drawn scenario configurations.

use buildings::chiller::{MAX_COP, MIN_COP};
use buildings::export::{dataset_from_csv, dataset_to_csv, day_from_csv, day_to_csv};
use buildings::scenario::{Scenario, ScenarioConfig, DECISION_SLOTS_PER_DAY};
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = ScenarioConfig> {
    (
        (1usize..4, 1usize..4, 2usize..7),
        (0usize..13, 29u32..45, 1u32..4),
        (1.0f64..200.0, 0u64..1_000_000),
    )
        .prop_map(
            |(
                (num_buildings, chillers, bands),
                (num_tasks, history_days, eval_days),
                (mbit, seed),
            )| {
                ScenarioConfig {
                    num_buildings,
                    chillers_per_building: chillers,
                    bands_per_chiller: bands,
                    // Cannot request more task cells than the grid holds.
                    num_tasks: num_tasks.min(num_buildings * chillers * bands),
                    history_days,
                    eval_days,
                    mean_input_mbit: mbit,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn same_config_same_seed_is_bit_identical(config in config_strategy()) {
        let a = Scenario::generate(config).expect("valid config");
        let b = Scenario::generate(config).expect("valid config");
        prop_assert!(a == b, "two generations from {config:?} diverged");
    }

    #[test]
    fn different_seeds_differ(config in config_strategy()) {
        let a = Scenario::generate(config).expect("valid config");
        let b = Scenario::generate(ScenarioConfig { seed: config.seed ^ 0x5555, ..config })
            .expect("valid config");
        // Weather, demand and plant hardware are all seed-derived; at
        // minimum the eval-day contexts must not coincide.
        prop_assert!(a.days() != b.days(), "seed change left eval days untouched");
    }

    #[test]
    fn csv_round_trips_are_exact(config in config_strategy()) {
        let s = Scenario::generate(config).expect("valid config");
        for t in 0..s.num_tasks() {
            let back = dataset_from_csv(&dataset_to_csv(s.dataset(t))).expect("parse");
            prop_assert!(&back == s.dataset(t), "dataset {t} not bit-identical");
        }
        for (d, day) in s.days().iter().enumerate() {
            let back = day_from_csv(&day_to_csv(day)).expect("parse");
            prop_assert!(&back == day, "day {d} not bit-identical");
        }
    }

    #[test]
    fn generated_values_are_physically_plausible(config in config_strategy()) {
        let s = Scenario::generate(config).expect("valid config");

        for plant in s.plants() {
            prop_assert!(plant.total_capacity_kw() > 0.0);
            for c in plant.chillers() {
                prop_assert!(c.capacity_kw() > 0.0);
                prop_assert!(c.peak_cop() > MIN_COP && c.peak_cop() <= MAX_COP);
            }
        }

        for day in s.days() {
            prop_assert!(day.hours.len() == DECISION_SLOTS_PER_DAY);
            prop_assert!(day.sensing.len() == 2 + config.num_buildings);
            prop_assert!(day.sensing.iter().all(|v| v.is_finite()));
            for slot in &day.hours {
                prop_assert!((-20.0..60.0).contains(&slot.weather.outdoor_temp_c));
                prop_assert!(slot.demand_kw.len() == config.num_buildings);
                for (b, &d) in slot.demand_kw.iter().enumerate() {
                    prop_assert!(d > 0.0, "non-positive demand");
                    prop_assert!(
                        d <= s.plant(b).total_capacity_kw() + 1e-9,
                        "demand {d} exceeds plant capacity"
                    );
                }
            }
        }

        for t in 0..s.num_tasks() {
            let ds = s.dataset(t);
            prop_assert!(!ds.is_empty(), "task {t} has an empty dataset");
            for i in 0..ds.len() {
                let cop = ds.targets()[i];
                prop_assert!(cop > 0.0 && cop <= MAX_COP * 1.1, "implausible COP {cop}");
                let row = ds.features().row(i);
                prop_assert!(row.iter().all(|v| v.is_finite()));
                // Load (index 5), flow (6) and ΔT (7) obey the heat balance
                // Q = ṁ·c_p·ΔT used to derive the water loop.
                let (load, flow, dt) = (row[5], row[6], row[7]);
                prop_assert!(load > 0.0 && flow > 0.0 && (4.0..=6.0).contains(&dt));
                prop_assert!(
                    (flow * buildings::telemetry::WATER_CP * dt - load).abs() < 1e-6,
                    "heat balance violated: load {load}, flow {flow}, ΔT {dt}"
                );
            }
            prop_assert!(s.input_bits(t) > 0.0);
        }
    }
}
