//! §IV-B model selection for the local process: "we compare several
//! state-of-the-art models of SVM, AdaBoost, and Random Forest. We select
//! SVM because of its highest accuracy."
//!
//! Reproduced on the real selection problem: Table-I features per task per
//! day, labelled by the day's optimal (greedy-oracle) selection, with
//! held-out days for evaluation.

use crate::common::{paper_scenario, pct, RunOpts, Table};
use dcta_core::features::{local_features, TaskHistory};
use dcta_core::importance::{CopModels, ImportanceEvaluator};
use dcta_core::local::{LocalModelKind, LocalProcess};
use dcta_core::processor::ProcessorFleet;
use dcta_core::task::{EdgeTask, TaskId};
use dcta_core::tatim::{SolverKind, TatimInstance};
use edgesim::cluster::Cluster;
use learn::transfer::MtlConfig;
use serde::Serialize;
use std::error::Error;

/// Result snapshot of the local-model comparison.
#[derive(Debug, Clone, Serialize)]
pub struct LocalModel {
    /// `(model name, held-out accuracy)` pairs.
    pub accuracies: Vec<(String, f64)>,
    /// Name of the winner.
    pub best: String,
    /// Rendered table.
    pub table: Table,
}

/// Runs the comparison.
///
/// # Errors
///
/// Propagates scenario/training failures.
pub fn run(opts: &RunOpts) -> Result<LocalModel, Box<dyn Error>> {
    let scenario = paper_scenario(opts, opts.pick(16, 8))?;
    let models =
        CopModels::train(&scenario, MtlConfig { transfer_strength: 2.0, ..MtlConfig::default() })?;
    let evaluator = ImportanceEvaluator::new(&scenario, &models);
    let n = scenario.num_tasks();

    let cluster = Cluster::paper_testbed()?;
    let mean_bits = (0..n).map(|t| scenario.input_bits(t)).sum::<f64>() / n as f64;
    let tasks: Vec<EdgeTask> = (0..n)
        .map(|t| {
            EdgeTask::new(
                TaskId(t),
                scenario.tasks()[t].name.clone(),
                scenario.input_bits(t),
                scenario.input_bits(t) / mean_bits,
                0.0,
            )
            .expect("valid scenario sizes")
        })
        .collect();
    let total: f64 = tasks.iter().map(EdgeTask::reference_time_s).sum();
    let fleet = ProcessorFleet::from_cluster(&cluster, 0.5 * total / 9.0)?;
    let base = TatimInstance::new(tasks, fleet);

    // Build the per-day labelled rows with a rolling history, exactly as
    // the pipeline's offline phase does.
    let mut history = TaskHistory::new(n);
    let mut rows_by_day: Vec<Vec<Vec<f64>>> = Vec::new();
    let mut labels_by_day: Vec<Vec<f64>> = Vec::new();
    for day in scenario.days() {
        let imp = evaluator.importances(day)?;
        let opt = base.with_importances(&imp).solve(&SolverKind::Greedy)?.allocation;
        let selected: Vec<bool> = (0..n).map(|j| opt.processor_of(j).is_some()).collect();
        let rows: Vec<Vec<f64>> =
            (0..n).map(|j| local_features(&scenario, &models, &history, day, j)).collect();
        let labels: Vec<f64> = selected.iter().map(|&s| if s { 1.0 } else { -1.0 }).collect();
        history.record_selection(&selected);
        rows_by_day.push(rows);
        labels_by_day.push(labels);
    }

    // Temporal split: first 2/3 of days train, the rest evaluate.
    let split = rows_by_day.len() * 2 / 3;
    let train_rows: Vec<Vec<f64>> = rows_by_day[..split].iter().flatten().cloned().collect();
    let train_labels: Vec<f64> = labels_by_day[..split].iter().flatten().copied().collect();
    let test_rows: Vec<Vec<f64>> = rows_by_day[split..].iter().flatten().cloned().collect();
    let test_labels: Vec<f64> = labels_by_day[split..].iter().flatten().copied().collect();

    let mut accuracies = Vec::new();
    for kind in [LocalModelKind::Svm, LocalModelKind::AdaBoost, LocalModelKind::RandomForest] {
        let lp = LocalProcess::train(train_rows.clone(), train_labels.clone(), kind, opts.seed)?;
        let acc = lp.accuracy(&test_rows, &test_labels)?;
        accuracies.push((kind.to_string(), acc));
    }
    // Strictly-greater comparison: on an exact accuracy tie the earlier
    // entry wins, so SVM (listed first, the paper's choice) is preferred.
    let mut winner = &accuracies[0];
    for cand in &accuracies[1..] {
        if cand.1 > winner.1 {
            winner = cand;
        }
    }
    let best = winner.0.clone();

    let mut table = Table::new(
        "SIV-B — local-process model selection (held-out day accuracy)",
        &["model", "accuracy"],
    );
    for (name, acc) in &accuracies {
        let marker = if *name == best { " <= selected" } else { "" };
        table.push_row(vec![format!("{name}{marker}"), pct(*acc)]);
    }
    Ok(LocalModel { accuracies, best, table })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_beat_chance() {
        let r = run(&RunOpts { quick: true, ..Default::default() }).unwrap();
        assert_eq!(r.accuracies.len(), 3);
        for (name, acc) in &r.accuracies {
            assert!(*acc > 0.5, "{name} accuracy {acc}");
        }
        assert!(!r.best.is_empty());
    }
}
