//! Shared infrastructure for the reproduction experiments: run options,
//! canonical configurations, text tables, and result snapshots.

use buildings::scenario::{Scenario, ScenarioConfig, ScenarioError};
use dcta_core::pipeline::PipelineConfig;
use rl::crl::CrlConfig;
use rl::dqn::DqnConfig;
use serde::Serialize;
use std::fmt::Write as _;

/// Options shared by every experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOpts {
    /// Shrinks workloads (fewer days/episodes/sweep points) for smoke runs.
    pub quick: bool,
    /// Master seed.
    pub seed: u64,
}

impl Default for RunOpts {
    fn default() -> Self {
        Self { quick: false, seed: 0xDC7A }
    }
}

impl RunOpts {
    /// Picks `full` or `quick` depending on the mode.
    pub fn pick<T>(&self, full: T, quick: T) -> T {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// The canonical evaluation scenario: 50 tasks, 3 buildings (§V-B).
///
/// # Errors
///
/// Propagates scenario generation failures.
pub fn paper_scenario(opts: &RunOpts, eval_days: u32) -> Result<Scenario, ScenarioError> {
    Scenario::generate(ScenarioConfig {
        history_days: opts.pick(240, 90),
        eval_days,
        seed: opts.seed,
        ..ScenarioConfig::default()
    })
}

/// The canonical pipeline configuration used by the processing-time
/// figures (allocation overhead included in PT, as the paper's PT metric
/// covers partitioning and decision making).
pub fn paper_pipeline(opts: &RunOpts) -> PipelineConfig {
    PipelineConfig {
        env_history_days: opts.pick(6, 4),
        crl: CrlConfig {
            episodes: opts.pick(200, 30),
            dqn: DqnConfig { hidden: vec![48], ..DqnConfig::default() },
            seed: opts.seed ^ 0x17,
            ..CrlConfig::default()
        },
        include_allocation_overhead: true,
        seed: opts.seed,
        ..PipelineConfig::default()
    }
}

/// A plain-text table renderer for experiment output.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate().take(ncols) {
                let _ = write!(s, "{:<w$}  ", c, w = widths[i]);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a percentage with 2 decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Mean of a slice (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(vec!["alpha".into(), "1".into()]);
        t.push_row(vec!["b".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("alpha"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn opts_pick() {
        let q = RunOpts { quick: true, ..Default::default() };
        let f = RunOpts { quick: false, ..Default::default() };
        assert_eq!(q.pick(10, 2), 2);
        assert_eq!(f.pick(10, 2), 10);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(pct(0.4568), "45.68%");
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn quick_scenario_generates() {
        let opts = RunOpts { quick: true, ..Default::default() };
        let s = paper_scenario(&opts, 6).unwrap();
        assert_eq!(s.num_tasks(), 50);
        assert_eq!(s.days().len(), 6);
    }
}
