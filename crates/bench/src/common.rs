//! Shared infrastructure for the reproduction experiments: run options,
//! canonical configurations, text tables, and result snapshots.

use buildings::scenario::{Scenario, ScenarioConfig, ScenarioError};
use dcta_core::availability::AvailabilityModel;
use dcta_core::cache::ImportanceCache;
use dcta_core::pipeline::{Pipeline, PipelineConfig, PipelineError, PreparedPipeline};
use rl::crl::CrlConfig;
use rl::dqn::DqnConfig;
use serde::Serialize;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// Options shared by every experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOpts {
    /// Shrinks workloads (fewer days/episodes/sweep points) for smoke runs.
    pub quick: bool,
    /// Master seed.
    pub seed: u64,
}

impl Default for RunOpts {
    fn default() -> Self {
        Self { quick: false, seed: 0xDC7A }
    }
}

impl RunOpts {
    /// Picks `full` or `quick` depending on the mode.
    pub fn pick<T>(&self, full: T, quick: T) -> T {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// The canonical evaluation scenario: 50 tasks, 3 buildings (§V-B).
///
/// # Errors
///
/// Propagates scenario generation failures.
pub fn paper_scenario(opts: &RunOpts, eval_days: u32) -> Result<Scenario, ScenarioError> {
    Scenario::generate(ScenarioConfig {
        history_days: opts.pick(240, 90),
        eval_days,
        seed: opts.seed,
        ..ScenarioConfig::default()
    })
}

/// The canonical pipeline configuration used by the processing-time
/// figures (allocation overhead included in PT, as the paper's PT metric
/// covers partitioning and decision making).
pub fn paper_pipeline(opts: &RunOpts) -> PipelineConfig {
    PipelineConfig {
        env_history_days: opts.pick(6, 4),
        crl: CrlConfig {
            episodes: opts.pick(200, 30),
            dqn: DqnConfig { hidden: vec![48], ..DqnConfig::default() },
            seed: opts.seed ^ 0x17,
            ..CrlConfig::default()
        },
        include_allocation_overhead: true,
        seed: opts.seed,
        ..PipelineConfig::default()
    }
}

/// LRU capacity of the persisted importance cache. Entries are one
/// `(day, mask) -> f64` evaluation each, so this caps the on-disk snapshot
/// at a few megabytes while comfortably holding every sweep's working set.
pub const CACHE_CAPACITY: usize = 1 << 16;

/// Basename of the importance-cache snapshot stored next to `results/*.json`.
pub const CACHE_BASENAME: &str = "importance_cache.txt";

/// Basename of the availability-posterior snapshot persisted next to the
/// importance cache (same versioned-text scheme; see
/// `dcta_core::availability`).
pub const AVAILABILITY_BASENAME: &str = "availability_prior.txt";

static CACHE_FILE: OnceLock<Option<PathBuf>> = OnceLock::new();

/// Points the persisted importance cache at `<dir>/importance_cache.txt`.
///
/// Driver binaries call this once with their `--out` directory before any
/// experiment runs; experiments launched without a configured directory
/// (unit tests, library callers) fall back to in-memory caches. Only the
/// first call wins — the path is process-global, like the thread cap.
pub fn set_cache_dir(dir: &Path) {
    let _ = CACHE_FILE.set(Some(dir.join(CACHE_BASENAME)));
}

fn cache_file() -> Option<&'static Path> {
    CACHE_FILE.get().and_then(|p| p.as_deref())
}

fn availability_file() -> Option<PathBuf> {
    cache_file().map(|p| p.with_file_name(AVAILABILITY_BASENAME))
}

/// Persists `model`'s posterior next to the importance cache (no-op when
/// no results directory is configured). Like the cache snapshot, this is
/// an accelerator/provenance artefact: failures are reported, never fatal.
pub fn persist_availability(model: &AvailabilityModel) {
    let Some(path) = availability_file() else { return };
    match model.save_file(&path) {
        Ok(()) => {
            println!("[availability prior: {} nodes saved to {}]", model.len(), path.display())
        }
        Err(e) => eprintln!("[availability prior: could not persist {}: {e}]", path.display()),
    }
}

/// Prepares a pipeline through the persisted importance cache.
///
/// Warm-starts from the snapshot next to the results directory (when one
/// is configured and present) so repeated `reproduce` sweeps skip the
/// offline importance sweep, then persists the merged cache back after the
/// prepare pass — the phase that performs the bulk of the evaluations.
/// Snapshot I/O problems are reported but never fail the experiment: the
/// cache is a pure accelerator and results are bit-identical either way.
///
/// # Errors
///
/// Propagates pipeline preparation failures.
pub fn prepare_cached<'a>(
    config: PipelineConfig,
    scenario: &'a Scenario,
) -> Result<PreparedPipeline<'a>, PipelineError> {
    let cache = ImportanceCache::with_capacity(CACHE_CAPACITY);
    if let Some(path) = cache_file() {
        match cache.load_file(path) {
            Ok(n) if n > 0 => println!("[importance cache: {n} entries from {}]", path.display()),
            Ok(_) => {}
            Err(e) => eprintln!("[importance cache: ignoring {}: {e}]", path.display()),
        }
    }
    // The availability posterior warm-starts from the snapshot persisted
    // next to the importance cache — same versioned-text scheme, same
    // best-effort semantics. Sweeps that need per-cell independence reset
    // it explicitly (`AvailabilityModel::clear`).
    let availability = AvailabilityModel::new(config.availability);
    if let Some(path) = availability_file() {
        match availability.load_file(&path) {
            Ok(n) if n > 0 => {
                println!("[availability prior: {n} nodes from {}]", path.display());
            }
            Ok(_) => {}
            Err(e) => eprintln!("[availability prior: ignoring {}: {e}]", path.display()),
        }
    }
    let prepared =
        Pipeline::builder(config).cache(cache).availability(availability).prepare(scenario)?;
    if let Some(path) = cache_file() {
        if let Err(e) = prepared.importance_cache().save_file(path) {
            eprintln!("[importance cache: could not persist {}: {e}]", path.display());
        }
    }
    Ok(prepared)
}

/// A plain-text table renderer for experiment output.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate().take(ncols) {
                let _ = write!(s, "{:<w$}  ", c, w = widths[i]);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a percentage with 2 decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Mean of a slice (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(vec!["alpha".into(), "1".into()]);
        t.push_row(vec!["b".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("alpha"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn opts_pick() {
        let q = RunOpts { quick: true, ..Default::default() };
        let f = RunOpts { quick: false, ..Default::default() };
        assert_eq!(q.pick(10, 2), 2);
        assert_eq!(f.pick(10, 2), 10);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(pct(0.4568), "45.68%");
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn quick_scenario_generates() {
        let opts = RunOpts { quick: true, ..Default::default() };
        let s = paper_scenario(&opts, 6).unwrap();
        assert_eq!(s.num_tasks(), 50);
        assert_eq!(s.days().len(), 6);
    }
}
